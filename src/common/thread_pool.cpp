#include "common/thread_pool.hpp"

#include <algorithm>

namespace edr::common {

std::size_t ThreadPool::hardware() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

std::size_t ThreadPool::resolve(std::size_t requested) {
  return requested == 0 ? hardware() : requested;
}

ThreadPool::ThreadPool(std::size_t lanes) {
  lanes = std::max<std::size_t>(resolve(lanes), 1);
  workers_.reserve(lanes - 1);
  for (std::size_t lane = 1; lane < lanes; ++lane)
    workers_.emplace_back(&ThreadPool::worker_loop, this, lane);
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || job_epoch_ != seen; });
    if (stop_) return;
    seen = job_epoch_;
    const BlockFn* fn = job_;
    const std::size_t count = job_count_;
    lock.unlock();
    const auto [begin, end] = block(lane, workers_.size() + 1, count);
    std::exception_ptr error;
    try {
      (*fn)(lane, begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && job_error_ == nullptr) job_error_ = error;
    if (--job_pending_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::for_blocks(std::size_t count, const BlockFn& fn) {
  if (workers_.empty()) {
    // Serial fast path: no locking, no fences — the exact historical
    // single-threaded execution.
    fn(0, 0, count);
    return;
  }
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    job_ = &fn;
    job_count_ = count;
    job_pending_ = workers_.size();
    job_error_ = nullptr;
    ++job_epoch_;
  }
  work_cv_.notify_all();
  const auto [begin, end] = block(0, lanes(), count);
  std::exception_ptr caller_error;
  try {
    fn(0, begin, end);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job_pending_ == 0; });
  const std::exception_ptr error =
      caller_error != nullptr ? caller_error : job_error_;
  job_error_ = nullptr;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace edr::common
