#include "common/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fmt.hpp"

namespace edr::json {

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError("json: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("json: value is not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) throw JsonError("json: value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::kObject) throw JsonError("json: value is not an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* found = find(key);
  if (found == nullptr)
    throw JsonError(strf("json: missing key \"%.*s\"",
                         static_cast<int>(key.size()), key.data()));
  return *found;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* found = find(key);
  return found != nullptr ? found->as_number() : fallback;
}

bool Value::bool_or(std::string_view key, bool fallback) const {
  const Value* found = find(key);
  return found != nullptr ? found->as_bool() : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string fallback) const {
  const Value* found = find(key);
  return found != nullptr ? found->as_string() : std::move(fallback);
}

Value Value::make_bool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::make_number(double v) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

Value Value::make_string(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::make_array(std::vector<Value> v) {
  Value out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> v) {
  Value out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(v);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value root = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError(
        strf("json: %s at line %zu, column %zu", what.c_str(), line, column));
  }

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r'))
      ++pos_;
  }

  void expect(char ch) {
    if (done() || peek() != ch) fail(strf("expected '%c'", ch));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    if (done()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_whitespace();
    if (!done() && peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      if (done() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (done()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value::make_object(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_whitespace();
    if (!done() && peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      if (done()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (done()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20)
        fail("unescaped control character in string");
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (done()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned int code = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = text_[pos_++];
      code <<= 4;
      if (ch >= '0' && ch <= '9')
        code += ch - '0';
      else if (ch >= 'a' && ch <= 'f')
        code += 10 + (ch - 'a');
      else if (ch >= 'A' && ch <= 'F')
        code += 10 + (ch - 'A');
      else
        fail("bad \\u escape digit");
    }
    // UTF-8 encode (BMP only; surrogate pairs are rejected as out of
    // scope for config files).
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek())))
      ++pos_;
    if (!done() && peek() == '.') {
      ++pos_;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    double number = 0.0;
    const auto [end, errc] = std::from_chars(
        text_.data() + start, text_.data() + pos_, number);
    if (errc != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Value::make_number(number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser{text}.run(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError(strf("json: cannot open %s", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace edr::json
