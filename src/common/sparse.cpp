#include "common/sparse.hpp"

#include <cmath>
#include <stdexcept>

namespace edr::common {

SparsityPattern::SparsityPattern(const Matrix& mask)
    : rows_(mask.rows()), cols_(mask.cols()) {
  if (mask.size() > UINT32_MAX)
    throw std::length_error(
        "SparsityPattern: more than 2^32 - 1 potential entries");
  row_ptr_.assign(rows_ + 1, 0);
  col_ptr_.assign(cols_ + 1, 0);

  std::size_t nnz = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c)
      if (mask(r, c) != 0.0) ++nnz;
    row_ptr_[r + 1] = static_cast<std::uint32_t>(nnz);
  }
  col_of_.reserve(nnz);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (mask(r, c) != 0.0) {
        col_of_.push_back(static_cast<std::uint32_t>(c));
        ++col_ptr_[c + 1];
      }
  for (std::size_t c = 0; c < cols_; ++c) col_ptr_[c + 1] += col_ptr_[c];

  // Column-major view: walking rows in ascending order per column keeps
  // sparse column reductions in dense row-major summation order.
  row_of_.resize(nnz);
  pos_.resize(nnz);
  std::vector<std::uint32_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const std::uint32_t c = col_of_[i];
      const std::uint32_t slot = cursor[c]++;
      row_of_[slot] = static_cast<std::uint32_t>(r);
      pos_[slot] = static_cast<std::uint32_t>(i);
    }
  }
}

void SparseAllocation::col_sums(std::vector<double>& sums) const {
  sums.assign(pattern_->cols(), 0.0);
  // Row-major walk so each column accumulates in ascending-row order — the
  // same order (and therefore the same bits) as the dense col_sums sweep.
  for (std::size_t r = 0; r < pattern_->rows(); ++r) {
    const auto cols = pattern_->row_cols(r);
    const auto vals = row(r);
    for (std::size_t i = 0; i < cols.size(); ++i) sums[cols[i]] += vals[i];
  }
}

double SparseAllocation::distance(const SparseAllocation& other,
                                  simd::Mode mode) const {
  assert(pattern_.get() == other.pattern_.get());
  return simd::distance(mode, values(), other.values());
}

void SparseAllocation::to_dense(Matrix& out) const {
  out.reshape(pattern_->rows(), pattern_->cols(), 0.0);
  for (std::size_t r = 0; r < pattern_->rows(); ++r) {
    const auto cols = pattern_->row_cols(r);
    const auto vals = row(r);
    for (std::size_t i = 0; i < cols.size(); ++i) out(r, cols[i]) = vals[i];
  }
}

void SparseAllocation::from_dense(const Matrix& dense) {
  assert(dense.rows() == pattern_->rows() &&
         dense.cols() == pattern_->cols());
  for (std::size_t r = 0; r < pattern_->rows(); ++r) {
    const auto cols = pattern_->row_cols(r);
    const auto vals = row(r);
    for (std::size_t i = 0; i < cols.size(); ++i)
      vals[i] = dense(r, cols[i]);
  }
}

}  // namespace edr::common
