// Command-line argument parsing for the CLI tools.
//
// Deliberately small: long options only (`--name value` or `--name=value`),
// typed bindings, auto-generated --help.  No external dependencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace edr {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Boolean flag: present => true (also accepts --name=false / =true).
  void add_flag(std::string name, std::string help, bool* out);
  void add_option(std::string name, std::string help, std::string* out);
  void add_option(std::string name, std::string help, double* out);
  void add_option(std::string name, std::string help, std::int64_t* out);
  void add_option(std::string name, std::string help, std::uint64_t* out);

  /// Parse argv.  Returns false on error or when --help was requested
  /// (check help_requested() to distinguish); diagnostics go to `err`.
  [[nodiscard]] bool parse(int argc, const char* const* argv,
                           std::ostream& err);

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kString, kDouble, kInt, kUint };
  struct Spec {
    std::string name;
    std::string help;
    Kind kind;
    void* target;
    std::string default_text;
  };

  void add(std::string name, std::string help, Kind kind, void* target);
  [[nodiscard]] const Spec* find(const std::string& name) const;
  bool assign(const Spec& spec, const std::string& text,
              std::ostream& err) const;

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  bool help_requested_ = false;
};

}  // namespace edr
