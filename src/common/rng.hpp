// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (electricity prices, request
// arrivals, Zipf popularity, failure injection) draws from an explicitly
// seeded Rng so that simulations are bit-for-bit reproducible.  We use
// xoshiro256** seeded through SplitMix64 — the standard recipe — instead of
// std::mt19937 because its stream-splitting behaviour is well defined and
// the generator state is trivially copyable (handy for snapshotting a
// simulation).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace edr {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream (for per-node generators).
  [[nodiscard]] Rng fork() { return Rng{next() ^ 0xd2b74407b1ce6e93ULL}; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Unbiased bounded integer in [0, bound) via Lemire rejection.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) {
    return -std::log1p(-uniform()) / rate;
  }

  /// Poisson-distributed count (Knuth for small means, normal approx above).
  [[nodiscard]] std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double x = normal(mean, std::sqrt(mean));
      return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

 private:
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace edr
