// Minimal leveled logger.
//
// The simulator and the threaded transport both log through this sink; it is
// thread-safe and cheap to disable, which matters because the benchmark
// harness runs thousands of simulated seconds.
#pragma once

#include <string_view>

#include "common/fmt.hpp"

namespace edr {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded before formatting.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view message);
}

/// Log a pre-formatted message at `level`.
inline void log(LogLevel level, std::string_view message) {
  if (level >= log_level() && log_level() != LogLevel::kOff)
    detail::log_line(level, message);
}

/// printf-style logging; arguments are only formatted if the level is
/// enabled.
template <typename... Args>
void logf(LogLevel level, const char* fmt, Args&&... args) {
  if (level >= log_level() && log_level() != LogLevel::kOff)
    detail::log_line(level, strf(fmt, std::forward<Args>(args)...));
}

}  // namespace edr
