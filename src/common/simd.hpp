// SIMD kernel layer for the solver hot loops.
//
// Every kernel takes an explicit dispatch Mode as its first argument:
//
//   Mode::kScalar — the byte-pinned golden path.  The scalar loop bodies are
//     verbatim copies of the code they replaced in optim/projection.cpp,
//     common/matrix.hpp and core/{cdpsm,lddm}.cpp, so routing a call site
//     through this layer with kScalar changes no observable bit (enforced by
//     the golden-equivalence digests).
//   Mode::kAuto — pick the widest instruction set the *running* CPU
//     supports: AVX2+FMA when available, else SSE2 on x86-64 (where it is
//     the baseline), else the scalar loop.  Detection is one cached
//     __builtin_cpu_supports probe; the AVX2 bodies are compiled with GCC
//     function target attributes, so the tree builds — and runs — on hosts
//     without AVX2 with no -march flags anywhere (the -march gating the
//     build must not depend on).
//
// Numerical contract (property-tested in tests/common/simd_test.cpp):
//   * Element-wise kernels (sub_clamp, masked_sub_clamp, accumulate,
//     cesaro_step, and the clipping half of clip_nonneg_sum) are bitwise
//     identical across modes: each output lane sees the same operations in
//     the same order, and the vector max is arranged operand-order-exact
//     (max(0, x) matches std::max(x, 0.0) on signed zeros and NaN).
//   * Reductions (the sum in clip_nonneg_sum, distance) use multiple
//     vector accumulators in kAuto, which reorders the addition chain and
//     may contract multiply+add into FMA — results agree with kScalar to a
//     small relative tolerance (≤ 1e-12 on the sweep sizes tested), not
//     bitwise.  axpy is element-wise but FMA-contracted in kAuto: each lane
//     differs from kScalar by at most the product's rounding error
//     (½ ulp of a·x[i]) plus one ulp of the result — tiny in absolute
//     terms, but relatively large when y[i] nearly cancels a·x[i].
// Anything that must stay byte-stable (golden digests, live-runtime round
// digests) therefore runs kScalar unless every participant opted into kAuto
// together (the live wire protocol ships the mode for exactly this reason).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace edr::common::simd {

enum class Mode : std::uint8_t {
  kScalar = 0,  ///< golden path: the exact historical scalar loops
  kAuto = 1,    ///< widest ISA the running CPU supports (AVX2 > SSE2)
};

/// Parse "scalar" | "auto" (throws std::invalid_argument otherwise).
[[nodiscard]] Mode parse_mode(std::string_view text);
[[nodiscard]] const char* to_string(Mode mode);

/// The instruction set kAuto resolves to on this machine: "avx2", "sse2"
/// or "scalar".  Cached after the first call.
[[nodiscard]] const char* active_isa();

/// y[i] += a * x[i].  kAuto may fuse the multiply-add; each lane differs
/// from kScalar by at most the product's rounding error (½ ulp of a·x[i])
/// plus one ulp of the result.
void axpy(Mode mode, std::span<double> y, double a,
          std::span<const double> x);

/// y[i] += x[i].  Bitwise identical across modes.
void accumulate(Mode mode, std::span<double> y, std::span<const double> x);

/// v[i] = max(v[i] - tau, 0.0).  Bitwise identical across modes (the
/// simplex-projection apply step).
void sub_clamp(Mode mode, std::span<double> v, double tau);

/// v[i] = mask[i] != 0.0 ? max(v[i] - tau, 0.0) : 0.0.  Bitwise identical
/// across modes (the masked-simplex apply step).
void masked_sub_clamp(Mode mode, std::span<double> v,
                      std::span<const double> mask, double tau);

/// v[i] = max(v[i], 0.0); returns the sum of the clipped vector.  The clip
/// is bitwise identical across modes; the returned sum is a reduction and
/// carries the documented tolerance in kAuto.
[[nodiscard]] double clip_nonneg_sum(Mode mode, std::span<double> v);

/// sqrt(Σ (a[i] - b[i])²).  Reduction: documented tolerance in kAuto.
[[nodiscard]] double distance(Mode mode, std::span<const double> a,
                              std::span<const double> b);

/// avg[i] += (col[i] - avg[i]) / k — the Cesàro running-average update of
/// the dual engines' primal recovery.  Bitwise identical across modes.
void cesaro_step(Mode mode, std::span<double> avg,
                 std::span<const double> col, double k);

}  // namespace edr::common::simd
