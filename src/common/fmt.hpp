// printf-style string formatting.
//
// The toolchain this project targets (GCC 12) does not ship <format>, so we
// provide a type-checked printf wrapper instead.  Keep format strings and
// argument lists in sync — GCC verifies them via the format attribute.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace edr {

/// snprintf into a std::string.
[[gnu::format(printf, 1, 2)]] inline std::string strf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace edr
