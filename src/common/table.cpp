#include "common/table.hpp"

#include "common/fmt.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace edr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  return strf("%.*f", precision, value);
}

std::string Table::pct(double fraction, int precision) {
  return strf("%.*f%%", precision, fraction * 100.0);
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };

  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c == 0 ? 0 : 2);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace edr
