// Dense row-major matrix of doubles.
//
// The replica-selection decision variable is the traffic matrix
// P ∈ R^{|C| x |N|} (clients x replicas).  All solvers in src/optim and
// src/core operate on this type.  It is deliberately minimal: contiguous
// storage, bounds-checked accessors in debug builds, and the handful of
// linear-algebra helpers the algorithms actually need.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/simd.hpp"

namespace edr {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r (a client's allocation across replicas).
  [[nodiscard]] std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> flat() const {
    return {data_.data(), data_.size()};
  }

  /// Sum of column c (a replica's total assigned traffic s_n).
  [[nodiscard]] double col_sum(std::size_t c) const {
    assert(c < cols_);
    double sum = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) sum += data_[r * cols_ + c];
    return sum;
  }

  /// Sum of row r (a client's total received traffic).
  [[nodiscard]] double row_sum(std::size_t r) const {
    assert(r < rows_);
    double sum = 0.0;
    for (double v : row(r)) sum += v;
    return sum;
  }

  /// All column sums at once (avoids |N| passes over the data).
  [[nodiscard]] std::vector<double> col_sums() const {
    std::vector<double> sums;
    col_sums(sums);
    return sums;
  }

  /// col_sums without the per-call allocation: `sums` is resized to cols()
  /// and overwritten.  The per-round hot loops (objective, feasibility
  /// checks) pass a reused scratch vector here.  The row accumulation is
  /// element-wise across columns, so every mode produces identical bits.
  void col_sums(std::vector<double>& sums,
                common::simd::Mode mode = common::simd::Mode::kScalar) const {
    sums.assign(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
      common::simd::accumulate(mode, sums, row(r));
  }

  void fill(double value) { std::ranges::fill(data_, value); }

  /// Re-shape in place and set every entry to `fill`, reusing the existing
  /// buffer when capacity allows — the allocation-free reset the solver
  /// scratch matrices rely on in their per-round hot loops.
  void reshape(std::size_t rows, std::size_t cols, double fill = 0.0) {
    const std::size_t size = checked_size(rows, cols);
    rows_ = rows;
    cols_ = cols;
    data_.assign(size, fill);
  }

  /// this += scale * other (same shape required).  kScalar (default) is the
  /// byte-pinned path; kAuto may fuse multiply-add (each entry within the
  /// product's rounding error of the scalar result).
  void axpy(double scale, const Matrix& other,
            common::simd::Mode mode = common::simd::Mode::kScalar) {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    common::simd::axpy(mode, flat(), scale, other.flat());
  }

  void scale(double factor) {
    for (double& v : data_) v *= factor;
  }

  /// Frobenius distance to another matrix of the same shape.  The kAuto
  /// reduction reorders the sum (tolerance-level, see common/simd.hpp).
  [[nodiscard]] double distance(
      const Matrix& other,
      common::simd::Mode mode = common::simd::Mode::kScalar) const {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    return common::simd::distance(mode, flat(), other.flat());
  }

  [[nodiscard]] double frobenius_norm() const {
    double sum = 0.0;
    for (double v : data_) sum += v * v;
    return std::sqrt(sum);
  }

  [[nodiscard]] double max_abs() const {
    double best = 0.0;
    for (double v : data_) best = std::max(best, std::abs(v));
    return best;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  /// rows*cols with an overflow guard: a wrapped product would turn an
  /// absurd dimension request into a small, silently-wrong allocation
  /// instead of the loud failure callers can act on.
  static std::size_t checked_size(std::size_t rows, std::size_t cols) {
    if (cols != 0 && rows > SIZE_MAX / cols)
      throw std::length_error("Matrix: rows * cols overflows size_t");
    return rows * cols;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace edr
