// Minimal streaming JSON writer.
//
// The CLI and report emitters serialize RunReports for downstream tooling
// (dashboards, CI diffing).  This is a strict emitter — keys/values are
// escaped, numbers are emitted with round-trip precision, and nesting is
// validated with assertions in debug builds — but it is not a parser.
#pragma once

#include <cassert>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/fmt.hpp"

namespace edr {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separator();
    out_ << '{';
    stack_.push_back(Frame::kObject);
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    assert(!stack_.empty() && stack_.back() == Frame::kObject);
    stack_.pop_back();
    out_ << '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    separator();
    out_ << '[';
    stack_.push_back(Frame::kArray);
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    assert(!stack_.empty() && stack_.back() == Frame::kArray);
    stack_.pop_back();
    out_ << ']';
    fresh_ = false;
    return *this;
  }

  /// Emit an object key; must be inside an object and followed by a value.
  JsonWriter& key(std::string_view name) {
    assert(!stack_.empty() && stack_.back() == Frame::kObject);
    separator();
    emit_string(name);
    out_ << ':';
    fresh_ = true;  // the upcoming value needs no comma
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    separator();
    emit_string(text);
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string_view{text}); }
  JsonWriter& value(double number) {
    separator();
    out_ << strf("%.17g", number);
    return *this;
  }
  // One template for all integer types (size_t and uint64_t coincide on
  // this platform; a template sidesteps the duplicate-overload issue).
  template <typename T>
    requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
  JsonWriter& value(T number) {
    separator();
    out_ << number;
    return *this;
  }
  JsonWriter& value(bool flag) {
    separator();
    out_ << (flag ? "true" : "false");
    return *this;
  }

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  [[nodiscard]] std::string str() const {
    assert(stack_.empty() && "unclosed object/array");
    return out_.str();
  }

 private:
  enum class Frame { kObject, kArray };

  void separator() {
    if (!fresh_) out_ << ',';
    fresh_ = false;
  }

  void emit_string(std::string_view text) {
    out_ << '"';
    for (const char ch : text) {
      switch (ch) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\r': out_ << "\\r"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20)
            out_ << strf("\\u%04x", ch);
          else
            out_ << ch;
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<Frame> stack_;
  bool fresh_ = true;
};

}  // namespace edr
