#include "common/csv.hpp"

#include <stdexcept>

#include "common/fmt.hpp"

namespace edr {

CsvWriter::CsvWriter(const std::string& path)
    : owned_(path), out_(&owned_) {
  if (!owned_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

CsvWriter::~CsvWriter() { out_->flush(); }

void CsvWriter::separator() {
  if (!at_row_start_) *out_ << ',';
  at_row_start_ = false;
}

std::string CsvWriter::escape(std::string_view value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{value};
  std::string quoted = "\"";
  for (char ch : value) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  separator();
  *out_ << escape(value);
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  separator();
  *out_ << strf("%.17g", value);
  return *this;
}

CsvWriter& CsvWriter::field(long long value) {
  separator();
  *out_ << value;
  return *this;
}

CsvWriter& CsvWriter::field(std::size_t value) {
  separator();
  *out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  at_row_start_ = true;
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  for (auto f : fields) field(f);
  end_row();
}

void CsvWriter::row(std::string_view label, std::span<const double> values) {
  field(label);
  for (double v : values) field(v);
  end_row();
}

}  // namespace edr
