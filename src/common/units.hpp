// Units used throughout EDR.
//
// The paper mixes several unit systems (MB/s bandwidth caps, ¢/kWh
// electricity prices, Joules of consumption, cents of cost, milliseconds of
// latency).  To keep call sites honest we funnel every conversion through
// the named helpers below instead of sprinkling magic constants around.
#pragma once

#include <cstdint>

namespace edr {

/// Simulated time is kept in double seconds.  The simulator event queue
/// orders events by this value; one unit == one second of wall time on the
/// emulated cluster.
using SimTime = double;

/// Traffic loads (the decision variables p_{c,n}) are measured in megabytes,
/// matching the paper's per-request sizes (100 MB video, 10 MB file chunk).
using Megabytes = double;

/// Power draw in watts.
using Watts = double;

/// Energy in joules.
using Joules = double;

/// Monetary cost in cents (the paper's objective is cents, not joules).
using Cents = double;

/// Electricity price in cents per kilowatt-hour.
using CentsPerKwh = double;

/// Network latency in milliseconds (paper: T = 1.8 ms worst case frame).
using Milliseconds = double;

inline constexpr double kJoulesPerKwh = 3.6e6;

/// Convert an energy amount and a regional price into a cost.
[[nodiscard]] constexpr Cents energy_cost(Joules energy, CentsPerKwh price) {
  return energy / kJoulesPerKwh * price;
}

/// Convert megabytes to bytes (used by transfer bookkeeping).
[[nodiscard]] constexpr std::uint64_t megabytes_to_bytes(Megabytes mb) {
  return static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
}

[[nodiscard]] constexpr double seconds(Milliseconds ms) { return ms / 1000.0; }
[[nodiscard]] constexpr Milliseconds milliseconds(double secs) {
  return secs * 1000.0;
}

}  // namespace edr
