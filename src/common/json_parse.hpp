// Minimal recursive-descent JSON parser (the read-side twin of
// common/json.hpp's writer).
//
// The scenario layer loads world descriptions from JSON files; nothing in
// the container provides a parser, so this is a small strict one: full
// value grammar, \uXXXX escapes (BMP only), no comments, no trailing
// commas.  Errors throw JsonError with a line/column position.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace edr::json {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON document node.  Objects keep their members in insertion
/// order (scenario files read naturally top to bottom in error messages).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// Object lookup: null if absent (or not an object) / throwing variant.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }

  /// Lenient typed lookups with defaults, for optional config fields.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;

  static Value make_null() { return Value{}; }
  static Value make_bool(bool v);
  static Value make_number(double v);
  static Value make_string(std::string v);
  static Value make_array(std::vector<Value> v);
  static Value make_object(std::vector<std::pair<std::string, Value>> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parse a complete JSON document (one value plus trailing whitespace).
/// Throws JsonError with "line L, column C" context on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Parse the contents of a file; wraps read errors in JsonError.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace edr::json
