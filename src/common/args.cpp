#include "common/args.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/fmt.hpp"

namespace edr {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add(std::string name, std::string help, Kind kind,
                    void* target) {
  if (find(name) != nullptr)
    throw std::logic_error("ArgParser: duplicate option --" + name);
  Spec spec{std::move(name), std::move(help), kind, target, {}};
  switch (kind) {
    case Kind::kFlag:
      spec.default_text = *static_cast<bool*>(target) ? "true" : "false";
      break;
    case Kind::kString:
      spec.default_text = *static_cast<std::string*>(target);
      break;
    case Kind::kDouble:
      spec.default_text = strf("%g", *static_cast<double*>(target));
      break;
    case Kind::kInt:
      spec.default_text =
          std::to_string(*static_cast<std::int64_t*>(target));
      break;
    case Kind::kUint:
      spec.default_text =
          std::to_string(*static_cast<std::uint64_t*>(target));
      break;
  }
  specs_.push_back(std::move(spec));
}

void ArgParser::add_flag(std::string name, std::string help, bool* out) {
  add(std::move(name), std::move(help), Kind::kFlag, out);
}
void ArgParser::add_option(std::string name, std::string help,
                           std::string* out) {
  add(std::move(name), std::move(help), Kind::kString, out);
}
void ArgParser::add_option(std::string name, std::string help, double* out) {
  add(std::move(name), std::move(help), Kind::kDouble, out);
}
void ArgParser::add_option(std::string name, std::string help,
                           std::int64_t* out) {
  add(std::move(name), std::move(help), Kind::kInt, out);
}
void ArgParser::add_option(std::string name, std::string help,
                           std::uint64_t* out) {
  add(std::move(name), std::move(help), Kind::kUint, out);
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  const auto it = std::ranges::find_if(
      specs_, [&](const Spec& spec) { return spec.name == name; });
  return it == specs_.end() ? nullptr : &*it;
}

bool ArgParser::assign(const Spec& spec, const std::string& text,
                       std::ostream& err) const {
  try {
    std::size_t used = 0;
    switch (spec.kind) {
      case Kind::kFlag:
        if (text == "true" || text.empty())
          *static_cast<bool*>(spec.target) = true;
        else if (text == "false")
          *static_cast<bool*>(spec.target) = false;
        else
          throw std::invalid_argument("expected true/false");
        return true;
      case Kind::kString:
        *static_cast<std::string*>(spec.target) = text;
        return true;
      case Kind::kDouble:
        *static_cast<double*>(spec.target) = std::stod(text, &used);
        break;
      case Kind::kInt:
        *static_cast<std::int64_t*>(spec.target) = std::stoll(text, &used);
        break;
      case Kind::kUint: {
        if (!text.empty() && text.front() == '-')
          throw std::invalid_argument("negative");
        *static_cast<std::uint64_t*>(spec.target) = std::stoull(text, &used);
        break;
      }
    }
    if (used != text.size()) throw std::invalid_argument("trailing garbage");
    return true;
  } catch (const std::exception&) {
    err << program_ << ": invalid value '" << text << "' for --" << spec.name
        << "\n";
    return false;
  }
}

bool ArgParser::parse(int argc, const char* const* argv, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      err << usage();
      return false;
    }
    if (token.rfind("--", 0) != 0) {
      err << program_ << ": unexpected positional argument '" << token
          << "'\n";
      return false;
    }
    token.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.erase(eq);
      has_value = true;
    }
    const Spec* spec = find(token);
    if (spec == nullptr) {
      err << program_ << ": unknown option --" << token << "\n";
      return false;
    }
    if (!has_value && spec->kind != Kind::kFlag) {
      if (i + 1 >= argc) {
        err << program_ << ": --" << token << " needs a value\n";
        return false;
      }
      value = argv[++i];
    }
    if (!assign(*spec, value, err)) return false;
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  std::size_t width = 4;  // at least as wide as "help"
  for (const auto& spec : specs_) width = std::max(width, spec.name.size());
  for (const auto& spec : specs_) {
    out << "  --" << spec.name
        << std::string(width - spec.name.size() + 2, ' ') << spec.help
        << " (default: " << spec.default_text << ")\n";
  }
  out << "  --help" << std::string(width - 4 + 2, ' ')
      << "show this message\n";
  return out.str();
}

}  // namespace edr
