// CSV emission for figure series.
//
// Every bench binary prints its headline rows to stdout and, when given an
// output directory, additionally writes the full series (e.g. the 50 Hz
// power traces behind Figs 3-4) as CSV so they can be re-plotted.
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace edr {

/// Streaming CSV writer.  Quotes fields containing separators; numeric
/// overloads format with enough precision to round-trip doubles.
class CsvWriter {
 public:
  /// Open `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write directly into an arbitrary ostream (used by tests).
  explicit CsvWriter(std::ostream& out);

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  CsvWriter& field(std::size_t value);
  void end_row();

  /// Convenience: write a whole row of strings.
  void row(std::initializer_list<std::string_view> fields);
  /// Convenience: write a label followed by a numeric series.
  void row(std::string_view label, std::span<const double> values);

 private:
  void separator();
  static std::string escape(std::string_view value);

  std::ofstream owned_;
  std::ostream* out_;
  bool at_row_start_ = true;
};

}  // namespace edr
