#include "common/math_util.hpp"

#include <algorithm>

namespace edr {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::ranges::sort(values);
  const double rank =
      clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  return lerp(values[lo], values[hi], rank - static_cast<double>(lo));
}

}  // namespace edr
