// Deterministic fork-join thread pool for the solve engine.
//
// Design goals, in order:
//   1. Bitwise-reproducible results regardless of thread count.  Work is
//      split by *static contiguous block partitioning* (lane k gets items
//      [k·n/L, (k+1)·n/L)) — never work stealing — so each item always runs
//      against the same scratch lane, and any reduction the caller performs
//      afterwards walks the items serially in index order.  A run with 8
//      lanes and a run with 1 lane therefore produce identical bytes as
//      long as the per-item work only writes item-owned state.
//   2. Zero overhead at lanes == 1: the callable runs inline on the caller
//      with no allocation, locking, or fences — the exact historical serial
//      path, which is what the golden-equivalence digests pin.
//   3. Persistent workers: construction spawns lanes−1 threads once; each
//      for_blocks() is a condition-variable handshake, not a thread spawn,
//      so per-round dispatch is cheap enough for solver inner loops.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace edr::common {

class ThreadPool {
 public:
  /// Spawns `resolve(lanes) - 1` worker threads; the caller of for_blocks
  /// always participates as lane 0.  lanes == 1 (the default) creates no
  /// threads at all.
  explicit ThreadPool(std::size_t lanes = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, caller included (≥ 1).
  [[nodiscard]] std::size_t lanes() const { return workers_.size() + 1; }

  /// fn(lane, begin, end) — process items [begin, end) on the given lane.
  using BlockFn =
      std::function<void(std::size_t lane, std::size_t begin, std::size_t end)>;

  /// Run fn over `count` items, statically partitioned into contiguous
  /// blocks, one per lane; blocks until every lane is done.  The caller
  /// runs lane 0 inline.  Not reentrant: fn must not call for_blocks on
  /// the same pool.  fn may only write state owned by its items (disjoint
  /// across lanes); perform any cross-item reduction serially afterwards.
  /// The first exception thrown by any lane is rethrown here after all
  /// lanes finish.
  void for_blocks(std::size_t count, const BlockFn& fn);

  /// Convenience: per-item callable (fn(i) for each i in [0, count)).
  template <typename Fn>
  void for_each(std::size_t count, Fn&& fn) {
    for_blocks(count, [&fn](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// Lane k's static block of `count` items, as [begin, end).
  [[nodiscard]] static std::pair<std::size_t, std::size_t> block(
      std::size_t lane, std::size_t lanes, std::size_t count) {
    return {lane * count / lanes, (lane + 1) * count / lanes};
  }

  /// Hardware concurrency, never 0.
  [[nodiscard]] static std::size_t hardware();
  /// Map a user-facing thread-count knob to a lane count: 0 = hardware,
  /// anything else taken literally.
  [[nodiscard]] static std::size_t resolve(std::size_t requested);

 private:
  void worker_loop(std::size_t lane);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const BlockFn* job_ = nullptr;     // current job (guarded by mutex_)
  std::size_t job_count_ = 0;        // items in the current job
  std::uint64_t job_epoch_ = 0;      // bumped per job so workers see "new"
  std::size_t job_pending_ = 0;      // workers still running the job
  std::exception_ptr job_error_;     // first failure across all lanes
  bool stop_ = false;
};

}  // namespace edr::common
