#include "common/simd.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

// x86-64 only: SSE2 is part of the base ABI there, so the _mm_ bodies need
// no flags; the AVX2 bodies carry GCC target attributes and are reached
// only after a runtime __builtin_cpu_supports probe.  Every other target
// compiles the scalar bodies alone — the -march gating guard.
#if defined(__x86_64__)
#define EDR_SIMD_X86 1
#include <immintrin.h>
#else
#define EDR_SIMD_X86 0
#endif

namespace edr::common::simd {
namespace {

enum class Level : std::uint8_t { kScalarOnly, kSse2, kAvx2 };

Level detect_level() {
#if EDR_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Level::kAvx2;
  return Level::kSse2;
#else
  return Level::kScalarOnly;
#endif
}

Level active_level() {
  static const Level level = detect_level();
  return level;
}

// ---------- scalar bodies ----------
// Verbatim copies of the loops these kernels replaced; Mode::kScalar must
// stay byte-identical to the pre-SIMD code paths.

void axpy_scalar(double* y, double a, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void accumulate_scalar(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void sub_clamp_scalar(double* v, double tau, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] = std::max(v[i] - tau, 0.0);
}

void masked_sub_clamp_scalar(double* v, const double* mask, double tau,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    v[i] = mask[i] != 0.0 ? std::max(v[i] - tau, 0.0) : 0.0;
}

double clip_nonneg_sum_scalar(double* v, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::max(v[i], 0.0);
    total += v[i];
  }
  return total;
}

double distance_scalar(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void cesaro_step_scalar(double* avg, const double* col, double k,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) avg[i] += (col[i] - avg[i]) / k;
}

#if EDR_SIMD_X86

// ---------- SSE2 bodies (baseline on x86-64, no target attribute) ----------

void axpy_sse2(double* y, double a, const double* x, std::size_t n) {
  const __m128d va = _mm_set1_pd(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vy = _mm_loadu_pd(y + i);
    const __m128d vx = _mm_loadu_pd(x + i);
    _mm_storeu_pd(y + i, _mm_add_pd(vy, _mm_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void accumulate_sse2(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), _mm_loadu_pd(x + i)));
  for (; i < n; ++i) y[i] += x[i];
}

void sub_clamp_sse2(double* v, double tau, std::size_t n) {
  const __m128d vtau = _mm_set1_pd(tau);
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  // max(0, x) — operand order matters: maxpd returns the *second* operand
  // on equality or NaN, which is exactly std::max(x, 0.0) on signed zeros.
  for (; i + 2 <= n; i += 2)
    _mm_storeu_pd(
        v + i, _mm_max_pd(zero, _mm_sub_pd(_mm_loadu_pd(v + i), vtau)));
  for (; i < n; ++i) v[i] = std::max(v[i] - tau, 0.0);
}

void masked_sub_clamp_sse2(double* v, const double* mask, double tau,
                           std::size_t n) {
  const __m128d vtau = _mm_set1_pd(tau);
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d keep = _mm_cmpneq_pd(_mm_loadu_pd(mask + i), zero);
    const __m128d clamped =
        _mm_max_pd(zero, _mm_sub_pd(_mm_loadu_pd(v + i), vtau));
    _mm_storeu_pd(v + i, _mm_and_pd(keep, clamped));
  }
  for (; i < n; ++i)
    v[i] = mask[i] != 0.0 ? std::max(v[i] - tau, 0.0) : 0.0;
}

double clip_nonneg_sum_sse2(double* v, std::size_t n) {
  const __m128d zero = _mm_setzero_pd();
  __m128d acc = zero;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d clipped = _mm_max_pd(zero, _mm_loadu_pd(v + i));
    _mm_storeu_pd(v + i, clipped);
    acc = _mm_add_pd(acc, clipped);
  }
  double total = _mm_cvtsd_f64(acc) +
                 _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
  for (; i < n; ++i) {
    v[i] = std::max(v[i], 0.0);
    total += v[i];
  }
  return total;
}

double distance_sse2(const double* a, const double* b, std::size_t n) {
  __m128d acc = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d d = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
  }
  double sum = _mm_cvtsd_f64(acc) +
               _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void cesaro_step_sse2(double* avg, const double* col, double k,
                      std::size_t n) {
  const __m128d vk = _mm_set1_pd(k);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d va = _mm_loadu_pd(avg + i);
    const __m128d vc = _mm_loadu_pd(col + i);
    _mm_storeu_pd(avg + i,
                  _mm_add_pd(va, _mm_div_pd(_mm_sub_pd(vc, va), vk)));
  }
  for (; i < n; ++i) avg[i] += (col[i] - avg[i]) / k;
}

// ---------- AVX2+FMA bodies (runtime-dispatched) ----------

__attribute__((target("avx2,fma"))) double hsum4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

__attribute__((target("avx2,fma"))) void axpy_avx2(double* y, double a,
                                                   const double* x,
                                                   std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d vx = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(va, vx, vy));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2,fma"))) void accumulate_avx2(double* y,
                                                         const double* x,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("avx2,fma"))) void sub_clamp_avx2(double* v, double tau,
                                                        std::size_t n) {
  const __m256d vtau = _mm256_set1_pd(tau);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        v + i,
        _mm256_max_pd(zero, _mm256_sub_pd(_mm256_loadu_pd(v + i), vtau)));
  for (; i < n; ++i) v[i] = std::max(v[i] - tau, 0.0);
}

__attribute__((target("avx2,fma"))) void masked_sub_clamp_avx2(
    double* v, const double* mask, double tau, std::size_t n) {
  const __m256d vtau = _mm256_set1_pd(tau);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d keep =
        _mm256_cmp_pd(_mm256_loadu_pd(mask + i), zero, _CMP_NEQ_UQ);
    const __m256d clamped =
        _mm256_max_pd(zero, _mm256_sub_pd(_mm256_loadu_pd(v + i), vtau));
    _mm256_storeu_pd(v + i, _mm256_and_pd(keep, clamped));
  }
  for (; i < n; ++i)
    v[i] = mask[i] != 0.0 ? std::max(v[i] - tau, 0.0) : 0.0;
}

__attribute__((target("avx2,fma"))) double clip_nonneg_sum_avx2(
    double* v, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d clipped = _mm256_max_pd(zero, _mm256_loadu_pd(v + i));
    _mm256_storeu_pd(v + i, clipped);
    acc = _mm256_add_pd(acc, clipped);
  }
  double total = hsum4(acc);
  for (; i < n; ++i) {
    v[i] = std::max(v[i], 0.0);
    total += v[i];
  }
  return total;
}

__attribute__((target("avx2,fma"))) double distance_avx2(const double* a,
                                                         const double* b,
                                                         std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  double sum = hsum4(acc);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

__attribute__((target("avx2,fma"))) void cesaro_step_avx2(double* avg,
                                                          const double* col,
                                                          double k,
                                                          std::size_t n) {
  const __m256d vk = _mm256_set1_pd(k);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(avg + i);
    const __m256d vc = _mm256_loadu_pd(col + i);
    _mm256_storeu_pd(
        avg + i, _mm256_add_pd(va, _mm256_div_pd(_mm256_sub_pd(vc, va), vk)));
  }
  for (; i < n; ++i) avg[i] += (col[i] - avg[i]) / k;
}

#endif  // EDR_SIMD_X86

bool use_vector(Mode mode, std::size_t n) {
  // Tiny spans gain nothing from the dispatch branch; the engines' columns
  // are the real targets.  kScalar must take the scalar body unconditionally.
  return mode == Mode::kAuto && n >= 4;
}

}  // namespace

Mode parse_mode(std::string_view text) {
  if (text == "scalar") return Mode::kScalar;
  if (text == "auto") return Mode::kAuto;
  throw std::invalid_argument("unknown simd mode '" + std::string(text) +
                              "' (scalar|auto)");
}

const char* to_string(Mode mode) {
  return mode == Mode::kAuto ? "auto" : "scalar";
}

const char* active_isa() {
  switch (active_level()) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse2:
      return "sse2";
    case Level::kScalarOnly:
      return "scalar";
  }
  return "scalar";
}

void axpy(Mode mode, std::span<double> y, double a,
          std::span<const double> x) {
#if EDR_SIMD_X86
  if (use_vector(mode, y.size())) {
    if (active_level() == Level::kAvx2)
      axpy_avx2(y.data(), a, x.data(), y.size());
    else
      axpy_sse2(y.data(), a, x.data(), y.size());
    return;
  }
#endif
  (void)mode;
  axpy_scalar(y.data(), a, x.data(), y.size());
}

void accumulate(Mode mode, std::span<double> y, std::span<const double> x) {
#if EDR_SIMD_X86
  if (use_vector(mode, y.size())) {
    if (active_level() == Level::kAvx2)
      accumulate_avx2(y.data(), x.data(), y.size());
    else
      accumulate_sse2(y.data(), x.data(), y.size());
    return;
  }
#endif
  (void)mode;
  accumulate_scalar(y.data(), x.data(), y.size());
}

void sub_clamp(Mode mode, std::span<double> v, double tau) {
#if EDR_SIMD_X86
  if (use_vector(mode, v.size())) {
    if (active_level() == Level::kAvx2)
      sub_clamp_avx2(v.data(), tau, v.size());
    else
      sub_clamp_sse2(v.data(), tau, v.size());
    return;
  }
#endif
  (void)mode;
  sub_clamp_scalar(v.data(), tau, v.size());
}

void masked_sub_clamp(Mode mode, std::span<double> v,
                      std::span<const double> mask, double tau) {
#if EDR_SIMD_X86
  if (use_vector(mode, v.size())) {
    if (active_level() == Level::kAvx2)
      masked_sub_clamp_avx2(v.data(), mask.data(), tau, v.size());
    else
      masked_sub_clamp_sse2(v.data(), mask.data(), tau, v.size());
    return;
  }
#endif
  (void)mode;
  masked_sub_clamp_scalar(v.data(), mask.data(), tau, v.size());
}

double clip_nonneg_sum(Mode mode, std::span<double> v) {
#if EDR_SIMD_X86
  if (use_vector(mode, v.size())) {
    if (active_level() == Level::kAvx2)
      return clip_nonneg_sum_avx2(v.data(), v.size());
    return clip_nonneg_sum_sse2(v.data(), v.size());
  }
#endif
  (void)mode;
  return clip_nonneg_sum_scalar(v.data(), v.size());
}

double distance(Mode mode, std::span<const double> a,
                std::span<const double> b) {
#if EDR_SIMD_X86
  if (use_vector(mode, a.size())) {
    if (active_level() == Level::kAvx2)
      return distance_avx2(a.data(), b.data(), a.size());
    return distance_sse2(a.data(), b.data(), a.size());
  }
#endif
  (void)mode;
  return distance_scalar(a.data(), b.data(), a.size());
}

void cesaro_step(Mode mode, std::span<double> avg,
                 std::span<const double> col, double k) {
#if EDR_SIMD_X86
  if (use_vector(mode, avg.size())) {
    if (active_level() == Level::kAvx2)
      cesaro_step_avx2(avg.data(), col.data(), k, avg.size());
    else
      cesaro_step_sse2(avg.data(), col.data(), k, avg.size());
    return;
  }
#endif
  (void)mode;
  cesaro_step_scalar(avg.data(), col.data(), k, avg.size());
}

}  // namespace edr::common::simd
