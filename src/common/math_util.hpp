// Small numeric helpers shared across modules.
#pragma once

#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

namespace edr {

/// Compensated (Kahan) summation — power-trace integration accumulates
/// hundreds of thousands of 20 ms samples, where naive summation drifts.
class KahanSum {
 public:
  void add(double value) {
    const double y = value - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  [[nodiscard]] double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

[[nodiscard]] inline double sum(std::span<const double> values) {
  KahanSum k;
  for (double v : values) k.add(v);
  return k.value();
}

[[nodiscard]] inline double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return sum(values) / static_cast<double>(values.size());
}

[[nodiscard]] inline double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

[[nodiscard]] inline double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

/// Relative closeness with an absolute floor, for comparing objective values.
[[nodiscard]] inline bool approx_equal(double a, double b, double rel = 1e-9,
                                       double abs_floor = 1e-12) {
  const double diff = std::abs(a - b);
  if (diff <= abs_floor) return true;
  return diff <= rel * std::max(std::abs(a), std::abs(b));
}

/// x clamped into [lo, hi].
[[nodiscard]] inline double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear interpolation between a and b.
[[nodiscard]] inline double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// p-th percentile (p in [0,100]) with linear interpolation; copies input.
[[nodiscard]] double percentile(std::vector<double> values, double p);

}  // namespace edr
