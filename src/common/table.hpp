// Fixed-width ASCII table printer.
//
// Bench binaries report the paper's figure series as aligned tables on
// stdout (one row per replica / algorithm / request count) so the harness
// output is directly comparable with the paper's plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace edr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Helpers that format common cell types.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment and a separator rule under the header.
  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace edr
