// Sparse (CSR-by-client) storage for the traffic matrix P.
//
// The latency bound l_{c,n} > T makes most of P structurally zero: a client
// may only route to its latency-feasible replicas, so the decision variable
// really lives on the feasible pairs, not on the full |C|x|N| grid.  This
// header provides the two pieces the sparse solve paths share:
//
//  * SparsityPattern — the immutable index structure of the feasible pairs,
//    viewable both row-wise (CSR: per-client feasible replica list) and
//    column-wise (per-replica client list, with the position of each entry
//    in the row-major value array).  Built once per Problem and shared by
//    every allocation over it.
//  * SparseAllocation — one value per feasible pair, laid out row-major
//    (client-major), over a shared pattern.  Mirrors the handful of Matrix
//    helpers the solvers use (axpy, scale, distance, col_sum) on the
//    compact storage.
//
// Values on infeasible pairs are *structural* zeros: they do not exist, so
// projections, gradients and wire frames never touch them.  The dense
// Matrix path remains the golden path; these types are selected via the
// SystemConfig representation knob (see DESIGN.md §12).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace edr::common {

/// Immutable index structure of the feasible (client, replica) pairs.
class SparsityPattern {
 public:
  SparsityPattern() = default;

  /// Build from a dense 0/1 mask (rows = clients, cols = replicas): entry
  /// (r, c) is present iff mask(r, c) != 0.  Column entries are ordered by
  /// ascending row so sparse column reductions add in the same order as the
  /// dense row-major sweeps.
  explicit SparsityPattern(const Matrix& mask);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return col_of_.size(); }

  /// Number of entries in row r / the row's slice bounds in value space.
  [[nodiscard]] std::size_t row_begin(std::size_t r) const {
    return row_ptr_[r];
  }
  [[nodiscard]] std::size_t row_end(std::size_t r) const {
    return row_ptr_[r + 1];
  }
  [[nodiscard]] std::size_t row_nnz(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }
  /// Column ids of row r's entries (parallel to the row's value slice).
  [[nodiscard]] std::span<const std::uint32_t> row_cols(std::size_t r) const {
    return {col_of_.data() + row_ptr_[r], row_nnz(r)};
  }

  /// Number of entries in column c / the column's slice bounds.
  [[nodiscard]] std::size_t col_begin(std::size_t c) const {
    return col_ptr_[c];
  }
  [[nodiscard]] std::size_t col_end(std::size_t c) const {
    return col_ptr_[c + 1];
  }
  [[nodiscard]] std::size_t col_nnz(std::size_t c) const {
    return col_ptr_[c + 1] - col_ptr_[c];
  }
  /// Row ids of column c's entries, ascending (parallel to col_positions).
  [[nodiscard]] std::span<const std::uint32_t> col_rows(std::size_t c) const {
    return {row_of_.data() + col_ptr_[c], col_nnz(c)};
  }
  /// Positions in the row-major value array of column c's entries.
  [[nodiscard]] std::span<const std::uint32_t> col_positions(
      std::size_t c) const {
    return {pos_.data() + col_ptr_[c], col_nnz(c)};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;  // rows + 1
  std::vector<std::uint32_t> col_of_;   // nnz, column id per row-major entry
  std::vector<std::uint32_t> col_ptr_;  // cols + 1
  std::vector<std::uint32_t> row_of_;   // nnz, row id per column-major entry
  std::vector<std::uint32_t> pos_;      // nnz, row-major position per
                                        // column-major entry
};

/// A traffic matrix restricted to a pattern's feasible pairs.
class SparseAllocation {
 public:
  SparseAllocation() = default;
  explicit SparseAllocation(std::shared_ptr<const SparsityPattern> pattern)
      : pattern_(std::move(pattern)), values_(pattern_->nnz(), 0.0) {}

  [[nodiscard]] const SparsityPattern& pattern() const { return *pattern_; }
  [[nodiscard]] const std::shared_ptr<const SparsityPattern>& pattern_ptr()
      const {
    return pattern_;
  }
  [[nodiscard]] bool empty() const { return pattern_ == nullptr; }
  [[nodiscard]] std::size_t rows() const { return pattern_->rows(); }
  [[nodiscard]] std::size_t cols() const { return pattern_->cols(); }

  /// Flat row-major value storage (one double per feasible pair).
  [[nodiscard]] std::span<double> values() {
    return {values_.data(), values_.size()};
  }
  [[nodiscard]] std::span<const double> values() const {
    return {values_.data(), values_.size()};
  }

  /// Row r's compact value slice (parallel to pattern().row_cols(r)).
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {values_.data() + pattern_->row_begin(r), pattern_->row_nnz(r)};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {values_.data() + pattern_->row_begin(r), pattern_->row_nnz(r)};
  }

  [[nodiscard]] double row_sum(std::size_t r) const {
    double sum = 0.0;
    for (const double v : row(r)) sum += v;
    return sum;
  }

  /// Column sum over the feasible entries, ascending-row order (matches the
  /// dense row-major col_sum bit for bit: the skipped entries are exact
  /// zeros there).
  [[nodiscard]] double col_sum(std::size_t c) const {
    double sum = 0.0;
    for (const std::uint32_t p : pattern_->col_positions(c)) sum += values_[p];
    return sum;
  }

  /// All column sums at once, one pass; `sums` is assigned to cols().
  void col_sums(std::vector<double>& sums) const;

  void fill(double value) {
    for (double& v : values_) v = value;
  }

  void scale(double factor) {
    for (double& v : values_) v *= factor;
  }

  /// this += scale * other (same pattern required).  kScalar (default) is
  /// the byte-pinned path; kAuto may fuse multiply-add (each entry within
  /// the product's rounding error of the scalar result).
  void axpy(double scale, const SparseAllocation& other,
            simd::Mode mode = simd::Mode::kScalar) {
    assert(pattern_.get() == other.pattern_.get());
    simd::axpy(mode, values(), scale, other.values());
  }

  [[nodiscard]] double distance(const SparseAllocation& other,
                                simd::Mode mode = simd::Mode::kScalar) const;

  /// Scatter into a dense rows() x cols() matrix (structural zeros
  /// elsewhere).  `out` is reshaped in place.
  void to_dense(Matrix& out) const;

  /// Gather from a dense matrix; mass on infeasible pairs is dropped
  /// (callers that care assert with check_feasibility first).
  void from_dense(const Matrix& dense);

 private:
  std::shared_ptr<const SparsityPattern> pattern_;
  std::vector<double> values_;
};

}  // namespace edr::common
