// Euclidean projections onto the constraint sets of the replica-selection
// problem, plus Dykstra's alternating-projection scheme for their
// intersection.
//
// The feasible set factors into
//   A = Π_c { x ∈ R^N : x ≥ 0, x_n = 0 on masked pairs, Σ x = R_c }
//       (one masked simplex per client row), and
//   B = Π_n { y ∈ R^C : y ≥ 0, Σ y ≤ B_n }
//       (one capped nonnegative set per replica column).
// Both factor projections are exact and O(k log k); Dykstra's algorithm
// combines them into the projection onto A ∩ B, which both CDPSM's
// projection step and the centralized reference solver rely on.
//
// Because A and B are products over disjoint rows / columns, their factor
// projections are embarrassingly parallel: pass a common::ThreadPool and the
// client rows (demand set) / replica columns (capacity set) are processed in
// static contiguous blocks, one block per lane.  Each row/column projection
// writes only its own slice, so the result is bitwise identical to the
// serial sweep for every lane count (see DESIGN.md §10).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/simd.hpp"
#include "common/sparse.hpp"

namespace edr::common {
class ThreadPool;
}  // namespace edr::common

namespace edr::optim {

class Problem;

/// Project `values` in place onto the simplex {x ≥ 0, Σx = target} restricted
/// to the coordinates where mask[i] != 0 (masked-out coordinates are forced
/// to zero).  `target` must be ≥ 0 and the mask must have at least one active
/// coordinate when target > 0.  O(k log k) via the sort-and-threshold method
/// of Held/Wolfe/Crowder.
/// All projections take a SIMD dispatch mode for their apply/clip loops;
/// kScalar (the default everywhere) is the byte-pinned golden path and
/// kAuto vectorizes the element-wise steps (see common/simd.hpp for the
/// exactness contract — the apply loops are bitwise mode-independent, the
/// capped projection's cap test uses a reduction and is tolerance-level).
void project_masked_simplex(
    std::span<double> values, std::span<const double> mask, double target,
    common::simd::Mode simd = common::simd::Mode::kScalar);

/// Project `values` in place onto the simplex {x ≥ 0, Σx = target}.
void project_simplex(std::span<double> values, double target,
                     common::simd::Mode simd = common::simd::Mode::kScalar);

/// Maskless compact form: every coordinate of `values` is active.  This is
/// the projection the sparse paths use on a row's feasible slice; it is
/// bitwise identical to project_masked_simplex on the dense row (the mask
/// gather visits the feasible coordinates in the same order, so the sorted
/// active vector — and therefore τ — is the same).  Throws like the masked
/// form when target > 0 with no coordinates.
void project_simplex_active(
    std::span<double> values, double target,
    common::simd::Mode simd = common::simd::Mode::kScalar);

/// Project `values` in place onto {x ≥ 0, Σx ≤ cap}: clip to the nonnegative
/// orthant, then fall back to a simplex projection only if the cap binds.
void project_capped_nonneg(std::span<double> values, double cap,
                           common::simd::Mode simd =
                               common::simd::Mode::kScalar);

/// Project `allocation` in place onto the demand set A (per-client masked
/// simplices) of `problem`.  A non-null `pool` splits the client rows across
/// its lanes; the result is bitwise independent of the lane count.
void project_demand_set(const Problem& problem, Matrix& allocation,
                        common::ThreadPool* pool = nullptr,
                        common::simd::Mode simd =
                            common::simd::Mode::kScalar);

/// Project `allocation` in place onto the capacity set B (per-replica capped
/// columns) of `problem`.  A non-null `pool` splits the replica columns
/// across its lanes; the result is bitwise independent of the lane count.
void project_capacity_set(const Problem& problem, Matrix& allocation,
                          common::ThreadPool* pool = nullptr,
                          common::simd::Mode simd =
                              common::simd::Mode::kScalar);

/// Sparse variants: the compact value slices already enumerate exactly the
/// feasible coordinates, so the demand projection runs the maskless compact
/// simplex per client row and the capacity projection gathers each replica
/// column through the pattern's column view.  Both match the dense masked
/// projections bitwise when the dense allocation carries exact zeros on
/// infeasible pairs.  The allocation's pattern must be `problem.sparsity()`.
void project_demand_set(const Problem& problem,
                        common::SparseAllocation& allocation,
                        common::ThreadPool* pool = nullptr,
                        common::simd::Mode simd =
                            common::simd::Mode::kScalar);
void project_capacity_set(const Problem& problem,
                          common::SparseAllocation& allocation,
                          common::ThreadPool* pool = nullptr,
                          common::simd::Mode simd =
                              common::simd::Mode::kScalar);

/// Options for Dykstra's alternating projections.
struct DykstraOptions {
  std::size_t max_iterations = 500;
  /// Stop when successive full sweeps move the iterate less than this
  /// (Frobenius norm).
  double tolerance = 1e-10;
  /// Optional pool for the row/column sweeps inside each iteration (null =
  /// serial).  Deterministic: the same bytes for every lane count.
  common::ThreadPool* pool = nullptr;
  /// Kernel dispatch for the correction axpy / projection apply loops.
  /// kScalar is the byte-pinned golden path.
  common::simd::Mode simd = common::simd::Mode::kScalar;
};

/// Result diagnostics from project_feasible.
struct DykstraResult {
  std::size_t iterations = 0;
  double final_change = 0.0;
  bool converged = false;
  /// Worst per-replica capacity overshoot of the *returned* iterate, after
  /// the final demand snap.  0 when converged (the snap only perturbs an
  /// already-feasible point below tolerance); when the iteration cap was
  /// hit, this reports the violation the snap would otherwise silently
  /// mask — callers deciding whether to trust the point should check it.
  double capacity_residual = 0.0;
};

/// Project `allocation` in place onto the full feasible set A ∩ B of
/// `problem` using Dykstra's algorithm (which, unlike plain alternating
/// projections, converges to the *nearest* feasible point).
DykstraResult project_feasible(const Problem& problem, Matrix& allocation,
                               const DykstraOptions& options = {});

/// Sparse Dykstra: identical scheme on the compact storage, with flat
/// per-entry correction vectors instead of |C|×|N| matrices.
DykstraResult project_feasible(const Problem& problem,
                               common::SparseAllocation& allocation,
                               const DykstraOptions& options = {});

}  // namespace edr::optim
