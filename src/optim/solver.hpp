// Centralized reference solver.
//
// Projected gradient with backtracking line search over the full feasible
// set (demand simplices ∩ capacity caps, via Dykstra).  This is the "single
// central agent" the paper contrasts EDR against: simpler and exact, but a
// single point of failure.  In this repository it doubles as the ground
// truth that the distributed CDPSM / LDDM solvers are validated against.
#pragma once

#include <cstddef>
#include <optional>

#include "common/matrix.hpp"
#include "optim/convergence.hpp"
#include "optim/problem.hpp"

namespace edr::optim {

struct CentralizedOptions {
  std::size_t max_iterations = 5000;
  /// Stop when the per-iteration movement, relative to the problem scale,
  /// falls below this.
  double tolerance = 1e-8;
  /// Record the convergence trace every `trace_stride` iterations (0 = off).
  std::size_t trace_stride = 0;
};

struct CentralizedResult {
  Matrix allocation;
  Cents cost = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  double residual = 0.0;
  ConvergenceTrace trace;
};

/// Solve `problem` to high accuracy.  Returns std::nullopt when the instance
/// is transportation-infeasible (no allocation can satisfy all demands).
[[nodiscard]] std::optional<CentralizedResult> solve_centralized(
    const Problem& problem, const CentralizedOptions& options = {});

struct AdmmOptions {
  std::size_t max_iterations = 4000;
  /// Augmented-Lagrangian penalty; 0 = auto (the gradient Lipschitz bound,
  /// the smallest value with a convergence guarantee for the linearized
  /// x-update).
  double rho = 0.0;
  /// Stop when both the primal residual ‖x−z‖ and the dual residual
  /// ρ‖z−z_prev‖ drop below tolerance × problem scale.
  double tolerance = 1e-8;
};

/// Independent second solver: linearized ADMM splitting the feasible set
/// into the demand simplices (x-block) and the capacity caps (z-block).
/// Exists to cross-validate solve_centralized — two structurally different
/// algorithms agreeing on the optimum is the strongest correctness evidence
/// the test suite has for the convex machinery.
[[nodiscard]] std::optional<CentralizedResult> solve_admm(
    const Problem& problem, const AdmmOptions& options = {});

}  // namespace edr::optim
