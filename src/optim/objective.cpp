#include "optim/objective.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace edr::optim {
namespace {

/// q(t) and s(t) for the scalar reduction.  kMasked selects between the
/// dense form (mask[c] == 0 forces q_c = 0) and the compact form (every
/// coordinate active; `mask` is ignored and may be empty).
template <bool kMasked>
double load_at(std::span<const double> multipliers,
               std::span<const double> mask,
               std::span<const double> prox_center, double rho, double t,
               std::vector<double>* out = nullptr) {
  double total = 0.0;
  for (std::size_t c = 0; c < multipliers.size(); ++c) {
    double q = 0.0;
    if (!kMasked || mask[c] != 0.0)
      q = std::max(0.0, prox_center[c] - (multipliers[c] + t) / rho);
    if (out) (*out)[c] = q;
    total += q;
  }
  return total;
}

template <bool kMasked>
SubproblemInfo solve_subproblem_impl(const ReplicaParams& params,
                                     std::span<const double> multipliers,
                                     std::span<const double> mask,
                                     std::span<const double> prox_center,
                                     double rho,
                                     std::vector<double>& allocation) {
  assert(!kMasked || multipliers.size() == mask.size());
  assert(multipliers.size() == prox_center.size());
  assert(allocation.empty() || allocation.data() != prox_center.data());
  if (rho <= 0.0)
    throw std::invalid_argument("solve_replica_subproblem: rho must be > 0");

  const std::size_t clients = multipliers.size();
  SubproblemInfo result;
  allocation.assign(clients, 0.0);

  auto phi_prime = [&](double s) {
    return replica_cost_derivative(params, s);
  };

  // Bracket t for the unconstrained stationarity equation t = φ'(s(t)).
  // s(t) is nonincreasing, φ' nondecreasing in s, so F(t) = t − φ'(s(t)) is
  // strictly increasing.  Lower bound: t small enough that F < 0; upper
  // bound: t large enough that every q_c clamps to 0, giving s = 0 and
  // F(t) = t − φ'(0) > 0 for t > φ'(0).
  double t_hi = phi_prime(0.0) + 1.0;
  for (std::size_t c = 0; c < clients; ++c)
    if (!kMasked || mask[c] != 0.0)
      t_hi = std::max(t_hi, rho * prox_center[c] - multipliers[c] + 1.0);
  double t_lo = phi_prime(0.0);
  // Walk t_lo down until F(t_lo) <= 0 (or the load stops growing).
  for (int i = 0; i < 200; ++i) {
    const double s =
        load_at<kMasked>(multipliers, mask, prox_center, rho, t_lo);
    if (t_lo - phi_prime(s) <= 0.0) break;
    t_lo -= std::max(1.0, std::abs(t_lo));
  }

  auto bisect = [&](auto&& f, double lo, double hi) {
    for (int i = 0; i < 200; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (f(mid) <= 0.0)
        lo = mid;
      else
        hi = mid;
      if (hi - lo < 1e-13 * std::max(1.0, std::abs(hi))) break;
    }
    return 0.5 * (lo + hi);
  };

  // Solve F(t) = 0.
  const double t_star = bisect(
      [&](double t) {
        const double s =
            load_at<kMasked>(multipliers, mask, prox_center, rho, t);
        return t - phi_prime(s);
      },
      t_lo, t_hi);
  double s_star = load_at<kMasked>(multipliers, mask, prox_center, rho,
                                   t_star, &allocation);

  if (s_star > params.bandwidth + 1e-12) {
    // Capacity binds: solve s(t) = B instead (s is nonincreasing in t, so
    // B − s(t) is nondecreasing — bisect on that).
    const double t_cap = bisect(
        [&](double t) {
          return params.bandwidth -
                 load_at<kMasked>(multipliers, mask, prox_center, rho, t);
        },
        t_lo, t_hi);
    s_star = load_at<kMasked>(multipliers, mask, prox_center, rho, t_cap,
                              &allocation);
    result.capacity_multiplier = std::max(0.0, t_cap - phi_prime(s_star));
  }

  result.load = s_star;
  return result;
}

}  // namespace

SubproblemResult solve_replica_subproblem(const ReplicaParams& params,
                                          std::span<const double> multipliers,
                                          std::span<const double> mask,
                                          std::span<const double> prox_center,
                                          double rho) {
  SubproblemResult result;
  const SubproblemInfo info = solve_replica_subproblem_into(
      params, multipliers, mask, prox_center, rho, result.allocation);
  result.load = info.load;
  result.capacity_multiplier = info.capacity_multiplier;
  return result;
}

SubproblemInfo solve_replica_subproblem_into(
    const ReplicaParams& params, std::span<const double> multipliers,
    std::span<const double> mask, std::span<const double> prox_center,
    double rho, std::vector<double>& allocation) {
  return solve_subproblem_impl<true>(params, multipliers, mask, prox_center,
                                     rho, allocation);
}

SubproblemInfo solve_replica_subproblem_into(
    const ReplicaParams& params, std::span<const double> multipliers,
    std::span<const double> prox_center, double rho,
    std::vector<double>& allocation) {
  return solve_subproblem_impl<false>(params, multipliers, {}, prox_center,
                                      rho, allocation);
}

}  // namespace edr::optim
