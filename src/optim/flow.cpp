#include "optim/flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "optim/problem.hpp"

namespace edr::optim {
namespace {
constexpr double kFlowEps = 1e-12;
}

MaxFlow::MaxFlow(std::size_t num_nodes)
    : adj_(num_nodes), level_(num_nodes), next_edge_(num_nodes) {}

std::size_t MaxFlow::add_edge(std::size_t from, std::size_t to,
                              double capacity) {
  adj_[from].push_back({to, capacity, adj_[to].size()});
  adj_[to].push_back({from, 0.0, adj_[from].size() - 1});
  edge_handles_.emplace_back(from, adj_[from].size() - 1);
  original_capacity_.push_back(capacity);
  return edge_handles_.size() - 1;
}

bool MaxFlow::build_levels(std::size_t source, std::size_t sink) {
  std::ranges::fill(level_, -1);
  std::queue<std::size_t> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t node = frontier.front();
    frontier.pop();
    for (const Edge& edge : adj_[node]) {
      if (edge.capacity > kFlowEps && level_[edge.to] < 0) {
        level_[edge.to] = level_[node] + 1;
        frontier.push(edge.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlow::push(std::size_t node, std::size_t sink, double limit) {
  if (node == sink) return limit;
  for (std::size_t& i = next_edge_[node]; i < adj_[node].size(); ++i) {
    Edge& edge = adj_[node][i];
    if (edge.capacity > kFlowEps && level_[edge.to] == level_[node] + 1) {
      const double pushed =
          push(edge.to, sink, std::min(limit, edge.capacity));
      if (pushed > kFlowEps) {
        edge.capacity -= pushed;
        adj_[edge.to][edge.reverse].capacity += pushed;
        return pushed;
      }
    }
  }
  return 0.0;
}

double MaxFlow::solve(std::size_t source, std::size_t sink) {
  double total = 0.0;
  while (build_levels(source, sink)) {
    std::ranges::fill(next_edge_, 0);
    for (;;) {
      const double pushed =
          push(source, sink, std::numeric_limits<double>::infinity());
      if (pushed <= kFlowEps) break;
      total += pushed;
    }
  }
  return total;
}

double MaxFlow::flow_on(std::size_t edge_id) const {
  const auto [node, index] = edge_handles_[edge_id];
  return original_capacity_[edge_id] - adj_[node][index].capacity;
}

TransportResult check_transport_feasible(const Problem& problem,
                                         double slack) {
  const std::size_t clients = problem.num_clients();
  const std::size_t replicas = problem.num_replicas();
  // Node layout: 0 = source, 1..C = clients, C+1..C+N = replicas, last = sink.
  const std::size_t source = 0;
  const std::size_t sink = clients + replicas + 1;
  MaxFlow flow(sink + 1);

  for (std::size_t c = 0; c < clients; ++c)
    flow.add_edge(source, 1 + c, problem.demand(c));

  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> edges_of(
      clients);
  for (std::size_t c = 0; c < clients; ++c) {
    for (std::size_t n = 0; n < replicas; ++n) {
      if (!problem.feasible_pair(c, n)) continue;
      // The client can never route more than its own demand over one pair,
      // so demand(c) is a tight finite capacity (infinity would break the
      // flow_on() bookkeeping).
      const std::size_t id =
          flow.add_edge(1 + c, 1 + clients + n, problem.demand(c));
      edges_of[c].emplace_back(n, id);
    }
  }
  for (std::size_t n = 0; n < replicas; ++n)
    flow.add_edge(1 + clients + n, sink,
                  problem.replica(n).bandwidth * slack);

  TransportResult result;
  result.routed = flow.solve(source, sink);
  result.feasible = result.routed >= problem.total_demand() - 1e-7;
  result.allocation = Matrix(clients, replicas, 0.0);
  for (std::size_t c = 0; c < clients; ++c)
    for (const auto& [n, id] : edges_of[c])
      result.allocation(c, n) = flow.flow_on(id);
  return result;
}

std::optional<Matrix> initial_feasible_point(const Problem& problem) {
  TransportResult routed = check_transport_feasible(problem);
  if (!routed.feasible) return std::nullopt;
  return std::move(routed.allocation);
}

}  // namespace edr::optim
