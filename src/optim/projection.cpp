#include "optim/projection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "optim/problem.hpp"

namespace edr::optim {
namespace {

/// Threshold for the masked simplex: given active values v_1..v_k, find τ
/// with Σ max(v_i − τ, 0) = target.
double simplex_threshold(std::vector<double>& active, double target) {
  std::ranges::sort(active, std::greater<>());
  double running = 0.0;
  double tau = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    running += active[i];
    const double candidate = (running - target) / static_cast<double>(i + 1);
    if (candidate >= active[i]) {
      // Coordinate i would be clipped to ≤ 0, so the support is the first i
      // coordinates and the previous candidate is τ — except at i == 0,
      // which only happens for target == 0, where τ = v_0 zeroes the whole
      // vector exactly.
      if (i == 0) tau = candidate;
      break;
    }
    tau = candidate;
  }
  return tau;
}

// Per-thread scratch for the projections below.  These run hundreds of
// times per Dykstra sweep and per solver round, so they must not touch the
// heap after warm-up; thread-local because the demand/capacity sweeps run
// one lane per pool thread.  Each helper owns a distinct buffer, so the
// call chains here (project_demand_set → project_masked_simplex,
// project_capacity_set → project_capped_nonneg → project_simplex →
// project_masked_simplex) never alias a buffer a caller still holds.
std::vector<double>& active_scratch() {
  thread_local std::vector<double> active;
  return active;
}
std::vector<double>& ones_scratch() {
  thread_local std::vector<double> ones;
  return ones;
}
std::vector<double>& row_mask_scratch() {
  thread_local std::vector<double> mask;
  return mask;
}
std::vector<double>& column_scratch() {
  thread_local std::vector<double> column;
  return column;
}

}  // namespace

void project_masked_simplex(std::span<double> values,
                            std::span<const double> mask, double target) {
  assert(values.size() == mask.size());
  if (target < 0.0)
    throw std::invalid_argument("project_masked_simplex: negative target");

  std::vector<double>& active = active_scratch();
  active.clear();
  active.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    if (mask[i] != 0.0) active.push_back(values[i]);

  if (active.empty()) {
    if (target > 0.0)
      throw std::invalid_argument(
          "project_masked_simplex: positive target with empty mask");
    for (double& v : values) v = 0.0;
    return;
  }

  const double tau = simplex_threshold(active, target);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = mask[i] != 0.0 ? std::max(values[i] - tau, 0.0) : 0.0;
  }
}

void project_simplex(std::span<double> values, double target) {
  std::vector<double>& mask = ones_scratch();
  mask.assign(values.size(), 1.0);
  project_masked_simplex(values, mask, target);
}

void project_capped_nonneg(std::span<double> values, double cap) {
  double total = 0.0;
  for (double& v : values) {
    v = std::max(v, 0.0);
    total += v;
  }
  if (total <= cap) return;
  project_simplex(values, cap);
}

void project_demand_set(const Problem& problem, Matrix& allocation,
                        common::ThreadPool* pool) {
  const auto rows = [&problem, &allocation](std::size_t /*lane*/,
                                            std::size_t begin,
                                            std::size_t end) {
    std::vector<double>& mask = row_mask_scratch();
    mask.resize(problem.num_replicas());
    for (std::size_t c = begin; c < end; ++c) {
      for (std::size_t n = 0; n < problem.num_replicas(); ++n)
        mask[n] = problem.feasible_pair(c, n) ? 1.0 : 0.0;
      project_masked_simplex(allocation.row(c), mask, problem.demand(c));
    }
  };
  if (pool != nullptr && pool->lanes() > 1)
    pool->for_blocks(problem.num_clients(), rows);
  else
    rows(0, 0, problem.num_clients());
}

void project_capacity_set(const Problem& problem, Matrix& allocation,
                          common::ThreadPool* pool) {
  const auto cols = [&problem, &allocation](std::size_t /*lane*/,
                                            std::size_t begin,
                                            std::size_t end) {
    std::vector<double>& column = column_scratch();
    column.resize(problem.num_clients());
    for (std::size_t n = begin; n < end; ++n) {
      for (std::size_t c = 0; c < problem.num_clients(); ++c)
        column[c] = allocation(c, n);
      project_capped_nonneg(column, problem.replica(n).bandwidth);
      for (std::size_t c = 0; c < problem.num_clients(); ++c)
        allocation(c, n) = column[c];
    }
  };
  if (pool != nullptr && pool->lanes() > 1)
    pool->for_blocks(problem.num_replicas(), cols);
  else
    cols(0, 0, problem.num_replicas());
}

DykstraResult project_feasible(const Problem& problem, Matrix& allocation,
                               const DykstraOptions& options) {
  // Dykstra correction terms for each of the two set families.  Held in
  // thread-local scratch (never nested on one thread) so the per-round
  // callers — CDPSM/LDDM primal recovery, once per solver round — stop
  // re-allocating four |C|×|N| matrices every round.
  thread_local Matrix correction_demand;
  thread_local Matrix correction_capacity;
  thread_local Matrix previous;
  thread_local Matrix before;
  correction_demand.reshape(allocation.rows(), allocation.cols(), 0.0);
  correction_capacity.reshape(allocation.rows(), allocation.cols(), 0.0);
  previous = allocation;

  DykstraResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Demand (simplex) half-step.
    allocation.axpy(1.0, correction_demand);
    before = allocation;
    project_demand_set(problem, allocation, options.pool);
    correction_demand = before;
    correction_demand.axpy(-1.0, allocation);

    // Capacity half-step.
    allocation.axpy(1.0, correction_capacity);
    before = allocation;
    project_capacity_set(problem, allocation, options.pool);
    correction_capacity = before;
    correction_capacity.axpy(-1.0, allocation);

    result.iterations = iter + 1;
    result.final_change = allocation.distance(previous);
    previous = allocation;
    if (result.final_change <= options.tolerance) {
      // One extra criterion: the iterate must actually satisfy the demand
      // rows (the sweep ends on the capacity projection, which can leave
      // row sums slightly short until convergence).
      if (check_feasibility(problem, allocation).ok(1e-7)) {
        result.converged = true;
        break;
      }
    }
  }
  // Final cleanup: snap to the demand set so row sums are exact.  When the
  // sweep converged, any capacity violation this re-introduces is below
  // tolerance; when the iteration cap was hit, it can be arbitrary — report
  // it instead of masking it.
  project_demand_set(problem, allocation, options.pool);
  if (!result.converged)
    result.capacity_residual =
        check_feasibility(problem, allocation).max_capacity_violation;
  return result;
}

}  // namespace edr::optim
