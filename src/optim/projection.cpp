#include "optim/projection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "optim/problem.hpp"

namespace edr::optim {
namespace {

/// Threshold for the masked simplex: given active values v_1..v_k, find τ
/// with Σ max(v_i − τ, 0) = target.
double simplex_threshold(std::vector<double>& active, double target) {
  std::ranges::sort(active, std::greater<>());
  double running = 0.0;
  double tau = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    running += active[i];
    const double candidate =
        (running - target) / static_cast<double>(i + 1);
    if (candidate >= active[i] && i > 0) break;  // i-th coord would go ≤ 0
    tau = candidate;
    count = i + 1;
  }
  (void)count;
  return tau;
}

}  // namespace

void project_masked_simplex(std::span<double> values,
                            std::span<const double> mask, double target) {
  assert(values.size() == mask.size());
  if (target < 0.0)
    throw std::invalid_argument("project_masked_simplex: negative target");

  std::vector<double> active;
  active.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    if (mask[i] != 0.0) active.push_back(values[i]);

  if (active.empty()) {
    if (target > 0.0)
      throw std::invalid_argument(
          "project_masked_simplex: positive target with empty mask");
    for (double& v : values) v = 0.0;
    return;
  }

  const double tau = simplex_threshold(active, target);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = mask[i] != 0.0 ? std::max(values[i] - tau, 0.0) : 0.0;
  }
}

void project_simplex(std::span<double> values, double target) {
  const std::vector<double> mask(values.size(), 1.0);
  project_masked_simplex(values, mask, target);
}

void project_capped_nonneg(std::span<double> values, double cap) {
  double total = 0.0;
  for (double& v : values) {
    v = std::max(v, 0.0);
    total += v;
  }
  if (total <= cap) return;
  project_simplex(values, cap);
}

void project_demand_set(const Problem& problem, Matrix& allocation) {
  std::vector<double> mask(problem.num_replicas());
  for (std::size_t c = 0; c < problem.num_clients(); ++c) {
    for (std::size_t n = 0; n < problem.num_replicas(); ++n)
      mask[n] = problem.feasible_pair(c, n) ? 1.0 : 0.0;
    project_masked_simplex(allocation.row(c), mask, problem.demand(c));
  }
}

void project_capacity_set(const Problem& problem, Matrix& allocation) {
  std::vector<double> column(problem.num_clients());
  for (std::size_t n = 0; n < problem.num_replicas(); ++n) {
    for (std::size_t c = 0; c < problem.num_clients(); ++c)
      column[c] = allocation(c, n);
    project_capped_nonneg(column, problem.replica(n).bandwidth);
    for (std::size_t c = 0; c < problem.num_clients(); ++c)
      allocation(c, n) = column[c];
  }
}

DykstraResult project_feasible(const Problem& problem, Matrix& allocation,
                               const DykstraOptions& options) {
  // Dykstra correction terms for each of the two set families.
  Matrix correction_demand(allocation.rows(), allocation.cols(), 0.0);
  Matrix correction_capacity(allocation.rows(), allocation.cols(), 0.0);
  Matrix previous = allocation;

  DykstraResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Demand (simplex) half-step.
    allocation.axpy(1.0, correction_demand);
    Matrix before = allocation;
    project_demand_set(problem, allocation);
    correction_demand = before;
    correction_demand.axpy(-1.0, allocation);

    // Capacity half-step.
    allocation.axpy(1.0, correction_capacity);
    before = allocation;
    project_capacity_set(problem, allocation);
    correction_capacity = before;
    correction_capacity.axpy(-1.0, allocation);

    result.iterations = iter + 1;
    result.final_change = allocation.distance(previous);
    previous = allocation;
    if (result.final_change <= options.tolerance) {
      // One extra criterion: the iterate must actually satisfy the demand
      // rows (the sweep ends on the capacity projection, which can leave
      // row sums slightly short until convergence).
      if (check_feasibility(problem, allocation).ok(1e-7)) {
        result.converged = true;
        break;
      }
    }
  }
  // Final cleanup: snap to the demand set so row sums are exact (capacity
  // violations at this point are below tolerance).
  project_demand_set(problem, allocation);
  return result;
}

}  // namespace edr::optim
