#include "optim/projection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "optim/problem.hpp"

namespace edr::optim {
namespace {

/// Threshold for the masked simplex: given active values v_1..v_k, find τ
/// with Σ max(v_i − τ, 0) = target.
double simplex_threshold(std::vector<double>& active, double target) {
  std::ranges::sort(active, std::greater<>());
  double running = 0.0;
  double tau = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    running += active[i];
    const double candidate = (running - target) / static_cast<double>(i + 1);
    if (candidate >= active[i]) {
      // Coordinate i would be clipped to ≤ 0, so the support is the first i
      // coordinates and the previous candidate is τ — except at i == 0,
      // which only happens for target == 0, where τ = v_0 zeroes the whole
      // vector exactly.
      if (i == 0) tau = candidate;
      break;
    }
    tau = candidate;
  }
  return tau;
}

// Per-thread scratch for the projections below.  These run hundreds of
// times per Dykstra sweep and per solver round, so they must not touch the
// heap after warm-up; thread-local because the demand/capacity sweeps run
// one lane per pool thread.  Each helper owns a distinct buffer, so the
// call chains here (project_demand_set → project_masked_simplex or
// project_simplex_active, project_capacity_set → project_capped_nonneg →
// project_simplex → project_simplex_active) never alias a buffer a caller
// still holds.
std::vector<double>& active_scratch() {
  thread_local std::vector<double> active;
  return active;
}
std::vector<double>& row_mask_scratch() {
  thread_local std::vector<double> mask;
  return mask;
}
std::vector<double>& column_scratch() {
  thread_local std::vector<double> column;
  return column;
}

}  // namespace

void project_masked_simplex(std::span<double> values,
                            std::span<const double> mask, double target,
                            common::simd::Mode simd) {
  assert(values.size() == mask.size());
  if (target < 0.0)
    throw std::invalid_argument("project_masked_simplex: negative target");

  std::vector<double>& active = active_scratch();
  active.clear();
  active.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    if (mask[i] != 0.0) active.push_back(values[i]);

  if (active.empty()) {
    if (target > 0.0)
      throw std::invalid_argument(
          "project_masked_simplex: positive target with empty mask");
    for (double& v : values) v = 0.0;
    return;
  }

  const double tau = simplex_threshold(active, target);
  common::simd::masked_sub_clamp(simd, values, mask, tau);
}

void project_simplex(std::span<double> values, double target,
                     common::simd::Mode simd) {
  project_simplex_active(values, target, simd);
}

void project_simplex_active(std::span<double> values, double target,
                            common::simd::Mode simd) {
  if (target < 0.0)
    throw std::invalid_argument("project_simplex_active: negative target");

  if (values.empty()) {
    if (target > 0.0)
      throw std::invalid_argument(
          "project_simplex_active: positive target with no coordinates");
    return;
  }

  // Same gather order and threshold as the masked form with an all-active
  // mask, so the result is bitwise identical to it.
  std::vector<double>& active = active_scratch();
  active.assign(values.begin(), values.end());
  const double tau = simplex_threshold(active, target);
  common::simd::sub_clamp(simd, values, tau);
}

void project_capped_nonneg(std::span<double> values, double cap,
                           common::simd::Mode simd) {
  const double total = common::simd::clip_nonneg_sum(simd, values);
  if (total <= cap) return;
  project_simplex(values, cap, simd);
}

void project_demand_set(const Problem& problem, Matrix& allocation,
                        common::ThreadPool* pool, common::simd::Mode simd) {
  const auto rows = [&problem, &allocation, simd](std::size_t /*lane*/,
                                                  std::size_t begin,
                                                  std::size_t end) {
    std::vector<double>& mask = row_mask_scratch();
    mask.resize(problem.num_replicas());
    for (std::size_t c = begin; c < end; ++c) {
      for (std::size_t n = 0; n < problem.num_replicas(); ++n)
        mask[n] = problem.feasible_pair(c, n) ? 1.0 : 0.0;
      project_masked_simplex(allocation.row(c), mask, problem.demand(c),
                             simd);
    }
  };
  if (pool != nullptr && pool->lanes() > 1)
    pool->for_blocks(problem.num_clients(), rows);
  else
    rows(0, 0, problem.num_clients());
}

void project_capacity_set(const Problem& problem, Matrix& allocation,
                          common::ThreadPool* pool, common::simd::Mode simd) {
  const auto cols = [&problem, &allocation, simd](std::size_t /*lane*/,
                                                  std::size_t begin,
                                                  std::size_t end) {
    std::vector<double>& column = column_scratch();
    column.resize(problem.num_clients());
    for (std::size_t n = begin; n < end; ++n) {
      for (std::size_t c = 0; c < problem.num_clients(); ++c)
        column[c] = allocation(c, n);
      project_capped_nonneg(column, problem.replica(n).bandwidth, simd);
      for (std::size_t c = 0; c < problem.num_clients(); ++c)
        allocation(c, n) = column[c];
    }
  };
  if (pool != nullptr && pool->lanes() > 1)
    pool->for_blocks(problem.num_replicas(), cols);
  else
    cols(0, 0, problem.num_replicas());
}

DykstraResult project_feasible(const Problem& problem, Matrix& allocation,
                               const DykstraOptions& options) {
  // Dykstra correction terms for each of the two set families.  Held in
  // thread-local scratch (never nested on one thread) so the per-round
  // callers — CDPSM/LDDM primal recovery, once per solver round — stop
  // re-allocating four |C|×|N| matrices every round.
  thread_local Matrix correction_demand;
  thread_local Matrix correction_capacity;
  thread_local Matrix previous;
  thread_local Matrix before;
  correction_demand.reshape(allocation.rows(), allocation.cols(), 0.0);
  correction_capacity.reshape(allocation.rows(), allocation.cols(), 0.0);
  previous = allocation;

  DykstraResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Demand (simplex) half-step.
    allocation.axpy(1.0, correction_demand, options.simd);
    before = allocation;
    project_demand_set(problem, allocation, options.pool, options.simd);
    correction_demand = before;
    correction_demand.axpy(-1.0, allocation, options.simd);

    // Capacity half-step.
    allocation.axpy(1.0, correction_capacity, options.simd);
    before = allocation;
    project_capacity_set(problem, allocation, options.pool, options.simd);
    correction_capacity = before;
    correction_capacity.axpy(-1.0, allocation, options.simd);

    result.iterations = iter + 1;
    result.final_change = allocation.distance(previous, options.simd);
    previous = allocation;
    if (result.final_change <= options.tolerance) {
      // One extra criterion: the iterate must actually satisfy the demand
      // rows (the sweep ends on the capacity projection, which can leave
      // row sums slightly short until convergence).
      if (check_feasibility(problem, allocation).ok(1e-7)) {
        result.converged = true;
        break;
      }
    }
  }
  // Final cleanup: snap to the demand set so row sums are exact.  When the
  // sweep converged, any capacity violation this re-introduces is below
  // tolerance; when the iteration cap was hit, it can be arbitrary — report
  // it instead of masking it.
  project_demand_set(problem, allocation, options.pool, options.simd);
  if (!result.converged)
    result.capacity_residual =
        check_feasibility(problem, allocation).max_capacity_violation;
  return result;
}

void project_demand_set(const Problem& problem,
                        common::SparseAllocation& allocation,
                        common::ThreadPool* pool, common::simd::Mode simd) {
  assert(allocation.pattern_ptr().get() == problem.sparsity().get());
  const auto rows = [&problem, &allocation, simd](std::size_t /*lane*/,
                                                  std::size_t begin,
                                                  std::size_t end) {
    for (std::size_t c = begin; c < end; ++c)
      project_simplex_active(allocation.row(c), problem.demand(c), simd);
  };
  if (pool != nullptr && pool->lanes() > 1)
    pool->for_blocks(problem.num_clients(), rows);
  else
    rows(0, 0, problem.num_clients());
}

void project_capacity_set(const Problem& problem,
                          common::SparseAllocation& allocation,
                          common::ThreadPool* pool, common::simd::Mode simd) {
  assert(allocation.pattern_ptr().get() == problem.sparsity().get());
  const common::SparsityPattern& pattern = allocation.pattern();
  const auto cols = [&problem, &allocation, &pattern,
                     simd](std::size_t /*lane*/, std::size_t begin,
                           std::size_t end) {
    std::vector<double>& column = column_scratch();
    const std::span<double> values = allocation.values();
    for (std::size_t n = begin; n < end; ++n) {
      const auto positions = pattern.col_positions(n);
      column.resize(positions.size());
      for (std::size_t i = 0; i < positions.size(); ++i)
        column[i] = values[positions[i]];
      project_capped_nonneg(column, problem.replica(n).bandwidth, simd);
      for (std::size_t i = 0; i < positions.size(); ++i)
        values[positions[i]] = column[i];
    }
  };
  if (pool != nullptr && pool->lanes() > 1)
    pool->for_blocks(problem.num_replicas(), cols);
  else
    cols(0, 0, problem.num_replicas());
}

DykstraResult project_feasible(const Problem& problem,
                               common::SparseAllocation& allocation,
                               const DykstraOptions& options) {
  assert(allocation.pattern_ptr().get() == problem.sparsity().get());
  // Same scheme as the dense overload, with one double per feasible pair in
  // the correction/snapshot buffers instead of full |C|×|N| matrices.
  thread_local std::vector<double> correction_demand;
  thread_local std::vector<double> correction_capacity;
  thread_local std::vector<double> previous;
  thread_local std::vector<double> before;
  const std::span<double> values = allocation.values();
  correction_demand.assign(values.size(), 0.0);
  correction_capacity.assign(values.size(), 0.0);
  previous.assign(values.begin(), values.end());
  before.resize(values.size());

  DykstraResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Demand (simplex) half-step.
    common::simd::axpy(options.simd, values, 1.0, correction_demand);
    std::copy(values.begin(), values.end(), before.begin());
    project_demand_set(problem, allocation, options.pool, options.simd);
    correction_demand.assign(before.begin(), before.end());
    common::simd::axpy(options.simd, correction_demand, -1.0, values);

    // Capacity half-step.
    common::simd::axpy(options.simd, values, 1.0, correction_capacity);
    std::copy(values.begin(), values.end(), before.begin());
    project_capacity_set(problem, allocation, options.pool, options.simd);
    correction_capacity.assign(before.begin(), before.end());
    common::simd::axpy(options.simd, correction_capacity, -1.0, values);

    result.iterations = iter + 1;
    result.final_change = common::simd::distance(options.simd, values,
                                                 previous);
    previous.assign(values.begin(), values.end());
    if (result.final_change <= options.tolerance) {
      if (check_feasibility(problem, allocation).ok(1e-7)) {
        result.converged = true;
        break;
      }
    }
  }
  project_demand_set(problem, allocation, options.pool, options.simd);
  if (!result.converged)
    result.capacity_residual =
        check_feasibility(problem, allocation).max_capacity_violation;
  return result;
}

}  // namespace edr::optim
