#include "optim/solver.hpp"

#include <algorithm>
#include <cmath>

#include "optim/flow.hpp"
#include "optim/projection.hpp"

namespace edr::optim {

std::optional<CentralizedResult> solve_centralized(
    const Problem& problem, const CentralizedOptions& options) {
  auto start = initial_feasible_point(problem);
  if (!start) return std::nullopt;

  CentralizedResult result;
  result.allocation = std::move(*start);

  // FISTA (accelerated projected gradient) at the fixed safe step 1/L, with
  // a monotone safeguard: if the accelerated candidate increases the
  // objective, fall back to a plain projected-gradient step from the current
  // iterate and reset the momentum.  Convexity + exact L bound guarantee
  // the fallback step always decreases, so the iteration is monotone.
  const double lipschitz = std::max(problem.gradient_lipschitz_bound(), 1e-9);
  const double step = 1.0 / lipschitz;

  Matrix x = result.allocation;  // current iterate
  Matrix y = x;                  // extrapolated point
  Matrix gradient;
  double momentum = 1.0;
  double cost = problem.total_cost(x);
  const double scale =
      std::max({1.0, x.frobenius_norm(), problem.total_demand()});

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    problem.cost_gradient(y, gradient);
    Matrix candidate = y;
    candidate.axpy(-step, gradient);
    project_feasible(problem, candidate);
    double candidate_cost = problem.total_cost(candidate);

    if (candidate_cost > cost) {
      // Momentum overshot: restart from x with a plain PG step.
      problem.cost_gradient(x, gradient);
      candidate = x;
      candidate.axpy(-step, gradient);
      project_feasible(problem, candidate);
      candidate_cost = problem.total_cost(candidate);
      momentum = 1.0;
    }

    const double move = candidate.distance(x);
    const double next_momentum =
        0.5 * (1.0 + std::sqrt(1.0 + 4.0 * momentum * momentum));
    y = candidate;
    Matrix diff = candidate;
    diff.axpy(-1.0, x);
    y.axpy((momentum - 1.0) / next_momentum, diff);
    momentum = next_momentum;

    x = std::move(candidate);
    cost = std::min(candidate_cost, cost);
    result.iterations = iter + 1;
    result.residual = move / scale;

    if (options.trace_stride != 0 && iter % options.trace_stride == 0)
      result.trace.record({iter, candidate_cost, result.residual, 0.0});

    if (result.residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.allocation = std::move(x);
  result.cost = problem.total_cost(result.allocation);
  return result;
}

std::optional<CentralizedResult> solve_admm(const Problem& problem,
                                            const AdmmOptions& options) {
  auto start = initial_feasible_point(problem);
  if (!start) return std::nullopt;

  CentralizedResult result;
  const double lipschitz = std::max(problem.gradient_lipschitz_bound(), 1e-9);
  const double rho = options.rho > 0.0 ? options.rho : lipschitz;
  const double scale =
      std::max({1.0, start->frobenius_norm(), problem.total_demand()});

  // x lives on the demand simplices, z on the capacity caps; u is the
  // scaled dual for the consensus constraint x = z.
  Matrix x = *start;
  Matrix z = x;
  Matrix u(x.rows(), x.cols(), 0.0);
  Matrix gradient;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Linearized x-update: x = Proj_A(z − u − (1/ρ)∇f(z)).
    problem.cost_gradient(z, gradient);
    x = z;
    x.axpy(-1.0, u);
    x.axpy(-1.0 / rho, gradient);
    project_demand_set(problem, x);

    // z-update: z = Proj_B(x + u).
    Matrix z_prev = std::move(z);
    z = x;
    z.axpy(1.0, u);
    project_capacity_set(problem, z);

    // Dual ascent.
    Matrix primal_residual = x;
    primal_residual.axpy(-1.0, z);
    u.axpy(1.0, primal_residual);

    const double primal = primal_residual.frobenius_norm() / scale;
    const double dual = rho * z.distance(z_prev) / scale;
    result.iterations = iter + 1;
    result.residual = std::max(primal, dual);
    if (result.residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // x satisfies the demand rows exactly; snap any residual capacity
  // violation (bounded by the primal residual) with a full projection.
  result.allocation = std::move(x);
  if (!check_feasibility(problem, result.allocation).ok(1e-9))
    project_feasible(problem, result.allocation);
  result.cost = problem.total_cost(result.allocation);
  return result;
}

}  // namespace edr::optim
