// Convergence bookkeeping shared by all iterative solvers.
//
// Fig 5 of the paper plots objective value against iteration for CDPSM and
// LDDM; every solver in this repository records its trajectory through this
// type so the bench harness can print identical series for any algorithm.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace edr::optim {

struct ConvergencePoint {
  std::size_t iteration = 0;
  double objective = 0.0;
  /// Solver-specific stationarity measure (gradient-mapping norm, dual
  /// residual, consensus disagreement, ...).
  double residual = 0.0;
  /// Cumulative simulated communication volume (doubles exchanged) — used
  /// for the complexity comparisons of paper §III-D.
  double communication = 0.0;
};

class ConvergenceTrace {
 public:
  void record(ConvergencePoint point) { points_.push_back(point); }

  [[nodiscard]] const std::vector<ConvergencePoint>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  [[nodiscard]] double final_objective() const {
    return points_.empty() ? std::numeric_limits<double>::quiet_NaN()
                           : points_.back().objective;
  }

  /// First iteration whose objective is within `gap` (relative) of
  /// `optimum`; returns SIZE_MAX when the trace never gets there.
  [[nodiscard]] std::size_t iterations_to_reach(double optimum,
                                                double gap) const {
    for (const auto& point : points_) {
      const double rel =
          (point.objective - optimum) / (std::abs(optimum) + 1e-30);
      if (rel <= gap) return point.iteration;
    }
    return static_cast<std::size_t>(-1);
  }

 private:
  std::vector<ConvergencePoint> points_;
};

}  // namespace edr::optim
