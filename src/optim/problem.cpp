#include "optim/problem.hpp"

#include <cmath>
#include <stdexcept>

#include "common/fmt.hpp"
#include "common/math_util.hpp"

namespace edr::optim {

double replica_energy(const ReplicaParams& params, double load) {
  if (load <= 0.0) return 0.0;
  return params.alpha * load + params.beta * std::pow(load, params.gamma);
}

double replica_energy_derivative(const ReplicaParams& params, double load) {
  const double s = load > 0.0 ? load : 0.0;
  return params.alpha +
         params.beta * params.gamma * std::pow(s, params.gamma - 1.0);
}

double replica_cost(const ReplicaParams& params, double load) {
  return params.price * replica_energy(params, load);
}

double replica_cost_derivative(const ReplicaParams& params, double load) {
  return params.price * replica_energy_derivative(params, load);
}

Problem::Problem(std::vector<Megabytes> demands,
                 std::vector<ReplicaParams> replicas, Matrix latency,
                 Milliseconds max_latency)
    : demands_(std::move(demands)),
      replicas_(std::move(replicas)),
      latency_(std::move(latency)),
      max_latency_(max_latency) {
  if (latency_.rows() != demands_.size() ||
      latency_.cols() != replicas_.size()) {
    throw std::invalid_argument(strf(
        "Problem: latency matrix is %zux%zu, expected %zux%zu",
        latency_.rows(), latency_.cols(), demands_.size(), replicas_.size()));
  }
  feasible_ = Matrix(latency_.rows(), latency_.cols(), 0.0);
  for (std::size_t c = 0; c < latency_.rows(); ++c)
    for (std::size_t n = 0; n < latency_.cols(); ++n)
      feasible_(c, n) = latency_(c, n) <= max_latency_ ? 1.0 : 0.0;
  sparsity_ = std::make_shared<common::SparsityPattern>(feasible_);
}

Megabytes Problem::total_demand() const {
  return sum(std::span<const double>{demands_});
}

std::size_t Problem::feasible_count(std::size_t c) const {
  std::size_t count = 0;
  for (std::size_t n = 0; n < num_replicas(); ++n)
    if (feasible_pair(c, n)) ++count;
  return count;
}

namespace {

/// Per-thread column-sum scratch for the objective/feasibility hot paths —
/// these run once per solver round (and once per Dykstra iteration inside
/// project_feasible), so they must not allocate.
std::vector<double>& loads_scratch() {
  thread_local std::vector<double> loads;
  return loads;
}

}  // namespace

Cents Problem::total_cost(const Matrix& allocation) const {
  std::vector<double>& loads = loads_scratch();
  allocation.col_sums(loads);
  KahanSum total;
  for (std::size_t n = 0; n < num_replicas(); ++n)
    total.add(replica_cost(replicas_[n], loads[n]));
  return total.value();
}

Cents Problem::total_cost(const common::SparseAllocation& allocation) const {
  std::vector<double>& loads = loads_scratch();
  allocation.col_sums(loads);
  KahanSum total;
  for (std::size_t n = 0; n < num_replicas(); ++n)
    total.add(replica_cost(replicas_[n], loads[n]));
  return total.value();
}

double Problem::total_energy(const Matrix& allocation) const {
  std::vector<double>& loads = loads_scratch();
  allocation.col_sums(loads);
  KahanSum total;
  for (std::size_t n = 0; n < num_replicas(); ++n)
    total.add(replica_energy(replicas_[n], loads[n]));
  return total.value();
}

double Problem::total_energy(
    const common::SparseAllocation& allocation) const {
  std::vector<double>& loads = loads_scratch();
  allocation.col_sums(loads);
  KahanSum total;
  for (std::size_t n = 0; n < num_replicas(); ++n)
    total.add(replica_energy(replicas_[n], loads[n]));
  return total.value();
}

void Problem::cost_gradient(const Matrix& allocation, Matrix& grad) const {
  grad = Matrix(num_clients(), num_replicas());
  const auto loads = allocation.col_sums();
  for (std::size_t n = 0; n < num_replicas(); ++n) {
    const double g = replica_cost_derivative(replicas_[n], loads[n]);
    for (std::size_t c = 0; c < num_clients(); ++c) grad(c, n) = g;
  }
}

double Problem::gradient_lipschitz_bound() const {
  // The objective depends on P only through the column sums, so the Hessian
  // is block diagonal per column with all entries equal to
  // u_n·β_n·γ_n·(γ_n-1)·s_n^{γ_n-2}; its spectral norm for column n is
  // |C| times that scalar, maximized at s_n = B_n.
  double worst = 0.0;
  for (const auto& rep : replicas_) {
    if (rep.gamma <= 1.0 || rep.beta == 0.0) continue;
    const double curvature =
        rep.price * rep.beta * rep.gamma * (rep.gamma - 1.0) *
        std::pow(std::max(rep.bandwidth, 1e-12), rep.gamma - 2.0);
    worst = std::max(worst, curvature);
  }
  return worst * static_cast<double>(num_clients()) + 1e-12;
}

std::string Problem::validate() const {
  if (demands_.empty()) return "no clients";
  if (replicas_.empty()) return "no replicas";
  for (std::size_t c = 0; c < num_clients(); ++c) {
    if (demands_[c] < 0.0)
      return strf("client %zu has negative demand %g", c, demands_[c]);
    if (demands_[c] > 0.0 && feasible_count(c) == 0)
      return strf("client %zu has no latency-feasible replica", c);
  }
  for (std::size_t n = 0; n < num_replicas(); ++n) {
    const auto& rep = replicas_[n];
    if (rep.bandwidth <= 0.0)
      return strf("replica %zu has non-positive bandwidth", n);
    if (rep.price < 0.0) return strf("replica %zu has negative price", n);
    if (rep.gamma < 1.0)
      return strf("replica %zu has gamma < 1 (non-convex)", n);
    if (rep.alpha < 0.0 || rep.beta < 0.0)
      return strf("replica %zu has negative energy coefficients", n);
  }
  return {};
}

FeasibilityReport check_feasibility(const Problem& problem,
                                    const Matrix& allocation) {
  FeasibilityReport report;
  for (const double v : allocation.flat())
    if (!std::isfinite(v)) report.has_non_finite = true;
  std::vector<double>& loads = loads_scratch();
  allocation.col_sums(loads);
  for (std::size_t n = 0; n < problem.num_replicas(); ++n) {
    const double excess = loads[n] - problem.replica(n).bandwidth;
    report.max_capacity_violation =
        std::max(report.max_capacity_violation, excess);
  }
  for (std::size_t c = 0; c < problem.num_clients(); ++c) {
    const double gap = std::abs(allocation.row_sum(c) - problem.demand(c));
    report.max_demand_violation = std::max(report.max_demand_violation, gap);
    for (std::size_t n = 0; n < problem.num_replicas(); ++n) {
      report.max_negative =
          std::max(report.max_negative, -allocation(c, n));
      if (!problem.feasible_pair(c, n))
        report.max_mask_violation =
            std::max(report.max_mask_violation, std::abs(allocation(c, n)));
    }
  }
  report.max_capacity_violation = std::max(report.max_capacity_violation, 0.0);
  return report;
}

FeasibilityReport check_feasibility(
    const Problem& problem, const common::SparseAllocation& allocation) {
  FeasibilityReport report;
  for (const double v : allocation.values()) {
    if (!std::isfinite(v)) report.has_non_finite = true;
    report.max_negative = std::max(report.max_negative, -v);
  }
  std::vector<double>& loads = loads_scratch();
  allocation.col_sums(loads);
  for (std::size_t n = 0; n < problem.num_replicas(); ++n) {
    const double excess = loads[n] - problem.replica(n).bandwidth;
    report.max_capacity_violation =
        std::max(report.max_capacity_violation, excess);
  }
  for (std::size_t c = 0; c < problem.num_clients(); ++c) {
    const double gap = std::abs(allocation.row_sum(c) - problem.demand(c));
    report.max_demand_violation = std::max(report.max_demand_violation, gap);
  }
  // Mask violations are structurally impossible: values only exist on
  // feasible pairs.
  report.max_capacity_violation = std::max(report.max_capacity_violation, 0.0);
  return report;
}

}  // namespace edr::optim
