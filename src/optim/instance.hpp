// Random problem-instance generation.
//
// Reproduces the paper's experimental setup (§IV-A): electricity prices
// drawn uniformly from 1-20 ¢/kWh per replica, ~100 MB/s bandwidth caps,
// T = 1.8 ms latency bound, α = 1, β = 0.01, γ = 3 — while guaranteeing the
// generated instance is transportation-feasible (capacities are inflated
// until max-flow can route all demand).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "optim/problem.hpp"

namespace edr::optim {

struct InstanceOptions {
  std::size_t num_clients = 16;
  std::size_t num_replicas = 8;

  // Electricity price range (¢/kWh) — paper draws integers in [1, 20].
  int min_price = 1;
  int max_price = 20;
  bool integer_prices = true;

  // Energy model coefficients (paper's SystemG calibration).
  double alpha = 1.0;
  double beta = 0.01;
  double gamma = 3.0;

  // Demand per client (MB per epoch); drawn uniformly from this range.
  Megabytes min_demand = 5.0;
  Megabytes max_demand = 15.0;

  // Replica bandwidth caps (MB per epoch) before the feasibility inflation.
  Megabytes bandwidth = 100.0;

  // Latency model: uniform in [min, max] ms; pairs above `max_latency` are
  // masked out.  Defaults give ~85% feasible pairs.
  Milliseconds min_link_latency = 0.1;
  Milliseconds max_link_latency = 2.0;
  Milliseconds max_latency = 1.8;

  // Total capacity is kept at least this multiple of total demand.
  double capacity_margin = 1.25;
};

/// Build a random, guaranteed-feasible instance.
[[nodiscard]] Problem make_random_instance(Rng& rng,
                                           const InstanceOptions& options = {});

/// Replica parameters for the paper's fixed 8-replica cost experiment
/// (Figs 6-8): prices (1, 8, 1, 6, 1, 5, 2, 3), α=1, β=0.01, γ=3, B=100.
[[nodiscard]] std::vector<ReplicaParams> paper_replica_set();

struct GeoInstanceOptions {
  std::size_t num_clients = 1000;
  std::size_t num_replicas = 16;
  /// Each client reaches a contiguous ring window of this many replicas —
  /// the geo-local latency structure: a client only meets the T bound at
  /// the handful of replicas in its region.  Density is window/replicas.
  std::size_t window = 3;

  int min_price = 1;
  int max_price = 20;
  double alpha = 1.0;
  double beta = 0.01;
  double gamma = 3.0;
  Megabytes min_demand = 5.0;
  Megabytes max_demand = 15.0;
  Milliseconds max_latency = 1.8;
};

/// Build a geo-local instance: replicas on a ring, each client feasible
/// only at a contiguous window of them (in-window latencies uniform under
/// the bound, out-of-window pinned above it).  Per-replica bandwidth is set
/// to the instance's total demand, so the instance is trivially feasible at
/// any scale — no max-flow pass, which keeps generation O(|C|·|N|) and
/// usable at 10^5-10^6 clients.  Clients sharing a window start are one
/// equivalence class, so there are exactly num_replicas classes regardless
/// of the client count — the regime where the kAggregated representation
/// solves in O(1) in |C|.
[[nodiscard]] Problem make_geo_instance(Rng& rng,
                                        const GeoInstanceOptions& options = {});

}  // namespace edr::optim
