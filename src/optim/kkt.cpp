#include "optim/kkt.hpp"

#include <algorithm>
#include <cmath>

#include "optim/projection.hpp"

namespace edr::optim {

double kkt_residual(const Problem& problem, const Matrix& allocation,
                    double step) {
  if (step <= 0.0)
    step = 1.0 / std::max(problem.gradient_lipschitz_bound(), 1e-9);
  Matrix gradient;
  problem.cost_gradient(allocation, gradient);
  Matrix moved = allocation;
  moved.axpy(-step, gradient);
  project_feasible(problem, moved);
  return moved.distance(allocation) / step;
}

double relative_gap(const Problem& problem, const Matrix& allocation,
                    Cents optimal_cost) {
  const double cost = problem.total_cost(allocation);
  return (cost - optimal_cost) / (std::abs(optimal_cost) + 1e-30);
}

}  // namespace edr::optim
