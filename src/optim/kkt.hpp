// Optimality measurement for candidate allocations.
//
// The gradient-mapping residual ‖P − Proj(P − t·∇f(P))‖ / t is zero exactly
// at KKT points of a convex problem over a convex set, so it gives a single
// scalar "distance from optimality" usable for any solver's output.
#pragma once

#include "common/matrix.hpp"
#include "optim/problem.hpp"

namespace edr::optim {

/// Gradient-mapping residual of `allocation` for `problem`.  `step` defaults
/// to 1/L with L the problem's Lipschitz bound.
[[nodiscard]] double kkt_residual(const Problem& problem,
                                  const Matrix& allocation, double step = 0.0);

/// Relative objective gap of `allocation` against a known optimal cost.
[[nodiscard]] double relative_gap(const Problem& problem,
                                  const Matrix& allocation,
                                  Cents optimal_cost);

}  // namespace edr::optim
