// Replica-local subproblem of the Lagrangian dual decomposition (paper Eq. 5).
//
// With dual multipliers μ_c attached to the per-client demand constraints,
// replica n solves
//
//   min_q  u_n·(α_n·Σq + β_n·(Σq)^γ_n) + Σ_c μ_c·q_c + (ρ/2)·‖q − q̂‖²
//   s.t.   q ≥ 0,  q_c = 0 on latency-masked pairs,  Σq ≤ B_n
//
// over its own traffic column q = p_{·,n}.  The proximal term (ρ/2)‖q − q̂‖²
// is a documented deviation from the paper's plain dual decomposition: the
// local objective is linear in q for fixed Σq, so the plain subproblem has
// bang-bang solutions and the primal iterates oscillate; the prox term is
// the standard fix and vanishes at the fixed point (see DESIGN.md §5).
//
// The KKT system reduces to a monotone scalar equation in
// t = φ'(s) + λ (φ = price-weighted energy, λ = capacity multiplier):
//   q_c(t) = max(0, q̂_c − (μ_c + t)/ρ),   s(t) = Σ_c q_c(t)
// with s(t) nonincreasing in t, solved by bisection.
#pragma once

#include <span>
#include <vector>

#include "optim/problem.hpp"

namespace edr::optim {

struct SubproblemResult {
  std::vector<double> allocation;  // q, one entry per client
  double load = 0.0;               // s = Σq
  double capacity_multiplier = 0.0;  // λ ≥ 0, nonzero iff Σq == B_n
};

/// Solve the prox-regularized replica subproblem described above.
/// `mask[c] == 0` forbids traffic from client c; `prox_center` is q̂ (often
/// the previous iterate); `rho` must be > 0.
[[nodiscard]] SubproblemResult solve_replica_subproblem(
    const ReplicaParams& params, std::span<const double> multipliers,
    std::span<const double> mask, std::span<const double> prox_center,
    double rho);

/// Scalar outputs of the subproblem when the allocation is written into a
/// caller-owned buffer (the allocation-free variant below).
struct SubproblemInfo {
  double load = 0.0;                 // s = Σq
  double capacity_multiplier = 0.0;  // λ ≥ 0, nonzero iff Σq == B_n
};

/// Same solve, but writes q into `allocation` (resized to the client count)
/// instead of returning a fresh vector — the per-round LDDM hot path reuses
/// one buffer per replica.  `allocation` must not alias `prox_center`: the
/// bisection re-evaluates q from q̂ repeatedly, so an in-place overwrite of
/// the prox center would corrupt later evaluations.
SubproblemInfo solve_replica_subproblem_into(
    const ReplicaParams& params, std::span<const double> multipliers,
    std::span<const double> mask, std::span<const double> prox_center,
    double rho, std::vector<double>& allocation);

/// Maskless compact form for the sparse solve paths: the inputs are already
/// restricted to the replica's feasible clients, so every coordinate is
/// active.  Same bisection, same bits as the masked form evaluated on the
/// feasible subsequence.
SubproblemInfo solve_replica_subproblem_into(
    const ReplicaParams& params, std::span<const double> multipliers,
    std::span<const double> prox_center, double rho,
    std::vector<double>& allocation);

}  // namespace edr::optim
