// Max-flow (Dinic) over the client/replica bipartite transportation graph.
//
// Used for two things:
//  1. deciding whether an instance is feasible at all (can every client's
//     demand be routed through latency-feasible replicas without exceeding
//     any capacity?), and
//  2. producing an initial *feasible* allocation for the iterative solvers,
//     which keeps every subsequent iterate feasible and makes intermediate
//     schedules safe to act on (the runtime can be preempted mid-solve).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/matrix.hpp"

namespace edr::optim {

class Problem;

/// General-purpose Dinic max-flow on a directed graph with double capacities.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t num_nodes);

  /// Add a directed edge u->v with the given capacity; returns an edge id
  /// usable with flow_on().
  std::size_t add_edge(std::size_t from, std::size_t to, double capacity);

  /// Compute the maximum flow from source to sink.  May be called once.
  double solve(std::size_t source, std::size_t sink);

  /// Flow routed through the edge returned by add_edge.
  [[nodiscard]] double flow_on(std::size_t edge_id) const;

 private:
  struct Edge {
    std::size_t to;
    double capacity;
    std::size_t reverse;  // index of the paired reverse edge in adj_[to]
  };

  bool build_levels(std::size_t source, std::size_t sink);
  double push(std::size_t node, std::size_t sink, double limit);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_handles_;
  std::vector<double> original_capacity_;
};

/// Result of the transportation feasibility check.
struct TransportResult {
  bool feasible = false;
  /// Total demand that could be routed (== total demand iff feasible).
  double routed = 0.0;
  /// A max-flow allocation (clients x replicas); feasible iff `feasible`.
  Matrix allocation;
};

/// Route the instance's demands through its latency-feasible pairs subject
/// to capacities; `slack` in (0,1] shrinks capacities (useful for producing
/// strictly-interior starting points).
[[nodiscard]] TransportResult check_transport_feasible(const Problem& problem,
                                                       double slack = 1.0);

/// Convenience: a feasible starting allocation, or std::nullopt when the
/// instance is infeasible.
[[nodiscard]] std::optional<Matrix> initial_feasible_point(
    const Problem& problem);

}  // namespace edr::optim
