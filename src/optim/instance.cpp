#include "optim/instance.hpp"

#include <algorithm>
#include <stdexcept>

#include "optim/flow.hpp"

namespace edr::optim {

Problem make_random_instance(Rng& rng, const InstanceOptions& options) {
  if (options.num_clients == 0 || options.num_replicas == 0)
    throw std::invalid_argument("make_random_instance: empty instance");

  std::vector<Megabytes> demands(options.num_clients);
  for (auto& demand : demands)
    demand = rng.uniform(options.min_demand, options.max_demand);

  std::vector<ReplicaParams> replicas(options.num_replicas);
  for (auto& rep : replicas) {
    rep.price = options.integer_prices
                    ? static_cast<double>(
                          rng.uniform_int(options.min_price, options.max_price))
                    : rng.uniform(options.min_price, options.max_price);
    rep.alpha = options.alpha;
    rep.beta = options.beta;
    rep.gamma = options.gamma;
    rep.bandwidth = options.bandwidth;
  }

  Matrix latency(options.num_clients, options.num_replicas);
  for (std::size_t c = 0; c < options.num_clients; ++c) {
    for (std::size_t n = 0; n < options.num_replicas; ++n)
      latency(c, n) =
          rng.uniform(options.min_link_latency, options.max_link_latency);
    // Guarantee at least one feasible replica per client by clamping the
    // lowest-latency link under the bound.
    std::size_t best = 0;
    for (std::size_t n = 1; n < options.num_replicas; ++n)
      if (latency(c, n) < latency(c, best)) best = n;
    latency(c, best) = std::min(latency(c, best), options.max_latency * 0.5);
  }

  // Inflate capacities until max-flow certifies feasibility with margin.
  for (int attempt = 0; attempt < 32; ++attempt) {
    Problem candidate(demands, replicas, latency, options.max_latency);
    const auto transport = check_transport_feasible(candidate);
    const double needed = candidate.total_demand() * options.capacity_margin;
    if (transport.feasible && transport.routed >= 0.0 &&
        [&] {
          double cap = 0.0;
          for (const auto& rep : replicas) cap += rep.bandwidth;
          return cap >= needed;
        }())
      return candidate;
    for (auto& rep : replicas) rep.bandwidth *= 1.5;
  }
  throw std::runtime_error("make_random_instance: could not reach feasibility");
}

std::vector<ReplicaParams> paper_replica_set() {
  const double prices[] = {1, 8, 1, 6, 1, 5, 2, 3};
  std::vector<ReplicaParams> replicas(8);
  for (std::size_t n = 0; n < replicas.size(); ++n) {
    replicas[n].price = prices[n];
    replicas[n].alpha = 1.0;
    replicas[n].beta = 0.01;
    replicas[n].gamma = 3.0;
    replicas[n].bandwidth = 100.0;
  }
  return replicas;
}

}  // namespace edr::optim
