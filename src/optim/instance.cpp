#include "optim/instance.hpp"

#include <algorithm>
#include <stdexcept>

#include "optim/flow.hpp"

namespace edr::optim {

Problem make_random_instance(Rng& rng, const InstanceOptions& options) {
  if (options.num_clients == 0 || options.num_replicas == 0)
    throw std::invalid_argument("make_random_instance: empty instance");

  std::vector<Megabytes> demands(options.num_clients);
  for (auto& demand : demands)
    demand = rng.uniform(options.min_demand, options.max_demand);

  std::vector<ReplicaParams> replicas(options.num_replicas);
  for (auto& rep : replicas) {
    rep.price = options.integer_prices
                    ? static_cast<double>(
                          rng.uniform_int(options.min_price, options.max_price))
                    : rng.uniform(options.min_price, options.max_price);
    rep.alpha = options.alpha;
    rep.beta = options.beta;
    rep.gamma = options.gamma;
    rep.bandwidth = options.bandwidth;
  }

  Matrix latency(options.num_clients, options.num_replicas);
  for (std::size_t c = 0; c < options.num_clients; ++c) {
    for (std::size_t n = 0; n < options.num_replicas; ++n)
      latency(c, n) =
          rng.uniform(options.min_link_latency, options.max_link_latency);
    // Guarantee at least one feasible replica per client by clamping the
    // lowest-latency link under the bound.
    std::size_t best = 0;
    for (std::size_t n = 1; n < options.num_replicas; ++n)
      if (latency(c, n) < latency(c, best)) best = n;
    latency(c, best) = std::min(latency(c, best), options.max_latency * 0.5);
  }

  // Inflate capacities until max-flow certifies feasibility with margin.
  for (int attempt = 0; attempt < 32; ++attempt) {
    Problem candidate(demands, replicas, latency, options.max_latency);
    const auto transport = check_transport_feasible(candidate);
    const double needed = candidate.total_demand() * options.capacity_margin;
    if (transport.feasible && transport.routed >= 0.0 &&
        [&] {
          double cap = 0.0;
          for (const auto& rep : replicas) cap += rep.bandwidth;
          return cap >= needed;
        }())
      return candidate;
    for (auto& rep : replicas) rep.bandwidth *= 1.5;
  }
  throw std::runtime_error("make_random_instance: could not reach feasibility");
}

Problem make_geo_instance(Rng& rng, const GeoInstanceOptions& options) {
  if (options.num_clients == 0 || options.num_replicas == 0)
    throw std::invalid_argument("make_geo_instance: empty instance");
  if (options.window == 0 || options.window > options.num_replicas)
    throw std::invalid_argument(
        "make_geo_instance: window must be in [1, num_replicas]");

  std::vector<Megabytes> demands(options.num_clients);
  double total_demand = 0.0;
  for (auto& demand : demands) {
    demand = rng.uniform(options.min_demand, options.max_demand);
    total_demand += demand;
  }

  std::vector<ReplicaParams> replicas(options.num_replicas);
  for (auto& rep : replicas) {
    rep.price =
        static_cast<double>(rng.uniform_int(options.min_price,
                                            options.max_price));
    rep.alpha = options.alpha;
    rep.beta = options.beta;
    rep.gamma = options.gamma;
    // Any single replica can absorb the whole instance: feasible by
    // construction, no max-flow certification needed.
    rep.bandwidth = total_demand;
  }

  // In-window links uniform in (0, 0.9·T]; everything else pinned just
  // above the bound so the mask has exactly window entries per client.
  const double infeasible = options.max_latency * 1.5;
  Matrix latency(options.num_clients, options.num_replicas, infeasible);
  for (std::size_t c = 0; c < options.num_clients; ++c) {
    const std::size_t start = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<int>(options.num_replicas) - 1));
    for (std::size_t k = 0; k < options.window; ++k) {
      const std::size_t n = (start + k) % options.num_replicas;
      latency(c, n) = rng.uniform(0.01, options.max_latency * 0.9);
    }
  }
  return Problem(std::move(demands), std::move(replicas), std::move(latency),
                 options.max_latency);
}

std::vector<ReplicaParams> paper_replica_set() {
  const double prices[] = {1, 8, 1, 6, 1, 5, 2, 3};
  std::vector<ReplicaParams> replicas(8);
  for (std::size_t n = 0; n < replicas.size(); ++n) {
    replicas[n].price = prices[n];
    replicas[n].alpha = 1.0;
    replicas[n].beta = 0.01;
    replicas[n].gamma = 3.0;
    replicas[n].bandwidth = 100.0;
  }
  return replicas;
}

}  // namespace edr::optim
