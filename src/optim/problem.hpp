// The energy-aware replica-selection problem (paper Eq. 1-2).
//
//   minimize   E_g(P) = Σ_n u_n · (α_n · s_n + β_n · s_n^{γ_n}),
//              s_n = Σ_c p_{c,n}
//   subject to Σ_c p_{c,n} ≤ B_n            (bandwidth capacity, per replica)
//              Σ_n p_{c,n} = R_c            (demand, per client)
//              p_{c,n} = 0 if l_{c,n} > T   (latency bound)
//              p_{c,n} ≥ 0
//
// This type is the single source of truth shared by the centralized
// reference solver, both distributed algorithms (CDPSM / LDDM), and the
// baselines.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/sparse.hpp"
#include "common/units.hpp"

namespace edr::optim {

/// Static per-replica parameters of the energy-cost model.
struct ReplicaParams {
  /// Regional electricity price u_n (¢/kWh in the paper; any consistent
  /// currency-per-energy unit works since only ratios matter to the argmin).
  CentsPerKwh price = 1.0;
  /// Linear server-energy coefficient α_n (paper: 1.0 on SystemG).
  double alpha = 1.0;
  /// Network-device coefficient β_n (paper: 0.01 on SystemG).
  double beta = 0.01;
  /// Polynomial degree γ_n of the network-device term (paper: 3 for
  /// data-intensive workloads; 1 for linear switch fabrics).
  double gamma = 3.0;
  /// Bandwidth capacity B_n in megabytes per scheduling epoch
  /// (paper: ~100 MB/s Ethernet cap).
  Megabytes bandwidth = 100.0;
};

/// Per-replica energy given its assigned traffic s_n (model units).
[[nodiscard]] double replica_energy(const ReplicaParams& params, double load);

/// Derivative of replica_energy with respect to the load.
[[nodiscard]] double replica_energy_derivative(const ReplicaParams& params,
                                               double load);

/// Per-replica *cost* in cents: price-weighted energy, the paper's E_n.
[[nodiscard]] double replica_cost(const ReplicaParams& params, double load);

/// Derivative of replica_cost with respect to the load.
[[nodiscard]] double replica_cost_derivative(const ReplicaParams& params,
                                             double load);

/// A fully-specified problem instance.  Immutable once built (the runtime
/// constructs a fresh instance per scheduling epoch from live requests).
class Problem {
 public:
  Problem() = default;

  /// `latency(c, n)` is the client->replica network latency in ms; entries
  /// above `max_latency` disable that (client, replica) pair.
  Problem(std::vector<Megabytes> demands, std::vector<ReplicaParams> replicas,
          Matrix latency, Milliseconds max_latency);

  [[nodiscard]] std::size_t num_clients() const { return demands_.size(); }
  [[nodiscard]] std::size_t num_replicas() const { return replicas_.size(); }

  [[nodiscard]] Megabytes demand(std::size_t c) const { return demands_[c]; }
  [[nodiscard]] const std::vector<Megabytes>& demands() const {
    return demands_;
  }
  [[nodiscard]] Megabytes total_demand() const;

  [[nodiscard]] const ReplicaParams& replica(std::size_t n) const {
    return replicas_[n];
  }
  [[nodiscard]] const std::vector<ReplicaParams>& replicas() const {
    return replicas_;
  }

  [[nodiscard]] Milliseconds latency(std::size_t c, std::size_t n) const {
    return latency_(c, n);
  }
  [[nodiscard]] Milliseconds max_latency() const { return max_latency_; }

  /// Whether client c may use replica n (latency bound; paper's e_{c,n}).
  [[nodiscard]] bool feasible_pair(std::size_t c, std::size_t n) const {
    return feasible_(c, n) != 0.0;
  }
  /// Number of replicas client c may use.
  [[nodiscard]] std::size_t feasible_count(std::size_t c) const;

  /// Index structure of the feasible pairs (CSR by client + column view),
  /// shared by every SparseAllocation over this problem.  Built once in the
  /// constructor; null only for a default-constructed Problem.
  [[nodiscard]] const std::shared_ptr<const common::SparsityPattern>&
  sparsity() const {
    return sparsity_;
  }

  /// Total cost E_g(P) in cents (the paper's objective).
  [[nodiscard]] Cents total_cost(const Matrix& allocation) const;
  [[nodiscard]] Cents total_cost(
      const common::SparseAllocation& allocation) const;

  /// Total *energy* (unweighted by price) of an allocation — the paper's
  /// Fig 8(b) metric.
  [[nodiscard]] double total_energy(const Matrix& allocation) const;
  [[nodiscard]] double total_energy(
      const common::SparseAllocation& allocation) const;

  /// Gradient of the cost objective: grad(c, n) = u_n·(α_n + β_n·γ_n·s_n^{γ_n-1}).
  void cost_gradient(const Matrix& allocation, Matrix& grad) const;

  /// An upper bound on the Lipschitz constant of the gradient over the
  /// feasible set; used to pick safe constant step sizes.
  [[nodiscard]] double gradient_lipschitz_bound() const;

  /// Human-readable validation; empty string means the instance is
  /// structurally sound (positive demands/capacities, every client has at
  /// least one feasible replica).  Does NOT prove transportation
  /// feasibility — use optim::check_transport_feasible for that.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<Megabytes> demands_;
  std::vector<ReplicaParams> replicas_;
  Matrix latency_;
  Matrix feasible_;  // 1.0 where usable, 0.0 where latency-masked
  std::shared_ptr<const common::SparsityPattern> sparsity_;
  Milliseconds max_latency_ = 0.0;
};

/// Feasibility report for a candidate allocation.
struct FeasibilityReport {
  double max_capacity_violation = 0.0;  // max over n of (s_n - B_n)+
  double max_demand_violation = 0.0;    // max over c of |Σ_n p_{c,n} - R_c|
  double max_negative = 0.0;            // max over entries of (-p)+
  double max_mask_violation = 0.0;      // max mass on latency-infeasible pairs
  bool has_non_finite = false;          // NaN/Inf anywhere in the allocation
  [[nodiscard]] bool ok(double tol = 1e-6) const {
    return !has_non_finite && max_capacity_violation <= tol &&
           max_demand_violation <= tol && max_negative <= tol &&
           max_mask_violation <= tol;
  }
};

/// Measure constraint violations of `allocation` against `problem`.
[[nodiscard]] FeasibilityReport check_feasibility(const Problem& problem,
                                                  const Matrix& allocation);

/// Sparse variant: mask violations are structurally impossible (the values
/// only exist on feasible pairs), the remaining checks run on the compact
/// storage.
[[nodiscard]] FeasibilityReport check_feasibility(
    const Problem& problem, const common::SparseAllocation& allocation);

}  // namespace edr::optim
