#include "power/model.hpp"

#include <algorithm>
#include <cmath>

namespace edr::power {

Watts PowerModel::draw(Activity activity, double intensity) const {
  const double level = std::max(intensity, 0.0);
  switch (activity) {
    case Activity::kIdle:
      return params_.idle;
    case Activity::kSelecting:
      return params_.idle + params_.selection_compute +
             params_.coordination_per_intensity * level;
    case Activity::kTransfer: {
      const double rate = std::min(level, 1.0);
      return params_.idle + params_.transfer_linear * rate +
             params_.transfer_poly * std::pow(rate, params_.gamma);
    }
  }
  return params_.idle;
}

void ActivityTimeline::set(SimTime time, Activity activity, double intensity) {
  if (!segments_.empty() && sorted_ && time < segments_.back().start)
    sorted_ = false;
  segments_.push_back({time, activity, intensity});
}

void ActivityTimeline::normalize() const {
  if (!sorted_) {
    std::stable_sort(segments_.begin(), segments_.end(),
                     [](const Segment& a, const Segment& b) {
                       return a.start < b.start;
                     });
    sorted_ = true;
  }
}

ActivityTimeline::Segment ActivityTimeline::at(SimTime time) const {
  normalize();
  Segment current;  // idle before the first recorded change
  for (const auto& segment : segments_) {
    if (segment.start > time) break;
    current = segment;
  }
  return current;
}

const std::vector<ActivityTimeline::Segment>& ActivityTimeline::segments()
    const {
  normalize();
  return segments_;
}

SimTime ActivityTimeline::last_change() const {
  normalize();
  return segments_.empty() ? 0.0 : segments_.back().start;
}

}  // namespace edr::power
