// Regional electricity pricing.
//
// The paper randomizes integer prices in [1, 20] ¢/kWh per replica to model
// geographically diverse energy markets (§IV-A.2), citing Qureshi's HotNets
// work on energy-market diversity.  Besides that static model we also
// provide a time-of-day tariff (an extension flagged as future work in the
// paper: "more restrictions other than bandwidth capacity and latency").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace edr::power {

/// A named region with a flat tariff.
struct Region {
  std::string name;
  CentsPerKwh price = 1.0;
};

/// Static regional price book.
class PriceBook {
 public:
  PriceBook() = default;
  explicit PriceBook(std::vector<Region> regions);

  /// The paper's randomized setup: `count` regions with integer prices
  /// uniform in [min, max].
  static PriceBook random(Rng& rng, std::size_t count, int min_price = 1,
                          int max_price = 20);

  /// A representative set of real-world regions with heterogeneous tariffs
  /// (used by examples; values are illustrative, not a data source).
  static PriceBook us_regions();

  [[nodiscard]] std::size_t size() const { return regions_.size(); }
  [[nodiscard]] const Region& region(std::size_t index) const {
    return regions_[index];
  }
  [[nodiscard]] CentsPerKwh price(std::size_t index) const {
    return regions_[index].price;
  }
  [[nodiscard]] std::vector<CentsPerKwh> prices() const;

  /// Highest/lowest tariff ratio — the savings EDR can reach grows with it.
  [[nodiscard]] double dispersion() const;

 private:
  std::vector<Region> regions_;
};

/// Time-of-day tariff: a flat base price modulated by peak/off-peak windows.
class TimeOfDayTariff {
 public:
  /// `peak_multiplier` applies between peak_start and peak_end (hours in
  /// [0, 24), wrapping allowed).
  TimeOfDayTariff(CentsPerKwh base, double peak_multiplier, double peak_start,
                  double peak_end);

  /// Price in effect at `time` seconds into the (simulated) day.
  [[nodiscard]] CentsPerKwh at(SimTime time) const;

  /// The next instant strictly after `time` at which the price changes
  /// (peak-window boundary).  Used for exact piecewise cost integration.
  [[nodiscard]] SimTime next_switch(SimTime time) const;

  [[nodiscard]] CentsPerKwh base() const { return base_; }
  [[nodiscard]] double peak_multiplier() const { return multiplier_; }

  /// Seconds per simulated day (tariffs repeat daily; configurable so
  /// benches can compress a day).
  void set_day_length(double seconds) { day_length_ = seconds; }
  [[nodiscard]] double day_length() const { return day_length_; }

 private:
  CentsPerKwh base_;
  double multiplier_;
  double peak_start_hours_;
  double peak_end_hours_;
  double day_length_ = 86400.0;
};

}  // namespace edr::power
