// Regional electricity pricing.
//
// The paper randomizes integer prices in [1, 20] ¢/kWh per replica to model
// geographically diverse energy markets (§IV-A.2), citing Qureshi's HotNets
// work on energy-market diversity.  Besides that static model we also
// provide a time-of-day tariff (an extension flagged as future work in the
// paper: "more restrictions other than bandwidth capacity and latency").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace edr::power {

/// A named region with a flat tariff.
struct Region {
  std::string name;
  CentsPerKwh price = 1.0;
};

/// Static regional price book.
class PriceBook {
 public:
  PriceBook() = default;
  explicit PriceBook(std::vector<Region> regions);

  /// The paper's randomized setup: `count` regions with integer prices
  /// uniform in [min, max].
  static PriceBook random(Rng& rng, std::size_t count, int min_price = 1,
                          int max_price = 20);

  /// A representative set of real-world regions with heterogeneous tariffs
  /// (used by examples; values are illustrative, not a data source).
  static PriceBook us_regions();

  [[nodiscard]] std::size_t size() const { return regions_.size(); }
  [[nodiscard]] const Region& region(std::size_t index) const {
    return regions_[index];
  }
  [[nodiscard]] CentsPerKwh price(std::size_t index) const {
    return regions_[index].price;
  }
  [[nodiscard]] std::vector<CentsPerKwh> prices() const;

  /// Highest/lowest tariff ratio — the savings EDR can reach grows with it.
  [[nodiscard]] double dispersion() const;

 private:
  std::vector<Region> regions_;
};

/// One absolute-time price change in a step schedule.
struct PriceStep {
  SimTime time = 0.0;  ///< seconds into the run, not into the day
  CentsPerKwh price = 1.0;
};

/// Sentinel for "the price never changes again" (constant tariffs, or a
/// step schedule past its last step).  Callers integrating piecewise cost
/// clamp against their horizon, so infinity composes with std::min.
[[nodiscard]] SimTime no_next_switch();

/// Time-varying electricity price, in one of two modes:
///   - time-of-day: a flat base price modulated by a daily peak window
///     (repeats every day_length seconds; wrapping windows allowed), or
///   - step schedule: an absolute-time piecewise-constant price (the last
///     step's price holds forever; not periodic) — the shape the scenario
///     layer uses for price-flip events.
class TimeOfDayTariff {
 public:
  /// `peak_multiplier` applies between peak_start and peak_end (hours in
  /// [0, 24), wrapping allowed).  A degenerate window (peak_start ==
  /// peak_end) or a unit multiplier yields a constant tariff.
  TimeOfDayTariff(CentsPerKwh base, double peak_multiplier, double peak_start,
                  double peak_end);

  /// Step-schedule mode: `base` applies before the first step, then each
  /// step's price from its time on.  Steps are sorted by time.
  static TimeOfDayTariff step_schedule(CentsPerKwh base,
                                       std::vector<PriceStep> steps);

  /// Price in effect at `time` seconds into the run.  Negative times read
  /// the previous day's window (floor-mod), not garbage.
  [[nodiscard]] CentsPerKwh at(SimTime time) const;

  /// The next instant strictly after `time` at which the price changes
  /// (peak-window boundary or step).  Used for exact piecewise cost
  /// integration.  Returns no_next_switch() when the price is constant
  /// from `time` on.
  [[nodiscard]] SimTime next_switch(SimTime time) const;

  /// True when at() returns the same price for every time.
  [[nodiscard]] bool constant() const;

  /// Time-weighted mean price over [0, horizon); horizon <= 0 defaults to
  /// one day_length (exact for the periodic time-of-day mode).  This is
  /// the price a tariff-blind scheduler sees when
  /// SystemConfig::tariff_aware_scheduler is off.
  [[nodiscard]] CentsPerKwh mean_price(SimTime horizon = 0.0) const;

  [[nodiscard]] CentsPerKwh base() const { return base_; }
  [[nodiscard]] double peak_multiplier() const { return multiplier_; }
  [[nodiscard]] const std::vector<PriceStep>& steps() const { return steps_; }

  /// Seconds per simulated day (time-of-day tariffs repeat daily;
  /// configurable so benches can compress a day).
  void set_day_length(double seconds) { day_length_ = seconds; }
  [[nodiscard]] double day_length() const { return day_length_; }

 private:
  TimeOfDayTariff() = default;

  CentsPerKwh base_ = 1.0;
  double multiplier_ = 1.0;
  double peak_start_hours_ = 0.0;
  double peak_end_hours_ = 0.0;
  double day_length_ = 86400.0;
  /// Non-empty = step-schedule mode (the window fields are unused).
  std::vector<PriceStep> steps_;
};

}  // namespace edr::power
