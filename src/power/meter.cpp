#include "power/meter.hpp"

#include <algorithm>
#include <cstdint>

#include "common/math_util.hpp"
#include "power/pricing.hpp"

namespace edr::power {

Watts PowerTrace::min_watts() const {
  Watts best = samples.empty() ? 0.0 : samples.front().watts;
  for (const auto& s : samples) best = std::min(best, s.watts);
  return best;
}

Watts PowerTrace::max_watts() const {
  Watts best = samples.empty() ? 0.0 : samples.front().watts;
  for (const auto& s : samples) best = std::max(best, s.watts);
  return best;
}

Watts PowerTrace::mean_watts() const {
  if (samples.empty()) return 0.0;
  KahanSum total;
  for (const auto& s : samples) total.add(s.watts);
  return total.value() / static_cast<double>(samples.size());
}

Joules PowerTrace::sampled_energy() const {
  if (samples.size() < 2) return 0.0;
  KahanSum total;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].time - samples[i - 1].time;
    total.add(0.5 * (samples[i].watts + samples[i - 1].watts) * dt);
  }
  return total.value();
}

PowerTrace sample_trace(const PowerModel& model,
                        const ActivityTimeline& timeline, SimTime horizon,
                        double rate_hz, telemetry::Telemetry* telemetry) {
  PowerTrace trace;
  if (horizon <= 0.0 || rate_hz <= 0.0) return trace;
  const double dt = 1.0 / rate_hz;
  const auto count = static_cast<std::size_t>(horizon / dt) + 1;
  trace.samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime t = static_cast<double>(i) * dt;
    if (t > horizon) break;
    const auto segment = timeline.at(t);
    trace.samples.push_back(
        {t, model.draw(segment.activity, segment.intensity)});
  }
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    metrics.counter("power.meter.traces").add(1);
    metrics.counter("power.meter.samples").add(trace.samples.size());
  }
  return trace;
}

namespace {

Joules integrate(const PowerModel& model, const ActivityTimeline& timeline,
                 SimTime horizon, bool subtract_idle,
                 telemetry::Telemetry* telemetry) {
  if (horizon <= 0.0) return 0.0;
  const double floor = subtract_idle ? model.params().idle : 0.0;
  const auto& segments = timeline.segments();
  KahanSum total;
  std::uint64_t steps = 0;

  // Idle stretch before the first segment.
  SimTime cursor = 0.0;
  Activity activity = Activity::kIdle;
  double intensity = 0.0;
  for (const auto& segment : segments) {
    const SimTime start = std::clamp(segment.start, 0.0, horizon);
    if (start > cursor) {
      total.add((model.draw(activity, intensity) - floor) * (start - cursor));
      ++steps;
    }
    cursor = std::max(cursor, start);
    activity = segment.activity;
    intensity = segment.intensity;
    if (cursor >= horizon) break;
  }
  if (cursor < horizon) {
    total.add((model.draw(activity, intensity) - floor) * (horizon - cursor));
    ++steps;
  }
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    metrics.counter("power.meter.integrations").add(1);
    metrics.counter("power.meter.integration_steps").add(steps);
  }
  return total.value();
}

}  // namespace

Joules integrate_energy(const PowerModel& model,
                        const ActivityTimeline& timeline, SimTime horizon,
                        telemetry::Telemetry* telemetry) {
  return integrate(model, timeline, horizon, false, telemetry);
}

Joules integrate_active_energy(const PowerModel& model,
                               const ActivityTimeline& timeline,
                               SimTime horizon,
                               telemetry::Telemetry* telemetry) {
  return integrate(model, timeline, horizon, true, telemetry);
}

Cents integrate_cost(const PowerModel& model, const ActivityTimeline& timeline,
                     SimTime horizon, const TimeOfDayTariff& tariff,
                     bool active_only, telemetry::Telemetry* telemetry) {
  if (horizon <= 0.0) return 0.0;
  const double floor = active_only ? model.params().idle : 0.0;
  KahanSum total;
  std::uint64_t steps = 0;
  SimTime cursor = 0.0;
  while (cursor < horizon) {
    // The next point where either factor of price(t)·power(t) changes.
    SimTime next = horizon;
    for (const auto& segment : timeline.segments()) {
      if (segment.start > cursor + 1e-12) {
        next = std::min(next, segment.start);
        break;
      }
    }
    next = std::min(next, tariff.next_switch(cursor));
    next = std::min(next, horizon);
    if (next <= cursor + 1e-15) {
      cursor = next + 1e-12;  // numerical guard against zero-length steps
      continue;
    }
    const auto segment = timeline.at(cursor);
    const Watts watts =
        model.draw(segment.activity, segment.intensity) - floor;
    total.add(energy_cost(watts * (next - cursor), tariff.at(cursor)));
    ++steps;
    cursor = next;
  }
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    metrics.counter("power.meter.integrations").add(1);
    metrics.counter("power.meter.integration_steps").add(steps);
  }
  return total.value();
}

}  // namespace edr::power
