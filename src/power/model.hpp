// Node power model and activity timeline.
//
// The paper measures per-replica power with Dominion PX PDUs at ~50
// samples/s (Figs 3-4).  We reproduce those traces by (1) recording what
// each node is doing over simulated time — idle, running the distributed
// selection algorithm, or transferring files — and (2) mapping activity to
// watts with a model mirroring the paper's measurements on SystemG:
// ~215 W idle floor ("valleys"), up to ~240 W under full transfer load
// ("peaks"), with the network-device contribution following the same
// α·rate + β·rate^γ shape as the scheduling model (§III-A).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace edr::power {

/// What a node is doing during an interval of simulated time.
enum class Activity {
  kIdle,       ///< listening for requests
  kSelecting,  ///< running the distributed optimization (compute + comm)
  kTransfer,   ///< sending file data to clients
};

/// Maps (activity, intensity) to instantaneous power draw.
struct PowerModelParams {
  Watts idle = 215.0;            ///< baseline draw (SystemG valleys)
  Watts selection_compute = 4.0; ///< local solver compute adder
  /// Extra draw per unit of coordination intensity — CDPSM exchanges full
  /// solution matrices with every replica each iteration and sits higher.
  Watts coordination_per_intensity = 4.0;
  /// Server-side transfer adder at full line rate (linear in rate).
  Watts transfer_linear = 18.0;
  /// Network-device adder at full line rate (degree-gamma in rate).
  Watts transfer_poly = 7.0;
  double gamma = 3.0;
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params = {}) : params_(params) {}

  /// Instantaneous draw.  `intensity` is activity-specific: for kSelecting
  /// it is the coordination intensity (0..1+, scales with per-iteration
  /// communication volume); for kTransfer it is the fraction of line rate
  /// in use (0..1).
  [[nodiscard]] Watts draw(Activity activity, double intensity) const;

  [[nodiscard]] const PowerModelParams& params() const { return params_; }

 private:
  PowerModelParams params_;
};

/// A step-function activity schedule for one node: a sorted sequence of
/// segments, each holding (start time, activity, intensity).  The timeline
/// starts idle at t=0; segments may be appended out of order and are sorted
/// on demand.
class ActivityTimeline {
 public:
  struct Segment {
    SimTime start = 0.0;
    Activity activity = Activity::kIdle;
    double intensity = 0.0;
  };

  /// Record that the node switched to `activity` at `time`.
  void set(SimTime time, Activity activity, double intensity = 0.0);

  /// Activity in effect at `time` (idle before the first segment).
  [[nodiscard]] Segment at(SimTime time) const;

  [[nodiscard]] const std::vector<Segment>& segments() const;
  [[nodiscard]] bool empty() const { return segments_.empty(); }

  /// Latest segment start time recorded (0 when empty).
  [[nodiscard]] SimTime last_change() const;

 private:
  void normalize() const;

  mutable std::vector<Segment> segments_;
  mutable bool sorted_ = true;
};

}  // namespace edr::power
