// Power-meter emulation and energy accounting.
//
// Emulates the Dominion PX Intelligent PDUs used in the paper: fixed-rate
// sampling (default 50 Hz) of a node's instantaneous draw, plus exact
// integration of energy over the activity timeline (the meter trace is for
// the Fig 3-4 plots; billing uses the exact integral so results do not
// depend on the sampling rate).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "power/model.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::power {

/// One meter reading.
struct Sample {
  SimTime time = 0.0;
  Watts watts = 0.0;
};

/// A sampled power trace for one node.
struct PowerTrace {
  std::vector<Sample> samples;

  [[nodiscard]] Watts min_watts() const;
  [[nodiscard]] Watts max_watts() const;
  [[nodiscard]] Watts mean_watts() const;
  /// Trapezoidal energy of the sampled trace (approximate; billing uses
  /// integrate_energy instead).
  [[nodiscard]] Joules sampled_energy() const;
};

/// Sample `timeline` through `model` on [0, horizon) at `rate_hz`.
/// `telemetry` (optional) counts samples taken (power.meter.samples).
[[nodiscard]] PowerTrace sample_trace(const PowerModel& model,
                                      const ActivityTimeline& timeline,
                                      SimTime horizon, double rate_hz = 50.0,
                                      telemetry::Telemetry* telemetry =
                                          nullptr);

/// Exact energy of `timeline` under `model` over [0, horizon): the timeline
/// is a step function, so the integral is a finite sum of rectangle areas.
/// `telemetry` (optional) counts integrations and segment steps — the
/// integration cost the runtime pays at finalization.
[[nodiscard]] Joules integrate_energy(const PowerModel& model,
                                      const ActivityTimeline& timeline,
                                      SimTime horizon,
                                      telemetry::Telemetry* telemetry =
                                          nullptr);

/// Exact *active* energy: same integral with the idle floor subtracted.
/// This isolates the workload-dependent part the scheduling model reasons
/// about (the idle floor burns regardless of the allocation).
[[nodiscard]] Joules integrate_active_energy(const PowerModel& model,
                                             const ActivityTimeline& timeline,
                                             SimTime horizon,
                                             telemetry::Telemetry* telemetry =
                                                 nullptr);

class TimeOfDayTariff;

/// Exact cost of `timeline` under a time-varying tariff: the integrand
/// price(t)·power(t) is piecewise constant (both factors are step
/// functions), so the integral splits exactly at activity changes and
/// tariff switches.  `active_only` subtracts the idle floor first.
[[nodiscard]] Cents integrate_cost(const PowerModel& model,
                                   const ActivityTimeline& timeline,
                                   SimTime horizon,
                                   const TimeOfDayTariff& tariff,
                                   bool active_only = false,
                                   telemetry::Telemetry* telemetry = nullptr);

}  // namespace edr::power
