#include "power/pricing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fmt.hpp"
#include "common/math_util.hpp"

namespace edr::power {

PriceBook::PriceBook(std::vector<Region> regions)
    : regions_(std::move(regions)) {}

PriceBook PriceBook::random(Rng& rng, std::size_t count, int min_price,
                            int max_price) {
  std::vector<Region> regions(count);
  for (std::size_t i = 0; i < count; ++i) {
    regions[i].name = strf("region-%zu", i);
    regions[i].price =
        static_cast<double>(rng.uniform_int(min_price, max_price));
  }
  return PriceBook{std::move(regions)};
}

PriceBook PriceBook::us_regions() {
  return PriceBook{{
      {"us-northwest", 4.0},   // hydro-heavy
      {"us-midwest", 7.0},
      {"us-south", 6.0},
      {"us-southwest", 8.0},
      {"us-mid-atlantic", 10.0},
      {"us-california", 14.0},
      {"us-new-england", 16.0},
      {"us-hawaii", 20.0},
  }};
}

std::vector<CentsPerKwh> PriceBook::prices() const {
  std::vector<CentsPerKwh> out(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) out[i] = regions_[i].price;
  return out;
}

double PriceBook::dispersion() const {
  if (regions_.empty()) return 1.0;
  double lo = regions_.front().price, hi = lo;
  for (const auto& region : regions_) {
    lo = std::min(lo, region.price);
    hi = std::max(hi, region.price);
  }
  return lo > 0.0 ? hi / lo : 0.0;
}

SimTime no_next_switch() { return std::numeric_limits<SimTime>::infinity(); }

TimeOfDayTariff::TimeOfDayTariff(CentsPerKwh base, double peak_multiplier,
                                 double peak_start, double peak_end)
    : base_(base),
      multiplier_(peak_multiplier),
      peak_start_hours_(peak_start),
      peak_end_hours_(peak_end) {}

TimeOfDayTariff TimeOfDayTariff::step_schedule(CentsPerKwh base,
                                               std::vector<PriceStep> steps) {
  TimeOfDayTariff tariff;
  tariff.base_ = base;
  std::ranges::stable_sort(steps, [](const PriceStep& a, const PriceStep& b) {
    return a.time < b.time;
  });
  tariff.steps_ = std::move(steps);
  return tariff;
}

bool TimeOfDayTariff::constant() const {
  if (!steps_.empty()) {
    for (const auto& step : steps_)
      if (step.price != base_) return false;
    return true;
  }
  return multiplier_ == 1.0 || peak_start_hours_ == peak_end_hours_;
}

CentsPerKwh TimeOfDayTariff::at(SimTime time) const {
  if (!steps_.empty()) {
    CentsPerKwh price = base_;
    for (const auto& step : steps_) {
      if (step.time > time) break;
      price = step.price;
    }
    return price;
  }
  // Floor-mod: negative times land in the previous day's window instead of
  // producing a negative hour that no window (wrapped or not) matches.
  double day_fraction = std::fmod(time / day_length_, 1.0);
  if (day_fraction < 0.0) day_fraction += 1.0;
  const double hours = day_fraction * 24.0;
  const bool in_peak =
      peak_start_hours_ <= peak_end_hours_
          ? (hours >= peak_start_hours_ && hours < peak_end_hours_)
          : (hours >= peak_start_hours_ || hours < peak_end_hours_);
  return in_peak ? base_ * multiplier_ : base_;
}

SimTime TimeOfDayTariff::next_switch(SimTime time) const {
  if (!steps_.empty()) {
    const CentsPerKwh current = at(time);
    for (const auto& step : steps_)
      if (step.time > time + 1e-12 && step.price != current) return step.time;
    return no_next_switch();
  }
  // A degenerate window or unit multiplier never changes the price; the
  // old candidate scan returned those phantom boundaries anyway.
  if (constant()) return no_next_switch();
  const double day_start = std::floor(time / day_length_) * day_length_;
  const double start_s = peak_start_hours_ / 24.0 * day_length_;
  const double end_s = peak_end_hours_ / 24.0 * day_length_;
  // Candidate boundaries over this day and the next (floor handles
  // negative times, so this also works before t = 0).
  SimTime best = no_next_switch();
  for (const double offset : {start_s, end_s}) {
    for (int day = 0; day < 2; ++day) {
      const SimTime candidate = day_start + day * day_length_ + offset;
      if (candidate > time + 1e-12) best = std::min(best, candidate);
    }
  }
  return best;
}

CentsPerKwh TimeOfDayTariff::mean_price(SimTime horizon) const {
  if (horizon <= 0.0) horizon = day_length_;
  // Walk the piecewise-constant price exactly: both modes expose their
  // breakpoints through next_switch, so the mean is a finite sum.
  KahanSum weighted;
  SimTime cursor = 0.0;
  while (cursor < horizon) {
    const SimTime next = std::min(next_switch(cursor), horizon);
    weighted.add(at(cursor) * (next - cursor));
    cursor = next;
  }
  return weighted.value() / horizon;
}

}  // namespace edr::power
