#include "power/pricing.hpp"

#include <algorithm>
#include <cmath>

#include "common/fmt.hpp"

namespace edr::power {

PriceBook::PriceBook(std::vector<Region> regions)
    : regions_(std::move(regions)) {}

PriceBook PriceBook::random(Rng& rng, std::size_t count, int min_price,
                            int max_price) {
  std::vector<Region> regions(count);
  for (std::size_t i = 0; i < count; ++i) {
    regions[i].name = strf("region-%zu", i);
    regions[i].price =
        static_cast<double>(rng.uniform_int(min_price, max_price));
  }
  return PriceBook{std::move(regions)};
}

PriceBook PriceBook::us_regions() {
  return PriceBook{{
      {"us-northwest", 4.0},   // hydro-heavy
      {"us-midwest", 7.0},
      {"us-south", 6.0},
      {"us-southwest", 8.0},
      {"us-mid-atlantic", 10.0},
      {"us-california", 14.0},
      {"us-new-england", 16.0},
      {"us-hawaii", 20.0},
  }};
}

std::vector<CentsPerKwh> PriceBook::prices() const {
  std::vector<CentsPerKwh> out(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) out[i] = regions_[i].price;
  return out;
}

double PriceBook::dispersion() const {
  if (regions_.empty()) return 1.0;
  double lo = regions_.front().price, hi = lo;
  for (const auto& region : regions_) {
    lo = std::min(lo, region.price);
    hi = std::max(hi, region.price);
  }
  return lo > 0.0 ? hi / lo : 0.0;
}

TimeOfDayTariff::TimeOfDayTariff(CentsPerKwh base, double peak_multiplier,
                                 double peak_start, double peak_end)
    : base_(base),
      multiplier_(peak_multiplier),
      peak_start_hours_(peak_start),
      peak_end_hours_(peak_end) {}

CentsPerKwh TimeOfDayTariff::at(SimTime time) const {
  const double hours =
      std::fmod(time / day_length_, 1.0) * 24.0;
  const bool in_peak =
      peak_start_hours_ <= peak_end_hours_
          ? (hours >= peak_start_hours_ && hours < peak_end_hours_)
          : (hours >= peak_start_hours_ || hours < peak_end_hours_);
  return in_peak ? base_ * multiplier_ : base_;
}

SimTime TimeOfDayTariff::next_switch(SimTime time) const {
  const double day_start = std::floor(time / day_length_) * day_length_;
  const double start_s = peak_start_hours_ / 24.0 * day_length_;
  const double end_s = peak_end_hours_ / 24.0 * day_length_;
  // Candidate boundaries over this day and the next.
  SimTime best = day_start + 2.0 * day_length_;
  for (const double offset : {start_s, end_s}) {
    for (int day = 0; day < 2; ++day) {
      const SimTime candidate = day_start + day * day_length_ + offset;
      if (candidate > time + 1e-12) best = std::min(best, candidate);
    }
  }
  return best;
}

}  // namespace edr::power
