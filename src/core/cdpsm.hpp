// CDPSM — consensus-based distributed projected subgradient method
// (paper §III-D.1, following Nedić-Ozdaglar-Parrilo).
//
// Every replica n keeps a full estimate P^n of the global traffic matrix.
// One round:
//   1. consensus:   V^n = Σ_j a_j · P^j        (weights Σ a_j = 1)
//   2. gradient:    W^n = V^n − d · ∇E_n(V^n)  (local objective only)
//   3. projection:  P^n ← Proj_{X_n}[W^n]
// where X_n is replica n's local constraint set: the shared demand
// simplices plus its *own* capacity column (the sets' intersection over n
// is the global feasible set, as the convergence theory requires).
//
// The engine is a pure synchronous state machine: step_replica() advances
// one replica given its peers' previous estimates, so the same math runs
// standalone (tests, Fig 5) and inside the message-driven simulator agents
// (which charge each estimate exchange to the network).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/sparse.hpp"
#include "common/thread_pool.hpp"
#include "core/aggregation.hpp"
#include "core/representation.hpp"
#include "optim/convergence.hpp"
#include "optim/problem.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::core {

struct CdpsmOptions {
  /// Constant step size d (paper compares both methods at constant step).
  /// 0 = auto: 1/L from the problem's Lipschitz bound.
  double step = 0.0;
  /// Use the diminishing schedule d_k = d/√k from Nedić-Ozdaglar-Parrilo
  /// (whose convergence theory requires it).  Slower than the constant
  /// step + exact-consensus variant; provided for fidelity to the paper's
  /// simulation (see EXPERIMENTS.md, Fig 5).
  bool diminishing_step = false;
  std::size_t max_rounds = 2000;
  /// Converged when the *recovered* solution (projected mean of estimates)
  /// stops moving: round-to-round change below tolerance × demand scale for
  /// `patience` consecutive rounds.  Individual estimates settle on
  /// different fixed points of their local projections, so estimate
  /// disagreement never reaches zero and is not a usable stop signal.
  double tolerance = 1e-5;
  std::size_t patience = 3;
  /// Worker lanes for the per-replica round loop and the recovery
  /// projection (0 = all hardware threads).  1 — the default — is the
  /// exact historical serial path; every other value produces bitwise
  /// identical results (static block partitioning, ordered reductions).
  std::size_t threads = 1;
  /// Iterate storage (see core/representation.hpp).  kDense is the golden
  /// path, byte-identical to the historical behavior.  kSparse/kAggregated
  /// keep the estimates on the feasible pairs only; the recovered solution
  /// agrees with the dense one at solver-tolerance level (the dense
  /// gradient also steps latency-masked entries before the projection
  /// re-zeroes them; the compact path never materializes them).
  SolverRepresentation representation = SolverRepresentation::kDense;
  /// Kernel dispatch for the consensus axpy, projection apply loops and
  /// distance reductions (common/simd.hpp).  kScalar — the default — is the
  /// byte-pinned golden path; kAuto vectorizes with the running CPU's
  /// widest ISA at tolerance-level numerical agreement.
  common::simd::Mode simd = common::simd::Mode::kScalar;
};

/// Per-round progress of the synchronous driver.
struct CdpsmRoundStats {
  std::size_t round = 0;
  double objective = 0.0;      ///< cost of the mean estimate (projected)
  double disagreement = 0.0;   ///< max pairwise estimate distance
  double movement = 0.0;       ///< max per-replica estimate change
  std::size_t bytes_exchanged = 0;  ///< all-to-all estimate traffic
};

/// Per-replica view of one round, collected only when enabled (the
/// pre-projection copy is not free) — feeds the flight recorder.
struct CdpsmReplicaStats {
  double local_objective = 0.0;  ///< E_n at the consensus load
  double gradient_norm = 0.0;    ///< ‖∇E_n‖_F = |e_n'|·√|C| (uniform column)
  double projection_correction = 0.0;  ///< ‖W^n − Proj_{X_n}[W^n]‖_F
  double load = 0.0;             ///< own-column load after the step
  double load_delta = 0.0;       ///< load change vs the previous round
};

class CdpsmEngine {
 public:
  CdpsmEngine(const optim::Problem& problem, CdpsmOptions options = {});

  [[nodiscard]] std::size_t num_replicas() const {
    return problem_->num_replicas();
  }

  /// Replica n's current estimate.  Dense representation only — the sparse
  /// paths keep compact estimates (use solution() for the recovered point).
  [[nodiscard]] const Matrix& estimate(std::size_t n) const {
    return estimates_[n];
  }
  void set_estimate(std::size_t n, Matrix estimate);

  /// The problem the rounds actually iterate on: the original instance for
  /// kDense/kSparse, the aggregated instance for kAggregated.
  [[nodiscard]] const optim::Problem& work_problem() const { return *work_; }
  /// The client equivalence-class transform when representation ==
  /// kAggregated, null otherwise.
  [[nodiscard]] const ClientAggregation* aggregation() const {
    return aggregation_.get();
  }

  /// Pure per-replica update: consensus over `peer_estimates` (all replicas'
  /// round-k estimates, uniform weights a_j = 1/|N|), local gradient step,
  /// projection onto X_n.  Does not mutate engine state.  `stats`, when
  /// non-null, receives the replica's observability view of the step
  /// (load_delta excluded — only round() knows the previous load).
  [[nodiscard]] Matrix step_replica(std::size_t n,
                                    std::span<const Matrix> peer_estimates,
                                    CdpsmReplicaStats* stats = nullptr) const;

  /// One synchronous round over all replicas (the standalone driver).
  CdpsmRoundStats round();

  /// Run rounds until convergence or the round limit; returns the trace.
  optim::ConvergenceTrace run();

  [[nodiscard]] bool converged() const { return converged_; }
  [[nodiscard]] std::size_t rounds_executed() const { return rounds_; }

  /// Consensus solution: the average of all replica estimates, projected to
  /// exact feasibility (the average satisfies constraints only up to the
  /// consensus tolerance).
  [[nodiscard]] Matrix solution() const;

  /// Bytes a single replica sends per round (its estimate to each peer).
  [[nodiscard]] std::size_t bytes_per_replica_round() const;

  [[nodiscard]] const CdpsmOptions& options() const { return options_; }
  [[nodiscard]] const optim::Problem& problem() const { return *problem_; }

  /// Record per-round consensus/gradient spans and progress gauges
  /// (solver.cdpsm.*) into `telemetry`.
  void attach_telemetry(telemetry::Telemetry& telemetry);

  /// Use an externally owned pool for the parallel round instead of the
  /// lazily created one implied by options().threads — the algorithm layer
  /// shares one pool across the per-epoch engines so threads are spawned
  /// once per run, not once per epoch.  `pool` must outlive the engine;
  /// null reverts to the options-driven behavior.
  void set_thread_pool(common::ThreadPool* pool) { external_pool_ = pool; }

  /// Collect CdpsmReplicaStats during round() (off by default; the flight
  /// recorder path turns it on).
  void set_collect_replica_stats(bool collect) { collect_stats_ = collect; }
  [[nodiscard]] bool collect_replica_stats() const { return collect_stats_; }
  /// Last round's per-replica stats (empty until a collected round ran).
  [[nodiscard]] const std::vector<CdpsmReplicaStats>& replica_stats() const {
    return replica_stats_;
  }

  /// Messages / bytes this engine's rounds would have put on the wire so
  /// far (accumulated round by round — the counters ScheduleResult is fed
  /// from, mirrored into solver.cdpsm.* when telemetry is attached).
  [[nodiscard]] std::uint64_t messages_exchanged() const {
    return messages_exchanged_;
  }
  [[nodiscard]] std::uint64_t bytes_exchanged() const {
    return bytes_exchanged_;
  }

 private:
  void project_local(std::size_t n, Matrix& estimate) const;
  /// step_replica writing into a caller-owned matrix (round() reuses one
  /// per replica).  `out` must not alias any entry of `peer_estimates`.
  void step_replica_into(std::size_t n, std::span<const Matrix> peer_estimates,
                         Matrix& out, CdpsmReplicaStats* stats) const;
  void solution_into(Matrix& out) const;
  /// Compact-path counterparts (representation != kDense): identical round
  /// structure on the feasible-pair storage of the work problem.
  void project_local_sparse(std::size_t n,
                            common::SparseAllocation& estimate) const;
  void step_replica_into_sparse(
      std::size_t n, std::span<const common::SparseAllocation> peer_estimates,
      common::SparseAllocation& out, CdpsmReplicaStats* stats) const;
  void solution_into_sparse(common::SparseAllocation& out) const;
  [[nodiscard]] std::size_t estimate_count() const {
    return sparse_ ? sparse_estimates_.size() : estimates_.size();
  }
  /// The pool the parallel regions should use this round: the external one
  /// when set, else a lazily built pool per options_.threads; null = serial.
  [[nodiscard]] common::ThreadPool* pool() const;

  const optim::Problem* problem_;
  CdpsmOptions options_;
  /// True iff representation != kDense — selects the compact round path.
  bool sparse_ = false;
  /// kAggregated state: the class transform and the aggregated instance the
  /// rounds run on.  work_ points at aggregated_problem_ when aggregating,
  /// else at problem_.
  std::unique_ptr<ClientAggregation> aggregation_;
  std::unique_ptr<optim::Problem> aggregated_problem_;
  const optim::Problem* work_ = nullptr;
  common::ThreadPool* external_pool_ = nullptr;
  mutable std::unique_ptr<common::ThreadPool> owned_pool_;
  std::uint64_t messages_exchanged_ = 0;
  std::uint64_t bytes_exchanged_ = 0;
  telemetry::EventTracer* tracer_ = &telemetry::disabled_tracer();
  telemetry::Counter rounds_metric_;
  telemetry::Counter messages_metric_;
  telemetry::Counter bytes_metric_;
  telemetry::Gauge objective_metric_;
  telemetry::Gauge disagreement_metric_;
  telemetry::Gauge movement_metric_;
  double step_ = 0.0;
  bool collect_stats_ = false;
  std::vector<CdpsmReplicaStats> replica_stats_;
  std::vector<Matrix> estimates_;
  // Round scratch, reused across rounds so the hot loop stays off the heap:
  // the previous-round snapshot the consensus step reads, and the recovered
  // solution double-buffered against last_solution_.
  std::vector<Matrix> previous_estimates_;
  Matrix scratch_solution_;
  Matrix last_solution_;
  // Compact-path counterparts of the estimate/round-scratch state above.
  std::vector<common::SparseAllocation> sparse_estimates_;
  std::vector<common::SparseAllocation> sparse_previous_;
  common::SparseAllocation sparse_scratch_solution_;
  common::SparseAllocation sparse_last_solution_;
  bool sparse_has_last_ = false;
  mutable common::SparseAllocation sparse_solution_tmp_;
  std::size_t stable_rounds_ = 0;
  std::size_t rounds_ = 0;
  bool converged_ = false;
};

}  // namespace edr::core
