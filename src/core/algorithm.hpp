// DistributedAlgorithm — the strategy interface behind the epoch pipeline.
//
// The runtime (core/epoch_pipeline.hpp) owns everything a scheduler run
// shares regardless of the solver: request batching, membership, admission
// control, the message barrier, assignment fan-out, transfers, power
// metering.  Everything solver-specific — which message types exist, what
// traffic a round generates, when the iteration has converged, what state
// carries across epochs, how the final allocation is extracted — lives in
// one implementation of this interface.  Adding a scheduler means writing
// one subclass and registering it (core/algorithm_registry.hpp); the
// runtime is never touched again.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/units.hpp"
#include "optim/problem.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::core {

/// Message-type space of the runtime protocol (the ring owns 100-199, see
/// cluster/ring.hpp; algorithms own their round types, declared via
/// DistributedAlgorithm::message_types).
enum SystemMessageType : int {
  kClientRequest = 1,   ///< client -> every replica: (client, demand MB)
  kCdpsmEstimate = 2,   ///< replica -> replica: full solution estimate
  kLddmLoadReport = 3,  ///< replica -> client: my share for you this round
  kLddmMuUpdate = 4,    ///< client -> replica: updated multiplier
  kAssignment = 5,      ///< replica -> client: final share after convergence
  kFileData = 6,        ///< replica -> client: the transfer itself
  kAdmmShare = 7,       ///< replica -> client: x-update share this round
  kAdmmFeedback = 8,    ///< client -> replica: consensus (z, u) feedback
};

/// One message-type id an algorithm (or the host protocol) claims, with the
/// telemetry name it is exported under.  `round` marks types that count
/// toward the per-round delivery barrier.
struct MessageTypeInfo {
  int id = 0;
  const char* name = "";
  bool round = false;
};

/// Per-epoch bookkeeping for one request while it awaits its assignment.
struct PendingRequest {
  std::uint64_t id = 0;
  std::uint32_t client = 0;
  SimTime arrival = 0.0;
  Megabytes size_mb = 0.0;
  /// 0 for original requests; >0 for shed remainders re-entering a later
  /// epoch (these do not contribute response-time samples).
  std::uint32_t retries = 0;
};

/// Endpoint kind of a planned message.  Solver indices are global (for the
/// EDR runtime a solver *is* a replica; DONAR's solvers are its mapping
/// nodes); client ids are global client ids.
enum class Endpoint { kSolver, kClient };

/// One coordination message the algorithm wants on the wire.  The pipeline
/// maps endpoints to node ids, charges the bytes to the network model, and
/// (for round messages) counts the delivery toward the barrier.
struct PlannedMessage {
  Endpoint from_kind = Endpoint::kSolver;
  std::size_t from = 0;
  Endpoint to_kind = Endpoint::kClient;
  std::size_t to = 0;
  int type = 0;
  std::size_t bytes = 0;
};

/// Everything the strategy may read about the epoch being solved.  Pointers
/// reference pipeline-owned state that is stable for the epoch's duration.
struct EpochContext {
  const optim::Problem* problem = nullptr;
  /// Problem column -> global replica index.
  const std::vector<std::size_t>* active_replicas = nullptr;
  /// Problem row -> global client id.
  const std::vector<std::uint32_t>* active_clients = nullptr;
  /// The epoch's surviving request batch (admission-controlled sizes).
  const std::vector<PendingRequest>* requests = nullptr;
  /// Liveness per global replica index (all true when failures are off).
  const std::vector<bool>* replica_alive = nullptr;
  std::size_t num_replicas = 0;
  std::size_t num_clients = 0;
  std::size_t num_solvers = 0;
  telemetry::Telemetry* telemetry = nullptr;
};

class DistributedAlgorithm {
 public:
  virtual ~DistributedAlgorithm();

  /// Registry key ("lddm", "cdpsm", ...).
  [[nodiscard]] virtual const char* name() const = 0;
  /// Human-facing label used by reports and figure tables ("EDR-LDDM").
  [[nodiscard]] virtual const char* display_name() const = 0;

  /// Message-type ids this backend owns (round traffic plus any protocol
  /// types it overrides).  Ids must not collide with the host protocol,
  /// the ring range [100, 200), or another registered backend — enforced
  /// by tests/baselines/algorithm_registry_test.cpp.
  [[nodiscard]] virtual std::span<const MessageTypeInfo> message_types()
      const;

  /// True when `type` counts toward the round delivery barrier.
  [[nodiscard]] bool is_round_type(int type) const;

  /// Type of the per-request announcement a client sends at arrival.
  [[nodiscard]] virtual int announce_type() const { return kClientRequest; }
  /// Which solvers a client announces a new request to (the pipeline drops
  /// targets that are dead).  Default: every solver.
  virtual void announce_targets(std::uint32_t client, std::size_t num_solvers,
                                std::vector<std::size_t>& out) const;

  /// Type of the final share notification a solver sends each client.
  [[nodiscard]] virtual int assignment_type() const { return kAssignment; }
  /// The assignment fan-out after convergence.  Default: every active
  /// replica tells every active client its share (16-byte notification).
  virtual void plan_assignments(const EpochContext& ctx,
                                std::vector<PlannedMessage>& out) const;

  /// Iterative backends run message rounds against the barrier; one-shot
  /// backends produce the allocation after a single compute delay.
  [[nodiscard]] virtual bool iterative() const { return true; }

  /// Multiplier on the per-round local compute cost (seconds per matrix
  /// entry x |C|x|N| entries x this factor).
  [[nodiscard]] virtual double compute_factor(const EpochContext& ctx) const {
    (void)ctx;
    return 1.0;
  }

  /// Per-round coordination volume in bytes for `clients` x `replicas`
  /// participants; drives the selection power intensity (Fig 3 vs 4).
  [[nodiscard]] virtual double coordination_bytes(double clients,
                                                  double replicas) const {
    (void)replicas;
    return clients * 12.0;
  }

  /// Start an epoch: construct the engine, attach telemetry, inject any
  /// warm-start state carried from previous epochs.
  virtual void begin_epoch(const EpochContext& ctx) { (void)ctx; }

  /// Messages to send once, before the first compute delay (e.g. the
  /// centralized backend shipping demands to its coordinator).
  virtual void plan_prologue(const EpochContext& ctx,
                             std::vector<PlannedMessage>& out) const {
    (void)ctx;
    out.clear();
  }

  /// One round's coordination traffic (iterative backends).
  virtual void plan_round(const EpochContext& ctx,
                          std::vector<PlannedMessage>& out) const {
    (void)ctx;
    out.clear();
  }

  /// Advance the engine one synchronous round once the barrier clears;
  /// returns true when the iteration is finished (converged or round cap).
  virtual bool step_round(const EpochContext& ctx) {
    (void)ctx;
    return true;
  }

  /// Optional observability hook: append one RoundSample per active
  /// replica describing the round that just stepped (or the one-shot
  /// solve that just produced an allocation).  The pipeline stamps
  /// epoch/time and feeds the samples to the attached flight recorder and
  /// monitor; it only calls this when one of those is enabled, so the
  /// default path never pays for it.  Backends with per-replica stats to
  /// report override it; the default reports nothing.
  virtual void observe(const EpochContext& ctx,
                       std::vector<telemetry::RoundSample>& out) {
    (void)ctx;
    (void)out;
  }

  /// Final allocation of a finished iterative epoch.  Saves warm-start
  /// state and releases the engine.
  virtual Matrix extract_allocation(const EpochContext& ctx);

  /// One-shot solve (non-iterative backends), invoked after the compute
  /// delay.  Returning nullopt stalls the epoch (e.g. the centralized
  /// coordinator died) until a membership change aborts and restarts it.
  virtual std::optional<Matrix> solve_oneshot(const EpochContext& ctx) {
    (void)ctx;
    return std::nullopt;
  }

  /// Drop per-epoch engine state after a membership change aborted the
  /// solve.  Warm-start state survives (the restart reuses it).
  virtual void abort_epoch() {}
};

}  // namespace edr::core
