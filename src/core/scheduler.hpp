// Scheduler interface: one scheduling epoch in, one traffic matrix out.
//
// Everything the evaluation compares — EDR-LDDM, EDR-CDPSM, the centralized
// reference, Round-Robin, DONAR — implements this interface, so the bench
// harness can replay identical traces through each algorithm and attribute
// cost differences to the algorithm alone.
#pragma once

#include <memory>
#include <string>

#include "common/matrix.hpp"
#include "core/cdpsm.hpp"
#include "core/lddm.hpp"
#include "optim/problem.hpp"
#include "optim/solver.hpp"

namespace edr::core {

struct ScheduleResult {
  Matrix allocation;
  /// Distributed rounds to convergence (0 for non-iterative schedulers).
  std::size_t rounds = 0;
  /// Coordination messages exchanged while solving.
  std::size_t messages = 0;
  /// Coordination bytes exchanged while solving.
  std::size_t bytes = 0;
  bool converged = true;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Compute an allocation for `problem`.  Throws std::runtime_error if the
  /// instance is infeasible (callers validate with check_transport_feasible
  /// when infeasibility is an expected input).
  [[nodiscard]] virtual ScheduleResult schedule(
      const optim::Problem& problem) = 0;
};

/// The "single central agent" the paper contrasts EDR with.
class CentralizedScheduler final : public Scheduler {
 public:
  explicit CentralizedScheduler(optim::CentralizedOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string name() const override { return "Centralized"; }
  [[nodiscard]] ScheduleResult schedule(
      const optim::Problem& problem) override;

 private:
  optim::CentralizedOptions options_;
};

/// EDR running the consensus-based projected subgradient method.
class CdpsmScheduler final : public Scheduler {
 public:
  explicit CdpsmScheduler(CdpsmOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "EDR-CDPSM"; }
  [[nodiscard]] ScheduleResult schedule(
      const optim::Problem& problem) override;

 private:
  CdpsmOptions options_;
};

/// EDR running Lagrangian dual decomposition.
class LddmScheduler final : public Scheduler {
 public:
  explicit LddmScheduler(LddmOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "EDR-LDDM"; }
  [[nodiscard]] ScheduleResult schedule(
      const optim::Problem& problem) override;

 private:
  LddmOptions options_;
};

/// The paper's baseline: split every client's demand equally across its
/// latency-feasible replicas, oblivious to price and load, then waterfall
/// any capacity overflow onto the remaining feasible replicas.
[[nodiscard]] Matrix round_robin_allocation(const optim::Problem& problem);

}  // namespace edr::core
