#include "core/aggregation.hpp"

#include <cstring>
#include <string>
#include <unordered_map>

namespace edr::core {

ClientAggregation build_client_aggregation(const optim::Problem& problem) {
  const common::SparsityPattern& pattern = *problem.sparsity();
  const std::size_t clients = problem.num_clients();

  ClientAggregation agg;
  agg.class_of.resize(clients);
  agg.share.resize(clients, 0.0);

  // Key each client by the raw bytes of its sorted feasible-replica id list
  // (row_cols is ascending by construction).  Classes are numbered by first
  // appearance so the mapping is deterministic.
  std::unordered_map<std::string, std::uint32_t> class_ids;
  class_ids.reserve(clients);
  std::string key;
  for (std::size_t c = 0; c < clients; ++c) {
    const auto cols = pattern.row_cols(c);
    key.assign(reinterpret_cast<const char*>(cols.data()),
               cols.size_bytes());
    const auto [it, inserted] = class_ids.try_emplace(
        key, static_cast<std::uint32_t>(agg.representative.size()));
    if (inserted) {
      agg.representative.push_back(static_cast<std::uint32_t>(c));
      agg.class_demand.push_back(0.0);
    }
    agg.class_of[c] = it->second;
    agg.class_demand[it->second] += problem.demand(c);
  }
  for (std::size_t c = 0; c < clients; ++c) {
    const double total = agg.class_demand[agg.class_of[c]];
    if (total > 0.0) agg.share[c] = problem.demand(c) / total;
  }
  return agg;
}

optim::Problem aggregate_problem(const optim::Problem& problem,
                                 const ClientAggregation& agg) {
  const std::size_t classes = agg.num_classes();
  Matrix latency(classes, problem.num_replicas());
  for (std::size_t k = 0; k < classes; ++k)
    for (std::size_t n = 0; n < problem.num_replicas(); ++n)
      latency(k, n) = problem.latency(agg.representative[k], n);
  return optim::Problem(agg.class_demand, problem.replicas(),
                        std::move(latency), problem.max_latency());
}

void expand_allocation(const ClientAggregation& agg, const Matrix& aggregated,
                       Matrix& out) {
  const std::size_t clients = agg.class_of.size();
  const std::size_t replicas = aggregated.cols();
  out.reshape(clients, replicas, 0.0);
  for (std::size_t c = 0; c < clients; ++c) {
    const double w = agg.share[c];
    if (w == 0.0) continue;
    const auto src = aggregated.row(agg.class_of[c]);
    const auto dst = out.row(c);
    for (std::size_t n = 0; n < replicas; ++n) dst[n] = w * src[n];
  }
}

}  // namespace edr::core
