// EdrSystem — the full runtime on the simulated cluster.
//
// This is the system of paper §III-B/C running end to end: clients submit
// requests, replicas batch them into scheduling epochs, the distributed
// algorithm (CDPSM or LDDM) runs as real message rounds over the simulated
// network (round k+1 starts only after every round-k message has been
// delivered, so link latency, bandwidth and FIFO queueing shape the
// decision latency), assignments flow back to the clients, file transfers
// execute against each replica's line rate, activity timelines feed the
// emulated power meters, and the heartbeat ring watches for replica
// failures the whole time.
//
// Everything the paper measures falls out of one run() call:
//   Fig 3/4 — per-replica 50 Hz power traces,
//   Fig 6/7 — per-replica energy cost,
//   Fig 8   — total cost and consumption,
//   Fig 9   — per-request response times.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/ring.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/admm.hpp"
#include "core/algorithm.hpp"
#include "core/cdpsm.hpp"
#include "core/lddm.hpp"
#include "core/representation.hpp"
#include "net/network.hpp"
#include "net/sim.hpp"
#include "optim/problem.hpp"
#include "power/meter.hpp"
#include "power/model.hpp"
#include "power/pricing.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/trace.hpp"

namespace edr::core {

struct SystemConfig {
  /// Registry key of the scheduler backend ("lddm", "cdpsm", "central",
  /// "rr", plus anything registered via core/algorithm_registry.hpp — the
  /// baselines library adds "donar").
  std::string algorithm = "lddm";
  /// Energy/capacity parameters per replica (defines |N|).
  std::vector<optim::ReplicaParams> replicas;
  std::size_t num_clients = 8;
  /// Client->replica latency in ms; empty = generated uniform in
  /// [min_link_latency, max_link_latency] with per-client feasibility
  /// guaranteed (same policy as optim::make_random_instance).
  Matrix latency;
  Milliseconds min_link_latency = 0.1;
  Milliseconds max_link_latency = 2.0;
  Milliseconds max_latency = 1.8;  ///< T, the tolerable latency bound

  /// Requests arriving within one epoch are batched into one Problem.
  SimTime epoch_length = 1.0;
  /// Per-round local compute cost: seconds per matrix entry touched.
  double compute_seconds_per_entry = 2e-7;
  /// Per-request handling cost at the replicas (ClientListener accept +
  /// parse + bookkeeping); makes decision latency grow with batch size as
  /// in the paper's Fig 9.
  double request_service_seconds = 5e-4;

  /// Derive each replica's (α, β) scheduling coefficients from the physical
  /// power model and its line rate, so minimizing the model cost minimizes
  /// the *metered* cost (see DESIGN.md §5).  Off = use the coefficients in
  /// `replicas` verbatim (the paper's SystemG calibration).
  bool derive_energy_model_from_power = true;
  /// Carry warm-start state across epochs (LDDM multipliers + primal
  /// columns; any backend may keep such state via its DistributedAlgorithm).
  /// The paper does not discuss it; it is a pure runtime win and can be
  /// ablated.
  bool warm_start = true;
  /// When a traffic spike exceeds the pooled epoch capacity, admission
  /// control sheds demand proportionally; with retry enabled the shed
  /// megabytes re-enter the next epoch's batch (bounded by max_retries per
  /// original request) instead of being dropped.
  bool retry_shed = true;
  std::size_t max_retries = 3;

  /// Optional time-of-day tariffs, one per replica (empty = the static
  /// prices in `replicas`).  When set, the scheduler re-reads each region's
  /// price at every epoch and the meters bill with the exact time-varying
  /// integral — the "more restrictions" extension the paper leaves as
  /// future work (§V).
  std::vector<power::TimeOfDayTariff> tariffs;
  /// Whether the scheduler sees the true time-varying tariff (the default)
  /// or each tariff flattened to its mean — the blinded arm of the
  /// tariff-awareness ablation.  The meters always bill the true
  /// time-varying price either way; only the price the optimization
  /// minimizes changes.  Ignored when `tariffs` is empty.
  bool tariff_aware_scheduler = true;

  /// Optional per-replica power models (empty = `power` for all).  Lets a
  /// deployment mix hardware generations: an efficient node with a lower
  /// idle floor and shallower transfer curve competes on energy terms even
  /// in a pricier region.
  std::vector<power::PowerModelParams> power_per_replica;

  /// Runtime solver settings: looser than the library defaults because a
  /// scheduler needs ~0.1% accuracy, not 0.001%.
  CdpsmOptions cdpsm{.step = 0.0, .max_rounds = 300, .tolerance = 1e-4,
                     .patience = 3};
  LddmOptions lddm{.rho = 2.0, .mu_step = 0.0, .mu_step_factor = 3.0,
                   .max_rounds = 300, .tolerance = 1e-4, .patience = 3};
  AdmmOptions admm{.rho = 1.0, .max_rounds = 300, .tolerance = 1e-4,
                   .patience = 3};
  /// Worker threads for the deterministic parallel solve engine (projection
  /// row/column sweeps, per-replica CDPSM/LDDM steps).  0 = all hardware
  /// threads.  The default 1 is the exact historical serial path; results
  /// are bitwise identical for every value (static block partitioning +
  /// ordered reductions — pinned by the golden-equivalence digests).
  std::size_t solver_threads = 1;
  /// Iterate storage for the iterative backends (lddm/cdpsm); central, rr
  /// and donar ignore it.  kDense is the byte-identical golden path;
  /// kSparse keeps the solver state on the latency-feasible pairs only;
  /// kAggregated additionally collapses clients with identical feasible
  /// sets into equivalence classes (exact — see DESIGN.md §12).  Warm
  /// start is a dense-layout feature and is skipped for the compact
  /// representations.
  SolverRepresentation representation = SolverRepresentation::kDense;
  /// Kernel dispatch for the solver hot loops (common/simd.hpp): kScalar —
  /// the default — is the byte-pinned golden path (digests identical to the
  /// historical serial code); kAuto vectorizes with the running CPU's
  /// widest ISA (SSE2/AVX2+FMA) at tolerance-level numerical agreement.
  common::simd::Mode simd = common::simd::Mode::kScalar;
  power::PowerModelParams power;
  cluster::RingConfig ring;
  /// Enable the heartbeat ring (off saves events in pure-cost benches).
  bool enable_ring = true;
  /// Meter sampling rate (paper: ~50 samples/s).
  double meter_hz = 50.0;
  /// Record full power traces (Figs 3-4 need them; cost benches can skip).
  bool record_traces = true;

  /// Optional telemetry context (null = off, the no-op-cheap default).
  /// When set, the system wires the simulator clock into the tracer and
  /// instruments every layer: sim.* event-loop metrics, net.* per-type
  /// traffic counters and link-queueing histogram, solver.* round metrics,
  /// system.* epoch/response metrics, power.meter.* integration counters,
  /// plus epoch / solver-round / file-transfer spans for chrome://tracing.
  /// Telemetry never feeds back into scheduling decisions, so enabling it
  /// does not perturb determinism.
  std::shared_ptr<telemetry::Telemetry> telemetry;

  std::uint64_t seed = 1;
};

struct ReplicaReport {
  double assigned_mb = 0.0;
  Joules energy = 0.0;        ///< total integrated energy (downtime excluded)
  Joules active_energy = 0.0; ///< energy above the idle floor
  Cents cost = 0.0;           ///< price-weighted total energy
  Cents active_cost = 0.0;    ///< price-weighted active energy
  power::PowerTrace trace;    ///< empty unless record_traces
  bool alive = true;
  /// Total time spent crashed (before recovery or run end).
  SimTime downtime = 0.0;
};

struct RunReport {
  std::vector<ReplicaReport> replicas;
  Cents total_cost = 0.0;
  Cents total_active_cost = 0.0;
  Joules total_energy = 0.0;
  Joules total_active_energy = 0.0;

  /// Per-request decision latency (request arrival -> assignment received).
  std::vector<double> response_times_ms;
  [[nodiscard]] double mean_response_ms() const;
  [[nodiscard]] double p99_response_ms() const;

  std::size_t epochs = 0;
  std::size_t total_rounds = 0;
  std::size_t requests_served = 0;
  /// Requests shed because no latency-feasible replica was alive.
  std::size_t requests_dropped = 0;
  /// Megabytes shed by admission control and abandoned (retries exhausted
  /// or retry disabled).
  double megabytes_abandoned = 0.0;
  /// Megabytes that were shed but successfully served in a later epoch.
  double megabytes_retried = 0.0;
  double megabytes_served = 0.0;
  /// Coordination traffic only (excludes file data).
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  SimTime makespan = 0.0;
  /// Replicas that died (fault injection) during the run.
  std::vector<net::NodeId> failed_replicas;
  /// Per-epoch convergence summaries; filled only when a FlightRecorder is
  /// enabled on the telemetry context (empty otherwise, and the report
  /// JSON omits the section so pinned goldens are unaffected).
  std::vector<telemetry::EpochSummary> convergence;
  /// Alerts raised by the ConvergenceMonitor, when one is enabled.
  std::vector<telemetry::Alert> alerts;
};

/// A multiplicative change to client<->replica link quality, applied at a
/// scheduled instant (see EdrSystem::inject_link_change).  Factors
/// compose: inject the inverse factors later to restore the link.
struct LinkDegradation {
  /// Client index, or -1 for every client.
  int client = -1;
  /// Replica index, or -1 for every replica.
  int replica = -1;
  /// Multiplier on the link latency (> 1 inflates; scheduler feasibility
  /// and message delivery both see the new value).
  double latency_factor = 1.0;
  /// Multiplier on the link bandwidth (< 1 cuts capacity).  When the
  /// change is replica-wide (client == -1) the replica's schedulable
  /// capacity is scaled too, so the optimizer routes around the brownout.
  double bandwidth_factor = 1.0;
};

class EpochPipeline;

/// Drives one complete run of the system over a workload trace: the
/// algorithm-agnostic EpochPipeline (core/epoch_pipeline.hpp) under the
/// EDR host policy, with the backend picked from the algorithm registry by
/// SystemConfig::algorithm.
class EdrSystem {
 public:
  EdrSystem(SystemConfig config, workload::Trace trace);
  ~EdrSystem();
  EdrSystem(const EdrSystem&) = delete;
  EdrSystem& operator=(const EdrSystem&) = delete;

  /// Schedule replica `n` to crash at `when` (before run()).
  void inject_failure(std::size_t replica, SimTime when);

  /// Schedule a crashed replica to recover at `when`: it rejoins the ring
  /// (announcing itself to the survivors) and is eligible for scheduling
  /// from the next epoch on.
  void inject_recovery(std::size_t replica, SimTime when);

  /// Schedule a link-quality change at `when`: latency inflation and/or
  /// bandwidth cuts on the matched client<->replica links.  The scheduler
  /// re-reads the degraded latency matrix (and capacity) at the next
  /// epoch, so it routes around the brownout; schedule the inverse
  /// factors to lift it.
  void inject_link_change(const LinkDegradation& change, SimTime when);

  /// Execute the whole trace; may be called once.
  RunReport run();

  [[nodiscard]] const SystemConfig& config() const { return config_; }

 private:
  std::unique_ptr<EpochPipeline> impl_;
  SystemConfig config_;
};

/// Convenience latency-matrix generator shared with the instance generator.
[[nodiscard]] Matrix make_latency_matrix(Rng& rng, std::size_t num_clients,
                                         std::size_t num_replicas,
                                         Milliseconds min_latency,
                                         Milliseconds max_latency_link,
                                         Milliseconds bound);

}  // namespace edr::core
