// LDDM — Lagrangian dual decomposition method (paper §III-D.2, following
// Bertsekas-Tsitsiklis).
//
// The per-client demand equalities Σ_n p_{c,n} = R_c are dualized with
// multipliers μ_c.  One round:
//   1. each replica solves its local subproblem over its own column
//      (optim::solve_replica_subproblem, prox-regularized — see
//      objective.hpp for why) given the current μ, and reports the
//      per-client loads to the clients;
//   2. each client updates its multiplier by dual gradient ascent
//        μ_c ← μ_c + t · (Σ_n p_{c,n} − R_c)
//      and sends the new value back to the replicas.
// Coordination is client↔replica only — no replica↔replica traffic — which
// is the O(|C|·|N|) per-round communication the paper credits LDDM with.
//
// The engine exposes the same split personality as CdpsmEngine: pure
// per-role steps for the simulator agents plus a synchronous driver for
// tests and Fig 5.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/sparse.hpp"
#include "common/thread_pool.hpp"
#include "core/aggregation.hpp"
#include "core/representation.hpp"
#include "optim/convergence.hpp"
#include "optim/problem.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::core {

struct LddmOptions {
  /// Proximal weight ρ of the replica subproblem (must be > 0).  Larger ρ
  /// damps the dual oscillation of plain decomposition at the price of
  /// slower per-round progress; 2.0 balances both on the paper's setups.
  double rho = 2.0;
  /// Dual ascent step t; 0 = auto (mu_step_factor · ρ / |N|; ρ/|N| is the
  /// textbook-safe value since the dual gradient is |N|/ρ-Lipschitz under
  /// the prox term).
  double mu_step = 0.0;
  /// Multiplier on the auto dual step.  The prox term damps the iteration
  /// well past the nominal bound, so the runtime uses 3.0 for ~3x fewer
  /// rounds per epoch; keep 1.0 for conservative library use.
  double mu_step_factor = 1.0;
  std::size_t max_rounds = 2000;
  /// Initial dual value for every client.  NaN = auto: the negative of a
  /// mid-range marginal cost, which starts the primal near sensible loads
  /// (use 0.0 for a neutral cold start, e.g. in convergence studies).
  double initial_mu = std::numeric_limits<double>::quiet_NaN();
  /// Converged when the *recovered* solution (averaged + repaired) stops
  /// moving: its round-to-round change stays below tolerance × demand scale
  /// for `patience` consecutive rounds.  The raw dual iterates of a
  /// decomposition method oscillate even at the optimum, so they are not a
  /// usable stopping signal.
  double tolerance = 1e-5;
  std::size_t patience = 5;
  /// Worker lanes for the per-replica local solves and the recovery
  /// projection (0 = all hardware threads).  1 — the default — is the
  /// exact historical serial path; every other value produces bitwise
  /// identical results (static block partitioning, ordered reductions).
  std::size_t threads = 1;
  /// Iterate storage (see core/representation.hpp).  kDense is the golden
  /// path, byte-identical to the historical behavior.  kSparse/kAggregated
  /// keep the per-replica columns compact (one entry per feasible client)
  /// and solve the maskless subproblem on them; the recovered solution
  /// agrees with the dense one at solver-tolerance level.
  SolverRepresentation representation = SolverRepresentation::kDense;
  /// Kernel dispatch for the Cesàro average update, the served-load
  /// accumulation and the recovery projection (common/simd.hpp).  kScalar —
  /// the default — is the byte-pinned golden path.
  common::simd::Mode simd = common::simd::Mode::kScalar;
};

struct LddmRoundStats {
  std::size_t round = 0;
  double objective = 0.0;        ///< cost of the repaired current solution
  double demand_residual = 0.0;  ///< max_c |Σ_n p_{c,n} − R_c|
  double movement = 0.0;         ///< max column change this round
  std::size_t bytes_exchanged = 0;
};

/// Per-replica view of one round, collected only when enabled — feeds the
/// flight recorder.  Measured on the *recovered* solution (Cesàro average,
/// repaired): the raw dual columns oscillate even at the optimum, so they
/// are the wrong thing to observe.
struct LddmReplicaStats {
  double local_objective = 0.0;  ///< E_n at this round's recovered load
  double movement = 0.0;  ///< ‖Δ recovered column‖₂ this round
  double load = 0.0;      ///< recovered Σ_c p_{c,n}
  double load_delta = 0.0;  ///< recovered load change vs the previous round
};

class LddmEngine {
 public:
  LddmEngine(const optim::Problem& problem, LddmOptions options = {});

  /// --- per-role steps (used by the simulator agents) ---

  /// Replica n's subproblem solve against `multipliers`; updates the stored
  /// column and prox center, returns the new column (one load per client).
  std::vector<double> solve_local(std::size_t n,
                                  std::span<const double> multipliers);

  /// Client-side dual update given the loads each replica reported for
  /// client c.  Returns the new μ_c.
  double update_multiplier(std::size_t c, double total_served);

  [[nodiscard]] const std::vector<double>& multipliers() const { return mu_; }

  /// Warm-start the dual variables (e.g. from the previous scheduling
  /// epoch); must be called before the first round.
  void set_multipliers(std::span<const double> mu);

  /// Warm-start replica n's primal column (prox center + recovery average).
  /// Dual-only warm starts barely help because the Cesàro average restarts
  /// from zero; carrying the primal as well is what shortens epochs.
  /// Dense representation only (throws std::logic_error otherwise).
  void set_column_state(std::size_t n, std::span<const double> column);
  /// Replica n's current primal column: one entry per client in the dense
  /// representation, one entry per *feasible* client (the pattern's column
  /// order) in the sparse/aggregated ones.
  [[nodiscard]] const std::vector<double>& column(std::size_t n) const {
    return columns_[n];
  }

  /// The problem the rounds actually iterate on: the original instance for
  /// kDense/kSparse, the aggregated instance for kAggregated.
  [[nodiscard]] const optim::Problem& work_problem() const { return *work_; }
  /// The client equivalence-class transform when representation ==
  /// kAggregated, null otherwise.
  [[nodiscard]] const ClientAggregation* aggregation() const {
    return aggregation_.get();
  }

  /// --- synchronous driver ---

  /// One full round (all replicas solve, all clients update μ).
  LddmRoundStats round();

  /// Run until convergence or the round limit; returns the trace.
  optim::ConvergenceTrace run();

  [[nodiscard]] bool converged() const { return converged_; }
  [[nodiscard]] std::size_t rounds_executed() const { return rounds_; }

  /// Current primal solution: running-average iterate assembled into a
  /// matrix and repaired to exact feasibility (dual methods meet the demand
  /// constraints only in the limit).
  [[nodiscard]] Matrix solution() const;

  /// Bytes one replica sends to clients per round (its column, split into
  /// per-client messages).
  [[nodiscard]] std::size_t bytes_per_replica_round() const;
  /// Bytes one client sends to replicas per round (its μ to each replica).
  [[nodiscard]] std::size_t bytes_per_client_round() const;

  [[nodiscard]] const LddmOptions& options() const { return options_; }
  [[nodiscard]] const optim::Problem& problem() const { return *problem_; }

  /// Record per-round local-solve/dual-update spans and the demand-residual
  /// gauge (solver.lddm.*) into `telemetry`.
  void attach_telemetry(telemetry::Telemetry& telemetry);

  /// Use an externally owned pool for the parallel round instead of the
  /// lazily created one implied by options().threads — the algorithm layer
  /// shares one pool across the per-epoch engines so threads are spawned
  /// once per run, not once per epoch.  `pool` must outlive the engine;
  /// null reverts to the options-driven behavior.
  void set_thread_pool(common::ThreadPool* pool) { external_pool_ = pool; }

  /// Collect LddmReplicaStats during round() (off by default; the flight
  /// recorder path turns it on).
  void set_collect_replica_stats(bool collect) { collect_stats_ = collect; }
  [[nodiscard]] bool collect_replica_stats() const { return collect_stats_; }
  /// Last round's per-replica stats (empty until a collected round ran).
  [[nodiscard]] const std::vector<LddmReplicaStats>& replica_stats() const {
    return replica_stats_;
  }

  /// Messages / bytes the rounds so far would have put on the wire
  /// (accumulated round by round — the counters ScheduleResult is fed from,
  /// mirrored into solver.lddm.* when telemetry is attached).
  [[nodiscard]] std::uint64_t messages_exchanged() const {
    return messages_exchanged_;
  }
  [[nodiscard]] std::uint64_t bytes_exchanged() const {
    return bytes_exchanged_;
  }

 private:
  /// solve_local without the return-by-value copy (round()'s hot path).
  void solve_local_inplace(std::size_t n, std::span<const double> multipliers);
  void solution_into(Matrix& out) const;
  /// Compact-path primal recovery: Cesàro average scattered into a sparse
  /// allocation over the work problem's pattern, then repaired.
  void solution_into_sparse(common::SparseAllocation& out) const;
  /// The pool the parallel regions should use this round: the external one
  /// when set, else a lazily built pool per options_.threads; null = serial.
  [[nodiscard]] common::ThreadPool* pool() const;

  const optim::Problem* problem_;
  LddmOptions options_;
  /// True iff representation != kDense — selects the compact round path.
  bool sparse_ = false;
  /// kAggregated state: the class transform and the aggregated instance the
  /// rounds run on.  work_ points at aggregated_problem_ when aggregating,
  /// else at problem_.
  std::unique_ptr<ClientAggregation> aggregation_;
  std::unique_ptr<optim::Problem> aggregated_problem_;
  const optim::Problem* work_ = nullptr;
  common::ThreadPool* external_pool_ = nullptr;
  mutable std::unique_ptr<common::ThreadPool> owned_pool_;
  std::uint64_t messages_exchanged_ = 0;
  std::uint64_t bytes_exchanged_ = 0;
  telemetry::EventTracer* tracer_ = &telemetry::disabled_tracer();
  telemetry::Counter rounds_metric_;
  telemetry::Counter messages_metric_;
  telemetry::Counter bytes_metric_;
  telemetry::Gauge objective_metric_;
  telemetry::Gauge residual_metric_;
  telemetry::Gauge movement_metric_;
  double mu_step_ = 0.0;
  bool collect_stats_ = false;
  std::vector<LddmReplicaStats> replica_stats_;
  std::vector<double> mu_;  // per client of the work problem
  // Per-replica primal state.  Dense: one entry per client.  Sparse /
  // aggregated: one entry per feasible client, in the pattern's column
  // order (masks_ is then unused — infeasible entries don't exist).
  std::vector<std::vector<double>> columns_;
  std::vector<std::vector<double>> average_;   // running primal average
  std::vector<std::vector<double>> masks_;     // per replica feasibility
  // Sparse-path scratch: per-replica compact gather of μ (the subproblem
  // reads the multipliers of its feasible clients only).
  std::vector<std::vector<double>> mu_gather_;
  // Round scratch, reused across rounds so the hot loop stays off the heap:
  // per-replica subproblem output buffers (swapped into columns_), the
  // previous columns for the movement stat, the per-client served totals,
  // and the recovered solution double-buffered against last_solution_.
  std::vector<std::vector<double>> solve_scratch_;
  std::vector<std::vector<double>> previous_columns_;
  std::vector<double> served_;
  Matrix scratch_solution_;
  Matrix last_solution_;
  // Compact-path counterparts of the recovered-solution double buffer.
  common::SparseAllocation sparse_scratch_solution_;
  common::SparseAllocation sparse_last_solution_;
  bool sparse_has_last_ = false;
  mutable common::SparseAllocation sparse_solution_tmp_;
  std::size_t stable_rounds_ = 0;
  std::size_t rounds_ = 0;
  bool converged_ = false;
};

}  // namespace edr::core
