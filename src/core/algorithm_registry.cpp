#include "core/algorithm_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/builtin_algorithms.hpp"
#include "core/system.hpp"

namespace edr::core {

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry = [] {
    AlgorithmRegistry r;
    r.add("lddm",
          "Lagrangian dual decomposition (paper default; client-replica "
          "traffic only)",
          [](const SystemConfig& cfg) {
            auto options = cfg.lddm;
            options.threads = cfg.solver_threads;
            options.representation = cfg.representation;
            options.simd = cfg.simd;
            return std::make_unique<LddmAlgorithm>(options, cfg.warm_start);
          });
    r.add("cdpsm",
          "Consensus projected subgradient (full estimate exchange between "
          "replicas)",
          [](const SystemConfig& cfg) {
            auto options = cfg.cdpsm;
            options.threads = cfg.solver_threads;
            options.representation = cfg.representation;
            options.simd = cfg.simd;
            return std::make_unique<CdpsmAlgorithm>(options);
          });
    r.add("admm",
          "Consensus ADMM (scaled form; fewest rounds at LDDM-class "
          "traffic)",
          [](const SystemConfig& cfg) {
            auto options = cfg.admm;
            options.threads = cfg.solver_threads;
            options.representation = cfg.representation;
            options.simd = cfg.simd;
            return std::make_unique<AdmmAlgorithm>(options, cfg.warm_start);
          });
    r.add("central",
          "Single-coordinator exact solve (the paper's centralized "
          "reference)",
          [](const SystemConfig&) {
            return std::make_unique<CentralizedAlgorithm>();
          });
    r.add("rr",
          "Energy-oblivious round-robin rotation (the paper's baseline)",
          [](const SystemConfig&) {
            return std::make_unique<RoundRobinAlgorithm>();
          });
    return r;
  }();
  return registry;
}

void AlgorithmRegistry::add(std::string key, AlgorithmFactory factory) {
  add(std::move(key), std::string(), std::move(factory));
}

void AlgorithmRegistry::add(std::string key, std::string description,
                            AlgorithmFactory factory) {
  for (auto& entry : entries_) {
    if (entry.key == key) {
      entry.description = std::move(description);
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(
      {std::move(key), std::move(description), std::move(factory)});
}

std::string AlgorithmRegistry::description(const std::string& key) const {
  for (const auto& entry : entries_)
    if (entry.key == key) return entry.description;
  return {};
}

bool AlgorithmRegistry::contains(const std::string& key) const {
  for (const auto& entry : entries_)
    if (entry.key == key) return true;
  return false;
}

std::vector<std::string> AlgorithmRegistry::keys() const {
  std::vector<std::string> keys;
  for (const auto& entry : entries_) keys.push_back(entry.key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::unique_ptr<DistributedAlgorithm> AlgorithmRegistry::make(
    const std::string& key, const SystemConfig& cfg) const {
  for (const auto& entry : entries_)
    if (entry.key == key) return entry.factory(cfg);
  std::string known;
  for (const auto& k : keys()) {
    if (!known.empty()) known += "|";
    known += k;
  }
  throw std::invalid_argument("unknown algorithm '" + key + "' (" + known +
                              ")");
}

std::unique_ptr<DistributedAlgorithm> make_algorithm(const SystemConfig& cfg) {
  return AlgorithmRegistry::instance().make(cfg.algorithm, cfg);
}

std::string algorithm_display_name(const std::string& key) {
  return AlgorithmRegistry::instance().make(key, SystemConfig{})
      ->display_name();
}

}  // namespace edr::core
