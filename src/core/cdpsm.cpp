#include "core/cdpsm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "optim/flow.hpp"
#include "optim/projection.hpp"

namespace edr::core {
namespace {

/// Project one column onto {q ≥ 0, Σq ≤ B_n}, leaving other columns alone.
/// Thread-local scratch: runs inside the per-replica parallel round, up to
/// 200 times per projection, so it must not allocate.
void project_column_capacity(const optim::Problem& problem, std::size_t n,
                             Matrix& allocation) {
  thread_local std::vector<double> column;
  column.resize(problem.num_clients());
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    column[c] = allocation(c, n);
  optim::project_capped_nonneg(column, problem.replica(n).bandwidth);
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    allocation(c, n) = column[c];
}

}  // namespace

CdpsmEngine::CdpsmEngine(const optim::Problem& problem, CdpsmOptions options)
    : problem_(&problem), options_(options) {
  const std::string issue = problem.validate();
  if (!issue.empty())
    throw std::invalid_argument("CdpsmEngine: invalid problem: " + issue);
  auto start = optim::initial_feasible_point(problem);
  if (!start)
    throw std::runtime_error("CdpsmEngine: instance is not feasible");
  step_ = options_.step > 0.0
              ? options_.step
              : 1.0 / std::max(problem.gradient_lipschitz_bound(), 1e-9);
  estimates_.assign(problem.num_replicas(), *start);
}

void CdpsmEngine::set_estimate(std::size_t n, Matrix estimate) {
  estimates_.at(n) = std::move(estimate);
}

common::ThreadPool* CdpsmEngine::pool() const {
  if (external_pool_ != nullptr)
    return external_pool_->lanes() > 1 ? external_pool_ : nullptr;
  const std::size_t lanes = common::ThreadPool::resolve(options_.threads);
  if (lanes <= 1) return nullptr;
  if (owned_pool_ == nullptr)
    owned_pool_ = std::make_unique<common::ThreadPool>(lanes);
  return owned_pool_.get();
}

void CdpsmEngine::project_local(std::size_t n, Matrix& estimate) const {
  // Dykstra between the shared demand set and this replica's capacity
  // column — the projection onto X_n.  Thread-local scratch: this runs once
  // per replica per round, inside a pool lane when the round is parallel,
  // and must not re-allocate four |C|×|N| matrices each time.  The inner
  // projections stay serial — the replica loop above already owns the lanes.
  thread_local Matrix corr_demand;
  thread_local Matrix corr_capacity;
  thread_local Matrix previous;
  thread_local Matrix before;
  corr_demand.reshape(estimate.rows(), estimate.cols(), 0.0);
  corr_capacity.reshape(estimate.rows(), estimate.cols(), 0.0);
  previous = estimate;
  for (std::size_t iter = 0; iter < 200; ++iter) {
    estimate.axpy(1.0, corr_demand);
    before = estimate;
    optim::project_demand_set(*problem_, estimate);
    corr_demand = before;
    corr_demand.axpy(-1.0, estimate);

    estimate.axpy(1.0, corr_capacity);
    before = estimate;
    project_column_capacity(*problem_, n, estimate);
    corr_capacity = before;
    corr_capacity.axpy(-1.0, estimate);

    const double change = estimate.distance(previous);
    previous = estimate;
    if (change <= 1e-11) break;
  }
  // End on the demand set so row sums are exact.
  optim::project_demand_set(*problem_, estimate);
}

Matrix CdpsmEngine::step_replica(std::size_t n,
                                 std::span<const Matrix> peer_estimates,
                                 CdpsmReplicaStats* stats) const {
  Matrix consensus;
  step_replica_into(n, peer_estimates, consensus, stats);
  return consensus;
}

void CdpsmEngine::step_replica_into(std::size_t n,
                                    std::span<const Matrix> peer_estimates,
                                    Matrix& out,
                                    CdpsmReplicaStats* stats) const {
  if (peer_estimates.size() != estimates_.size())
    throw std::invalid_argument(
        "CdpsmEngine::step_replica: need one estimate per replica");

  // Consensus with uniform weights a_j = 1/|N| (doubly stochastic on the
  // complete exchange graph the paper uses).
  const double weight = 1.0 / static_cast<double>(peer_estimates.size());
  out.reshape(problem_->num_clients(), problem_->num_replicas(), 0.0);
  for (const Matrix& peer : peer_estimates) out.axpy(weight, peer);

  // Gradient of the *local* objective E_n: only column n is non-zero.
  const double load = out.col_sum(n);
  const double derivative =
      optim::replica_cost_derivative(problem_->replica(n), load);
  const double step =
      options_.diminishing_step
          ? step_ / std::sqrt(static_cast<double>(rounds_ + 1))
          : step_;
  for (std::size_t c = 0; c < problem_->num_clients(); ++c)
    out(c, n) -= step * derivative;

  if (stats != nullptr) {
    stats->local_objective = optim::replica_cost(problem_->replica(n), load);
    stats->gradient_norm =
        std::abs(derivative) *
        std::sqrt(static_cast<double>(problem_->num_clients()));
    const Matrix pre_projection = out;
    project_local(n, out);
    stats->projection_correction = out.distance(pre_projection);
    stats->load = out.col_sum(n);
    return;
  }
  project_local(n, out);
}

CdpsmRoundStats CdpsmEngine::round() {
  previous_estimates_ = estimates_;  // copy-assign reuses the round scratch
  CdpsmRoundStats stats;
  stats.round = ++rounds_;
  rounds_metric_.add(1);

  if (collect_stats_) replica_stats_.assign(estimates_.size(), {});
  {
    telemetry::ScopedSpan span(*tracer_, "cdpsm.consensus_gradient",
                               "solver");
    // Per-replica consensus+gradient+projection, one static block of
    // replicas per lane.  Every lane reads the shared previous_estimates_
    // snapshot and writes only its own estimates_[n] — disjoint writes, so
    // the result is bitwise identical for every lane count.
    const auto step_block = [this](std::size_t /*lane*/, std::size_t begin,
                                   std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        step_replica_into(n, previous_estimates_, estimates_[n],
                          collect_stats_ ? &replica_stats_[n] : nullptr);
        if (collect_stats_)
          replica_stats_[n].load_delta =
              replica_stats_[n].load - previous_estimates_[n].col_sum(n);
      }
    };
    if (common::ThreadPool* p = pool(); p != nullptr)
      p->for_blocks(estimates_.size(), step_block);
    else
      step_block(0, 0, estimates_.size());
  }

  // Reductions stay serial and in index order (part of the determinism
  // contract; max() is order-insensitive but keeping one code path is
  // simpler to reason about than proving each reduction safe).
  for (std::size_t n = 0; n < estimates_.size(); ++n) {
    stats.movement = std::max(stats.movement,
                              estimates_[n].distance(previous_estimates_[n]));
    for (std::size_t m = n + 1; m < estimates_.size(); ++m)
      stats.disagreement = std::max(stats.disagreement,
                                    estimates_[n].distance(estimates_[m]));
  }
  stats.bytes_exchanged =
      bytes_per_replica_round() * estimates_.size();
  messages_exchanged_ += estimates_.size() * (estimates_.size() - 1);
  bytes_exchanged_ += stats.bytes_exchanged;
  messages_metric_.add(estimates_.size() * (estimates_.size() - 1));
  bytes_metric_.add(stats.bytes_exchanged);

  telemetry::ScopedSpan recover_span(*tracer_, "cdpsm.recover", "solver");
  solution_into(scratch_solution_);
  stats.objective = problem_->total_cost(scratch_solution_);
  objective_metric_.set(stats.objective);
  disagreement_metric_.set(stats.disagreement);
  movement_metric_.set(stats.movement);
  const double scale = std::max(problem_->total_demand(), 1.0);
  if (!last_solution_.empty() &&
      scratch_solution_.distance(last_solution_) <=
          options_.tolerance * scale) {
    if (++stable_rounds_ >= options_.patience) converged_ = true;
  } else {
    stable_rounds_ = 0;
  }
  // Double-buffer: the new solution becomes last_solution_, the old buffer
  // becomes next round's scratch.
  std::swap(last_solution_, scratch_solution_);
  return stats;
}

optim::ConvergenceTrace CdpsmEngine::run() {
  optim::ConvergenceTrace trace;
  double bytes_total = 0.0;
  while (!converged_ && rounds_ < options_.max_rounds) {
    const auto stats = round();
    bytes_total += static_cast<double>(stats.bytes_exchanged);
    trace.record({stats.round, stats.objective,
                  std::max(stats.disagreement, stats.movement), bytes_total});
  }
  return trace;
}

Matrix CdpsmEngine::solution() const {
  Matrix mean;
  solution_into(mean);
  return mean;
}

void CdpsmEngine::solution_into(Matrix& out) const {
  const double weight = 1.0 / static_cast<double>(estimates_.size());
  out.reshape(problem_->num_clients(), problem_->num_replicas(), 0.0);
  for (const Matrix& estimate : estimates_) out.axpy(weight, estimate);
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  optim::project_feasible(*problem_, out, dykstra);
}

void CdpsmEngine::attach_telemetry(telemetry::Telemetry& telemetry) {
  tracer_ = &telemetry.tracer();
  auto& metrics = telemetry.metrics();
  rounds_metric_ = metrics.counter("solver.cdpsm.rounds");
  messages_metric_ = metrics.counter("solver.cdpsm.messages");
  bytes_metric_ = metrics.counter("solver.cdpsm.bytes");
  objective_metric_ = metrics.gauge("solver.cdpsm.objective");
  disagreement_metric_ = metrics.gauge("solver.cdpsm.disagreement");
  movement_metric_ = metrics.gauge("solver.cdpsm.movement");
}

std::size_t CdpsmEngine::bytes_per_replica_round() const {
  // Each replica ships its full |C|x|N| estimate to every other replica —
  // the O(|C|·|N|³) total the paper charges CDPSM with.
  return net::wire_size_matrix(problem_->num_clients(),
                               problem_->num_replicas()) *
         (estimates_.size() - 1);
}

}  // namespace edr::core
