#include "core/cdpsm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "optim/flow.hpp"
#include "optim/projection.hpp"

namespace edr::core {
namespace {

/// Project one column onto {q ≥ 0, Σq ≤ B_n}, leaving other columns alone.
/// Thread-local scratch: runs inside the per-replica parallel round, up to
/// 200 times per projection, so it must not allocate.
void project_column_capacity(const optim::Problem& problem, std::size_t n,
                             Matrix& allocation, common::simd::Mode simd) {
  thread_local std::vector<double> column;
  column.resize(problem.num_clients());
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    column[c] = allocation(c, n);
  optim::project_capped_nonneg(column, problem.replica(n).bandwidth, simd);
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    allocation(c, n) = column[c];
}

/// Compact counterpart: project column n of a sparse allocation through the
/// pattern's column view.
void project_column_capacity(const optim::Problem& problem, std::size_t n,
                             common::SparseAllocation& allocation,
                             common::simd::Mode simd) {
  thread_local std::vector<double> column;
  const auto positions = allocation.pattern().col_positions(n);
  const std::span<double> values = allocation.values();
  column.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i)
    column[i] = values[positions[i]];
  optim::project_capped_nonneg(column, problem.replica(n).bandwidth, simd);
  for (std::size_t i = 0; i < positions.size(); ++i)
    values[positions[i]] = column[i];
}

}  // namespace

CdpsmEngine::CdpsmEngine(const optim::Problem& problem, CdpsmOptions options)
    : problem_(&problem), options_(options) {
  const std::string issue = problem.validate();
  if (!issue.empty())
    throw std::invalid_argument("CdpsmEngine: invalid problem: " + issue);
  sparse_ = options_.representation != SolverRepresentation::kDense;
  work_ = problem_;
  if (options_.representation == SolverRepresentation::kAggregated) {
    aggregation_ = std::make_unique<ClientAggregation>(
        build_client_aggregation(problem));
    aggregated_problem_ = std::make_unique<optim::Problem>(
        aggregate_problem(problem, *aggregation_));
    work_ = aggregated_problem_.get();
  }
  auto start = optim::initial_feasible_point(*work_);
  if (!start)
    throw std::runtime_error("CdpsmEngine: instance is not feasible");
  step_ = options_.step > 0.0
              ? options_.step
              : 1.0 / std::max(work_->gradient_lipschitz_bound(), 1e-9);
  if (sparse_) {
    common::SparseAllocation seed(work_->sparsity());
    seed.from_dense(*start);
    sparse_estimates_.assign(work_->num_replicas(), seed);
  } else {
    estimates_.assign(problem.num_replicas(), *start);
  }
}

void CdpsmEngine::set_estimate(std::size_t n, Matrix estimate) {
  if (sparse_)
    throw std::logic_error(
        "CdpsmEngine::set_estimate: dense representation only");
  estimates_.at(n) = std::move(estimate);
}

common::ThreadPool* CdpsmEngine::pool() const {
  if (external_pool_ != nullptr)
    return external_pool_->lanes() > 1 ? external_pool_ : nullptr;
  const std::size_t lanes = common::ThreadPool::resolve(options_.threads);
  if (lanes <= 1) return nullptr;
  if (owned_pool_ == nullptr)
    owned_pool_ = std::make_unique<common::ThreadPool>(lanes);
  return owned_pool_.get();
}

void CdpsmEngine::project_local(std::size_t n, Matrix& estimate) const {
  // Dykstra between the shared demand set and this replica's capacity
  // column — the projection onto X_n.  Thread-local scratch: this runs once
  // per replica per round, inside a pool lane when the round is parallel,
  // and must not re-allocate four |C|×|N| matrices each time.  The inner
  // projections stay serial — the replica loop above already owns the lanes.
  thread_local Matrix corr_demand;
  thread_local Matrix corr_capacity;
  thread_local Matrix previous;
  thread_local Matrix before;
  corr_demand.reshape(estimate.rows(), estimate.cols(), 0.0);
  corr_capacity.reshape(estimate.rows(), estimate.cols(), 0.0);
  previous = estimate;
  for (std::size_t iter = 0; iter < 200; ++iter) {
    estimate.axpy(1.0, corr_demand, options_.simd);
    before = estimate;
    optim::project_demand_set(*problem_, estimate, nullptr, options_.simd);
    corr_demand = before;
    corr_demand.axpy(-1.0, estimate, options_.simd);

    estimate.axpy(1.0, corr_capacity, options_.simd);
    before = estimate;
    project_column_capacity(*problem_, n, estimate, options_.simd);
    corr_capacity = before;
    corr_capacity.axpy(-1.0, estimate, options_.simd);

    const double change = estimate.distance(previous, options_.simd);
    previous = estimate;
    if (change <= 1e-11) break;
  }
  // End on the demand set so row sums are exact.
  optim::project_demand_set(*problem_, estimate, nullptr, options_.simd);
}

Matrix CdpsmEngine::step_replica(std::size_t n,
                                 std::span<const Matrix> peer_estimates,
                                 CdpsmReplicaStats* stats) const {
  if (sparse_)
    throw std::logic_error(
        "CdpsmEngine::step_replica: dense representation only");
  Matrix consensus;
  step_replica_into(n, peer_estimates, consensus, stats);
  return consensus;
}

void CdpsmEngine::project_local_sparse(
    std::size_t n, common::SparseAllocation& estimate) const {
  // Same Dykstra scheme as project_local, with flat per-feasible-pair
  // correction vectors instead of |C|×|N| matrices.
  thread_local std::vector<double> corr_demand;
  thread_local std::vector<double> corr_capacity;
  thread_local std::vector<double> previous;
  thread_local std::vector<double> before;
  const std::span<double> values = estimate.values();
  corr_demand.assign(values.size(), 0.0);
  corr_capacity.assign(values.size(), 0.0);
  previous.assign(values.begin(), values.end());
  before.resize(values.size());
  for (std::size_t iter = 0; iter < 200; ++iter) {
    common::simd::axpy(options_.simd, values, 1.0, corr_demand);
    std::copy(values.begin(), values.end(), before.begin());
    optim::project_demand_set(*work_, estimate, nullptr, options_.simd);
    corr_demand.assign(before.begin(), before.end());
    common::simd::axpy(options_.simd, corr_demand, -1.0, values);

    common::simd::axpy(options_.simd, values, 1.0, corr_capacity);
    std::copy(values.begin(), values.end(), before.begin());
    project_column_capacity(*work_, n, estimate, options_.simd);
    corr_capacity.assign(before.begin(), before.end());
    common::simd::axpy(options_.simd, corr_capacity, -1.0, values);

    const double change = common::simd::distance(options_.simd, values,
                                                 previous);
    previous.assign(values.begin(), values.end());
    if (change <= 1e-11) break;
  }
  // End on the demand set so row sums are exact.
  optim::project_demand_set(*work_, estimate, nullptr, options_.simd);
}

void CdpsmEngine::step_replica_into_sparse(
    std::size_t n, std::span<const common::SparseAllocation> peer_estimates,
    common::SparseAllocation& out, CdpsmReplicaStats* stats) const {
  if (peer_estimates.size() != sparse_estimates_.size())
    throw std::invalid_argument(
        "CdpsmEngine::step_replica: need one estimate per replica");

  const double weight = 1.0 / static_cast<double>(peer_estimates.size());
  if (out.empty()) out = common::SparseAllocation(work_->sparsity());
  out.fill(0.0);
  for (const common::SparseAllocation& peer : peer_estimates)
    out.axpy(weight, peer, options_.simd);

  // Gradient of the local objective E_n on the feasible entries of column n
  // only — the dense path also steps the latency-masked entries (the
  // projection re-zeroes them), so the iterates agree at tolerance level,
  // not bitwise.
  const double load = out.col_sum(n);
  const double derivative =
      optim::replica_cost_derivative(work_->replica(n), load);
  const double step =
      options_.diminishing_step
          ? step_ / std::sqrt(static_cast<double>(rounds_ + 1))
          : step_;
  const std::span<double> values = out.values();
  for (const std::uint32_t p : out.pattern().col_positions(n))
    values[p] -= step * derivative;

  if (stats != nullptr) {
    stats->local_objective = optim::replica_cost(work_->replica(n), load);
    stats->gradient_norm =
        std::abs(derivative) *
        std::sqrt(static_cast<double>(work_->num_clients()));
    thread_local std::vector<double> pre_projection;
    pre_projection.assign(values.begin(), values.end());
    project_local_sparse(n, out);
    stats->projection_correction =
        common::simd::distance(options_.simd, values, pre_projection);
    stats->load = out.col_sum(n);
    return;
  }
  project_local_sparse(n, out);
}

void CdpsmEngine::step_replica_into(std::size_t n,
                                    std::span<const Matrix> peer_estimates,
                                    Matrix& out,
                                    CdpsmReplicaStats* stats) const {
  if (peer_estimates.size() != estimates_.size())
    throw std::invalid_argument(
        "CdpsmEngine::step_replica: need one estimate per replica");

  // Consensus with uniform weights a_j = 1/|N| (doubly stochastic on the
  // complete exchange graph the paper uses).
  const double weight = 1.0 / static_cast<double>(peer_estimates.size());
  out.reshape(problem_->num_clients(), problem_->num_replicas(), 0.0);
  for (const Matrix& peer : peer_estimates)
    out.axpy(weight, peer, options_.simd);

  // Gradient of the *local* objective E_n: only column n is non-zero.
  const double load = out.col_sum(n);
  const double derivative =
      optim::replica_cost_derivative(problem_->replica(n), load);
  const double step =
      options_.diminishing_step
          ? step_ / std::sqrt(static_cast<double>(rounds_ + 1))
          : step_;
  for (std::size_t c = 0; c < problem_->num_clients(); ++c)
    out(c, n) -= step * derivative;

  if (stats != nullptr) {
    stats->local_objective = optim::replica_cost(problem_->replica(n), load);
    stats->gradient_norm =
        std::abs(derivative) *
        std::sqrt(static_cast<double>(problem_->num_clients()));
    const Matrix pre_projection = out;
    project_local(n, out);
    stats->projection_correction = out.distance(pre_projection, options_.simd);
    stats->load = out.col_sum(n);
    return;
  }
  project_local(n, out);
}

CdpsmRoundStats CdpsmEngine::round() {
  const std::size_t replicas = estimate_count();
  CdpsmRoundStats stats;
  stats.round = ++rounds_;
  rounds_metric_.add(1);

  if (collect_stats_) replica_stats_.assign(replicas, {});
  {
    telemetry::ScopedSpan span(*tracer_, "cdpsm.consensus_gradient",
                               "solver");
    // Per-replica consensus+gradient+projection, one static block of
    // replicas per lane.  Every lane reads the shared previous snapshot and
    // writes only its own estimate — disjoint writes, so the result is
    // bitwise identical for every lane count.
    if (sparse_) {
      sparse_previous_ = sparse_estimates_;  // copy-assign reuses scratch
      const auto step_block = [this](std::size_t /*lane*/, std::size_t begin,
                                     std::size_t end) {
        for (std::size_t n = begin; n < end; ++n) {
          step_replica_into_sparse(n, sparse_previous_, sparse_estimates_[n],
                                   collect_stats_ ? &replica_stats_[n]
                                                  : nullptr);
          if (collect_stats_)
            replica_stats_[n].load_delta =
                replica_stats_[n].load - sparse_previous_[n].col_sum(n);
        }
      };
      if (common::ThreadPool* p = pool(); p != nullptr)
        p->for_blocks(replicas, step_block);
      else
        step_block(0, 0, replicas);
    } else {
      previous_estimates_ = estimates_;
      const auto step_block = [this](std::size_t /*lane*/, std::size_t begin,
                                     std::size_t end) {
        for (std::size_t n = begin; n < end; ++n) {
          step_replica_into(n, previous_estimates_, estimates_[n],
                            collect_stats_ ? &replica_stats_[n] : nullptr);
          if (collect_stats_)
            replica_stats_[n].load_delta =
                replica_stats_[n].load - previous_estimates_[n].col_sum(n);
        }
      };
      if (common::ThreadPool* p = pool(); p != nullptr)
        p->for_blocks(replicas, step_block);
      else
        step_block(0, 0, replicas);
    }
  }

  // Reductions stay serial and in index order (part of the determinism
  // contract; max() is order-insensitive but keeping one code path is
  // simpler to reason about than proving each reduction safe).
  for (std::size_t n = 0; n < replicas; ++n) {
    stats.movement = std::max(
        stats.movement,
        sparse_
            ? sparse_estimates_[n].distance(sparse_previous_[n], options_.simd)
            : estimates_[n].distance(previous_estimates_[n], options_.simd));
    for (std::size_t m = n + 1; m < replicas; ++m)
      stats.disagreement = std::max(
          stats.disagreement,
          sparse_ ? sparse_estimates_[n].distance(sparse_estimates_[m],
                                                  options_.simd)
                  : estimates_[n].distance(estimates_[m], options_.simd));
  }
  stats.bytes_exchanged = bytes_per_replica_round() * replicas;
  messages_exchanged_ += replicas * (replicas - 1);
  bytes_exchanged_ += stats.bytes_exchanged;
  messages_metric_.add(replicas * (replicas - 1));
  bytes_metric_.add(stats.bytes_exchanged);

  telemetry::ScopedSpan recover_span(*tracer_, "cdpsm.recover", "solver");
  const double scale = std::max(problem_->total_demand(), 1.0);
  if (sparse_) {
    solution_into_sparse(sparse_scratch_solution_);
    // The aggregated objective equals the disaggregated one (the fan-out
    // preserves column sums), so this is the true E_g either way.
    stats.objective = work_->total_cost(sparse_scratch_solution_);
  } else {
    solution_into(scratch_solution_);
    stats.objective = problem_->total_cost(scratch_solution_);
  }
  objective_metric_.set(stats.objective);
  disagreement_metric_.set(stats.disagreement);
  movement_metric_.set(stats.movement);
  const bool stable =
      sparse_ ? (sparse_has_last_ &&
                 sparse_scratch_solution_.distance(
                     sparse_last_solution_, options_.simd) <=
                     options_.tolerance * scale)
              : (!last_solution_.empty() &&
                 scratch_solution_.distance(last_solution_, options_.simd) <=
                     options_.tolerance * scale);
  if (stable) {
    if (++stable_rounds_ >= options_.patience) converged_ = true;
  } else {
    stable_rounds_ = 0;
  }
  // Double-buffer: the new solution becomes last_solution_, the old buffer
  // becomes next round's scratch.
  if (sparse_) {
    std::swap(sparse_last_solution_, sparse_scratch_solution_);
    sparse_has_last_ = true;
  } else {
    std::swap(last_solution_, scratch_solution_);
  }
  return stats;
}

optim::ConvergenceTrace CdpsmEngine::run() {
  optim::ConvergenceTrace trace;
  double bytes_total = 0.0;
  while (!converged_ && rounds_ < options_.max_rounds) {
    const auto stats = round();
    bytes_total += static_cast<double>(stats.bytes_exchanged);
    trace.record({stats.round, stats.objective,
                  std::max(stats.disagreement, stats.movement), bytes_total});
  }
  return trace;
}

Matrix CdpsmEngine::solution() const {
  Matrix mean;
  if (sparse_) {
    solution_into_sparse(sparse_solution_tmp_);
    if (aggregation_ != nullptr) {
      thread_local Matrix aggregated_dense;
      sparse_solution_tmp_.to_dense(aggregated_dense);
      expand_allocation(*aggregation_, aggregated_dense, mean);
    } else {
      sparse_solution_tmp_.to_dense(mean);
    }
    return mean;
  }
  solution_into(mean);
  return mean;
}

void CdpsmEngine::solution_into(Matrix& out) const {
  const double weight = 1.0 / static_cast<double>(estimates_.size());
  out.reshape(problem_->num_clients(), problem_->num_replicas(), 0.0);
  for (const Matrix& estimate : estimates_)
    out.axpy(weight, estimate, options_.simd);
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  dykstra.simd = options_.simd;
  optim::project_feasible(*problem_, out, dykstra);
}

void CdpsmEngine::solution_into_sparse(common::SparseAllocation& out) const {
  if (out.empty()) out = common::SparseAllocation(work_->sparsity());
  const double weight = 1.0 / static_cast<double>(sparse_estimates_.size());
  out.fill(0.0);
  for (const common::SparseAllocation& estimate : sparse_estimates_)
    out.axpy(weight, estimate, options_.simd);
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  dykstra.simd = options_.simd;
  optim::project_feasible(*work_, out, dykstra);
}

void CdpsmEngine::attach_telemetry(telemetry::Telemetry& telemetry) {
  tracer_ = &telemetry.tracer();
  auto& metrics = telemetry.metrics();
  rounds_metric_ = metrics.counter("solver.cdpsm.rounds");
  messages_metric_ = metrics.counter("solver.cdpsm.messages");
  bytes_metric_ = metrics.counter("solver.cdpsm.bytes");
  objective_metric_ = metrics.gauge("solver.cdpsm.objective");
  disagreement_metric_ = metrics.gauge("solver.cdpsm.disagreement");
  movement_metric_ = metrics.gauge("solver.cdpsm.movement");
}

std::size_t CdpsmEngine::bytes_per_replica_round() const {
  if (sparse_) {
    // Compact frames: one (position, value) pair per feasible pair of the
    // work problem, to every peer.  Aggregation shrinks this further — the
    // aggregated pattern has one row per equivalence class.
    return net::wire_size_indexed_doubles(work_->sparsity()->nnz()) *
           (sparse_estimates_.size() - 1);
  }
  // Each replica ships its full |C|x|N| estimate to every other replica —
  // the O(|C|·|N|³) total the paper charges CDPSM with.
  return net::wire_size_matrix(problem_->num_clients(),
                               problem_->num_replicas()) *
         (estimates_.size() - 1);
}

}  // namespace edr::core
