#include "core/cdpsm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "optim/flow.hpp"
#include "optim/projection.hpp"

namespace edr::core {
namespace {

/// Project one column onto {q ≥ 0, Σq ≤ B_n}, leaving other columns alone.
void project_column_capacity(const optim::Problem& problem, std::size_t n,
                             Matrix& allocation) {
  std::vector<double> column(problem.num_clients());
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    column[c] = allocation(c, n);
  optim::project_capped_nonneg(column, problem.replica(n).bandwidth);
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    allocation(c, n) = column[c];
}

}  // namespace

CdpsmEngine::CdpsmEngine(const optim::Problem& problem, CdpsmOptions options)
    : problem_(&problem), options_(options) {
  const std::string issue = problem.validate();
  if (!issue.empty())
    throw std::invalid_argument("CdpsmEngine: invalid problem: " + issue);
  auto start = optim::initial_feasible_point(problem);
  if (!start)
    throw std::runtime_error("CdpsmEngine: instance is not feasible");
  step_ = options_.step > 0.0
              ? options_.step
              : 1.0 / std::max(problem.gradient_lipschitz_bound(), 1e-9);
  estimates_.assign(problem.num_replicas(), *start);
}

void CdpsmEngine::set_estimate(std::size_t n, Matrix estimate) {
  estimates_.at(n) = std::move(estimate);
}

void CdpsmEngine::project_local(std::size_t n, Matrix& estimate) const {
  // Dykstra between the shared demand set and this replica's capacity
  // column — the projection onto X_n.
  Matrix corr_demand(estimate.rows(), estimate.cols(), 0.0);
  Matrix corr_capacity(estimate.rows(), estimate.cols(), 0.0);
  Matrix previous = estimate;
  for (std::size_t iter = 0; iter < 200; ++iter) {
    estimate.axpy(1.0, corr_demand);
    Matrix before = estimate;
    optim::project_demand_set(*problem_, estimate);
    corr_demand = before;
    corr_demand.axpy(-1.0, estimate);

    estimate.axpy(1.0, corr_capacity);
    before = estimate;
    project_column_capacity(*problem_, n, estimate);
    corr_capacity = before;
    corr_capacity.axpy(-1.0, estimate);

    const double change = estimate.distance(previous);
    previous = estimate;
    if (change <= 1e-11) break;
  }
  // End on the demand set so row sums are exact.
  optim::project_demand_set(*problem_, estimate);
}

Matrix CdpsmEngine::step_replica(std::size_t n,
                                 std::span<const Matrix> peer_estimates,
                                 CdpsmReplicaStats* stats) const {
  if (peer_estimates.size() != estimates_.size())
    throw std::invalid_argument(
        "CdpsmEngine::step_replica: need one estimate per replica");

  // Consensus with uniform weights a_j = 1/|N| (doubly stochastic on the
  // complete exchange graph the paper uses).
  const double weight = 1.0 / static_cast<double>(peer_estimates.size());
  Matrix consensus(problem_->num_clients(), problem_->num_replicas(), 0.0);
  for (const Matrix& peer : peer_estimates) consensus.axpy(weight, peer);

  // Gradient of the *local* objective E_n: only column n is non-zero.
  const double load = consensus.col_sum(n);
  const double derivative =
      optim::replica_cost_derivative(problem_->replica(n), load);
  const double step =
      options_.diminishing_step
          ? step_ / std::sqrt(static_cast<double>(rounds_ + 1))
          : step_;
  for (std::size_t c = 0; c < problem_->num_clients(); ++c)
    consensus(c, n) -= step * derivative;

  if (stats != nullptr) {
    stats->local_objective = optim::replica_cost(problem_->replica(n), load);
    stats->gradient_norm =
        std::abs(derivative) *
        std::sqrt(static_cast<double>(problem_->num_clients()));
    const Matrix pre_projection = consensus;
    project_local(n, consensus);
    stats->projection_correction = consensus.distance(pre_projection);
    stats->load = consensus.col_sum(n);
    return consensus;
  }
  project_local(n, consensus);
  return consensus;
}

CdpsmRoundStats CdpsmEngine::round() {
  const std::vector<Matrix> previous = estimates_;
  CdpsmRoundStats stats;
  stats.round = ++rounds_;
  rounds_metric_.add(1);

  if (collect_stats_) replica_stats_.assign(estimates_.size(), {});
  {
    telemetry::ScopedSpan span(*tracer_, "cdpsm.consensus_gradient",
                               "solver");
    for (std::size_t n = 0; n < estimates_.size(); ++n) {
      const double previous_load = previous[n].col_sum(n);
      estimates_[n] = step_replica(
          n, previous, collect_stats_ ? &replica_stats_[n] : nullptr);
      if (collect_stats_)
        replica_stats_[n].load_delta =
            replica_stats_[n].load - previous_load;
    }
  }

  for (std::size_t n = 0; n < estimates_.size(); ++n) {
    stats.movement =
        std::max(stats.movement, estimates_[n].distance(previous[n]));
    for (std::size_t m = n + 1; m < estimates_.size(); ++m)
      stats.disagreement = std::max(stats.disagreement,
                                    estimates_[n].distance(estimates_[m]));
  }
  stats.bytes_exchanged =
      bytes_per_replica_round() * estimates_.size();
  messages_exchanged_ += estimates_.size() * (estimates_.size() - 1);
  bytes_exchanged_ += stats.bytes_exchanged;
  messages_metric_.add(estimates_.size() * (estimates_.size() - 1));
  bytes_metric_.add(stats.bytes_exchanged);

  telemetry::ScopedSpan recover_span(*tracer_, "cdpsm.recover", "solver");
  Matrix current = solution();
  stats.objective = problem_->total_cost(current);
  objective_metric_.set(stats.objective);
  disagreement_metric_.set(stats.disagreement);
  movement_metric_.set(stats.movement);
  const double scale = std::max(problem_->total_demand(), 1.0);
  if (!last_solution_.empty() &&
      current.distance(last_solution_) <= options_.tolerance * scale) {
    if (++stable_rounds_ >= options_.patience) converged_ = true;
  } else {
    stable_rounds_ = 0;
  }
  last_solution_ = std::move(current);
  return stats;
}

optim::ConvergenceTrace CdpsmEngine::run() {
  optim::ConvergenceTrace trace;
  double bytes_total = 0.0;
  while (!converged_ && rounds_ < options_.max_rounds) {
    const auto stats = round();
    bytes_total += static_cast<double>(stats.bytes_exchanged);
    trace.record({stats.round, stats.objective,
                  std::max(stats.disagreement, stats.movement), bytes_total});
  }
  return trace;
}

Matrix CdpsmEngine::solution() const {
  const double weight = 1.0 / static_cast<double>(estimates_.size());
  Matrix mean(problem_->num_clients(), problem_->num_replicas(), 0.0);
  for (const Matrix& estimate : estimates_) mean.axpy(weight, estimate);
  optim::project_feasible(*problem_, mean);
  return mean;
}

void CdpsmEngine::attach_telemetry(telemetry::Telemetry& telemetry) {
  tracer_ = &telemetry.tracer();
  auto& metrics = telemetry.metrics();
  rounds_metric_ = metrics.counter("solver.cdpsm.rounds");
  messages_metric_ = metrics.counter("solver.cdpsm.messages");
  bytes_metric_ = metrics.counter("solver.cdpsm.bytes");
  objective_metric_ = metrics.gauge("solver.cdpsm.objective");
  disagreement_metric_ = metrics.gauge("solver.cdpsm.disagreement");
  movement_metric_ = metrics.gauge("solver.cdpsm.movement");
}

std::size_t CdpsmEngine::bytes_per_replica_round() const {
  // Each replica ships its full |C|x|N| estimate to every other replica —
  // the O(|C|·|N|³) total the paper charges CDPSM with.
  return net::wire_size_matrix(problem_->num_clients(),
                               problem_->num_replicas()) *
         (estimates_.size() - 1);
}

}  // namespace edr::core
