#include "core/scheduler.hpp"

#include <stdexcept>

#include "optim/solver.hpp"

namespace edr::core {

ScheduleResult CentralizedScheduler::schedule(const optim::Problem& problem) {
  auto solved = optim::solve_centralized(problem, options_);
  if (!solved)
    throw std::runtime_error("CentralizedScheduler: infeasible instance");
  ScheduleResult result;
  result.allocation = std::move(solved->allocation);
  result.rounds = solved->iterations;
  result.converged = solved->converged;
  // A central coordinator still needs each client's demand in and the
  // assignment out: 2 messages per (client, replica) pair.
  result.messages = 2 * problem.num_clients();
  result.bytes = result.messages * 16;
  return result;
}

ScheduleResult CdpsmScheduler::schedule(const optim::Problem& problem) {
  CdpsmEngine engine(problem, options_);
  const auto trace = engine.run();
  ScheduleResult result;
  result.allocation = engine.solution();
  result.rounds = engine.rounds_executed();
  result.converged = engine.converged();
  // Fed from the engine's per-round traffic counters (the same counters the
  // telemetry registry mirrors), not recomputed from a closed-form tally.
  result.messages = engine.messages_exchanged();
  result.bytes = engine.bytes_exchanged();
  return result;
}

ScheduleResult LddmScheduler::schedule(const optim::Problem& problem) {
  LddmEngine engine(problem, options_);
  const auto trace = engine.run();
  ScheduleResult result;
  result.allocation = engine.solution();
  result.rounds = engine.rounds_executed();
  result.converged = engine.converged();
  result.messages = engine.messages_exchanged();
  result.bytes = engine.bytes_exchanged();
  return result;
}

Matrix round_robin_allocation(const optim::Problem& problem) {
  const std::size_t clients = problem.num_clients();
  const std::size_t replicas = problem.num_replicas();
  Matrix allocation(clients, replicas, 0.0);
  std::vector<double> remaining_capacity(replicas);
  for (std::size_t n = 0; n < replicas; ++n)
    remaining_capacity[n] = problem.replica(n).bandwidth;

  // First pass: equal split over feasible replicas, clipped to capacity.
  std::vector<double> unplaced(clients, 0.0);
  for (std::size_t c = 0; c < clients; ++c) {
    const std::size_t feasible = problem.feasible_count(c);
    if (feasible == 0) continue;
    const double share = problem.demand(c) / static_cast<double>(feasible);
    for (std::size_t n = 0; n < replicas; ++n) {
      if (!problem.feasible_pair(c, n)) continue;
      const double placed = std::min(share, remaining_capacity[n]);
      allocation(c, n) = placed;
      remaining_capacity[n] -= placed;
      unplaced[c] += share - placed;
    }
  }
  // Waterfall pass: push overflow onto whatever feasible capacity is left.
  for (std::size_t c = 0; c < clients; ++c) {
    for (std::size_t n = 0; n < replicas && unplaced[c] > 1e-12; ++n) {
      if (!problem.feasible_pair(c, n)) continue;
      const double placed = std::min(unplaced[c], remaining_capacity[n]);
      allocation(c, n) += placed;
      remaining_capacity[n] -= placed;
      unplaced[c] -= placed;
    }
  }
  return allocation;
}

}  // namespace edr::core
