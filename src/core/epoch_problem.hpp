// Per-epoch problem construction, shared by the simulator pipeline and the
// live runtime.
//
// The EDR paper's scheduler rebuilds its optimization instance at every
// epoch boundary from the alive replica set, the batched demand, the
// current tariff prices and the calibrated power model.  Both execution
// modes — the event-driven simulator (EpochPipeline) and the real-process
// runtime (src/runtime/) — must construct *bit-identical* instances from
// the same inputs, otherwise deterministic state-machine replication across
// transports breaks and the golden digests drift.  This module is the
// single definition of that construction; keep the floating-point operation
// order exactly as written.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/system.hpp"
#include "optim/problem.hpp"
#include "power/model.hpp"

namespace edr::core {

/// Inputs to the per-epoch problem construction.  Spans alias caller-owned
/// buffers; the spec is a cheap view, not an owner.
struct EpochProblemSpec {
  const SystemConfig* cfg = nullptr;
  /// Transfer window in seconds: epoch_length × transfer_window_fraction.
  /// Per-epoch replica capacity is bandwidth (MB/s) times this window.
  double window = 0.0;
  /// Wall/sim time of the epoch start — tariff lookups read prices here.
  double now = 0.0;
  /// Problem row -> client id (clients with demand and a feasible replica).
  std::span<const std::uint32_t> active_clients;
  /// Problem column -> replica id (alive replicas).
  std::span<const std::size_t> active_replicas;
  /// Per-replica power models; empty = `shared_model` for every host.
  std::span<const power::PowerModel> models;
  const power::PowerModel* shared_model = nullptr;

  [[nodiscard]] const power::PowerModel& model_of(std::size_t n) const {
    return models.empty() ? *shared_model : models[n];
  }
};

/// Build the epoch's scheduling problem: tariff-adjusted prices, energy
/// coefficients derived from the power model (when enabled), windowed
/// capacities, and the active-submatrix latency view.  `demands` is the
/// per-active-client demand vector (MB), consumed into the problem.
[[nodiscard]] optim::Problem make_epoch_problem(const EpochProblemSpec& spec,
                                                std::vector<Megabytes> demands);

/// Admission control for demand spikes: when the instance is
/// transport-infeasible even against pooled capacity, scale all demands by
/// routed/total·0.999 and rebuild.  Returns the shed fraction (0 when the
/// instance was already feasible).  Callers decide what happens to the shed
/// megabytes (the pipeline re-queues them through its retry backlog).
double shed_to_feasible(std::optional<optim::Problem>& problem,
                        Milliseconds max_latency);

}  // namespace edr::core
