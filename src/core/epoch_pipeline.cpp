#include "core/epoch_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"
#include "common/math_util.hpp"
#include "core/epoch_problem.hpp"
#include "optim/flow.hpp"

namespace edr::core {

telemetry::EventTracer& EpochPipeline::tracer() {
  return cfg_.telemetry ? cfg_.telemetry->tracer()
                        : telemetry::disabled_tracer();
}

EpochContext EpochPipeline::context() const {
  EpochContext ctx;
  ctx.problem = problem_ ? &*problem_ : nullptr;
  ctx.active_replicas = &active_replicas_;
  ctx.active_clients = &active_clients_;
  ctx.requests = &current_requests_;
  ctx.replica_alive = &alive_;
  ctx.num_replicas = num_replicas_;
  ctx.num_clients = num_clients_;
  ctx.num_solvers = num_solvers_;
  ctx.telemetry = cfg_.telemetry.get();
  return ctx;
}

EpochPipeline::EpochPipeline(SystemConfig config, PipelinePolicy policy,
                             std::unique_ptr<DistributedAlgorithm> algorithm,
                             workload::Trace trace)
    : cfg_(std::move(config)),
      policy_(policy),
      algorithm_(std::move(algorithm)),
      trace_(std::move(trace)),
      rng_(cfg_.seed),
      power_model_(cfg_.power) {
  num_replicas_ = cfg_.replicas.size();
  num_clients_ = cfg_.num_clients;
  num_solvers_ =
      policy_.num_solvers == 0 ? num_replicas_ : policy_.num_solvers;
  if (num_replicas_ == 0)
    throw std::invalid_argument("EdrSystem: no replicas configured");
  if (num_clients_ == 0)
    throw std::invalid_argument("EdrSystem: no clients configured");

  if (cfg_.latency.empty())
    cfg_.latency =
        make_latency_matrix(rng_, num_clients_, num_replicas_,
                            cfg_.min_link_latency, cfg_.max_link_latency,
                            cfg_.max_latency);
  if (cfg_.latency.rows() != num_clients_ ||
      cfg_.latency.cols() != num_replicas_)
    throw std::invalid_argument("EdrSystem: latency matrix shape mismatch");
  if (!cfg_.tariffs.empty() && cfg_.tariffs.size() != num_replicas_)
    throw std::invalid_argument(
        "EdrSystem: need one tariff per replica (or none)");
  if (!cfg_.power_per_replica.empty()) {
    if (cfg_.power_per_replica.size() != num_replicas_)
      throw std::invalid_argument(
          "EdrSystem: need one power model per replica (or none)");
    for (const auto& params : cfg_.power_per_replica)
      models_.emplace_back(params);
  }

  timelines_.resize(num_replicas_);
  alive_.assign(num_replicas_, true);
  death_time_.assign(num_replicas_, -1.0);
  down_intervals_.resize(num_replicas_);
  transfer_until_.assign(num_replicas_, 0.0);

  network_.set_type_name(kClientRequest, "client_request");
  network_.set_type_name(kAssignment, "assignment");
  network_.set_type_name(kFileData, "file_data");
  for (const auto& info : algorithm_->message_types())
    network_.set_type_name(info.id, info.name);
  network_.set_type_name(cluster::kHeartbeat, "ring_heartbeat");
  network_.set_type_name(cluster::kRemovalNotice, "ring_removal_notice");
  network_.set_type_name(cluster::kJoinNotice, "ring_join_notice");
  if (cfg_.telemetry) {
    sim_.attach_telemetry(*cfg_.telemetry);
    network_.attach_telemetry(*cfg_.telemetry);
    auto& metrics = cfg_.telemetry->metrics();
    epochs_metric_ = metrics.counter("system.epochs");
    rounds_metric_ = metrics.counter("system.rounds");
    requests_served_metric_ = metrics.counter("system.requests_served");
    requests_dropped_metric_ = metrics.counter("system.requests_dropped");
    response_metric_ = metrics.histogram(
        "system.response_ms",
        telemetry::MetricsRegistry::response_bounds_ms());
    recorder_ = cfg_.telemetry->flight_recorder();
    monitor_ = cfg_.telemetry->monitor();
  }
}

EpochPipeline::~EpochPipeline() {
  // The tracer clock points into this simulator; freeze it so a telemetry
  // context that outlives the system (the usual export-at-exit flow)
  // cannot read through a dangling pointer.
  if (cfg_.telemetry) cfg_.telemetry->tracer().set_clock(nullptr);
}

// ---------- setup ----------

void EpochPipeline::setup_links() {
  // Client <-> replica links carry the configured latency; the solver
  // interconnect (used by round traffic and ring heartbeats) uses the
  // minimum link latency (same-fabric assumption).
  if (policy_.per_client_links) {
    for (std::size_t c = 0; c < num_clients_; ++c) {
      for (std::size_t n = 0; n < num_replicas_; ++n) {
        net::LinkParams params;
        params.latency = cfg_.latency(c, n);
        params.bandwidth_mbps = cfg_.replicas[n].bandwidth;
        network_.set_link(client_node(c), solver_node(n), params);
        network_.set_link(solver_node(n), client_node(c), params);
      }
    }
  }
  net::LinkParams inter;
  inter.latency = cfg_.min_link_latency;
  inter.bandwidth_mbps = cfg_.replicas.front().bandwidth;
  network_.set_default_link(inter);
}

void EpochPipeline::attach_nodes() {
  for (std::size_t s = 0; s < num_solvers_; ++s) {
    network_.attach(solver_node(s), [this, s](const net::Message& msg) {
      on_solver_message(s, msg);
    });
  }
  for (std::size_t c = 0; c < num_clients_; ++c) {
    network_.attach(client_node(c), [this, c](const net::Message& msg) {
      on_client_message(c, msg);
    });
  }
}

void EpochPipeline::start_ring() {
  if (!cfg_.enable_ring) return;
  std::vector<net::NodeId> members;
  for (std::size_t n = 0; n < num_replicas_; ++n)
    members.push_back(solver_node(n));
  for (std::size_t n = 0; n < num_replicas_; ++n) {
    rings_.push_back(std::make_unique<cluster::RingNode>(
        network_, solver_node(n), cluster::MemberList{members}, cfg_.ring));
    rings_.back()->on_membership_change(
        [this](const cluster::MemberList&, net::NodeId dead) {
          on_member_dead(dead);
        });
  }
  for (auto& ring : rings_) ring->start();
}

void EpochPipeline::bucket_requests() {
  const SimTime horizon =
      std::max(trace_.horizon(), cfg_.epoch_length) + 1e-9;
  const auto num_epochs =
      static_cast<std::size_t>(horizon / cfg_.epoch_length) + 1;
  epoch_buckets_.assign(num_epochs, {});
  for (const auto& request : trace_.requests()) {
    if (request.client >= num_clients_)
      throw std::invalid_argument("EdrSystem: request client out of range");
    const auto epoch =
        static_cast<std::size_t>(request.arrival / cfg_.epoch_length);
    epoch_buckets_[epoch].push_back(
        {request.id, request.client, request.arrival, request.size_mb});
    // The client announces the request to the solvers responsible for it
    // at arrival time (the paper's ClientListener path); tiny control
    // message.
    sim_.schedule_at(request.arrival, [this, c = request.client] {
      announce_scratch_.clear();
      algorithm_->announce_targets(c, num_solvers_, announce_scratch_);
      for (const std::size_t s : announce_scratch_) {
        if (policy_.solvers_are_replicas && !alive_[s]) continue;
        send_control(client_node(c), solver_node(s),
                     algorithm_->announce_type(), 28);
      }
    });
  }
}

void EpochPipeline::schedule_epoch_boundaries() {
  for (std::size_t e = 0; e < epoch_buckets_.size(); ++e) {
    const SimTime when = static_cast<double>(e + 1) * cfg_.epoch_length;
    sim_.schedule_at(when, [this, e] {
      if (!epoch_buckets_[e].empty()) {
        solve_queue_.push_back(e);
        maybe_start_solve();
      }
    });
  }
}

// ---------- messaging ----------

void EpochPipeline::send_control(net::NodeId from, net::NodeId to, int type,
                                 std::size_t bytes, std::any payload) {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = type;
  msg.bytes = bytes;
  msg.payload = std::move(payload);
  network_.send(std::move(msg));
}

void EpochPipeline::on_solver_message(std::size_t s,
                                      const net::Message& msg) {
  if (policy_.solvers_are_replicas && !alive_[s]) return;
  if (msg.type >= 100 && msg.type < 200) {
    if (s < rings_.size()) rings_[s]->handle(msg);
    return;
  }
  // Announcements are bucketed centrally (the message cost is what counts);
  // only the algorithm's round traffic advances the barrier.
  if (algorithm_->is_round_type(msg.type)) on_round_message(msg);
}

void EpochPipeline::on_client_message(std::size_t c,
                                      const net::Message& msg) {
  (void)c;
  if (algorithm_->is_round_type(msg.type)) {
    on_round_message(msg);
    return;
  }
  if (msg.type == algorithm_->assignment_type()) on_assignment_delivered(msg);
}

// ---------- membership / failures ----------

void EpochPipeline::inject_failure(std::size_t n, SimTime when) {
  sim_.schedule_at(when, [this, n] {
    if (!alive_[n]) return;
    logf(LogLevel::kInfo, "edr: replica %zu crashes at t=%.3f", n,
         sim_.now());
    tracer().instant("replica_crash", "fault", solver_node(n));
    alive_[n] = false;
    death_time_[n] = sim_.now();
    timelines_[n].set(sim_.now(), power::Activity::kIdle);
    down_intervals_[n].emplace_back(sim_.now(), -1.0);
    network_.detach(solver_node(n));
    if (n < rings_.size()) rings_[n]->stop();
    report_.failed_replicas.push_back(solver_node(n));
    if (!cfg_.enable_ring) {
      // Without the ring there is no failure detector; surviving nodes
      // would stall forever, so propagate the change immediately (used
      // only by unit setups that disable the ring).
      on_member_dead(solver_node(n));
    }
  });
}

void EpochPipeline::inject_recovery(std::size_t n, SimTime when) {
  sim_.schedule_at(when, [this, n] {
    if (alive_[n]) return;
    logf(LogLevel::kInfo, "edr: replica %zu recovers at t=%.3f", n,
         sim_.now());
    tracer().instant("replica_recover", "fault", solver_node(n));
    alive_[n] = true;
    death_time_[n] = -1.0;
    if (!down_intervals_[n].empty() &&
        down_intervals_[n].back().second < 0.0)
      down_intervals_[n].back().second = sim_.now();
    timelines_[n].set(sim_.now(), power::Activity::kIdle);
    network_.attach(solver_node(n), [this, n](const net::Message& msg) {
      on_solver_message(n, msg);
    });
    if (n < rings_.size()) {
      // Learn the survivor set from any alive peer (here: our own alive[]
      // view, which a real node would fetch from a seed member).
      std::vector<net::NodeId> survivors;
      for (std::size_t m = 0; m < num_replicas_; ++m)
        if (alive_[m]) survivors.push_back(solver_node(m));
      rings_[n]->rejoin(cluster::MemberList{survivors});
    }
  });
}

void EpochPipeline::inject_link_change(const LinkDegradation& change,
                                       SimTime when) {
  sim_.schedule_at(when, [this, change] {
    logf(LogLevel::kInfo,
         "edr: link change at t=%.3f (client=%d replica=%d lat x%.2f "
         "bw x%.2f)",
         sim_.now(), change.client, change.replica, change.latency_factor,
         change.bandwidth_factor);
    tracer().instant("link_change", "fault", 0);
    const std::size_t c_lo = change.client < 0 ? 0 : change.client;
    const std::size_t c_hi =
        change.client < 0 ? num_clients_ : change.client + 1;
    const std::size_t n_lo = change.replica < 0 ? 0 : change.replica;
    const std::size_t n_hi =
        change.replica < 0 ? num_replicas_ : change.replica + 1;
    for (std::size_t c = c_lo; c < c_hi; ++c) {
      for (std::size_t n = n_lo; n < n_hi; ++n) {
        // The scheduler's feasibility view and the delivery path must
        // agree, so mutate both the config matrix and the live links.
        cfg_.latency(c, n) *= change.latency_factor;
        if (!policy_.per_client_links) continue;
        auto params = network_.link(client_node(c), solver_node(n));
        params.latency *= change.latency_factor;
        params.bandwidth_mbps *= change.bandwidth_factor;
        network_.set_link(client_node(c), solver_node(n), params);
        network_.set_link(solver_node(n), client_node(c), params);
      }
    }
    // A replica-wide cut also shrinks the capacity the optimizer plans
    // against (and the transfer pacing rate).
    if (change.client < 0 && change.bandwidth_factor != 1.0)
      for (std::size_t n = n_lo; n < n_hi; ++n)
        cfg_.replicas[n].bandwidth *= change.bandwidth_factor;
  });
}

void EpochPipeline::on_member_dead(net::NodeId dead) {
  const auto n = static_cast<std::size_t>(dead);
  if (n < alive_.size() && alive_[n]) {
    // Peers detected the crash before the crash event ran (possible only
    // with aggressive timeouts); honor their verdict.
    alive_[n] = false;
    death_time_[n] = sim_.now();
    timelines_[n].set(sim_.now(), power::Activity::kIdle);
    down_intervals_[n].emplace_back(sim_.now(), -1.0);
    network_.detach(dead);
    if (n < rings_.size()) rings_[n]->stop();
  }
  // Abort and restart any in-flight solve: the paper's "EDR will perform
  // the runtime scheduling again based on the new ring of replicas".
  if (solve_in_flight_) {
    ++solve_generation_;
    solve_in_flight_ = false;
    algorithm_->abort_epoch();
    solve_queue_.push_front(current_epoch_);
    set_all_selecting(false);
    maybe_start_solve();
  }
}

// ---------- power bookkeeping ----------

void EpochPipeline::set_activity(std::size_t n, power::Activity activity,
                                 double intensity) {
  if (!policy_.model_power) return;
  if (!alive_[n]) return;
  timelines_[n].set(sim_.now(), activity, intensity);
}

void EpochPipeline::set_all_selecting(bool selecting) {
  const double intensity = selection_intensity();
  for (std::size_t col = 0; col < active_replicas_.size(); ++col) {
    const std::size_t n = active_replicas_[col];
    if (!alive_[n]) continue;
    if (sim_.now() < transfer_until_[n]) continue;  // still transferring
    set_activity(n, selecting ? power::Activity::kSelecting
                              : power::Activity::kIdle,
                 selecting ? intensity : 0.0);
  }
}

/// Coordination intensity: normalize the backend's per-round traffic
/// against the CDPSM 8-replica reference volume so heavier protocols sit
/// visibly higher on the power traces (Fig 3 vs 4).
double EpochPipeline::selection_intensity() const {
  if (!problem_) return 0.5;
  const double clients = static_cast<double>(problem_->num_clients());
  const double replicas = static_cast<double>(problem_->num_replicas());
  const double bytes = algorithm_->coordination_bytes(clients, replicas);
  const double reference = clients * replicas * 8.0 * 7.0;
  return clamp(bytes / reference, 0.1, 1.5);
}

// ---------- solving ----------

void EpochPipeline::maybe_start_solve() {
  if (solve_in_flight_ || solve_queue_.empty()) return;
  const std::size_t epoch = solve_queue_.front();
  solve_queue_.pop_front();
  start_solve(epoch);
}

void EpochPipeline::start_solve(std::size_t epoch) {
  current_epoch_ = epoch;
  current_requests_ = epoch_buckets_[epoch];
  // Shed remainders from earlier epochs join whatever batch runs next.
  for (auto& request : retry_backlog_) current_requests_.push_back(request);
  retry_backlog_.clear();
  solve_started_ = sim_.now();

  // Build the active problem: alive replicas, clients with demand.
  active_replicas_.clear();
  for (std::size_t n = 0; n < num_replicas_; ++n)
    if (alive_[n]) active_replicas_.push_back(n);
  if (active_replicas_.empty()) {
    requests_dropped_ += current_requests_.size();
    requests_dropped_metric_.add(current_requests_.size());
    maybe_start_solve();
    return;
  }

  demand_scratch_.assign(num_clients_, 0.0);
  for (const auto& request : current_requests_)
    demand_scratch_[request.client] += request.size_mb;

  active_clients_.clear();
  std::vector<Megabytes> demands;
  kept_scratch_.clear();
  for (std::uint32_t c = 0; c < num_clients_; ++c) {
    if (demand_scratch_[c] <= 0.0) continue;
    // Latency feasibility against the *alive* replica set (hosts that do
    // not bound decision latency admit everyone).
    bool reachable = !policy_.drop_unreachable_clients;
    for (const std::size_t n : active_replicas_)
      if (cfg_.latency(c, n) <= cfg_.max_latency) reachable = true;
    if (!reachable) {
      for (const auto& request : current_requests_)
        if (request.client == c) {
          ++requests_dropped_;
          requests_dropped_metric_.add(1);
        }
      continue;
    }
    active_clients_.push_back(c);
    demands.push_back(demand_scratch_[c]);
  }
  for (const auto& request : current_requests_)
    for (const std::uint32_t c : active_clients_)
      if (request.client == c) {
        kept_scratch_.push_back(request);
        break;
      }
  // Swap rather than move so the displaced buffer's capacity is reused by
  // the next epoch's filter pass.
  std::swap(current_requests_, kept_scratch_);

  if (active_clients_.empty()) {
    maybe_start_solve();
    return;
  }

  // Problem construction is shared with the live runtime (replicas must
  // build bit-identical instances from the same inputs) — see
  // core/epoch_problem.hpp.
  const EpochProblemSpec spec{
      .cfg = &cfg_,
      .window = cfg_.epoch_length * policy_.transfer_window_fraction,
      .now = sim_.now(),
      .active_clients = active_clients_,
      .active_replicas = active_replicas_,
      .models = models_,
      .shared_model = &power_model_};
  problem_.emplace(make_epoch_problem(spec, std::move(demands)));

  // Demand can exceed even the pooled epoch capacity under a traffic
  // spike; shed proportionally (admission control) so the optimization
  // stays feasible.  The shed fraction of each request re-enters the next
  // epoch's batch (the client retry loop of a real deployment) until its
  // retry budget runs out.
  const double shed_fraction = shed_to_feasible(problem_, cfg_.max_latency);
  if (shed_fraction > 0.0) {
    for (auto& request : current_requests_) {
      const double shed_mb = request.size_mb * shed_fraction;
      request.size_mb -= shed_mb;
      if (cfg_.retry_shed && request.retries < cfg_.max_retries) {
        PendingRequest remainder = request;
        remainder.size_mb = shed_mb;
        remainder.retries += 1;
        retry_backlog_.push_back(remainder);
      } else {
        report_.megabytes_abandoned += shed_mb;
      }
    }
  }

  solve_in_flight_ = true;
  ++report_.epochs;
  epochs_metric_.add(1);
  const std::uint64_t generation = ++solve_generation_;
  epoch_span_ = tracer().new_id();
  // A solve aborted by a membership change leaves the recorder's epoch
  // open; begin_epoch discards it and starts the restart's fresh one.
  if (recorder_ != nullptr) recorder_->begin_epoch(current_epoch_, sim_.now());
  if (monitor_ != nullptr) monitor_->begin_epoch(current_epoch_);

  // Request-handling time before the optimization can begin: the
  // ClientListener path costs a fixed amount per request, which is what
  // makes decision latency grow with the batch size (Fig 9).
  const SimTime service_delay =
      static_cast<double>(current_requests_.size()) *
      cfg_.request_service_seconds;

  algorithm_->begin_epoch(context());
  if (algorithm_->iterative()) {
    set_all_selecting(true);
    if (policy_.split_service_delay) {
      sim_.schedule_after(service_delay, [this, generation] {
        if (generation != solve_generation_) return;
        schedule_round(generation);
      });
    } else {
      schedule_round(generation, service_delay);
    }
  } else {
    algorithm_->plan_prologue(context(), plan_scratch_);
    for (const auto& planned : plan_scratch_)
      send_control(node_of(planned.from_kind, planned.from),
                   node_of(planned.to_kind, planned.to), planned.type,
                   planned.bytes);
    const SimTime delay = service_delay + compute_delay();
    sim_.schedule_after(delay, [this, generation] {
      if (generation != solve_generation_) return;
      // A one-shot backend may decline to produce an allocation (e.g. the
      // centralized coordinator died mid-solve); the epoch then stalls
      // until a membership change aborts and restarts it.
      if (auto allocation = algorithm_->solve_oneshot(context())) {
        record_observation();
        finish_solve(std::move(*allocation));
      }
    });
  }
}

/// Seconds of local compute per distributed round: seconds-per-entry times
/// the |C|x|N| problem size times the backend's workload factor.
SimTime EpochPipeline::compute_delay() const {
  const double entries = static_cast<double>(problem_->num_clients()) *
                         static_cast<double>(problem_->num_replicas());
  return cfg_.compute_seconds_per_entry * entries *
         algorithm_->compute_factor(context());
}

void EpochPipeline::schedule_round(std::uint64_t generation,
                                   SimTime extra_delay) {
  round_started_ = sim_.now();
  round_span_ = tracer().new_id();
  sim_.schedule_after(extra_delay + compute_delay(), [this, generation] {
    if (generation != solve_generation_) return;
    launch_round_messages(generation);
  });
}

void EpochPipeline::launch_round_messages(std::uint64_t generation) {
  // Local compute is done; what follows until the barrier is the exchange.
  tracer().span("round.compute", "solver", round_started_,
                sim_.now() - round_started_, telemetry::kControlTrack,
                tracer().new_id(), round_span_);
  exchange_started_ = sim_.now();
  // Fire this round's coordination traffic; the barrier (all delivered)
  // triggers the synchronous math and the next round.  Flow events tie
  // each message's send/delivery to this round's span.
  round_msgs_pending_ = 0;
  pending_generation_ = generation;
  algorithm_->plan_round(context(), plan_scratch_);
  network_.set_flow_parent(round_span_);
  for (const auto& planned : plan_scratch_) {
    ++round_msgs_pending_;
    send_control(node_of(planned.from_kind, planned.from),
                 node_of(planned.to_kind, planned.to), planned.type,
                 planned.bytes, generation);
  }
  network_.set_flow_parent(0);
  if (round_msgs_pending_ == 0) {
    // Single-solver degenerate case: no traffic, just run the math.
    complete_round(generation);
  }
}

void EpochPipeline::on_round_message(const net::Message& msg) {
  if (!solve_in_flight_ || round_msgs_pending_ == 0) return;
  // Stale deliveries from a solve that was aborted (replica failure) must
  // not count toward the new round's barrier.
  const auto* generation = std::any_cast<std::uint64_t>(&msg.payload);
  if (generation == nullptr || *generation != pending_generation_) return;
  if (--round_msgs_pending_ == 0) complete_round(pending_generation_);
}

void EpochPipeline::complete_round(std::uint64_t generation) {
  if (generation != solve_generation_) return;
  ++report_.total_rounds;
  rounds_metric_.add(1);
  const bool done = algorithm_->step_round(context());
  record_observation();
  // The round span covers local compute + the message barrier (the math
  // above runs in zero sim time at the barrier instant); its exchange
  // child covers launch -> barrier.
  tracer().span("round.exchange", "net", exchange_started_,
                sim_.now() - exchange_started_, telemetry::kControlTrack,
                tracer().new_id(), round_span_);
  tracer().span("solver.round", "solver", round_started_,
                sim_.now() - round_started_, telemetry::kControlTrack,
                round_span_, epoch_span_);
  if (done) {
    finish_solve(algorithm_->extract_allocation(context()));
  } else {
    schedule_round(generation);
  }
}

/// Ask the backend for its per-replica view of the round that just
/// stepped, stamp it, and feed the recorder/monitor.  Gated so runs
/// without the opt-in attachments never touch the hook.
void EpochPipeline::record_observation() {
  if (recorder_ == nullptr && monitor_ == nullptr) return;
  sample_scratch_.clear();
  algorithm_->observe(context(), sample_scratch_);
  for (auto& sample : sample_scratch_) {
    sample.epoch = current_epoch_;
    sample.time = sim_.now();
    if (recorder_ != nullptr) recorder_->record(sample);
    if (monitor_ != nullptr) monitor_->observe(sample);
  }
}

void EpochPipeline::finish_solve(Matrix allocation) {
  solve_in_flight_ = false;
  set_all_selecting(false);
  tracer().span("epoch", "system", solve_started_,
                sim_.now() - solve_started_, telemetry::kControlTrack,
                epoch_span_, 0);
  if (recorder_ != nullptr) {
    auto summary = recorder_->end_epoch(sim_.now());
    if (monitor_ != nullptr) monitor_->end_epoch(summary);
    report_.convergence.push_back(summary);
  } else if (monitor_ != nullptr) {
    telemetry::EpochSummary summary;
    summary.epoch = current_epoch_;
    summary.end_time = sim_.now();
    monitor_->end_epoch(summary);
  }

  // Assignments out: the backend's fan-out tells each client its share
  // (the client's response time clock stops when its *last* share
  // arrives).
  algorithm_->plan_assignments(context(), plan_scratch_);
  for (const auto& planned : plan_scratch_)
    send_control(node_of(planned.from_kind, planned.from),
                 node_of(planned.to_kind, planned.to), planned.type,
                 planned.bytes, std::make_any<std::size_t>(current_epoch_));
  expected_assignments_[current_epoch_] = plan_scratch_.size();

  // Placement shortfall: a request-granular policy (Round-Robin) can fail
  // to place a remainder when a client's feasible replicas are full even
  // though other replicas have room.  Account for it explicitly so the
  // megabyte ledger always balances.
  double placed = 0.0;
  for (std::size_t col = 0; col < active_replicas_.size(); ++col)
    placed += allocation.col_sum(col);
  const double shortfall = problem_->total_demand() - placed;
  if (shortfall > 1e-9) report_.megabytes_abandoned += shortfall;

  // Transfers: replica col pushes its column total, paced over the
  // transfer window at intensity s_n / capacity.
  if (policy_.file_transfers) {
    const double window =
        cfg_.epoch_length * policy_.transfer_window_fraction;
    for (std::size_t col = 0; col < active_replicas_.size(); ++col) {
      const std::size_t n = active_replicas_[col];
      const double load_mb = allocation.col_sum(col);
      if (load_mb <= 1e-9 || !alive_[n]) continue;
      const double capacity_mb = cfg_.replicas[n].bandwidth * window;
      const double intensity = clamp(load_mb / capacity_mb, 0.0, 1.0);
      const double duration =
          load_mb <= capacity_mb ? window
                                 : load_mb / cfg_.replicas[n].bandwidth;
      set_activity(n, power::Activity::kTransfer, intensity);
      tracer().span("file_transfer", "transfer", sim_.now(), duration,
                    solver_node(n));
      transfer_until_[n] = sim_.now() + duration;
      report_.replicas[n].assigned_mb += load_mb;
      report_.megabytes_served += load_mb;
      sim_.schedule_after(duration, [this, n] {
        if (!alive_[n]) return;
        if (sim_.now() + 1e-12 >= transfer_until_[n])
          set_activity(n, power::Activity::kIdle, 0.0);
      });
    }
  }
  for (const auto& request : current_requests_) {
    if (request.retries == 0) {
      ++report_.requests_served;
      requests_served_metric_.add(1);
      // Response-time samples: arrival -> now (+ assignment delivery
      // latency, folded in by on_assignment_delivered).  Retried
      // remainders are follow-up transfers, not new decisions.
      pending_responses_[current_epoch_].push_back(request.arrival);
    } else {
      report_.megabytes_retried += request.size_mb;
    }
  }

  maybe_start_solve();
  schedule_backlog_epoch();
}

/// A retry backlog with no future organic epoch would strand; give it a
/// synthetic epoch one epoch-length out.
void EpochPipeline::schedule_backlog_epoch() {
  if (retry_backlog_.empty() || solve_in_flight_ || !solve_queue_.empty() ||
      synthetic_epoch_scheduled_)
    return;
  synthetic_epoch_scheduled_ = true;
  sim_.schedule_after(cfg_.epoch_length, [this] {
    synthetic_epoch_scheduled_ = false;
    if (retry_backlog_.empty()) return;
    epoch_buckets_.emplace_back();
    solve_queue_.push_back(epoch_buckets_.size() - 1);
    maybe_start_solve();
  });
}

void EpochPipeline::on_assignment_delivered(const net::Message& msg) {
  const auto* epoch = std::any_cast<std::size_t>(&msg.payload);
  if (epoch == nullptr) return;
  auto it = expected_assignments_.find(*epoch);
  if (it == expected_assignments_.end() || it->second == 0) return;
  if (--it->second == 0) {
    // Every share of this epoch has reached its client: close out the
    // epoch's response times.
    for (const SimTime arrival : pending_responses_[*epoch]) {
      const double response_ms = milliseconds(sim_.now() - arrival);
      report_.response_times_ms.push_back(response_ms);
      response_metric_.observe(response_ms);
      if (monitor_ != nullptr)
        monitor_->observe_response(response_ms, sim_.now(), *epoch);
    }
    pending_responses_.erase(*epoch);
    expected_assignments_.erase(it);
  }
}

// ---------- finalization ----------

RunReport EpochPipeline::finalize() {
  report_.makespan = sim_.now();
  report_.replicas.resize(num_replicas_);
  if (policy_.model_power) {
    for (std::size_t n = 0; n < num_replicas_; ++n) {
      auto& rep = report_.replicas[n];
      rep.alive = alive_[n];
      const SimTime horizon =
          alive_[n] ? report_.makespan : std::max(death_time_[n], 0.0);
      SimTime downtime = 0.0;
      for (const auto& [from, to] : down_intervals_[n]) {
        const SimTime end = to < 0.0 ? horizon : std::min(to, horizon);
        downtime += std::max(0.0, end - std::min(from, horizon));
      }
      rep.downtime = downtime;
      // Crashed intervals sit at the idle level in the timeline (set on
      // death); a powered-off node draws nothing, so bill them out.
      const auto& model = model_of(n);
      auto* const tel = cfg_.telemetry.get();
      rep.energy =
          power::integrate_energy(model, timelines_[n], horizon, tel) -
          model.params().idle * downtime;
      rep.active_energy =
          power::integrate_active_energy(model, timelines_[n], horizon, tel);
      if (cfg_.tariffs.empty()) {
        rep.cost = energy_cost(rep.energy, cfg_.replicas[n].price);
        rep.active_cost =
            energy_cost(rep.active_energy, cfg_.replicas[n].price);
      } else {
        rep.cost = power::integrate_cost(model, timelines_[n], horizon,
                                         cfg_.tariffs[n],
                                         /*active_only=*/false, tel);
        rep.active_cost =
            power::integrate_cost(model, timelines_[n], horizon,
                                  cfg_.tariffs[n], /*active_only=*/true, tel);
        // Bill out the crashed intervals (idle-level draw under the tariff).
        const power::ActivityTimeline always_idle;
        for (const auto& [from, to] : down_intervals_[n]) {
          const SimTime end = to < 0.0 ? horizon : std::min(to, horizon);
          if (end <= from) continue;
          rep.cost -= power::integrate_cost(model, always_idle, end,
                                            cfg_.tariffs[n]) -
                      power::integrate_cost(model, always_idle, from,
                                            cfg_.tariffs[n]);
        }
      }
      if (cfg_.record_traces)
        rep.trace = power::sample_trace(model, timelines_[n], horizon,
                                        cfg_.meter_hz, tel);
      report_.total_cost += rep.cost;
      report_.total_active_cost += rep.active_cost;
      report_.total_energy += rep.energy;
      report_.total_active_energy += rep.active_energy;
    }
  }
  for (const auto& request : retry_backlog_)
    report_.megabytes_abandoned += request.size_mb;
  // Coordination traffic comes from the network's per-type counters: the
  // protocol types live below 100 (the ring owns 100-199 and is membership
  // upkeep, not coordination; kFileData is modeled as paced activity, not
  // messages, so it never appears here).
  const auto control = network_.traffic_in_range(0, 99);
  report_.control_messages = control.messages;
  report_.control_bytes = control.bytes;
  report_.requests_dropped = requests_dropped_;
  if (monitor_ != nullptr) report_.alerts = monitor_->alerts();
  return std::move(report_);
}

RunReport EpochPipeline::run() {
  report_.replicas.resize(num_replicas_);
  setup_links();
  attach_nodes();
  start_ring();
  bucket_requests();
  schedule_epoch_boundaries();

  if (policy_.run_to_drain) {
    // No periodic ring traffic: the event loop drains on its own and the
    // makespan is the last delivery.
    sim_.run();
  } else {
    // The ring heartbeats forever; run until only periodic ring events are
    // left (no solve in flight, queue empty, all transfers done).
    const SimTime hard_stop =
        (static_cast<double>(epoch_buckets_.size()) + 4.0) *
            cfg_.epoch_length +
        trace_.horizon() + 10.0;
    sim_.run_until(hard_stop);
    for (auto& ring : rings_) ring->stop();
    sim_.run_until(hard_stop + cfg_.ring.failure_timeout);
  }
  return finalize();
}

}  // namespace edr::core
