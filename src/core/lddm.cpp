#include "core/lddm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "optim/objective.hpp"
#include "optim/projection.hpp"

namespace edr::core {

LddmEngine::LddmEngine(const optim::Problem& problem, LddmOptions options)
    : problem_(&problem), options_(options) {
  const std::string issue = problem.validate();
  if (!issue.empty())
    throw std::invalid_argument("LddmEngine: invalid problem: " + issue);
  if (options_.rho <= 0.0)
    throw std::invalid_argument("LddmEngine: rho must be > 0");

  sparse_ = options_.representation != SolverRepresentation::kDense;
  work_ = problem_;
  if (options_.representation == SolverRepresentation::kAggregated) {
    aggregation_ = std::make_unique<ClientAggregation>(
        build_client_aggregation(problem));
    aggregated_problem_ = std::make_unique<optim::Problem>(
        aggregate_problem(problem, *aggregation_));
    work_ = aggregated_problem_.get();
  }

  const std::size_t clients = work_->num_clients();
  const std::size_t replicas = work_->num_replicas();
  mu_step_ = options_.mu_step > 0.0
                 ? options_.mu_step
                 : options_.mu_step_factor * options_.rho /
                       static_cast<double>(replicas);

  if (std::isnan(options_.initial_mu)) {
    // Auto: make serving immediately attractive — the negative of a
    // mid-range marginal cost.  (Any start converges; this one starts the
    // primal near sensible loads instead of at zero.)
    double marginal = 0.0;
    for (std::size_t n = 0; n < replicas; ++n)
      marginal += optim::replica_cost_derivative(
          work_->replica(n),
          work_->total_demand() / static_cast<double>(replicas));
    marginal /= static_cast<double>(replicas);
    mu_.assign(clients, -marginal);
  } else {
    mu_.assign(clients, options_.initial_mu);
  }

  if (sparse_) {
    // Compact columns: one entry per feasible client, in the pattern's
    // ascending-row column order.  No masks — infeasible entries don't
    // exist in this storage.
    const common::SparsityPattern& pattern = *work_->sparsity();
    columns_.resize(replicas);
    average_.resize(replicas);
    solve_scratch_.resize(replicas);
    mu_gather_.resize(replicas);
    for (std::size_t n = 0; n < replicas; ++n) {
      const std::size_t size = pattern.col_nnz(n);
      columns_[n].assign(size, 0.0);
      average_[n].assign(size, 0.0);
      solve_scratch_[n].assign(size, 0.0);
      mu_gather_[n].assign(size, 0.0);
    }
  } else {
    columns_.assign(replicas, std::vector<double>(clients, 0.0));
    average_.assign(replicas, std::vector<double>(clients, 0.0));
    masks_.assign(replicas, std::vector<double>(clients, 0.0));
    solve_scratch_.assign(replicas, std::vector<double>(clients, 0.0));
    for (std::size_t n = 0; n < replicas; ++n)
      for (std::size_t c = 0; c < clients; ++c)
        masks_[n][c] = problem.feasible_pair(c, n) ? 1.0 : 0.0;
  }
}

common::ThreadPool* LddmEngine::pool() const {
  if (external_pool_ != nullptr)
    return external_pool_->lanes() > 1 ? external_pool_ : nullptr;
  const std::size_t lanes = common::ThreadPool::resolve(options_.threads);
  if (lanes <= 1) return nullptr;
  if (owned_pool_ == nullptr)
    owned_pool_ = std::make_unique<common::ThreadPool>(lanes);
  return owned_pool_.get();
}

std::vector<double> LddmEngine::solve_local(
    std::size_t n, std::span<const double> multipliers) {
  solve_local_inplace(n, multipliers);
  return columns_[n];
}

void LddmEngine::solve_local_inplace(std::size_t n,
                                     std::span<const double> multipliers) {
  // Solve into the per-replica scratch, then swap: the current column is
  // the prox center, which the bisection re-reads throughout, so a true
  // in-place solve is not possible — but the swap keeps this allocation-
  // free after the first round.
  if (sparse_) {
    // Gather the multipliers of this replica's feasible clients and run the
    // maskless compact subproblem.
    const auto rows = work_->sparsity()->col_rows(n);
    std::vector<double>& gathered = mu_gather_[n];
    for (std::size_t i = 0; i < rows.size(); ++i)
      gathered[i] = multipliers[rows[i]];
    optim::solve_replica_subproblem_into(work_->replica(n), gathered,
                                         columns_[n], options_.rho,
                                         solve_scratch_[n]);
  } else {
    optim::solve_replica_subproblem_into(problem_->replica(n), multipliers,
                                         masks_[n], columns_[n], options_.rho,
                                         solve_scratch_[n]);
  }
  std::swap(columns_[n], solve_scratch_[n]);
  // Running average for primal recovery (Cesàro average of iterates).
  const double k = static_cast<double>(rounds_ + 1);
  common::simd::cesaro_step(options_.simd, average_[n], columns_[n], k);
}

void LddmEngine::set_multipliers(std::span<const double> mu) {
  if (mu.size() != mu_.size())
    throw std::invalid_argument("LddmEngine::set_multipliers: size mismatch");
  if (rounds_ != 0)
    throw std::logic_error(
        "LddmEngine::set_multipliers: only valid before the first round");
  std::copy(mu.begin(), mu.end(), mu_.begin());
}

void LddmEngine::set_column_state(std::size_t n,
                                  std::span<const double> column) {
  if (sparse_)
    throw std::logic_error(
        "LddmEngine::set_column_state: dense representation only");
  if (n >= columns_.size())
    throw std::out_of_range("LddmEngine::set_column_state: bad replica");
  if (column.size() != columns_[n].size())
    throw std::invalid_argument("LddmEngine::set_column_state: size mismatch");
  if (rounds_ != 0)
    throw std::logic_error(
        "LddmEngine::set_column_state: only valid before the first round");
  for (std::size_t c = 0; c < column.size(); ++c) {
    const double value = masks_[n][c] != 0.0 ? std::max(column[c], 0.0) : 0.0;
    columns_[n][c] = value;
    average_[n][c] = value;
  }
}

double LddmEngine::update_multiplier(std::size_t c, double total_served) {
  mu_[c] += mu_step_ * (total_served - work_->demand(c));
  return mu_[c];
}

LddmRoundStats LddmEngine::round() {
  const std::size_t clients = work_->num_clients();
  const std::size_t replicas = work_->num_replicas();

  LddmRoundStats stats;
  previous_columns_ = columns_;  // copy-assign reuses the round scratch

  {
    telemetry::ScopedSpan span(*tracer_, "lddm.local_solves", "solver");
    // Per-replica subproblem solves, one static block of replicas per
    // lane.  Each solve touches only replica-owned state (columns_[n],
    // average_[n], solve_scratch_[n]) against the shared read-only μ —
    // disjoint writes, so the result is bitwise identical for every lane
    // count.
    const auto solve_block = [this](std::size_t /*lane*/, std::size_t begin,
                                    std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) solve_local_inplace(n, mu_);
    };
    if (common::ThreadPool* p = pool(); p != nullptr)
      p->for_blocks(replicas, solve_block);
    else
      solve_block(0, 0, replicas);
  }

  // Dual ascent and the reductions below stay serial and in index order —
  // the summation order of served[c] is part of the determinism contract.
  telemetry::ScopedSpan dual_span(*tracer_, "lddm.dual_update", "solver");
  served_.assign(clients, 0.0);
  if (sparse_) {
    // Same n-outer accumulation order as the dense sweep; the skipped
    // entries are exact zeros there.
    for (std::size_t n = 0; n < replicas; ++n) {
      const auto rows = work_->sparsity()->col_rows(n);
      for (std::size_t i = 0; i < rows.size(); ++i)
        served_[rows[i]] += columns_[n][i];
    }
  } else {
    for (std::size_t n = 0; n < replicas; ++n)
      common::simd::accumulate(options_.simd, served_, columns_[n]);
  }
  for (std::size_t c = 0; c < clients; ++c) {
    update_multiplier(c, served_[c]);
    stats.demand_residual = std::max(
        stats.demand_residual, std::abs(served_[c] - work_->demand(c)));
  }

  for (std::size_t n = 0; n < replicas; ++n) {
    // Compact columns hold col_nnz(n) entries, dense ones `clients`; the
    // skipped infeasible entries are exact zeros in dense storage, so the
    // movement norm is identical either way.
    stats.movement = std::max(
        stats.movement, common::simd::distance(options_.simd, columns_[n],
                                               previous_columns_[n]));
  }

  stats.round = ++rounds_;
  std::size_t round_messages = 2 * clients * replicas;
  if (sparse_) {
    // Client↔replica traffic exists only on feasible pairs: one compact
    // (row id, load) report and one μ update per pair per round.
    const std::size_t nnz = work_->sparsity()->nnz();
    round_messages = 2 * nnz;
    stats.bytes_exchanged = 2 * nnz * (4 + 8);
  } else {
    stats.bytes_exchanged = replicas * bytes_per_replica_round() +
                            clients * bytes_per_client_round();
  }
  messages_exchanged_ += round_messages;
  bytes_exchanged_ += stats.bytes_exchanged;
  rounds_metric_.add(1);
  messages_metric_.add(round_messages);
  bytes_metric_.add(stats.bytes_exchanged);

  // Convergence: the recovered solution stops moving for `patience` rounds.
  if (sparse_) {
    solution_into_sparse(sparse_scratch_solution_);
    // The aggregated objective equals the disaggregated one (the fan-out
    // preserves column sums), so this is the true E_g either way.
    stats.objective = work_->total_cost(sparse_scratch_solution_);
  } else {
    solution_into(scratch_solution_);
    stats.objective = problem_->total_cost(scratch_solution_);
  }
  objective_metric_.set(stats.objective);
  residual_metric_.set(stats.demand_residual);
  movement_metric_.set(stats.movement);
  if (collect_stats_) {
    // Observe the *recovered* solution, not the raw columns: dual iterates
    // oscillate even at the optimum (see solution()), so raw per-column
    // loads would read as pathological to any downstream monitor.
    replica_stats_.assign(replicas, {});
    for (std::size_t n = 0; n < replicas; ++n) {
      auto& replica = replica_stats_[n];
      double load = 0.0;
      double previous_load = 0.0;
      double sq = 0.0;
      if (sparse_) {
        const auto positions = work_->sparsity()->col_positions(n);
        const auto current_values = sparse_scratch_solution_.values();
        const auto last_values = sparse_last_solution_.values();
        for (const std::uint32_t p : positions) {
          const double value = current_values[p];
          const double prev = sparse_has_last_ ? last_values[p] : 0.0;
          load += value;
          previous_load += prev;
          const double d = value - prev;
          sq += d * d;
        }
      } else {
        for (std::size_t c = 0; c < clients; ++c) {
          const double value = scratch_solution_(c, n);
          const double prev =
              last_solution_.empty() ? 0.0 : last_solution_(c, n);
          load += value;
          previous_load += prev;
          const double d = value - prev;
          sq += d * d;
        }
      }
      replica.local_objective =
          optim::replica_cost(work_->replica(n), load);
      replica.movement = std::sqrt(sq);
      replica.load = load;
      replica.load_delta = load - previous_load;
    }
  }
  const double scale = std::max(problem_->total_demand(), 1.0);
  const bool stable =
      sparse_ ? (sparse_has_last_ &&
                 sparse_scratch_solution_.distance(
                     sparse_last_solution_, options_.simd) <=
                     options_.tolerance * scale)
              : (!last_solution_.empty() &&
                 scratch_solution_.distance(last_solution_, options_.simd) <=
                     options_.tolerance * scale);
  if (stable) {
    if (++stable_rounds_ >= options_.patience) converged_ = true;
  } else {
    stable_rounds_ = 0;
  }
  // Double-buffer: the new solution becomes last_solution_, the old buffer
  // becomes next round's scratch.
  if (sparse_) {
    std::swap(sparse_last_solution_, sparse_scratch_solution_);
    sparse_has_last_ = true;
  } else {
    std::swap(last_solution_, scratch_solution_);
  }
  return stats;
}

optim::ConvergenceTrace LddmEngine::run() {
  optim::ConvergenceTrace trace;
  double bytes_total = 0.0;
  while (!converged_ && rounds_ < options_.max_rounds) {
    const auto stats = round();
    bytes_total += static_cast<double>(stats.bytes_exchanged);
    trace.record({stats.round, stats.objective,
                  std::max(stats.demand_residual, stats.movement),
                  bytes_total});
  }
  return trace;
}

Matrix LddmEngine::solution() const {
  Matrix current;
  if (sparse_) {
    solution_into_sparse(sparse_solution_tmp_);
    if (aggregation_ != nullptr) {
      thread_local Matrix aggregated_dense;
      sparse_solution_tmp_.to_dense(aggregated_dense);
      expand_allocation(*aggregation_, aggregated_dense, current);
    } else {
      sparse_solution_tmp_.to_dense(current);
    }
    return current;
  }
  solution_into(current);
  return current;
}

void LddmEngine::solution_into_sparse(common::SparseAllocation& out) const {
  if (out.empty()) out = common::SparseAllocation(work_->sparsity());
  const std::span<double> values = out.values();
  const common::SparsityPattern& pattern = out.pattern();
  for (std::size_t n = 0; n < work_->num_replicas(); ++n) {
    const auto positions = pattern.col_positions(n);
    for (std::size_t i = 0; i < positions.size(); ++i)
      values[positions[i]] = average_[n][i];
  }
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  dykstra.simd = options_.simd;
  optim::project_feasible(*work_, out, dykstra);
}

void LddmEngine::solution_into(Matrix& out) const {
  const std::size_t clients = problem_->num_clients();
  const std::size_t replicas = problem_->num_replicas();
  // Cesàro average of the primal iterates: the raw dual-decomposition
  // iterates oscillate around the optimum, but their running average
  // converges (standard primal recovery); feasibility repair makes the
  // demand rows exact.
  out.reshape(clients, replicas, 0.0);
  for (std::size_t n = 0; n < replicas; ++n)
    for (std::size_t c = 0; c < clients; ++c) out(c, n) = average_[n][c];
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  dykstra.simd = options_.simd;
  optim::project_feasible(*problem_, out, dykstra);
}

void LddmEngine::attach_telemetry(telemetry::Telemetry& telemetry) {
  tracer_ = &telemetry.tracer();
  auto& metrics = telemetry.metrics();
  rounds_metric_ = metrics.counter("solver.lddm.rounds");
  messages_metric_ = metrics.counter("solver.lddm.messages");
  bytes_metric_ = metrics.counter("solver.lddm.bytes");
  objective_metric_ = metrics.gauge("solver.lddm.objective");
  residual_metric_ = metrics.gauge("solver.lddm.residual");
  movement_metric_ = metrics.gauge("solver.lddm.movement");
}

std::size_t LddmEngine::bytes_per_replica_round() const {
  if (sparse_) {
    // One (client id, load) pair per *feasible* client; per-replica traffic
    // varies with the column population, so report the mean.
    return work_->sparsity()->nnz() * (4 + 8) /
           std::max<std::size_t>(work_->num_replicas(), 1);
  }
  // One (client id, load) pair per client, shipped to that client.
  return problem_->num_clients() * (4 + 8);
}

std::size_t LddmEngine::bytes_per_client_round() const {
  if (sparse_) {
    // μ_c to each feasible replica; mean over clients.
    return work_->sparsity()->nnz() * (4 + 8) /
           std::max<std::size_t>(work_->num_clients(), 1);
  }
  // μ_c to every replica.
  return problem_->num_replicas() * (4 + 8);
}

}  // namespace edr::core
