#include "core/lddm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "optim/objective.hpp"
#include "optim/projection.hpp"

namespace edr::core {

LddmEngine::LddmEngine(const optim::Problem& problem, LddmOptions options)
    : problem_(&problem), options_(options) {
  const std::string issue = problem.validate();
  if (!issue.empty())
    throw std::invalid_argument("LddmEngine: invalid problem: " + issue);
  if (options_.rho <= 0.0)
    throw std::invalid_argument("LddmEngine: rho must be > 0");

  const std::size_t clients = problem.num_clients();
  const std::size_t replicas = problem.num_replicas();
  mu_step_ = options_.mu_step > 0.0
                 ? options_.mu_step
                 : options_.mu_step_factor * options_.rho /
                       static_cast<double>(replicas);

  if (std::isnan(options_.initial_mu)) {
    // Auto: make serving immediately attractive — the negative of a
    // mid-range marginal cost.  (Any start converges; this one starts the
    // primal near sensible loads instead of at zero.)
    double marginal = 0.0;
    for (std::size_t n = 0; n < replicas; ++n)
      marginal += optim::replica_cost_derivative(
          problem.replica(n),
          problem.total_demand() / static_cast<double>(replicas));
    marginal /= static_cast<double>(replicas);
    mu_.assign(clients, -marginal);
  } else {
    mu_.assign(clients, options_.initial_mu);
  }

  columns_.assign(replicas, std::vector<double>(clients, 0.0));
  average_.assign(replicas, std::vector<double>(clients, 0.0));
  masks_.assign(replicas, std::vector<double>(clients, 0.0));
  solve_scratch_.assign(replicas, std::vector<double>(clients, 0.0));
  for (std::size_t n = 0; n < replicas; ++n)
    for (std::size_t c = 0; c < clients; ++c)
      masks_[n][c] = problem.feasible_pair(c, n) ? 1.0 : 0.0;
}

common::ThreadPool* LddmEngine::pool() const {
  if (external_pool_ != nullptr)
    return external_pool_->lanes() > 1 ? external_pool_ : nullptr;
  const std::size_t lanes = common::ThreadPool::resolve(options_.threads);
  if (lanes <= 1) return nullptr;
  if (owned_pool_ == nullptr)
    owned_pool_ = std::make_unique<common::ThreadPool>(lanes);
  return owned_pool_.get();
}

std::vector<double> LddmEngine::solve_local(
    std::size_t n, std::span<const double> multipliers) {
  solve_local_inplace(n, multipliers);
  return columns_[n];
}

void LddmEngine::solve_local_inplace(std::size_t n,
                                     std::span<const double> multipliers) {
  // Solve into the per-replica scratch, then swap: the current column is
  // the prox center, which the bisection re-reads throughout, so a true
  // in-place solve is not possible — but the swap keeps this allocation-
  // free after the first round.
  optim::solve_replica_subproblem_into(problem_->replica(n), multipliers,
                                       masks_[n], columns_[n], options_.rho,
                                       solve_scratch_[n]);
  std::swap(columns_[n], solve_scratch_[n]);
  // Running average for primal recovery (Cesàro average of iterates).
  const double k = static_cast<double>(rounds_ + 1);
  for (std::size_t c = 0; c < columns_[n].size(); ++c)
    average_[n][c] += (columns_[n][c] - average_[n][c]) / k;
}

void LddmEngine::set_multipliers(std::span<const double> mu) {
  if (mu.size() != mu_.size())
    throw std::invalid_argument("LddmEngine::set_multipliers: size mismatch");
  if (rounds_ != 0)
    throw std::logic_error(
        "LddmEngine::set_multipliers: only valid before the first round");
  std::copy(mu.begin(), mu.end(), mu_.begin());
}

void LddmEngine::set_column_state(std::size_t n,
                                  std::span<const double> column) {
  if (n >= columns_.size())
    throw std::out_of_range("LddmEngine::set_column_state: bad replica");
  if (column.size() != columns_[n].size())
    throw std::invalid_argument("LddmEngine::set_column_state: size mismatch");
  if (rounds_ != 0)
    throw std::logic_error(
        "LddmEngine::set_column_state: only valid before the first round");
  for (std::size_t c = 0; c < column.size(); ++c) {
    const double value = masks_[n][c] != 0.0 ? std::max(column[c], 0.0) : 0.0;
    columns_[n][c] = value;
    average_[n][c] = value;
  }
}

double LddmEngine::update_multiplier(std::size_t c, double total_served) {
  mu_[c] += mu_step_ * (total_served - problem_->demand(c));
  return mu_[c];
}

LddmRoundStats LddmEngine::round() {
  const std::size_t clients = problem_->num_clients();
  const std::size_t replicas = problem_->num_replicas();

  LddmRoundStats stats;
  previous_columns_ = columns_;  // copy-assign reuses the round scratch

  {
    telemetry::ScopedSpan span(*tracer_, "lddm.local_solves", "solver");
    // Per-replica subproblem solves, one static block of replicas per
    // lane.  Each solve touches only replica-owned state (columns_[n],
    // average_[n], solve_scratch_[n]) against the shared read-only μ —
    // disjoint writes, so the result is bitwise identical for every lane
    // count.
    const auto solve_block = [this](std::size_t /*lane*/, std::size_t begin,
                                    std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) solve_local_inplace(n, mu_);
    };
    if (common::ThreadPool* p = pool(); p != nullptr)
      p->for_blocks(replicas, solve_block);
    else
      solve_block(0, 0, replicas);
  }

  // Dual ascent and the reductions below stay serial and in index order —
  // the summation order of served[c] is part of the determinism contract.
  telemetry::ScopedSpan dual_span(*tracer_, "lddm.dual_update", "solver");
  served_.assign(clients, 0.0);
  for (std::size_t n = 0; n < replicas; ++n)
    for (std::size_t c = 0; c < clients; ++c) served_[c] += columns_[n][c];
  for (std::size_t c = 0; c < clients; ++c) {
    update_multiplier(c, served_[c]);
    stats.demand_residual = std::max(
        stats.demand_residual, std::abs(served_[c] - problem_->demand(c)));
  }

  for (std::size_t n = 0; n < replicas; ++n) {
    double sq = 0.0;
    for (std::size_t c = 0; c < clients; ++c) {
      const double d = columns_[n][c] - previous_columns_[n][c];
      sq += d * d;
    }
    stats.movement = std::max(stats.movement, std::sqrt(sq));
  }

  stats.round = ++rounds_;
  stats.bytes_exchanged =
      replicas * bytes_per_replica_round() + clients * bytes_per_client_round();
  messages_exchanged_ += 2 * clients * replicas;
  bytes_exchanged_ += stats.bytes_exchanged;
  rounds_metric_.add(1);
  messages_metric_.add(2 * clients * replicas);
  bytes_metric_.add(stats.bytes_exchanged);

  // Convergence: the recovered solution stops moving for `patience` rounds.
  solution_into(scratch_solution_);
  const Matrix& current = scratch_solution_;
  stats.objective = problem_->total_cost(current);
  objective_metric_.set(stats.objective);
  residual_metric_.set(stats.demand_residual);
  movement_metric_.set(stats.movement);
  if (collect_stats_) {
    // Observe the *recovered* solution, not the raw columns: dual iterates
    // oscillate even at the optimum (see solution()), so raw per-column
    // loads would read as pathological to any downstream monitor.
    replica_stats_.assign(replicas, {});
    for (std::size_t n = 0; n < replicas; ++n) {
      auto& replica = replica_stats_[n];
      double load = 0.0;
      double previous_load = 0.0;
      double sq = 0.0;
      for (std::size_t c = 0; c < clients; ++c) {
        const double value = current(c, n);
        const double prev =
            last_solution_.empty() ? 0.0 : last_solution_(c, n);
        load += value;
        previous_load += prev;
        const double d = value - prev;
        sq += d * d;
      }
      replica.local_objective =
          optim::replica_cost(problem_->replica(n), load);
      replica.movement = std::sqrt(sq);
      replica.load = load;
      replica.load_delta = load - previous_load;
    }
  }
  const double scale = std::max(problem_->total_demand(), 1.0);
  if (!last_solution_.empty() &&
      current.distance(last_solution_) <= options_.tolerance * scale) {
    if (++stable_rounds_ >= options_.patience) converged_ = true;
  } else {
    stable_rounds_ = 0;
  }
  // Double-buffer: the new solution becomes last_solution_, the old buffer
  // becomes next round's scratch.
  std::swap(last_solution_, scratch_solution_);
  return stats;
}

optim::ConvergenceTrace LddmEngine::run() {
  optim::ConvergenceTrace trace;
  double bytes_total = 0.0;
  while (!converged_ && rounds_ < options_.max_rounds) {
    const auto stats = round();
    bytes_total += static_cast<double>(stats.bytes_exchanged);
    trace.record({stats.round, stats.objective,
                  std::max(stats.demand_residual, stats.movement),
                  bytes_total});
  }
  return trace;
}

Matrix LddmEngine::solution() const {
  Matrix current;
  solution_into(current);
  return current;
}

void LddmEngine::solution_into(Matrix& out) const {
  const std::size_t clients = problem_->num_clients();
  const std::size_t replicas = problem_->num_replicas();
  // Cesàro average of the primal iterates: the raw dual-decomposition
  // iterates oscillate around the optimum, but their running average
  // converges (standard primal recovery); feasibility repair makes the
  // demand rows exact.
  out.reshape(clients, replicas, 0.0);
  for (std::size_t n = 0; n < replicas; ++n)
    for (std::size_t c = 0; c < clients; ++c) out(c, n) = average_[n][c];
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  optim::project_feasible(*problem_, out, dykstra);
}

void LddmEngine::attach_telemetry(telemetry::Telemetry& telemetry) {
  tracer_ = &telemetry.tracer();
  auto& metrics = telemetry.metrics();
  rounds_metric_ = metrics.counter("solver.lddm.rounds");
  messages_metric_ = metrics.counter("solver.lddm.messages");
  bytes_metric_ = metrics.counter("solver.lddm.bytes");
  objective_metric_ = metrics.gauge("solver.lddm.objective");
  residual_metric_ = metrics.gauge("solver.lddm.residual");
  movement_metric_ = metrics.gauge("solver.lddm.movement");
}

std::size_t LddmEngine::bytes_per_replica_round() const {
  // One (client id, load) pair per client, shipped to that client.
  return problem_->num_clients() * (4 + 8);
}

std::size_t LddmEngine::bytes_per_client_round() const {
  // μ_c to every replica.
  return problem_->num_replicas() * (4 + 8);
}

}  // namespace edr::core
