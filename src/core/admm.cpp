#include "core/admm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "optim/flow.hpp"
#include "optim/objective.hpp"
#include "optim/projection.hpp"

namespace edr::core {

AdmmEngine::AdmmEngine(const optim::Problem& problem, AdmmOptions options)
    : problem_(&problem), options_(options) {
  const std::string issue = problem.validate();
  if (!issue.empty())
    throw std::invalid_argument("AdmmEngine: invalid problem: " + issue);
  if (options_.rho <= 0.0)
    throw std::invalid_argument("AdmmEngine: rho must be > 0");
  if (options_.adapt_factor <= 1.0)
    throw std::invalid_argument("AdmmEngine: adapt_factor must be > 1");
  if (options_.adapt_threshold <= 1.0)
    throw std::invalid_argument("AdmmEngine: adapt_threshold must be > 1");
  rho_ = options_.rho;

  sparse_ = options_.representation != SolverRepresentation::kDense;
  work_ = problem_;
  if (options_.representation == SolverRepresentation::kAggregated) {
    aggregation_ = std::make_unique<ClientAggregation>(
        build_client_aggregation(problem));
    aggregated_problem_ = std::make_unique<optim::Problem>(
        aggregate_problem(problem, *aggregation_));
    work_ = aggregated_problem_.get();
  }

  auto start = optim::initial_feasible_point(*work_);
  if (!start)
    throw std::runtime_error("AdmmEngine: instance is not feasible");

  const std::size_t clients = work_->num_clients();
  const std::size_t replicas = work_->num_replicas();
  zero_mu_.assign(clients, 0.0);
  prox_scratch_.resize(replicas);
  column_scratch_.resize(replicas);
  if (sparse_) {
    const common::SparsityPattern& pattern = *work_->sparsity();
    sparse_x_ = common::SparseAllocation(work_->sparsity());
    sparse_z_ = common::SparseAllocation(work_->sparsity());
    sparse_u_ = common::SparseAllocation(work_->sparsity());
    sparse_z_prev_ = common::SparseAllocation(work_->sparsity());
    sparse_z_.from_dense(*start);
    for (std::size_t n = 0; n < replicas; ++n) {
      const std::size_t size = pattern.col_nnz(n);
      prox_scratch_[n].assign(size, 0.0);
      column_scratch_[n].assign(size, 0.0);
    }
  } else {
    x_.reshape(clients, replicas, 0.0);
    z_ = *start;
    u_.reshape(clients, replicas, 0.0);
    z_prev_.reshape(clients, replicas, 0.0);
    masks_.assign(replicas, std::vector<double>(clients, 0.0));
    for (std::size_t n = 0; n < replicas; ++n) {
      prox_scratch_[n].assign(clients, 0.0);
      column_scratch_[n].assign(clients, 0.0);
      for (std::size_t c = 0; c < clients; ++c)
        masks_[n][c] = problem.feasible_pair(c, n) ? 1.0 : 0.0;
    }
  }
}

common::ThreadPool* AdmmEngine::pool() const {
  if (external_pool_ != nullptr)
    return external_pool_->lanes() > 1 ? external_pool_ : nullptr;
  const std::size_t lanes = common::ThreadPool::resolve(options_.threads);
  if (lanes <= 1) return nullptr;
  if (owned_pool_ == nullptr)
    owned_pool_ = std::make_unique<common::ThreadPool>(lanes);
  return owned_pool_.get();
}

void AdmmEngine::set_state(const Matrix& z, const Matrix& u) {
  if (sparse_)
    throw std::logic_error("AdmmEngine::set_state: dense representation only");
  if (rounds_ != 0)
    throw std::logic_error(
        "AdmmEngine::set_state: only valid before the first round");
  if (z.rows() != z_.rows() || z.cols() != z_.cols() ||
      u.rows() != u_.rows() || u.cols() != u_.cols())
    throw std::invalid_argument("AdmmEngine::set_state: shape mismatch");
  z_ = z;
  u_ = u;
  // Zero both on infeasible pairs (the warm carrier may hold stale mass
  // there after a membership change) and restore demand feasibility — the
  // x-update assumes its prox center came from a point in A.
  for (std::size_t n = 0; n < z_.cols(); ++n)
    for (std::size_t c = 0; c < z_.rows(); ++c)
      if (masks_[n][c] == 0.0) {
        z_(c, n) = 0.0;
        u_(c, n) = 0.0;
      }
  optim::project_demand_set(*work_, z_, nullptr, options_.simd);
}

void AdmmEngine::solve_replica(std::size_t n) {
  // Prox center z_n − u_n; the subproblem enforces mask, nonnegativity and
  // the capacity cap, so x_n lands in B_n exactly.
  std::vector<double>& prox = prox_scratch_[n];
  for (std::size_t c = 0; c < z_.rows(); ++c) prox[c] = z_(c, n) - u_(c, n);
  optim::solve_replica_subproblem_into(work_->replica(n), zero_mu_, masks_[n],
                                       prox, rho_, column_scratch_[n]);
  for (std::size_t c = 0; c < z_.rows(); ++c) x_(c, n) = column_scratch_[n][c];
}

void AdmmEngine::solve_replica_sparse(std::size_t n) {
  const auto positions = work_->sparsity()->col_positions(n);
  const std::span<const double> z_values = sparse_z_.values();
  const std::span<const double> u_values = sparse_u_.values();
  std::vector<double>& prox = prox_scratch_[n];
  for (std::size_t i = 0; i < positions.size(); ++i)
    prox[i] = z_values[positions[i]] - u_values[positions[i]];
  optim::solve_replica_subproblem_into(
      work_->replica(n),
      std::span<const double>(zero_mu_.data(), positions.size()), prox, rho_,
      column_scratch_[n]);
  const std::span<double> x_values = sparse_x_.values();
  for (std::size_t i = 0; i < positions.size(); ++i)
    x_values[positions[i]] = column_scratch_[n][i];
}

AdmmRoundStats AdmmEngine::round() {
  const std::size_t replicas = work_->num_replicas();
  AdmmRoundStats stats;
  stats.round = ++rounds_;
  rounds_metric_.add(1);

  {
    telemetry::ScopedSpan span(*tracer_, "admm.local_solves", "solver");
    // Per-replica x-update, one static block of replicas per lane.  Every
    // lane reads the shared Z/U and writes only its own column of X (its
    // own scratch, its own scatter targets) — disjoint writes, so the
    // result is bitwise identical for every lane count.
    const auto solve_block = [this](std::size_t /*lane*/, std::size_t begin,
                                    std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        if (sparse_)
          solve_replica_sparse(n);
        else
          solve_replica(n);
      }
    };
    if (common::ThreadPool* p = pool(); p != nullptr)
      p->for_blocks(replicas, solve_block);
    else
      solve_block(0, 0, replicas);
  }

  telemetry::ScopedSpan consensus_span(*tracer_, "admm.consensus_update",
                                       "solver");
  double primal = 0.0;
  double dual = 0.0;
  if (sparse_) {
    sparse_z_prev_ = sparse_z_;  // copy-assign reuses the buffer
    const std::span<double> z_values = sparse_z_.values();
    const std::span<const double> x_values = sparse_x_.values();
    std::copy(x_values.begin(), x_values.end(), z_values.begin());
    common::simd::accumulate(options_.simd, z_values, sparse_u_.values());
    optim::project_demand_set(*work_, sparse_z_, pool(), options_.simd);
    common::simd::accumulate(options_.simd, sparse_u_.values(), x_values);
    common::simd::axpy(options_.simd, sparse_u_.values(), -1.0, z_values);
    primal = sparse_x_.distance(sparse_z_, options_.simd);
    dual = rho_ * sparse_z_.distance(sparse_z_prev_, options_.simd);
  } else {
    z_prev_ = z_;
    z_ = x_;
    z_.axpy(1.0, u_, options_.simd);
    optim::project_demand_set(*work_, z_, pool(), options_.simd);
    u_.axpy(1.0, x_, options_.simd);
    u_.axpy(-1.0, z_, options_.simd);
    primal = x_.distance(z_, options_.simd);
    dual = rho_ * z_.distance(z_prev_, options_.simd);
  }
  stats.primal_residual = primal;
  stats.dual_residual = dual;

  // Residual balancing (Boyd §3.4.1): rescaling U keeps the unscaled dual
  // ρ·U invariant across the ρ change.
  if (options_.adapt_rho) {
    if (primal > options_.adapt_threshold * dual) {
      rho_ *= options_.adapt_factor;
      if (sparse_)
        sparse_u_.scale(1.0 / options_.adapt_factor);
      else
        u_.scale(1.0 / options_.adapt_factor);
    } else if (dual > options_.adapt_threshold * primal) {
      rho_ /= options_.adapt_factor;
      if (sparse_)
        sparse_u_.scale(options_.adapt_factor);
      else
        u_.scale(options_.adapt_factor);
    }
  }
  stats.rho = rho_;

  std::size_t round_messages = 2 * work_->num_clients() * replicas;
  if (sparse_) {
    // Client↔replica traffic exists only on feasible pairs: one compact
    // (row id, share) report and one consensus feedback per pair per round.
    const std::size_t nnz = work_->sparsity()->nnz();
    round_messages = 2 * nnz;
    stats.bytes_exchanged = 2 * nnz * (4 + 8);
  } else {
    stats.bytes_exchanged = replicas * bytes_per_replica_round() +
                            work_->num_clients() * bytes_per_client_round();
  }
  messages_exchanged_ += round_messages;
  bytes_exchanged_ += stats.bytes_exchanged;
  messages_metric_.add(round_messages);
  bytes_metric_.add(stats.bytes_exchanged);

  // Recovered solution (Z repaired to full feasibility) for the objective,
  // observability and the double buffer — same convention as the other
  // engines.
  if (sparse_) {
    solution_into_sparse(sparse_scratch_solution_);
    stats.objective = work_->total_cost(sparse_scratch_solution_);
  } else {
    solution_into(scratch_solution_);
    stats.objective = problem_->total_cost(scratch_solution_);
  }
  objective_metric_.set(stats.objective);
  primal_metric_.set(primal);
  dual_metric_.set(dual);
  rho_metric_.set(rho_);

  if (collect_stats_) {
    replica_stats_.assign(replicas, {});
    for (std::size_t n = 0; n < replicas; ++n) {
      auto& replica = replica_stats_[n];
      double load = 0.0;
      double previous_load = 0.0;
      double sq = 0.0;
      if (sparse_) {
        const auto positions = work_->sparsity()->col_positions(n);
        const auto current_values = sparse_scratch_solution_.values();
        const auto last_values = sparse_last_solution_.values();
        for (const std::uint32_t p : positions) {
          const double value = current_values[p];
          const double prev = sparse_has_last_ ? last_values[p] : 0.0;
          load += value;
          previous_load += prev;
          const double d = value - prev;
          sq += d * d;
        }
      } else {
        for (std::size_t c = 0; c < work_->num_clients(); ++c) {
          const double value = scratch_solution_(c, n);
          const double prev =
              last_solution_.empty() ? 0.0 : last_solution_(c, n);
          load += value;
          previous_load += prev;
          const double d = value - prev;
          sq += d * d;
        }
      }
      replica.local_objective = optim::replica_cost(work_->replica(n), load);
      replica.movement = std::sqrt(sq);
      replica.load = load;
      replica.load_delta = load - previous_load;
    }
  }

  // Residual-based stopping: both residuals small (relative to the demand
  // scale) for `patience` consecutive rounds.
  const double scale = std::max(problem_->total_demand(), 1.0);
  const bool stable = primal <= options_.tolerance * scale &&
                      dual <= options_.tolerance * scale;
  if (stable) {
    if (++stable_rounds_ >= options_.patience) converged_ = true;
  } else {
    stable_rounds_ = 0;
  }
  if (sparse_) {
    std::swap(sparse_last_solution_, sparse_scratch_solution_);
    sparse_has_last_ = true;
  } else {
    std::swap(last_solution_, scratch_solution_);
  }
  return stats;
}

optim::ConvergenceTrace AdmmEngine::run() {
  optim::ConvergenceTrace trace;
  double bytes_total = 0.0;
  while (!converged_ && rounds_ < options_.max_rounds) {
    const auto stats = round();
    bytes_total += static_cast<double>(stats.bytes_exchanged);
    trace.record({stats.round, stats.objective,
                  std::max(stats.primal_residual, stats.dual_residual),
                  bytes_total});
  }
  return trace;
}

Matrix AdmmEngine::solution() const {
  Matrix current;
  if (sparse_) {
    solution_into_sparse(sparse_solution_tmp_);
    if (aggregation_ != nullptr) {
      thread_local Matrix aggregated_dense;
      sparse_solution_tmp_.to_dense(aggregated_dense);
      expand_allocation(*aggregation_, aggregated_dense, current);
    } else {
      sparse_solution_tmp_.to_dense(current);
    }
    return current;
  }
  solution_into(current);
  return current;
}

void AdmmEngine::solution_into(Matrix& out) const {
  // Z is demand-feasible by construction; Dykstra repairs the (vanishing)
  // capacity violation so the reported point is exactly feasible.
  out = z_;
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  dykstra.simd = options_.simd;
  optim::project_feasible(*problem_, out, dykstra);
}

void AdmmEngine::solution_into_sparse(common::SparseAllocation& out) const {
  if (out.empty()) out = common::SparseAllocation(work_->sparsity());
  const std::span<const double> z_values = sparse_z_.values();
  std::copy(z_values.begin(), z_values.end(), out.values().begin());
  optim::DykstraOptions dykstra;
  dykstra.pool = pool();
  dykstra.simd = options_.simd;
  optim::project_feasible(*work_, out, dykstra);
}

void AdmmEngine::attach_telemetry(telemetry::Telemetry& telemetry) {
  tracer_ = &telemetry.tracer();
  auto& metrics = telemetry.metrics();
  rounds_metric_ = metrics.counter("solver.admm.rounds");
  messages_metric_ = metrics.counter("solver.admm.messages");
  bytes_metric_ = metrics.counter("solver.admm.bytes");
  objective_metric_ = metrics.gauge("solver.admm.objective");
  primal_metric_ = metrics.gauge("solver.admm.primal_residual");
  dual_metric_ = metrics.gauge("solver.admm.dual_residual");
  rho_metric_ = metrics.gauge("solver.admm.rho");
}

std::size_t AdmmEngine::bytes_per_replica_round() const {
  if (sparse_) {
    // One (client id, share) pair per *feasible* client; per-replica
    // traffic varies with the column population, so report the mean.
    return work_->sparsity()->nnz() * (4 + 8) /
           std::max<std::size_t>(work_->num_replicas(), 1);
  }
  // One (client id, share) pair per client, shipped to that client.
  return problem_->num_clients() * (4 + 8);
}

std::size_t AdmmEngine::bytes_per_client_round() const {
  if (sparse_) {
    // Consensus feedback to each feasible replica; mean over clients.
    return work_->sparsity()->nnz() * (4 + 8) /
           std::max<std::size_t>(work_->num_clients(), 1);
  }
  // Consensus feedback to every replica.
  return problem_->num_replicas() * (4 + 8);
}

}  // namespace edr::core
