#include "core/epoch_problem.hpp"

#include <cmath>
#include <utility>

#include "optim/flow.hpp"

namespace edr::core {

optim::Problem make_epoch_problem(const EpochProblemSpec& spec,
                                  std::vector<Megabytes> demands) {
  const SystemConfig& cfg = *spec.cfg;
  std::vector<optim::ReplicaParams> params;
  Matrix latency(spec.active_clients.size(), spec.active_replicas.size());
  for (std::size_t col = 0; col < spec.active_replicas.size(); ++col) {
    auto p = cfg.replicas[spec.active_replicas[col]];
    if (!cfg.tariffs.empty()) {
      // Tariff-blind mode (the ablation's control arm): the optimization
      // sees each region's mean price while the meter bills the true
      // time-varying one.
      const auto& tariff = cfg.tariffs[spec.active_replicas[col]];
      p.price = cfg.tariff_aware_scheduler ? tariff.at(spec.now)
                                           : tariff.mean_price();
    }
    if (cfg.derive_energy_model_from_power) {
      // Paced transfer of s MB at intensity s/(B·W) for W seconds burns
      //   W·[lin·s/(B·W) + poly·(s/(B·W))^γ]
      //     = (lin/B)·s + poly·W^{1-γ}·B^{-γ}·s^γ joules,
      // so these coefficients make the scheduling model equal the metered
      // active energy.
      const auto& pm = spec.model_of(spec.active_replicas[col]).params();
      p.gamma = pm.gamma;
      p.alpha = pm.transfer_linear / p.bandwidth;
      p.beta = pm.transfer_poly * std::pow(spec.window, 1.0 - p.gamma) *
               std::pow(p.bandwidth, -p.gamma);
    }
    p.bandwidth *= spec.window;
    params.push_back(p);
    for (std::size_t row = 0; row < spec.active_clients.size(); ++row)
      latency(row, col) = cfg.latency(spec.active_clients[row],
                                      spec.active_replicas[col]);
  }
  return optim::Problem(std::move(demands), std::move(params),
                        std::move(latency), cfg.max_latency);
}

double shed_to_feasible(std::optional<optim::Problem>& problem,
                        Milliseconds max_latency) {
  const auto transport = optim::check_transport_feasible(*problem);
  if (transport.feasible) return 0.0;
  const double scale = transport.routed / problem->total_demand() * 0.999;
  std::vector<Megabytes> scaled = problem->demands();
  for (auto& d : scaled) d *= scale;
  std::vector<optim::ReplicaParams> reps = problem->replicas();
  Matrix lat(problem->num_clients(), problem->num_replicas());
  for (std::size_t row = 0; row < problem->num_clients(); ++row)
    for (std::size_t col = 0; col < problem->num_replicas(); ++col)
      lat(row, col) = problem->latency(row, col);
  problem.emplace(std::move(scaled), std::move(reps), std::move(lat),
                  max_latency);
  return 1.0 - scale;
}

}  // namespace edr::core
