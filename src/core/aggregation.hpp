// Client equivalence-class aggregation (the kAggregated representation).
//
// The objective E_g(P) depends on P only through the column sums s_n, and
// the constraints treat two clients identically whenever they have the same
// feasible-replica set: demands are interchangeable mass.  So clients with
// identical feasible sets collapse to ONE aggregate client whose demand is
// the class total.  Solving the aggregated instance and fanning the class
// row back out by demand share,
//
//   p_{c,n} = (R_c / R_class) · P_{class,n},
//
// is EXACT, not an approximation:
//  * row sums:    Σ_n p_{c,n} = (R_c/R_class)·R_class = R_c          (demand)
//  * column sums: Σ_c p_{c,n} = P_{class,n}·Σ_c R_c/R_class = P_{class,n},
//    so capacities, the objective value, and optimality transfer verbatim;
//  * the latency mask is preserved because class members share it by
//    construction.
// Conversely any feasible disaggregated point maps to a feasible aggregated
// point by summing rows, so the two feasible sets are in cost-preserving
// correspondence and the aggregated optimum expands to a disaggregated
// optimum.  See DESIGN.md §12.
//
// Geo-local instances have O(|N|) distinct feasible sets regardless of the
// client count, which is what lets the iterative engines run 10^5-10^6
// clients: the per-round work is O(classes · k), and only the final fan-out
// touches all clients once.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "optim/problem.hpp"

namespace edr::core {

/// The client -> equivalence-class mapping for one Problem.
struct ClientAggregation {
  /// Class id per original client (class ids are dense, 0..num_classes-1,
  /// ordered by first appearance — so class k's representative is the
  /// lowest-indexed client in the class).
  std::vector<std::uint32_t> class_of;
  /// One original client id per class (the first member).
  std::vector<std::uint32_t> representative;
  /// Total demand per class.
  std::vector<double> class_demand;
  /// Fan-out weight per original client: R_c / R_class (0 when the class
  /// demand is 0 — those classes carry no traffic).
  std::vector<double> share;

  [[nodiscard]] std::size_t num_classes() const {
    return representative.size();
  }
};

/// Group the problem's clients by identical feasible-replica sets.
[[nodiscard]] ClientAggregation build_client_aggregation(
    const optim::Problem& problem);

/// The aggregated instance: one client per class with the class's total
/// demand and the representative's latency row (mask-identical to every
/// member by construction); replicas unchanged.
[[nodiscard]] optim::Problem aggregate_problem(const optim::Problem& problem,
                                               const ClientAggregation& agg);

/// Fan an aggregated allocation (num_classes x num_replicas) back out to the
/// original clients by demand share.  `out` is reshaped to
/// num_clients x num_replicas.
void expand_allocation(const ClientAggregation& agg, const Matrix& aggregated,
                       Matrix& out);

}  // namespace edr::core
