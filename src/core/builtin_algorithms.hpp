// The four built-in DistributedAlgorithm backends.
//
// Concrete classes are exposed (not just registry keys) so tests can drive
// an algorithm synchronously against a fabricated EpochContext — e.g. the
// warm-start regression in tests/core/algorithm_test.cpp.
#pragma once

#include <memory>
#include <vector>

#include "core/admm.hpp"
#include "core/algorithm.hpp"
#include "core/cdpsm.hpp"
#include "core/lddm.hpp"

namespace edr::core {

/// Consensus-based distributed projected subgradient (paper §III-C.1).
class CdpsmAlgorithm final : public DistributedAlgorithm {
 public:
  explicit CdpsmAlgorithm(CdpsmOptions options);

  [[nodiscard]] const char* name() const override { return "cdpsm"; }
  [[nodiscard]] const char* display_name() const override {
    return "EDR-CDPSM";
  }
  [[nodiscard]] std::span<const MessageTypeInfo> message_types()
      const override;
  [[nodiscard]] double compute_factor(const EpochContext& ctx) const override;
  [[nodiscard]] double coordination_bytes(double clients,
                                          double replicas) const override;
  void begin_epoch(const EpochContext& ctx) override;
  void plan_round(const EpochContext& ctx,
                  std::vector<PlannedMessage>& out) const override;
  bool step_round(const EpochContext& ctx) override;
  void observe(const EpochContext& ctx,
               std::vector<telemetry::RoundSample>& out) override;
  Matrix extract_allocation(const EpochContext& ctx) override;
  void abort_epoch() override;

 private:
  CdpsmOptions options_;
  // Engines are recreated per epoch; the pool is owned here so worker
  // threads are spawned once per run, not once per epoch (null = serial).
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<CdpsmEngine> engine_;
  CdpsmRoundStats last_round_;
};

/// Lagrangian dual decomposition (paper §III-C.2) with cross-epoch warm
/// starts: duals per global client plus primal columns per global
/// (client, replica) pair survive between epochs and are re-injected,
/// scaled to the new demand level.
class LddmAlgorithm final : public DistributedAlgorithm {
 public:
  LddmAlgorithm(LddmOptions options, bool warm_start);

  [[nodiscard]] const char* name() const override { return "lddm"; }
  [[nodiscard]] const char* display_name() const override {
    return "EDR-LDDM";
  }
  [[nodiscard]] std::span<const MessageTypeInfo> message_types()
      const override;
  void begin_epoch(const EpochContext& ctx) override;
  void plan_round(const EpochContext& ctx,
                  std::vector<PlannedMessage>& out) const override;
  bool step_round(const EpochContext& ctx) override;
  void observe(const EpochContext& ctx,
               std::vector<telemetry::RoundSample>& out) override;
  Matrix extract_allocation(const EpochContext& ctx) override;
  void abort_epoch() override;

 private:
  LddmOptions options_;
  LddmRoundStats last_round_;
  bool warm_start_ = true;
  // Engines are recreated per epoch; the pool is owned here so worker
  // threads are spawned once per run, not once per epoch (null = serial).
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<LddmEngine> engine_;
  std::vector<double> warm_mu_;  // duals carried across epochs
  Matrix warm_columns_;          // primal loads carried across epochs
  double warm_demand_total_ = 0.0;
};

/// Consensus ADMM (scaled form) with cross-epoch warm starts: the consensus
/// iterate Z, the scaled duals U and the adapted penalty ρ survive between
/// epochs and are re-injected, scaled to the new demand level.  Converges
/// in far fewer rounds than the subgradient schemes at LDDM-class traffic
/// (client↔replica only).
class AdmmAlgorithm final : public DistributedAlgorithm {
 public:
  AdmmAlgorithm(AdmmOptions options, bool warm_start);

  [[nodiscard]] const char* name() const override { return "admm"; }
  [[nodiscard]] const char* display_name() const override {
    return "EDR-ADMM";
  }
  [[nodiscard]] std::span<const MessageTypeInfo> message_types()
      const override;
  void begin_epoch(const EpochContext& ctx) override;
  void plan_round(const EpochContext& ctx,
                  std::vector<PlannedMessage>& out) const override;
  bool step_round(const EpochContext& ctx) override;
  void observe(const EpochContext& ctx,
               std::vector<telemetry::RoundSample>& out) override;
  Matrix extract_allocation(const EpochContext& ctx) override;
  void abort_epoch() override;

 private:
  AdmmOptions options_;
  AdmmRoundStats last_round_;
  bool warm_start_ = true;
  // Engines are recreated per epoch; the pool is owned here so worker
  // threads are spawned once per run, not once per epoch (null = serial).
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<AdmmEngine> engine_;
  Matrix warm_z_;  // consensus iterate carried across epochs
  Matrix warm_u_;  // scaled duals carried across epochs
  double warm_rho_ = 0.0;  // adapted penalty carried across epochs
  double warm_demand_total_ = 0.0;
};

/// Energy-oblivious request-granular rotation (the paper's baseline).  The
/// rotation cursor is cross-epoch state: it survives aborts and epochs so
/// load keeps rotating instead of restarting at replica 0.
class RoundRobinAlgorithm final : public DistributedAlgorithm {
 public:
  [[nodiscard]] const char* name() const override { return "rr"; }
  [[nodiscard]] const char* display_name() const override {
    return "RoundRobin";
  }
  [[nodiscard]] bool iterative() const override { return false; }
  std::optional<Matrix> solve_oneshot(const EpochContext& ctx) override;
  void observe(const EpochContext& ctx,
               std::vector<telemetry::RoundSample>& out) override;

 private:
  std::size_t cursor_ = 0;
  std::vector<telemetry::RoundSample> pending_samples_;
};

/// Single-coordinator reference: clients ship demands to the lowest-id
/// alive replica, which solves the global problem (the single point of
/// failure the paper's decentralized design avoids).
class CentralizedAlgorithm final : public DistributedAlgorithm {
 public:
  [[nodiscard]] const char* name() const override { return "central"; }
  [[nodiscard]] const char* display_name() const override {
    return "Centralized";
  }
  [[nodiscard]] bool iterative() const override { return false; }
  [[nodiscard]] double compute_factor(const EpochContext& ctx) const override;
  void begin_epoch(const EpochContext& ctx) override;
  void plan_prologue(const EpochContext& ctx,
                     std::vector<PlannedMessage>& out) const override;
  std::optional<Matrix> solve_oneshot(const EpochContext& ctx) override;
  void observe(const EpochContext& ctx,
               std::vector<telemetry::RoundSample>& out) override;

 private:
  std::size_t coordinator_ = 0;
  std::vector<telemetry::RoundSample> pending_samples_;
};

}  // namespace edr::core
