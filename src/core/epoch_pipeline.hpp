// EpochPipeline — the algorithm-agnostic runtime every scheduler runs on.
//
// One pipeline instance drives a whole workload trace end to end:
// membership (heartbeat ring, crash/recovery), per-epoch demand collection
// and admission control, the solve loop (message rounds against a delivery
// barrier for iterative backends, a single compute delay for one-shot
// ones), assignment fan-out, paced file transfers, and power/energy
// accounting.  Everything solver-specific is delegated to the attached
// DistributedAlgorithm strategy; this file contains no per-algorithm
// branches.
//
// EdrSystem is this pipeline under the EDR policy (solvers are the
// replicas, per-client links, power metering, 70% transfer window);
// DonarSystem re-hosts the same pipeline under the DONAR policy (mapping
// nodes as solvers, default links only, decision latency only).
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/algorithm.hpp"
#include "core/system.hpp"

namespace edr::core {

/// Host-level knobs: what the *system* around the algorithm models.  These
/// are properties of the hosting runtime (EDR vs DONAR), not of the
/// scheduler strategy, which is why they are not SystemConfig fields.
struct PipelinePolicy {
  /// Number of solver nodes (0 = one per replica).  Solvers occupy node
  /// ids [0, S); clients [S, S + C).
  std::size_t num_solvers = 0;
  /// Solver s *is* replica s: liveness gates its message handling and the
  /// announcement fan-out, and the ring runs over the solver nodes.
  bool solvers_are_replicas = true;
  /// Dedicated client<->replica links carrying the latency matrix (off =
  /// every path uses the default interconnect link).
  bool per_client_links = true;
  /// Drop clients with no latency-feasible alive replica at epoch start.
  bool drop_unreachable_clients = true;
  /// Activity timelines + power meters + energy/cost integration.
  bool model_power = true;
  /// Paced file transfers after commit (off = decision latency only).
  bool file_transfers = true;
  /// Fraction of each epoch reserved for transfers (the rest is the solve /
  /// listen "valley" visible between the power peaks of Figs 3-4).
  double transfer_window_fraction = 0.7;
  /// Run the event loop dry instead of to the bounded horizon (only safe
  /// without the ring's periodic heartbeats).
  bool run_to_drain = false;
  /// Schedule the per-epoch request-service delay as its own event before
  /// the first round's compute delay instead of folding both into one
  /// (t + s) + c vs t + (s + c): same model, but the floating-point event
  /// times differ in the last ulp.  DONAR's reference implementation used
  /// the split form; keeping it preserves bit-exact replay.
  bool split_service_delay = false;
};

class EpochPipeline {
 public:
  EpochPipeline(SystemConfig config, PipelinePolicy policy,
                std::unique_ptr<DistributedAlgorithm> algorithm,
                workload::Trace trace);
  ~EpochPipeline();
  EpochPipeline(const EpochPipeline&) = delete;
  EpochPipeline& operator=(const EpochPipeline&) = delete;

  void inject_failure(std::size_t replica, SimTime when);
  void inject_recovery(std::size_t replica, SimTime when);
  void inject_link_change(const LinkDegradation& change, SimTime when);

  /// Execute the whole trace; may be called once.
  RunReport run();

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_replicas() const { return num_replicas_; }

 private:
  // --- configuration and substrate ---
  SystemConfig cfg_;
  PipelinePolicy policy_;
  std::unique_ptr<DistributedAlgorithm> algorithm_;
  workload::Trace trace_;
  Rng rng_;
  net::Simulator sim_;
  net::SimNetwork network_{sim_};

  std::size_t num_replicas_ = 0;
  std::size_t num_clients_ = 0;
  std::size_t num_solvers_ = 0;

  // node id layout: solvers [0, S), clients [S, S+C)
  [[nodiscard]] net::NodeId solver_node(std::size_t s) const {
    return static_cast<net::NodeId>(s);
  }
  [[nodiscard]] net::NodeId client_node(std::size_t c) const {
    return static_cast<net::NodeId>(num_solvers_ + c);
  }
  [[nodiscard]] net::NodeId node_of(Endpoint kind, std::size_t index) const {
    return kind == Endpoint::kSolver ? solver_node(index)
                                     : client_node(index);
  }

  // --- per-replica state ---
  std::vector<power::ActivityTimeline> timelines_;
  std::vector<bool> alive_;
  std::vector<SimTime> death_time_;
  std::vector<std::vector<std::pair<SimTime, SimTime>>> down_intervals_;
  std::vector<SimTime> transfer_until_;
  std::vector<std::unique_ptr<cluster::RingNode>> rings_;

  // --- epoch machinery ---
  std::vector<std::vector<PendingRequest>> epoch_buckets_;
  std::deque<std::size_t> solve_queue_;  // epochs awaiting a solve
  bool solve_in_flight_ = false;
  std::uint64_t solve_generation_ = 0;  // bumped on membership change

  // state of the in-flight solve
  std::size_t current_epoch_ = 0;
  std::optional<optim::Problem> problem_;
  std::vector<std::size_t> active_replicas_;   // problem column -> replica
  std::vector<std::uint32_t> active_clients_;  // problem row -> client
  std::vector<PendingRequest> current_requests_;
  std::size_t round_msgs_pending_ = 0;
  std::uint64_t pending_generation_ = 0;
  SimTime solve_started_ = 0.0;
  std::vector<PlannedMessage> plan_scratch_;
  std::vector<std::size_t> announce_scratch_;
  // Per-epoch build scratch for start_solve (same reuse pattern as the
  // plan/announce scratch above): the per-client demand totals and the
  // kept-requests filter buffer.
  std::vector<double> demand_scratch_;
  std::vector<PendingRequest> kept_scratch_;

  /// Shed remainders awaiting the next scheduling opportunity.
  std::vector<PendingRequest> retry_backlog_;
  bool synthetic_epoch_scheduled_ = false;

  std::map<std::size_t, std::size_t> expected_assignments_;
  std::map<std::size_t, std::vector<SimTime>> pending_responses_;

  // --- metrics ---
  RunReport report_;
  std::size_t requests_dropped_ = 0;
  power::PowerModel power_model_;          // homogeneous default
  std::vector<power::PowerModel> models_;  // one per replica
  [[nodiscard]] const power::PowerModel& model_of(std::size_t n) const {
    return models_.empty() ? power_model_ : models_[n];
  }

  // --- telemetry (sink handles / disabled tracer when telemetry unset) ---
  SimTime round_started_ = 0.0;
  SimTime exchange_started_ = 0.0;
  telemetry::Counter epochs_metric_;
  telemetry::Counter rounds_metric_;
  telemetry::Counter requests_served_metric_;
  telemetry::Counter requests_dropped_metric_;
  telemetry::Histogram response_metric_;
  [[nodiscard]] telemetry::EventTracer& tracer();

  // Opt-in observability (null unless enabled on the telemetry context
  // before construction) plus the causal-span ids of the in-flight epoch
  // and round.
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::ConvergenceMonitor* monitor_ = nullptr;
  std::vector<telemetry::RoundSample> sample_scratch_;
  std::uint64_t epoch_span_ = 0;
  std::uint64_t round_span_ = 0;
  void record_observation();

  [[nodiscard]] EpochContext context() const;

  void setup_links();
  void attach_nodes();
  void start_ring();
  void bucket_requests();
  void schedule_epoch_boundaries();

  void send_control(net::NodeId from, net::NodeId to, int type,
                    std::size_t bytes, std::any payload = {});
  void on_solver_message(std::size_t s, const net::Message& msg);
  void on_client_message(std::size_t c, const net::Message& msg);

  void on_member_dead(net::NodeId dead);

  void set_activity(std::size_t n, power::Activity activity,
                    double intensity);
  void set_all_selecting(bool selecting);
  [[nodiscard]] double selection_intensity() const;

  void maybe_start_solve();
  void start_solve(std::size_t epoch);
  [[nodiscard]] SimTime compute_delay() const;
  void schedule_round(std::uint64_t generation, SimTime extra_delay = 0.0);
  void launch_round_messages(std::uint64_t generation);
  void on_round_message(const net::Message& msg);
  void complete_round(std::uint64_t generation);
  void finish_solve(Matrix allocation);
  void schedule_backlog_epoch();
  void on_assignment_delivered(const net::Message& msg);

  RunReport finalize();
};

}  // namespace edr::core
