#include "core/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/math_util.hpp"
#include "core/algorithm_registry.hpp"
#include "core/epoch_pipeline.hpp"

namespace edr::core {

double RunReport::mean_response_ms() const {
  return mean(std::span<const double>{response_times_ms});
}

double RunReport::p99_response_ms() const {
  return percentile(response_times_ms, 99.0);
}

Matrix make_latency_matrix(Rng& rng, std::size_t num_clients,
                           std::size_t num_replicas, Milliseconds min_latency,
                           Milliseconds max_latency_link, Milliseconds bound) {
  Matrix latency(num_clients, num_replicas);
  for (std::size_t c = 0; c < num_clients; ++c) {
    for (std::size_t n = 0; n < num_replicas; ++n)
      latency(c, n) = rng.uniform(min_latency, max_latency_link);
    std::size_t best = 0;
    for (std::size_t n = 1; n < num_replicas; ++n)
      if (latency(c, n) < latency(c, best)) best = n;
    latency(c, best) = std::min(latency(c, best), bound * 0.5);
  }
  return latency;
}

EdrSystem::EdrSystem(SystemConfig config, workload::Trace trace) {
  auto algorithm = make_algorithm(config);
  impl_ = std::make_unique<EpochPipeline>(std::move(config), PipelinePolicy{},
                                          std::move(algorithm),
                                          std::move(trace));
  // The pipeline may fill in generated pieces (e.g. the latency matrix);
  // expose its view so config() reflects what actually runs.
  config_ = impl_->config();
}

EdrSystem::~EdrSystem() = default;

void EdrSystem::inject_failure(std::size_t replica, SimTime when) {
  if (replica >= impl_->num_replicas())
    throw std::out_of_range("EdrSystem::inject_failure: bad replica index");
  impl_->inject_failure(replica, when);
}

void EdrSystem::inject_recovery(std::size_t replica, SimTime when) {
  if (replica >= impl_->num_replicas())
    throw std::out_of_range("EdrSystem::inject_recovery: bad replica index");
  impl_->inject_recovery(replica, when);
}

void EdrSystem::inject_link_change(const LinkDegradation& change,
                                   SimTime when) {
  if (change.replica >= static_cast<int>(impl_->num_replicas()))
    throw std::out_of_range(
        "EdrSystem::inject_link_change: bad replica index");
  if (change.client >= static_cast<int>(impl_->config().num_clients))
    throw std::out_of_range(
        "EdrSystem::inject_link_change: bad client index");
  if (change.latency_factor <= 0.0 || change.bandwidth_factor <= 0.0)
    throw std::invalid_argument(
        "EdrSystem::inject_link_change: factors must be positive");
  impl_->inject_link_change(change, when);
}

RunReport EdrSystem::run() { return impl_->run(); }

}  // namespace edr::core
