#include "core/system.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>

#include "common/log.hpp"
#include "common/math_util.hpp"
#include "core/scheduler.hpp"
#include "net/wire.hpp"
#include "optim/flow.hpp"
#include "optim/solver.hpp"

namespace edr::core {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLddm: return "EDR-LDDM";
    case Algorithm::kCdpsm: return "EDR-CDPSM";
    case Algorithm::kCentralized: return "Centralized";
    case Algorithm::kRoundRobin: return "RoundRobin";
  }
  return "?";
}

double RunReport::mean_response_ms() const {
  return mean(std::span<const double>{response_times_ms});
}

double RunReport::p99_response_ms() const {
  return percentile(response_times_ms, 99.0);
}

Matrix make_latency_matrix(Rng& rng, std::size_t num_clients,
                           std::size_t num_replicas, Milliseconds min_latency,
                           Milliseconds max_latency_link, Milliseconds bound) {
  Matrix latency(num_clients, num_replicas);
  for (std::size_t c = 0; c < num_clients; ++c) {
    for (std::size_t n = 0; n < num_replicas; ++n)
      latency(c, n) = rng.uniform(min_latency, max_latency_link);
    std::size_t best = 0;
    for (std::size_t n = 1; n < num_replicas; ++n)
      if (latency(c, n) < latency(c, best)) best = n;
    latency(c, best) = std::min(latency(c, best), bound * 0.5);
  }
  return latency;
}

namespace {

/// Fraction of each epoch reserved for transfers (the rest is the solve /
/// listen "valley" visible between the power peaks of Figs 3-4).
constexpr double kTransferWindowFraction = 0.7;

/// Per-epoch bookkeeping for one request while it awaits its assignment.
struct PendingRequest {
  std::uint64_t id = 0;
  std::uint32_t client = 0;
  SimTime arrival = 0.0;
  Megabytes size_mb = 0.0;
  /// 0 for original requests; >0 for shed remainders re-entering a later
  /// epoch (these do not contribute response-time samples).
  std::uint32_t retries = 0;
};

}  // namespace

struct EdrSystem::Impl {
  // --- configuration and substrate ---
  SystemConfig cfg;
  workload::Trace trace;
  Rng rng;
  net::Simulator sim;
  net::SimNetwork network{sim};

  std::size_t num_replicas = 0;
  std::size_t num_clients = 0;

  // node id layout: replicas [0, N), clients [N, N+C)
  [[nodiscard]] net::NodeId replica_node(std::size_t n) const {
    return static_cast<net::NodeId>(n);
  }
  [[nodiscard]] net::NodeId client_node(std::size_t c) const {
    return static_cast<net::NodeId>(num_replicas + c);
  }

  // --- per-replica state ---
  std::vector<power::ActivityTimeline> timelines;
  std::vector<bool> alive;
  std::vector<SimTime> death_time;
  std::vector<std::vector<std::pair<SimTime, SimTime>>> down_intervals;
  std::vector<SimTime> transfer_until;
  std::vector<std::unique_ptr<cluster::RingNode>> rings;

  // --- epoch machinery ---
  std::vector<std::vector<PendingRequest>> epoch_buckets;
  std::deque<std::size_t> solve_queue;  // epochs awaiting a solve
  bool solve_in_flight = false;
  std::uint64_t solve_generation = 0;  // bumped on membership change

  // state of the in-flight solve
  std::size_t current_epoch = 0;
  std::optional<optim::Problem> problem;
  std::vector<std::size_t> active_replicas;  // problem column -> replica
  std::vector<std::uint32_t> active_clients; // problem row -> client
  std::vector<PendingRequest> current_requests;
  std::unique_ptr<CdpsmEngine> cdpsm;
  std::unique_ptr<LddmEngine> lddm;
  std::size_t round_msgs_pending = 0;
  SimTime solve_started = 0.0;

  // --- metrics ---
  RunReport report;
  std::size_t requests_dropped = 0;
  power::PowerModel power_model;            // homogeneous default
  std::vector<power::PowerModel> models;    // one per replica
  [[nodiscard]] const power::PowerModel& model_of(std::size_t n) const {
    return models.empty() ? power_model : models[n];
  }

  // --- telemetry (sink handles / disabled tracer when cfg.telemetry unset) ---
  SimTime round_started = 0.0;
  telemetry::Counter epochs_metric;
  telemetry::Counter rounds_metric;
  telemetry::Counter requests_served_metric;
  telemetry::Counter requests_dropped_metric;
  telemetry::Histogram response_metric;
  [[nodiscard]] telemetry::EventTracer& tracer() {
    return cfg.telemetry ? cfg.telemetry->tracer()
                         : telemetry::disabled_tracer();
  }

  Impl(SystemConfig config, workload::Trace workload_trace)
      : cfg(std::move(config)),
        trace(std::move(workload_trace)),
        rng(cfg.seed),
        power_model(cfg.power) {
    num_replicas = cfg.replicas.size();
    num_clients = cfg.num_clients;
    if (num_replicas == 0)
      throw std::invalid_argument("EdrSystem: no replicas configured");
    if (num_clients == 0)
      throw std::invalid_argument("EdrSystem: no clients configured");

    if (cfg.latency.empty())
      cfg.latency =
          make_latency_matrix(rng, num_clients, num_replicas,
                              cfg.min_link_latency, cfg.max_link_latency,
                              cfg.max_latency);
    if (cfg.latency.rows() != num_clients ||
        cfg.latency.cols() != num_replicas)
      throw std::invalid_argument("EdrSystem: latency matrix shape mismatch");
    if (!cfg.tariffs.empty() && cfg.tariffs.size() != num_replicas)
      throw std::invalid_argument(
          "EdrSystem: need one tariff per replica (or none)");
    if (!cfg.power_per_replica.empty()) {
      if (cfg.power_per_replica.size() != num_replicas)
        throw std::invalid_argument(
            "EdrSystem: need one power model per replica (or none)");
      for (const auto& params : cfg.power_per_replica)
        models.emplace_back(params);
    }

    timelines.resize(num_replicas);
    alive.assign(num_replicas, true);
    death_time.assign(num_replicas, -1.0);
    down_intervals.resize(num_replicas);
    transfer_until.assign(num_replicas, 0.0);

    network.set_type_name(kClientRequest, "client_request");
    network.set_type_name(kCdpsmEstimate, "cdpsm_estimate");
    network.set_type_name(kLddmLoadReport, "lddm_load_report");
    network.set_type_name(kLddmMuUpdate, "lddm_mu_update");
    network.set_type_name(kAssignment, "assignment");
    network.set_type_name(kFileData, "file_data");
    network.set_type_name(cluster::kHeartbeat, "ring_heartbeat");
    network.set_type_name(cluster::kRemovalNotice, "ring_removal_notice");
    network.set_type_name(cluster::kJoinNotice, "ring_join_notice");
    if (cfg.telemetry) {
      sim.attach_telemetry(*cfg.telemetry);
      network.attach_telemetry(*cfg.telemetry);
      auto& metrics = cfg.telemetry->metrics();
      epochs_metric = metrics.counter("system.epochs");
      rounds_metric = metrics.counter("system.rounds");
      requests_served_metric = metrics.counter("system.requests_served");
      requests_dropped_metric = metrics.counter("system.requests_dropped");
      response_metric = metrics.histogram(
          "system.response_ms",
          telemetry::MetricsRegistry::response_bounds_ms());
    }
  }

  ~Impl() {
    // The tracer clock points into this simulator; freeze it so a telemetry
    // context that outlives the system (the usual export-at-exit flow)
    // cannot read through a dangling pointer.
    if (cfg.telemetry) cfg.telemetry->tracer().set_clock(nullptr);
  }

  // ---------- setup ----------

  void setup_links() {
    // Client <-> replica links carry the configured latency; the replica
    // interconnect (used by CDPSM estimates and ring heartbeats) uses the
    // minimum link latency (same-fabric assumption).
    for (std::size_t c = 0; c < num_clients; ++c) {
      for (std::size_t n = 0; n < num_replicas; ++n) {
        net::LinkParams params;
        params.latency = cfg.latency(c, n);
        params.bandwidth_mbps = cfg.replicas[n].bandwidth;
        network.set_link(client_node(c), replica_node(n), params);
        network.set_link(replica_node(n), client_node(c), params);
      }
    }
    net::LinkParams inter;
    inter.latency = cfg.min_link_latency;
    inter.bandwidth_mbps = cfg.replicas.front().bandwidth;
    network.set_default_link(inter);
  }

  void attach_nodes() {
    for (std::size_t n = 0; n < num_replicas; ++n) {
      network.attach(replica_node(n), [this, n](const net::Message& msg) {
        on_replica_message(n, msg);
      });
    }
    for (std::size_t c = 0; c < num_clients; ++c) {
      network.attach(client_node(c), [this, c](const net::Message& msg) {
        on_client_message(c, msg);
      });
    }
  }

  void start_ring() {
    if (!cfg.enable_ring) return;
    std::vector<net::NodeId> members;
    for (std::size_t n = 0; n < num_replicas; ++n)
      members.push_back(replica_node(n));
    for (std::size_t n = 0; n < num_replicas; ++n) {
      rings.push_back(std::make_unique<cluster::RingNode>(
          network, replica_node(n), cluster::MemberList{members}, cfg.ring));
      rings.back()->on_membership_change(
          [this](const cluster::MemberList&, net::NodeId dead) {
            on_member_dead(dead);
          });
    }
    for (auto& ring : rings) ring->start();
  }

  void bucket_requests() {
    const SimTime horizon =
        std::max(trace.horizon(), cfg.epoch_length) + 1e-9;
    const auto num_epochs =
        static_cast<std::size_t>(horizon / cfg.epoch_length) + 1;
    epoch_buckets.assign(num_epochs, {});
    for (const auto& request : trace.requests()) {
      if (request.client >= num_clients)
        throw std::invalid_argument("EdrSystem: request client out of range");
      const auto epoch =
          static_cast<std::size_t>(request.arrival / cfg.epoch_length);
      epoch_buckets[epoch].push_back(
          {request.id, request.client, request.arrival, request.size_mb});
      // The client announces the request to every replica at arrival time
      // (the paper's ClientListener path); tiny control message.
      sim.schedule_at(request.arrival, [this, c = request.client] {
        for (std::size_t n = 0; n < num_replicas; ++n) {
          if (!alive[n]) continue;
          send_control(client_node(c), replica_node(n), kClientRequest, 28);
        }
      });
    }
  }

  /// Shed remainders awaiting the next scheduling opportunity.
  std::vector<PendingRequest> retry_backlog;
  bool synthetic_epoch_scheduled = false;

  void schedule_epoch_boundaries() {
    for (std::size_t e = 0; e < epoch_buckets.size(); ++e) {
      const SimTime when = static_cast<double>(e + 1) * cfg.epoch_length;
      sim.schedule_at(when, [this, e] {
        if (!epoch_buckets[e].empty()) {
          solve_queue.push_back(e);
          maybe_start_solve();
        }
      });
    }
  }

  // ---------- messaging ----------

  void send_control(net::NodeId from, net::NodeId to, int type,
                    std::size_t bytes, std::any payload = {}) {
    net::Message msg;
    msg.from = from;
    msg.to = to;
    msg.type = type;
    msg.bytes = bytes;
    msg.payload = std::move(payload);
    network.send(std::move(msg));
  }

  void on_replica_message(std::size_t n, const net::Message& msg) {
    if (!alive[n]) return;
    if (msg.type >= 100 && msg.type < 200) {
      if (n < rings.size()) rings[n]->handle(msg);
      return;
    }
    switch (msg.type) {
      case kClientRequest:
        break;  // demand is bucketed centrally; the message cost is what counts
      case kCdpsmEstimate:
      case kLddmMuUpdate:
        on_round_message(msg);
        break;
      default:
        break;
    }
  }

  void on_client_message(std::size_t c, const net::Message& msg) {
    (void)c;
    switch (msg.type) {
      case kLddmLoadReport:
        on_round_message(msg);
        break;
      case kAssignment:
        on_assignment_delivered(msg);
        break;
      default:
        break;
    }
  }

  // ---------- membership / failures ----------

  void inject_failure(std::size_t n, SimTime when) {
    sim.schedule_at(when, [this, n] {
      if (!alive[n]) return;
      logf(LogLevel::kInfo, "edr: replica %zu crashes at t=%.3f", n,
           sim.now());
      tracer().instant("replica_crash", "fault", replica_node(n));
      alive[n] = false;
      death_time[n] = sim.now();
      timelines[n].set(sim.now(), power::Activity::kIdle);
      down_intervals[n].emplace_back(sim.now(), -1.0);
      network.detach(replica_node(n));
      if (n < rings.size()) rings[n]->stop();
      report.failed_replicas.push_back(replica_node(n));
      if (!cfg.enable_ring) {
        // Without the ring there is no failure detector; surviving nodes
        // would stall forever, so propagate the change immediately (used
        // only by unit setups that disable the ring).
        on_member_dead(replica_node(n));
      }
    });
  }

  void inject_recovery(std::size_t n, SimTime when) {
    sim.schedule_at(when, [this, n] {
      if (alive[n]) return;
      logf(LogLevel::kInfo, "edr: replica %zu recovers at t=%.3f", n,
           sim.now());
      tracer().instant("replica_recover", "fault", replica_node(n));
      alive[n] = true;
      death_time[n] = -1.0;
      if (!down_intervals[n].empty() &&
          down_intervals[n].back().second < 0.0)
        down_intervals[n].back().second = sim.now();
      timelines[n].set(sim.now(), power::Activity::kIdle);
      network.attach(replica_node(n), [this, n](const net::Message& msg) {
        on_replica_message(n, msg);
      });
      if (n < rings.size()) {
        // Learn the survivor set from any alive peer (here: our own alive[]
        // view, which a real node would fetch from a seed member).
        std::vector<net::NodeId> survivors;
        for (std::size_t m = 0; m < num_replicas; ++m)
          if (alive[m]) survivors.push_back(replica_node(m));
        rings[n]->rejoin(cluster::MemberList{survivors});
      }
    });
  }

  void on_member_dead(net::NodeId dead) {
    const auto n = static_cast<std::size_t>(dead);
    if (n < alive.size() && alive[n]) {
      // Peers detected the crash before the crash event ran (possible only
      // with aggressive timeouts); honor their verdict.
      alive[n] = false;
      death_time[n] = sim.now();
      timelines[n].set(sim.now(), power::Activity::kIdle);
      down_intervals[n].emplace_back(sim.now(), -1.0);
      network.detach(dead);
      if (n < rings.size()) rings[n]->stop();
    }
    // Abort and restart any in-flight solve: the paper's "EDR will perform
    // the runtime scheduling again based on the new ring of replicas".
    if (solve_in_flight) {
      ++solve_generation;
      solve_in_flight = false;
      cdpsm.reset();
      lddm.reset();
      solve_queue.push_front(current_epoch);
      set_all_selecting(false);
      maybe_start_solve();
    }
  }

  // ---------- power bookkeeping ----------

  void set_activity(std::size_t n, power::Activity activity,
                    double intensity) {
    if (!alive[n]) return;
    timelines[n].set(sim.now(), activity, intensity);
  }

  void set_all_selecting(bool selecting) {
    const double intensity = selection_intensity();
    for (std::size_t col = 0; col < active_replicas.size(); ++col) {
      const std::size_t n = active_replicas[col];
      if (!alive[n]) continue;
      if (sim.now() < transfer_until[n]) continue;  // still transferring
      set_activity(n, selecting ? power::Activity::kSelecting
                                : power::Activity::kIdle,
                   selecting ? intensity : 0.0);
    }
  }

  /// Coordination intensity: CDPSM ships full matrices to every peer each
  /// round, LDDM a single column split across clients — normalize by the
  /// per-round traffic so CDPSM's traces sit visibly higher (Fig 3 vs 4).
  [[nodiscard]] double selection_intensity() const {
    if (!problem) return 0.5;
    const double clients = static_cast<double>(problem->num_clients());
    const double replicas = static_cast<double>(problem->num_replicas());
    double bytes = 0.0;
    if (cfg.algorithm == Algorithm::kCdpsm)
      bytes = clients * replicas * 8.0 * (replicas - 1.0);
    else
      bytes = clients * 12.0;
    // Normalized against the CDPSM 8-replica reference volume.
    const double reference = clients * replicas * 8.0 * 7.0;
    return clamp(bytes / reference, 0.1, 1.5);
  }

  // ---------- solving ----------

  void maybe_start_solve() {
    if (solve_in_flight || solve_queue.empty()) return;
    const std::size_t epoch = solve_queue.front();
    solve_queue.pop_front();
    start_solve(epoch);
  }

  void start_solve(std::size_t epoch) {
    current_epoch = epoch;
    current_requests = epoch_buckets[epoch];
    // Shed remainders from earlier epochs join whatever batch runs next.
    for (auto& request : retry_backlog) current_requests.push_back(request);
    retry_backlog.clear();
    solve_started = sim.now();

    // Build the active problem: alive replicas, clients with demand.
    active_replicas.clear();
    for (std::size_t n = 0; n < num_replicas; ++n)
      if (alive[n]) active_replicas.push_back(n);
    if (active_replicas.empty()) {
      requests_dropped += current_requests.size();
      requests_dropped_metric.add(current_requests.size());
      maybe_start_solve();
      return;
    }

    std::vector<double> demand_by_client(num_clients, 0.0);
    for (const auto& request : current_requests)
      demand_by_client[request.client] += request.size_mb;

    active_clients.clear();
    std::vector<Megabytes> demands;
    std::vector<PendingRequest> kept;
    for (std::uint32_t c = 0; c < num_clients; ++c) {
      if (demand_by_client[c] <= 0.0) continue;
      // Latency feasibility against the *alive* replica set.
      bool reachable = false;
      for (const std::size_t n : active_replicas)
        if (cfg.latency(c, n) <= cfg.max_latency) reachable = true;
      if (!reachable) {
        for (const auto& request : current_requests)
          if (request.client == c) {
            ++requests_dropped;
            requests_dropped_metric.add(1);
          }
        continue;
      }
      active_clients.push_back(c);
      demands.push_back(demand_by_client[c]);
    }
    for (const auto& request : current_requests)
      for (const std::uint32_t c : active_clients)
        if (request.client == c) {
          kept.push_back(request);
          break;
        }
    current_requests = std::move(kept);

    if (active_clients.empty()) {
      maybe_start_solve();
      return;
    }

    // Per-epoch capacity: bandwidth (MB/s) times the transfer window.
    const double window = cfg.epoch_length * kTransferWindowFraction;
    std::vector<optim::ReplicaParams> params;
    Matrix latency(active_clients.size(), active_replicas.size());
    for (std::size_t col = 0; col < active_replicas.size(); ++col) {
      auto p = cfg.replicas[active_replicas[col]];
      if (!cfg.tariffs.empty())
        p.price = cfg.tariffs[active_replicas[col]].at(sim.now());
      if (cfg.derive_energy_model_from_power) {
        // Paced transfer of s MB at intensity s/(B·W) for W seconds burns
        //   W·[lin·s/(B·W) + poly·(s/(B·W))^γ]
        //     = (lin/B)·s + poly·W^{1-γ}·B^{-γ}·s^γ joules,
        // so these coefficients make the scheduling model equal the metered
        // active energy.
        const auto& pm = model_of(active_replicas[col]).params();
        p.gamma = pm.gamma;
        p.alpha = pm.transfer_linear / p.bandwidth;
        p.beta = pm.transfer_poly * std::pow(window, 1.0 - p.gamma) *
                 std::pow(p.bandwidth, -p.gamma);
      }
      p.bandwidth *= window;
      params.push_back(p);
      for (std::size_t row = 0; row < active_clients.size(); ++row)
        latency(row, col) = cfg.latency(active_clients[row],
                                        active_replicas[col]);
    }
    problem.emplace(std::move(demands), std::move(params),
                    std::move(latency), cfg.max_latency);

    // Demand can exceed even the pooled epoch capacity under a traffic
    // spike; shed proportionally (admission control) so the optimization
    // stays feasible.  The shed fraction of each request re-enters the next
    // epoch's batch (the client retry loop of a real deployment) until its
    // retry budget runs out.
    const auto transport = optim::check_transport_feasible(*problem);
    if (!transport.feasible) {
      const double scale = transport.routed / problem->total_demand() * 0.999;
      std::vector<Megabytes> scaled = problem->demands();
      for (auto& d : scaled) d *= scale;
      std::vector<optim::ReplicaParams> reps = problem->replicas();
      Matrix lat(active_clients.size(), active_replicas.size());
      for (std::size_t row = 0; row < active_clients.size(); ++row)
        for (std::size_t col = 0; col < active_replicas.size(); ++col)
          lat(row, col) = problem->latency(row, col);
      problem.emplace(std::move(scaled), std::move(reps), std::move(lat),
                      cfg.max_latency);

      const double shed_fraction = 1.0 - scale;
      for (auto& request : current_requests) {
        const double shed_mb = request.size_mb * shed_fraction;
        request.size_mb -= shed_mb;
        if (cfg.retry_shed && request.retries < cfg.max_retries) {
          PendingRequest remainder = request;
          remainder.size_mb = shed_mb;
          remainder.retries += 1;
          retry_backlog.push_back(remainder);
        } else {
          report.megabytes_abandoned += shed_mb;
        }
      }
    }

    solve_in_flight = true;
    ++report.epochs;
    epochs_metric.add(1);
    const std::uint64_t generation = ++solve_generation;

    // Request-handling time before the optimization can begin: the
    // ClientListener path costs a fixed amount per request, which is what
    // makes decision latency grow with the batch size (Fig 9).
    const SimTime service_delay =
        static_cast<double>(current_requests.size()) *
        cfg.request_service_seconds;

    switch (cfg.algorithm) {
      case Algorithm::kCdpsm:
        cdpsm = std::make_unique<CdpsmEngine>(*problem, cfg.cdpsm);
        if (cfg.telemetry) cdpsm->attach_telemetry(*cfg.telemetry);
        set_all_selecting(true);
        schedule_round(generation, service_delay);
        break;
      case Algorithm::kLddm:
        lddm = std::make_unique<LddmEngine>(*problem, cfg.lddm);
        if (cfg.telemetry) lddm->attach_telemetry(*cfg.telemetry);
        if (cfg.warm_start_lddm && !warm_mu.empty()) {
          std::vector<double> mu(active_clients.size());
          for (std::size_t row = 0; row < active_clients.size(); ++row)
            mu[row] = warm_mu[active_clients[row]];
          lddm->set_multipliers(mu);
          if (!warm_columns.empty()) {
            // Scale the remembered loads to this epoch's demand level so the
            // primal seed is consistent with the new request batch.
            const double prev_total = warm_demand_total;
            const double scale_factor =
                prev_total > 1e-9 ? problem->total_demand() / prev_total : 0.0;
            std::vector<double> column(active_clients.size());
            for (std::size_t col = 0; col < active_replicas.size(); ++col) {
              for (std::size_t row = 0; row < active_clients.size(); ++row)
                column[row] = warm_columns(active_clients[row],
                                           active_replicas[col]) *
                              scale_factor;
              lddm->set_column_state(col, column);
            }
          }
        }
        set_all_selecting(true);
        schedule_round(generation, service_delay);
        break;
      case Algorithm::kRoundRobin: {
        // No coordination: every replica derives the same split locally.
        const SimTime delay = service_delay + compute_delay();
        sim.schedule_after(delay, [this, generation] {
          if (generation != solve_generation) return;
          finish_solve(request_granular_round_robin());
        });
        break;
      }
      case Algorithm::kCentralized: {
        // Coordinator = lowest-id alive replica; clients ship demands in,
        // coordinator solves, assignments ship out.
        for (const std::uint32_t c : active_clients)
          send_control(client_node(c), replica_node(active_replicas.front()),
                       kClientRequest, 16);
        const SimTime delay = service_delay +
            compute_delay() * 20.0;  // interior iterations, one box
        sim.schedule_after(delay, [this, generation,
                                   coordinator = active_replicas.front()] {
          if (generation != solve_generation) return;
          // The single point of failure the paper warns about: if the
          // coordinator died mid-solve, the epoch stalls until the ring
          // detects the crash and the restart elects the next survivor.
          if (!alive[coordinator]) return;
          auto solved = optim::solve_centralized(*problem);
          finish_solve(solved ? std::move(solved->allocation)
                              : round_robin_allocation(*problem));
        });
        break;
      }
    }
  }

  std::size_t rr_cursor = 0;  // rotation state, persists across epochs

  /// The paper's Round-Robin baseline at request granularity: each request
  /// is served whole by the next latency-feasible replica in rotation (no
  /// fractional splitting).  The resulting load imbalance is what the
  /// degree-γ network term punishes in Fig 8(b).
  [[nodiscard]] Matrix request_granular_round_robin() {
    Matrix allocation(problem->num_clients(), problem->num_replicas(), 0.0);
    std::vector<double> remaining(problem->num_replicas());
    for (std::size_t col = 0; col < problem->num_replicas(); ++col)
      remaining[col] = problem->replica(col).bandwidth;
    // Row index of each active client.
    std::vector<std::size_t> row_of(num_clients, SIZE_MAX);
    for (std::size_t row = 0; row < active_clients.size(); ++row)
      row_of[active_clients[row]] = row;

    // Demand may have been shed by admission control; scale request sizes
    // to the problem's (possibly reduced) demands.
    std::vector<double> raw_demand(active_clients.size(), 0.0);
    for (const auto& request : current_requests)
      if (row_of[request.client] != SIZE_MAX)
        raw_demand[row_of[request.client]] += request.size_mb;

    for (const auto& request : current_requests) {
      const std::size_t row = row_of[request.client];
      if (row == SIZE_MAX) continue;
      const double scale = raw_demand[row] > 1e-12
                               ? problem->demand(row) / raw_demand[row]
                               : 0.0;
      double size = request.size_mb * scale;
      // Whole-request placement on the next feasible replica with room;
      // waterfall-split only if nothing can take it whole.
      bool placed = false;
      for (std::size_t probe = 0; probe < problem->num_replicas(); ++probe) {
        const std::size_t col =
            (rr_cursor + probe) % problem->num_replicas();
        if (!problem->feasible_pair(row, col)) continue;
        if (remaining[col] + 1e-9 < size) continue;
        allocation(row, col) += size;
        remaining[col] -= size;
        rr_cursor = (col + 1) % problem->num_replicas();
        placed = true;
        break;
      }
      if (!placed) {
        for (std::size_t probe = 0;
             probe < problem->num_replicas() && size > 1e-12; ++probe) {
          const std::size_t col =
              (rr_cursor + probe) % problem->num_replicas();
          if (!problem->feasible_pair(row, col)) continue;
          const double chunk = std::min(size, remaining[col]);
          allocation(row, col) += chunk;
          remaining[col] -= chunk;
          size -= chunk;
        }
        rr_cursor = (rr_cursor + 1) % problem->num_replicas();
      }
    }
    return allocation;
  }

  /// Seconds of local compute per distributed round.  CDPSM touches the
  /// full |C|x|N| estimate of every peer each round (consensus + projection)
  /// where LDDM solves one |C|-sized column — the "higher workload
  /// intensity" the paper observes for CDPSM (§IV-B).
  [[nodiscard]] SimTime compute_delay() const {
    const double entries = static_cast<double>(problem->num_clients()) *
                           static_cast<double>(problem->num_replicas());
    const double factor = cfg.algorithm == Algorithm::kCdpsm
                              ? static_cast<double>(problem->num_replicas())
                              : 1.0;
    return cfg.compute_seconds_per_entry * entries * factor;
  }

  void schedule_round(std::uint64_t generation, SimTime extra_delay = 0.0) {
    round_started = sim.now();
    sim.schedule_after(extra_delay + compute_delay(), [this, generation] {
      if (generation != solve_generation) return;
      launch_round_messages(generation);
    });
  }

  void launch_round_messages(std::uint64_t generation) {
    // Fire this round's coordination traffic; the barrier (all delivered)
    // triggers the synchronous math and the next round.
    round_msgs_pending = 0;
    pending_generation = generation;
    const std::size_t clients = problem->num_clients();
    const std::size_t replicas = problem->num_replicas();

    if (cfg.algorithm == Algorithm::kCdpsm) {
      const std::size_t bytes = net::wire_size_matrix(clients, replicas);
      for (std::size_t i = 0; i < active_replicas.size(); ++i) {
        for (std::size_t j = 0; j < active_replicas.size(); ++j) {
          if (i == j) continue;
          ++round_msgs_pending;
          send_control(replica_node(active_replicas[i]),
                       replica_node(active_replicas[j]), kCdpsmEstimate,
                       bytes, generation);
        }
      }
    } else {  // LDDM: replica -> client load reports, client -> replica mu
      for (std::size_t col = 0; col < active_replicas.size(); ++col) {
        for (std::size_t row = 0; row < active_clients.size(); ++row) {
          ++round_msgs_pending;
          send_control(replica_node(active_replicas[col]),
                       client_node(active_clients[row]), kLddmLoadReport, 12,
                       generation);
          ++round_msgs_pending;
          send_control(client_node(active_clients[row]),
                       replica_node(active_replicas[col]), kLddmMuUpdate, 12,
                       generation);
        }
      }
    }
    if (round_msgs_pending == 0) {
      // Single-replica degenerate case: no traffic, just run the math.
      complete_round(generation);
    }
  }

  std::uint64_t pending_generation = 0;
  std::vector<double> warm_mu;  // LDDM duals carried across epochs
  Matrix warm_columns;          // LDDM primal loads carried across epochs
  double warm_demand_total = 0.0;

  void on_round_message(const net::Message& msg) {
    if (!solve_in_flight || round_msgs_pending == 0) return;
    // Stale deliveries from a solve that was aborted (replica failure) must
    // not count toward the new round's barrier.
    const auto* generation = std::any_cast<std::uint64_t>(&msg.payload);
    if (generation == nullptr || *generation != pending_generation) return;
    if (--round_msgs_pending == 0) complete_round(pending_generation);
  }

  void complete_round(std::uint64_t generation) {
    if (generation != solve_generation) return;
    ++report.total_rounds;
    rounds_metric.add(1);
    bool done = false;
    if (cfg.algorithm == Algorithm::kCdpsm) {
      cdpsm->round();
      done = cdpsm->converged() ||
             cdpsm->rounds_executed() >= cfg.cdpsm.max_rounds;
    } else {
      lddm->round();
      done = lddm->converged() ||
             lddm->rounds_executed() >= cfg.lddm.max_rounds;
    }
    // The round span covers local compute + the message barrier (the math
    // above runs in zero sim time at the barrier instant).
    tracer().span("solver.round", "solver", round_started,
                  sim.now() - round_started, telemetry::kControlTrack);
    if (done) {
      Matrix allocation = cfg.algorithm == Algorithm::kCdpsm
                              ? cdpsm->solution()
                              : lddm->solution();
      if (lddm && cfg.warm_start_lddm) {
        if (warm_mu.empty()) {
          // Seed unseen clients with the engine's own neutral start so a
          // client's first appearance is not biased by another's dual.
          double mean_mu = 0.0;
          for (const double m : lddm->multipliers()) mean_mu += m;
          mean_mu /= static_cast<double>(lddm->multipliers().size());
          warm_mu.assign(num_clients, mean_mu);
        }
        for (std::size_t row = 0; row < active_clients.size(); ++row)
          warm_mu[active_clients[row]] = lddm->multipliers()[row];
        if (warm_columns.empty())
          warm_columns = Matrix(num_clients, num_replicas, 0.0);
        for (std::size_t col = 0; col < active_replicas.size(); ++col)
          for (std::size_t row = 0; row < active_clients.size(); ++row)
            warm_columns(active_clients[row], active_replicas[col]) =
                lddm->column(col)[row];
        warm_demand_total = problem->total_demand();
      }
      cdpsm.reset();
      lddm.reset();
      finish_solve(std::move(allocation));
    } else {
      schedule_round(generation);
    }
  }

  void finish_solve(Matrix allocation) {
    solve_in_flight = false;
    set_all_selecting(false);
    tracer().span("epoch", "system", solve_started, sim.now() - solve_started,
                  telemetry::kControlTrack);

    // Assignments out: each replica tells each client its share (the
    // client's response time clock stops when its *last* share arrives).
    for (std::size_t row = 0; row < active_clients.size(); ++row) {
      for (std::size_t col = 0; col < active_replicas.size(); ++col) {
        send_control(replica_node(active_replicas[col]),
                     client_node(active_clients[row]), kAssignment, 16,
                     std::make_pair(current_epoch, active_clients[row]));
      }
    }
    expected_assignments[current_epoch] =
        active_clients.size() * active_replicas.size();

    // Placement shortfall: a request-granular policy (Round-Robin) can fail
    // to place a remainder when a client's feasible replicas are full even
    // though other replicas have room.  Account for it explicitly so the
    // megabyte ledger always balances.
    double placed = 0.0;
    for (std::size_t col = 0; col < active_replicas.size(); ++col)
      placed += allocation.col_sum(col);
    const double shortfall = problem->total_demand() - placed;
    if (shortfall > 1e-9) report.megabytes_abandoned += shortfall;

    // Transfers: replica col pushes its column total, paced over the
    // transfer window at intensity s_n / capacity.
    const double window = cfg.epoch_length * kTransferWindowFraction;
    for (std::size_t col = 0; col < active_replicas.size(); ++col) {
      const std::size_t n = active_replicas[col];
      const double load_mb = allocation.col_sum(col);
      if (load_mb <= 1e-9 || !alive[n]) continue;
      const double capacity_mb = cfg.replicas[n].bandwidth * window;
      const double intensity = clamp(load_mb / capacity_mb, 0.0, 1.0);
      const double duration =
          load_mb <= capacity_mb ? window
                                 : load_mb / cfg.replicas[n].bandwidth;
      set_activity(n, power::Activity::kTransfer, intensity);
      tracer().span("file_transfer", "transfer", sim.now(), duration,
                    replica_node(n));
      transfer_until[n] = sim.now() + duration;
      report.replicas[n].assigned_mb += load_mb;
      report.megabytes_served += load_mb;
      sim.schedule_after(duration, [this, n] {
        if (!alive[n]) return;
        if (sim.now() + 1e-12 >= transfer_until[n])
          set_activity(n, power::Activity::kIdle, 0.0);
      });
    }
    for (const auto& request : current_requests) {
      if (request.retries == 0) {
        ++report.requests_served;
        requests_served_metric.add(1);
        // Response-time samples: arrival -> now (+ assignment delivery
        // latency, folded in by on_assignment_delivered).  Retried
        // remainders are follow-up transfers, not new decisions.
        pending_responses[current_epoch].push_back(request.arrival);
      } else {
        report.megabytes_retried += request.size_mb;
      }
    }

    maybe_start_solve();
    schedule_backlog_epoch();
  }

  /// A retry backlog with no future organic epoch would strand; give it a
  /// synthetic epoch one epoch-length out.
  void schedule_backlog_epoch() {
    if (retry_backlog.empty() || solve_in_flight || !solve_queue.empty() ||
        synthetic_epoch_scheduled)
      return;
    synthetic_epoch_scheduled = true;
    sim.schedule_after(cfg.epoch_length, [this] {
      synthetic_epoch_scheduled = false;
      if (retry_backlog.empty()) return;
      epoch_buckets.emplace_back();
      solve_queue.push_back(epoch_buckets.size() - 1);
      maybe_start_solve();
    });
  }

  std::map<std::size_t, std::size_t> expected_assignments;
  std::map<std::size_t, std::vector<SimTime>> pending_responses;

  void on_assignment_delivered(const net::Message& msg) {
    const auto* tag =
        std::any_cast<std::pair<std::size_t, std::uint32_t>>(&msg.payload);
    if (tag == nullptr) return;
    auto it = expected_assignments.find(tag->first);
    if (it == expected_assignments.end() || it->second == 0) return;
    if (--it->second == 0) {
      // Every share of this epoch has reached its client: close out the
      // epoch's response times.
      for (const SimTime arrival : pending_responses[tag->first]) {
        const double response_ms = milliseconds(sim.now() - arrival);
        report.response_times_ms.push_back(response_ms);
        response_metric.observe(response_ms);
      }
      pending_responses.erase(tag->first);
      expected_assignments.erase(it);
    }
  }

  // ---------- finalization ----------

  RunReport finalize() {
    report.makespan = sim.now();
    report.replicas.resize(num_replicas);
    for (std::size_t n = 0; n < num_replicas; ++n) {
      auto& rep = report.replicas[n];
      rep.alive = alive[n];
      const SimTime horizon =
          alive[n] ? report.makespan : std::max(death_time[n], 0.0);
      SimTime downtime = 0.0;
      for (const auto& [from, to] : down_intervals[n]) {
        const SimTime end = to < 0.0 ? horizon : std::min(to, horizon);
        downtime += std::max(0.0, end - std::min(from, horizon));
      }
      rep.downtime = downtime;
      // Crashed intervals sit at the idle level in the timeline (set on
      // death); a powered-off node draws nothing, so bill them out.
      const auto& model = model_of(n);
      auto* const tel = cfg.telemetry.get();
      rep.energy =
          power::integrate_energy(model, timelines[n], horizon, tel) -
          model.params().idle * downtime;
      rep.active_energy =
          power::integrate_active_energy(model, timelines[n], horizon, tel);
      if (cfg.tariffs.empty()) {
        rep.cost = energy_cost(rep.energy, cfg.replicas[n].price);
        rep.active_cost =
            energy_cost(rep.active_energy, cfg.replicas[n].price);
      } else {
        rep.cost = power::integrate_cost(model, timelines[n], horizon,
                                         cfg.tariffs[n],
                                         /*active_only=*/false, tel);
        rep.active_cost =
            power::integrate_cost(model, timelines[n], horizon,
                                  cfg.tariffs[n], /*active_only=*/true, tel);
        // Bill out the crashed intervals (idle-level draw under the tariff).
        const power::ActivityTimeline always_idle;
        for (const auto& [from, to] : down_intervals[n]) {
          const SimTime end = to < 0.0 ? horizon : std::min(to, horizon);
          if (end <= from) continue;
          rep.cost -= power::integrate_cost(model, always_idle, end,
                                            cfg.tariffs[n]) -
                      power::integrate_cost(model, always_idle, from,
                                            cfg.tariffs[n]);
        }
      }
      if (cfg.record_traces)
        rep.trace = power::sample_trace(model, timelines[n], horizon,
                                        cfg.meter_hz, tel);
      report.total_cost += rep.cost;
      report.total_active_cost += rep.active_cost;
      report.total_energy += rep.energy;
      report.total_active_energy += rep.active_energy;
    }
    for (const auto& request : retry_backlog)
      report.megabytes_abandoned += request.size_mb;
    // Coordination traffic comes from the network's per-type counters: the
    // protocol types live below 100 (the ring owns 100-199 and is membership
    // upkeep, not coordination; kFileData is modeled as paced activity, not
    // messages, so it never appears here).
    const auto control = network.traffic_in_range(0, 99);
    report.control_messages = control.messages;
    report.control_bytes = control.bytes;
    report.requests_dropped = requests_dropped;
    return std::move(report);
  }

  RunReport run() {
    report.replicas.resize(num_replicas);
    setup_links();
    attach_nodes();
    start_ring();
    bucket_requests();
    schedule_epoch_boundaries();

    // The ring heartbeats forever; run until only periodic ring events are
    // left (no solve in flight, queue empty, all transfers done).
    const SimTime hard_stop =
        (static_cast<double>(epoch_buckets.size()) + 4.0) * cfg.epoch_length +
        trace.horizon() + 10.0;
    sim.run_until(hard_stop);
    for (auto& ring : rings) ring->stop();
    sim.run_until(hard_stop + cfg.ring.failure_timeout);
    return finalize();
  }
};

EdrSystem::EdrSystem(SystemConfig config, workload::Trace trace)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(trace))) {
  config_ = impl_->cfg;
}

EdrSystem::~EdrSystem() = default;

void EdrSystem::inject_failure(std::size_t replica, SimTime when) {
  if (replica >= impl_->num_replicas)
    throw std::out_of_range("EdrSystem::inject_failure: bad replica index");
  impl_->inject_failure(replica, when);
}

void EdrSystem::inject_recovery(std::size_t replica, SimTime when) {
  if (replica >= impl_->num_replicas)
    throw std::out_of_range("EdrSystem::inject_recovery: bad replica index");
  impl_->inject_recovery(replica, when);
}

RunReport EdrSystem::run() { return impl_->run(); }

}  // namespace edr::core
