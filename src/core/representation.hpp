// The solver-representation knob: how CDPSM/LDDM store and exchange the
// traffic matrix while iterating.
//
//  * kDense      — the golden path: dense |C|x|N| Matrix everywhere,
//                  byte-identical to the historical behavior and pinned by
//                  the golden-equivalence digests.
//  * kSparse     — compact CSR-by-client storage over the feasible pairs
//                  (common/sparse.hpp); projections, gradients and wire
//                  frames touch only the ~|C|·k feasible entries.
//  * kAggregated — kSparse plus the client equivalence-class transform:
//                  clients with identical feasible-replica sets collapse to
//                  one aggregate row, the engine solves per class, and the
//                  allocation fans back out by demand share (exact — see
//                  core/aggregation.hpp and DESIGN.md §12).
//
// The knob threads from SystemConfig through the algorithm registry into
// CdpsmOptions/LddmOptions; backends without an iterative engine (central,
// rr, donar) ignore it.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace edr::core {

enum class SolverRepresentation { kDense, kSparse, kAggregated };

[[nodiscard]] constexpr std::string_view to_string(
    SolverRepresentation representation) {
  switch (representation) {
    case SolverRepresentation::kDense:
      return "dense";
    case SolverRepresentation::kSparse:
      return "sparse";
    case SolverRepresentation::kAggregated:
      return "aggregated";
  }
  return "dense";
}

[[nodiscard]] inline std::optional<SolverRepresentation>
parse_representation(std::string_view name) {
  if (name == "dense") return SolverRepresentation::kDense;
  if (name == "sparse") return SolverRepresentation::kSparse;
  if (name == "aggregated") return SolverRepresentation::kAggregated;
  return std::nullopt;
}

}  // namespace edr::core
