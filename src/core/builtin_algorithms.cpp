#include "core/builtin_algorithms.hpp"

#include <cstdint>

#include "core/scheduler.hpp"
#include "net/wire.hpp"
#include "optim/solver.hpp"

namespace edr::core {

// ---------- CDPSM ----------

namespace {
constexpr MessageTypeInfo kCdpsmTypes[] = {
    {kCdpsmEstimate, "cdpsm_estimate", /*round=*/true},
};
constexpr MessageTypeInfo kLddmTypes[] = {
    {kLddmLoadReport, "lddm_load_report", /*round=*/true},
    {kLddmMuUpdate, "lddm_mu_update", /*round=*/true},
};
constexpr MessageTypeInfo kAdmmTypes[] = {
    {kAdmmShare, "admm_share", /*round=*/true},
    {kAdmmFeedback, "admm_feedback", /*round=*/true},
};

/// True when the run carries a flight recorder or monitor — the only case
/// where per-replica stats collection is worth its extra copies.
bool observability_enabled(const EpochContext& ctx) {
  return ctx.telemetry != nullptr &&
         (ctx.telemetry->flight_recorder() != nullptr ||
          ctx.telemetry->monitor() != nullptr);
}

/// The algorithm-owned pool for a thread knob: null when the knob resolves
/// to a single lane (the serial path needs no pool at all).
std::unique_ptr<common::ThreadPool> make_solver_pool(std::size_t threads) {
  const std::size_t lanes = common::ThreadPool::resolve(threads);
  return lanes > 1 ? std::make_unique<common::ThreadPool>(lanes) : nullptr;
}
}  // namespace

CdpsmAlgorithm::CdpsmAlgorithm(CdpsmOptions options)
    : options_(options), pool_(make_solver_pool(options.threads)) {}

std::span<const MessageTypeInfo> CdpsmAlgorithm::message_types() const {
  return kCdpsmTypes;
}

double CdpsmAlgorithm::compute_factor(const EpochContext& ctx) const {
  // CDPSM touches the full |C|x|N| estimate of every peer each round
  // (consensus + projection) — the "higher workload intensity" the paper
  // observes for CDPSM (§IV-B).
  return static_cast<double>(ctx.problem->num_replicas());
}

double CdpsmAlgorithm::coordination_bytes(double clients,
                                          double replicas) const {
  // Full matrices to every peer each round.
  return clients * replicas * 8.0 * (replicas - 1.0);
}

void CdpsmAlgorithm::begin_epoch(const EpochContext& ctx) {
  engine_ = std::make_unique<CdpsmEngine>(*ctx.problem, options_);
  if (pool_) engine_->set_thread_pool(pool_.get());
  if (ctx.telemetry) engine_->attach_telemetry(*ctx.telemetry);
  engine_->set_collect_replica_stats(observability_enabled(ctx));
  last_round_ = {};
}

void CdpsmAlgorithm::plan_round(const EpochContext& ctx,
                                std::vector<PlannedMessage>& out) const {
  out.clear();
  std::size_t bytes = net::wire_size_matrix(ctx.problem->num_clients(),
                                            ctx.problem->num_replicas());
  if (options_.representation != SolverRepresentation::kDense &&
      engine_ != nullptr) {
    // Compact frames: (position, value) pairs over the work problem's
    // feasible pattern instead of a dense |C|x|N| matrix per peer.
    bytes = net::wire_size_indexed_doubles(
        engine_->work_problem().sparsity()->nnz());
  }
  const auto& replicas = *ctx.active_replicas;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    for (std::size_t j = 0; j < replicas.size(); ++j) {
      if (i == j) continue;
      out.push_back({Endpoint::kSolver, replicas[i], Endpoint::kSolver,
                     replicas[j], kCdpsmEstimate, bytes});
    }
  }
}

bool CdpsmAlgorithm::step_round(const EpochContext& ctx) {
  (void)ctx;
  last_round_ = engine_->round();
  return engine_->converged() ||
         engine_->rounds_executed() >= options_.max_rounds;
}

void CdpsmAlgorithm::observe(const EpochContext& ctx,
                             std::vector<telemetry::RoundSample>& out) {
  if (!engine_ || engine_->replica_stats().empty()) return;
  const auto& replicas = *ctx.active_replicas;
  const std::size_t bytes = engine_->bytes_per_replica_round();
  for (std::size_t col = 0; col < replicas.size(); ++col) {
    const CdpsmReplicaStats& stats = engine_->replica_stats()[col];
    telemetry::RoundSample sample;
    sample.round = engine_->rounds_executed();
    sample.replica = static_cast<std::uint32_t>(replicas[col]);
    sample.objective = stats.local_objective;
    sample.round_objective = last_round_.objective;
    sample.gradient_norm = stats.gradient_norm;
    sample.disagreement = last_round_.disagreement;
    sample.projection_correction = stats.projection_correction;
    sample.capacity_slack =
        ctx.problem->replica(col).bandwidth - stats.load;
    sample.load = stats.load;
    sample.load_delta = stats.load_delta;
    sample.messages_sent = replicas.size() - 1;
    sample.bytes_sent = bytes;
    out.push_back(sample);
  }
}

Matrix CdpsmAlgorithm::extract_allocation(const EpochContext& ctx) {
  (void)ctx;
  Matrix allocation = engine_->solution();
  engine_.reset();
  return allocation;
}

void CdpsmAlgorithm::abort_epoch() { engine_.reset(); }

// ---------- LDDM ----------

LddmAlgorithm::LddmAlgorithm(LddmOptions options, bool warm_start)
    : options_(options),
      warm_start_(warm_start),
      pool_(make_solver_pool(options.threads)) {}

std::span<const MessageTypeInfo> LddmAlgorithm::message_types() const {
  return kLddmTypes;
}

void LddmAlgorithm::begin_epoch(const EpochContext& ctx) {
  engine_ = std::make_unique<LddmEngine>(*ctx.problem, options_);
  if (pool_) engine_->set_thread_pool(pool_.get());
  if (ctx.telemetry) engine_->attach_telemetry(*ctx.telemetry);
  engine_->set_collect_replica_stats(observability_enabled(ctx));
  last_round_ = {};
  const auto& active_clients = *ctx.active_clients;
  const auto& active_replicas = *ctx.active_replicas;
  // Warm start carries dense per-client multipliers and columns between
  // epochs; the compact representations index state differently (and the
  // aggregated client set changes with the batch), so they cold-start.
  if (warm_start_ &&
      options_.representation == SolverRepresentation::kDense &&
      !warm_mu_.empty()) {
    std::vector<double> mu(active_clients.size());
    for (std::size_t row = 0; row < active_clients.size(); ++row)
      mu[row] = warm_mu_[active_clients[row]];
    engine_->set_multipliers(mu);
    if (!warm_columns_.empty()) {
      // Scale the remembered loads to this epoch's demand level so the
      // primal seed is consistent with the new request batch.
      const double prev_total = warm_demand_total_;
      const double scale_factor =
          prev_total > 1e-9 ? ctx.problem->total_demand() / prev_total : 0.0;
      std::vector<double> column(active_clients.size());
      for (std::size_t col = 0; col < active_replicas.size(); ++col) {
        for (std::size_t row = 0; row < active_clients.size(); ++row)
          column[row] = warm_columns_(active_clients[row],
                                      active_replicas[col]) *
                        scale_factor;
        engine_->set_column_state(col, column);
      }
    }
  }
}

void LddmAlgorithm::plan_round(const EpochContext& ctx,
                               std::vector<PlannedMessage>& out) const {
  out.clear();
  // Replica -> client load reports, client -> replica mu updates; the
  // interleaving matches the per-pair exchange of the live protocol.
  const auto& replicas = *ctx.active_replicas;
  const auto& clients = *ctx.active_clients;
  if (options_.representation != SolverRepresentation::kDense &&
      engine_ != nullptr) {
    // Compact round: traffic exists only on the work problem's feasible
    // pairs.  Under aggregation each class exchanges through its
    // representative client's endpoint.
    const optim::Problem& work = engine_->work_problem();
    const ClientAggregation* agg = engine_->aggregation();
    const common::SparsityPattern& pattern = *work.sparsity();
    for (std::size_t col = 0; col < replicas.size(); ++col) {
      for (const std::uint32_t r : pattern.col_rows(col)) {
        const std::size_t row = agg != nullptr ? agg->representative[r] : r;
        out.push_back({Endpoint::kSolver, replicas[col], Endpoint::kClient,
                       clients[row], kLddmLoadReport, 12});
        out.push_back({Endpoint::kClient, clients[row], Endpoint::kSolver,
                       replicas[col], kLddmMuUpdate, 12});
      }
    }
    return;
  }
  for (std::size_t col = 0; col < replicas.size(); ++col) {
    for (std::size_t row = 0; row < clients.size(); ++row) {
      out.push_back({Endpoint::kSolver, replicas[col], Endpoint::kClient,
                     clients[row], kLddmLoadReport, 12});
      out.push_back({Endpoint::kClient, clients[row], Endpoint::kSolver,
                     replicas[col], kLddmMuUpdate, 12});
    }
  }
}

bool LddmAlgorithm::step_round(const EpochContext& ctx) {
  (void)ctx;
  last_round_ = engine_->round();
  return engine_->converged() ||
         engine_->rounds_executed() >= options_.max_rounds;
}

void LddmAlgorithm::observe(const EpochContext& ctx,
                            std::vector<telemetry::RoundSample>& out) {
  if (!engine_ || engine_->replica_stats().empty()) return;
  const auto& replicas = *ctx.active_replicas;
  const std::size_t bytes = engine_->bytes_per_replica_round();
  for (std::size_t col = 0; col < replicas.size(); ++col) {
    const LddmReplicaStats& stats = engine_->replica_stats()[col];
    telemetry::RoundSample sample;
    sample.round = engine_->rounds_executed();
    sample.replica = static_cast<std::uint32_t>(replicas[col]);
    sample.objective = stats.local_objective;
    sample.round_objective = last_round_.objective;
    // LDDM has no per-replica subgradient; the column movement is the
    // closest progress signal, and the global demand residual plays the
    // role disagreement plays for CDPSM.
    sample.gradient_norm = stats.movement;
    sample.disagreement = last_round_.demand_residual;
    sample.projection_correction = 0.0;
    sample.capacity_slack =
        ctx.problem->replica(col).bandwidth - stats.load;
    sample.load = stats.load;
    sample.load_delta = stats.load_delta;
    sample.messages_sent = ctx.problem->num_clients();
    sample.bytes_sent = bytes;
    out.push_back(sample);
  }
}

Matrix LddmAlgorithm::extract_allocation(const EpochContext& ctx) {
  Matrix allocation = engine_->solution();
  if (warm_start_ &&
      options_.representation == SolverRepresentation::kDense) {
    const auto& active_clients = *ctx.active_clients;
    const auto& active_replicas = *ctx.active_replicas;
    if (warm_mu_.empty()) {
      // Seed unseen clients with the engine's own neutral start so a
      // client's first appearance is not biased by another's dual.
      double mean_mu = 0.0;
      for (const double m : engine_->multipliers()) mean_mu += m;
      mean_mu /= static_cast<double>(engine_->multipliers().size());
      warm_mu_.assign(ctx.num_clients, mean_mu);
    }
    for (std::size_t row = 0; row < active_clients.size(); ++row)
      warm_mu_[active_clients[row]] = engine_->multipliers()[row];
    if (warm_columns_.empty())
      warm_columns_ = Matrix(ctx.num_clients, ctx.num_replicas, 0.0);
    for (std::size_t col = 0; col < active_replicas.size(); ++col)
      for (std::size_t row = 0; row < active_clients.size(); ++row)
        warm_columns_(active_clients[row], active_replicas[col]) =
            engine_->column(col)[row];
    warm_demand_total_ = ctx.problem->total_demand();
  }
  engine_.reset();
  return allocation;
}

void LddmAlgorithm::abort_epoch() { engine_.reset(); }

// ---------- ADMM ----------

AdmmAlgorithm::AdmmAlgorithm(AdmmOptions options, bool warm_start)
    : options_(options),
      warm_start_(warm_start),
      pool_(make_solver_pool(options.threads)) {}

std::span<const MessageTypeInfo> AdmmAlgorithm::message_types() const {
  return kAdmmTypes;
}

void AdmmAlgorithm::begin_epoch(const EpochContext& ctx) {
  AdmmOptions options = options_;
  // The adapted penalty is part of the warm state: re-balancing ρ from
  // scratch costs the first few rounds of every epoch.
  const bool warm = warm_start_ &&
                    options_.representation == SolverRepresentation::kDense &&
                    !warm_z_.empty();
  if (warm && warm_rho_ > 0.0) options.rho = warm_rho_;
  engine_ = std::make_unique<AdmmEngine>(*ctx.problem, options);
  if (pool_) engine_->set_thread_pool(pool_.get());
  if (ctx.telemetry) engine_->attach_telemetry(*ctx.telemetry);
  engine_->set_collect_replica_stats(observability_enabled(ctx));
  last_round_ = {};
  if (!warm) return;
  // Gather the carried consensus/dual state for this epoch's active sets,
  // scaling the primal to the new demand level (the scaled duals U live in
  // primal units, so they scale the same way).
  const auto& active_clients = *ctx.active_clients;
  const auto& active_replicas = *ctx.active_replicas;
  const double prev_total = warm_demand_total_;
  const double scale_factor =
      prev_total > 1e-9 ? ctx.problem->total_demand() / prev_total : 0.0;
  Matrix z(active_clients.size(), active_replicas.size(), 0.0);
  Matrix u(active_clients.size(), active_replicas.size(), 0.0);
  for (std::size_t row = 0; row < active_clients.size(); ++row)
    for (std::size_t col = 0; col < active_replicas.size(); ++col) {
      z(row, col) = warm_z_(active_clients[row], active_replicas[col]) *
                    scale_factor;
      u(row, col) = warm_u_(active_clients[row], active_replicas[col]) *
                    scale_factor;
    }
  engine_->set_state(z, u);
}

void AdmmAlgorithm::plan_round(const EpochContext& ctx,
                               std::vector<PlannedMessage>& out) const {
  out.clear();
  // Replica -> client share reports, client -> replica consensus feedback —
  // the same client↔replica-only round shape as LDDM (no replica↔replica
  // traffic).
  const auto& replicas = *ctx.active_replicas;
  const auto& clients = *ctx.active_clients;
  if (options_.representation != SolverRepresentation::kDense &&
      engine_ != nullptr) {
    // Compact round: traffic exists only on the work problem's feasible
    // pairs.  Under aggregation each class exchanges through its
    // representative client's endpoint.
    const optim::Problem& work = engine_->work_problem();
    const ClientAggregation* agg = engine_->aggregation();
    const common::SparsityPattern& pattern = *work.sparsity();
    for (std::size_t col = 0; col < replicas.size(); ++col) {
      for (const std::uint32_t r : pattern.col_rows(col)) {
        const std::size_t row = agg != nullptr ? agg->representative[r] : r;
        out.push_back({Endpoint::kSolver, replicas[col], Endpoint::kClient,
                       clients[row], kAdmmShare, 12});
        out.push_back({Endpoint::kClient, clients[row], Endpoint::kSolver,
                       replicas[col], kAdmmFeedback, 12});
      }
    }
    return;
  }
  for (std::size_t col = 0; col < replicas.size(); ++col) {
    for (std::size_t row = 0; row < clients.size(); ++row) {
      out.push_back({Endpoint::kSolver, replicas[col], Endpoint::kClient,
                     clients[row], kAdmmShare, 12});
      out.push_back({Endpoint::kClient, clients[row], Endpoint::kSolver,
                     replicas[col], kAdmmFeedback, 12});
    }
  }
}

bool AdmmAlgorithm::step_round(const EpochContext& ctx) {
  (void)ctx;
  last_round_ = engine_->round();
  return engine_->converged() ||
         engine_->rounds_executed() >= options_.max_rounds;
}

void AdmmAlgorithm::observe(const EpochContext& ctx,
                            std::vector<telemetry::RoundSample>& out) {
  if (!engine_ || engine_->replica_stats().empty()) return;
  const auto& replicas = *ctx.active_replicas;
  const std::size_t bytes = engine_->bytes_per_replica_round();
  for (std::size_t col = 0; col < replicas.size(); ++col) {
    const AdmmReplicaStats& stats = engine_->replica_stats()[col];
    telemetry::RoundSample sample;
    sample.round = engine_->rounds_executed();
    sample.replica = static_cast<std::uint32_t>(replicas[col]);
    sample.objective = stats.local_objective;
    sample.round_objective = last_round_.objective;
    // The dual residual is ADMM's progress signal; the primal residual
    // plays the role disagreement plays for CDPSM (distance between the
    // replica-owned X and the consensus Z).
    sample.gradient_norm = last_round_.dual_residual;
    sample.disagreement = last_round_.primal_residual;
    sample.projection_correction = 0.0;
    sample.capacity_slack =
        ctx.problem->replica(col).bandwidth - stats.load;
    sample.load = stats.load;
    sample.load_delta = stats.load_delta;
    sample.messages_sent = ctx.problem->num_clients();
    sample.bytes_sent = bytes;
    out.push_back(sample);
  }
}

Matrix AdmmAlgorithm::extract_allocation(const EpochContext& ctx) {
  Matrix allocation = engine_->solution();
  if (warm_start_ &&
      options_.representation == SolverRepresentation::kDense) {
    const auto& active_clients = *ctx.active_clients;
    const auto& active_replicas = *ctx.active_replicas;
    if (warm_z_.empty()) {
      warm_z_ = Matrix(ctx.num_clients, ctx.num_replicas, 0.0);
      warm_u_ = Matrix(ctx.num_clients, ctx.num_replicas, 0.0);
    }
    const Matrix& z = engine_->consensus();
    const Matrix& u = engine_->duals();
    for (std::size_t row = 0; row < active_clients.size(); ++row)
      for (std::size_t col = 0; col < active_replicas.size(); ++col) {
        warm_z_(active_clients[row], active_replicas[col]) = z(row, col);
        warm_u_(active_clients[row], active_replicas[col]) = u(row, col);
      }
    warm_rho_ = engine_->rho();
    warm_demand_total_ = ctx.problem->total_demand();
  }
  engine_.reset();
  return allocation;
}

void AdmmAlgorithm::abort_epoch() { engine_.reset(); }

// ---------- Round-Robin ----------

/// The paper's Round-Robin baseline at request granularity: each request
/// is served whole by the next latency-feasible replica in rotation (no
/// fractional splitting).  The resulting load imbalance is what the
/// degree-γ network term punishes in Fig 8(b).
std::optional<Matrix> RoundRobinAlgorithm::solve_oneshot(
    const EpochContext& ctx) {
  const optim::Problem& problem = *ctx.problem;
  const auto& active_clients = *ctx.active_clients;
  Matrix allocation(problem.num_clients(), problem.num_replicas(), 0.0);
  std::vector<double> remaining(problem.num_replicas());
  for (std::size_t col = 0; col < problem.num_replicas(); ++col)
    remaining[col] = problem.replica(col).bandwidth;
  // Row index of each active client.
  std::vector<std::size_t> row_of(ctx.num_clients, SIZE_MAX);
  for (std::size_t row = 0; row < active_clients.size(); ++row)
    row_of[active_clients[row]] = row;

  // Demand may have been shed by admission control; scale request sizes
  // to the problem's (possibly reduced) demands.
  std::vector<double> raw_demand(active_clients.size(), 0.0);
  for (const auto& request : *ctx.requests)
    if (row_of[request.client] != SIZE_MAX)
      raw_demand[row_of[request.client]] += request.size_mb;

  for (const auto& request : *ctx.requests) {
    const std::size_t row = row_of[request.client];
    if (row == SIZE_MAX) continue;
    const double scale = raw_demand[row] > 1e-12
                             ? problem.demand(row) / raw_demand[row]
                             : 0.0;
    double size = request.size_mb * scale;
    // Whole-request placement on the next feasible replica with room;
    // waterfall-split only if nothing can take it whole.
    bool placed = false;
    for (std::size_t probe = 0; probe < problem.num_replicas(); ++probe) {
      const std::size_t col = (cursor_ + probe) % problem.num_replicas();
      if (!problem.feasible_pair(row, col)) continue;
      if (remaining[col] + 1e-9 < size) continue;
      allocation(row, col) += size;
      remaining[col] -= size;
      cursor_ = (col + 1) % problem.num_replicas();
      placed = true;
      break;
    }
    if (!placed) {
      for (std::size_t probe = 0;
           probe < problem.num_replicas() && size > 1e-12; ++probe) {
        const std::size_t col = (cursor_ + probe) % problem.num_replicas();
        if (!problem.feasible_pair(row, col)) continue;
        const double chunk = std::min(size, remaining[col]);
        allocation(row, col) += chunk;
        remaining[col] -= chunk;
        size -= chunk;
      }
      cursor_ = (cursor_ + 1) % problem.num_replicas();
    }
  }
  if (observability_enabled(ctx)) {
    pending_samples_.clear();
    double total = 0.0;
    for (std::size_t col = 0; col < problem.num_replicas(); ++col) {
      const double load = allocation.col_sum(col);
      telemetry::RoundSample sample;
      sample.round = 1;
      sample.replica =
          static_cast<std::uint32_t>((*ctx.active_replicas)[col]);
      sample.objective = optim::replica_cost(problem.replica(col), load);
      sample.capacity_slack = remaining[col];
      sample.load = load;
      sample.load_delta = load;
      total += sample.objective;
      pending_samples_.push_back(sample);
    }
    for (auto& sample : pending_samples_) sample.round_objective = total;
  }
  return allocation;
}

void RoundRobinAlgorithm::observe(const EpochContext& ctx,
                                  std::vector<telemetry::RoundSample>& out) {
  (void)ctx;
  for (const auto& sample : pending_samples_) out.push_back(sample);
  pending_samples_.clear();
}

// ---------- Centralized ----------

double CentralizedAlgorithm::compute_factor(const EpochContext& ctx) const {
  (void)ctx;
  return 20.0;  // interior iterations, one box
}

void CentralizedAlgorithm::begin_epoch(const EpochContext& ctx) {
  // Coordinator = lowest-id alive replica.
  coordinator_ = ctx.active_replicas->front();
}

void CentralizedAlgorithm::plan_prologue(
    const EpochContext& ctx, std::vector<PlannedMessage>& out) const {
  out.clear();
  for (const std::uint32_t c : *ctx.active_clients)
    out.push_back({Endpoint::kClient, c, Endpoint::kSolver, coordinator_,
                   kClientRequest, 16});
}

std::optional<Matrix> CentralizedAlgorithm::solve_oneshot(
    const EpochContext& ctx) {
  // The single point of failure the paper warns about: if the coordinator
  // died mid-solve, the epoch stalls until the ring detects the crash and
  // the restart elects the next survivor.
  if (!(*ctx.replica_alive)[coordinator_]) return std::nullopt;
  auto solved = optim::solve_centralized(*ctx.problem);
  Matrix allocation = solved ? std::move(solved->allocation)
                             : round_robin_allocation(*ctx.problem);
  if (observability_enabled(ctx)) {
    pending_samples_.clear();
    const optim::Problem& problem = *ctx.problem;
    double total = 0.0;
    for (std::size_t col = 0; col < problem.num_replicas(); ++col) {
      const double load = allocation.col_sum(col);
      telemetry::RoundSample sample;
      sample.round = 1;
      sample.replica =
          static_cast<std::uint32_t>((*ctx.active_replicas)[col]);
      sample.objective = optim::replica_cost(problem.replica(col), load);
      sample.capacity_slack = problem.replica(col).bandwidth - load;
      sample.load = load;
      sample.load_delta = load;
      total += sample.objective;
      pending_samples_.push_back(sample);
    }
    for (auto& sample : pending_samples_) sample.round_objective = total;
  }
  return allocation;
}

void CentralizedAlgorithm::observe(const EpochContext& ctx,
                                   std::vector<telemetry::RoundSample>& out) {
  (void)ctx;
  for (const auto& sample : pending_samples_) out.push_back(sample);
  pending_samples_.clear();
}

}  // namespace edr::core
