// String-keyed factory for DistributedAlgorithm backends.
//
// The four built-in backends ("lddm", "cdpsm", "central", "rr") are always
// present; other libraries add their own (baselines registers "donar" via
// baselines::register_donar_algorithm()).  Benches, examples and the CLI
// select schedulers by key — SystemConfig::algorithm is a registry key —
// so a new backend needs no enum plumbing anywhere.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"

namespace edr::core {

struct SystemConfig;

using AlgorithmFactory =
    std::function<std::unique_ptr<DistributedAlgorithm>(const SystemConfig&)>;

class AlgorithmRegistry {
 public:
  /// The process-wide registry, with the built-in backends pre-registered.
  [[nodiscard]] static AlgorithmRegistry& instance();

  /// Register (or replace) a backend under `key`, with an optional one-line
  /// description for the CLI's --list-algorithms output.
  void add(std::string key, AlgorithmFactory factory);
  void add(std::string key, std::string description, AlgorithmFactory factory);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Registered keys, sorted (for error messages and --help listings).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// One-line description registered for `key` (empty when none was given
  /// or the key is unknown).
  [[nodiscard]] std::string description(const std::string& key) const;

  /// Instantiate the backend for `key`, configured from `cfg`.  Throws
  /// std::invalid_argument on an unknown key, listing the known ones.
  [[nodiscard]] std::unique_ptr<DistributedAlgorithm> make(
      const std::string& key, const SystemConfig& cfg) const;

 private:
  struct Entry {
    std::string key;
    std::string description;
    AlgorithmFactory factory;
  };
  std::vector<Entry> entries_;
};

/// Convenience: instantiate cfg.algorithm from the process-wide registry.
[[nodiscard]] std::unique_ptr<DistributedAlgorithm> make_algorithm(
    const SystemConfig& cfg);

/// Human-facing label for a registry key ("lddm" -> "EDR-LDDM").
[[nodiscard]] std::string algorithm_display_name(const std::string& key);

}  // namespace edr::core
