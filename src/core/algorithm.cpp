#include "core/algorithm.hpp"

namespace edr::core {

DistributedAlgorithm::~DistributedAlgorithm() = default;

std::span<const MessageTypeInfo> DistributedAlgorithm::message_types() const {
  return {};
}

bool DistributedAlgorithm::is_round_type(int type) const {
  for (const auto& info : message_types())
    if (info.id == type && info.round) return true;
  return false;
}

void DistributedAlgorithm::announce_targets(
    std::uint32_t client, std::size_t num_solvers,
    std::vector<std::size_t>& out) const {
  (void)client;
  out.clear();
  for (std::size_t s = 0; s < num_solvers; ++s) out.push_back(s);
}

void DistributedAlgorithm::plan_assignments(
    const EpochContext& ctx, std::vector<PlannedMessage>& out) const {
  out.clear();
  for (std::size_t row = 0; row < ctx.active_clients->size(); ++row) {
    for (std::size_t col = 0; col < ctx.active_replicas->size(); ++col) {
      out.push_back({Endpoint::kSolver, (*ctx.active_replicas)[col],
                     Endpoint::kClient, (*ctx.active_clients)[row],
                     assignment_type(), 16});
    }
  }
}

Matrix DistributedAlgorithm::extract_allocation(const EpochContext& ctx) {
  return Matrix(ctx.problem->num_clients(), ctx.problem->num_replicas(), 0.0);
}

}  // namespace edr::core
