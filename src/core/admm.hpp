// ADMM — consensus alternating direction method of multipliers (scaled
// form) for the replica-selection problem.
//
// The feasible set factors exactly like the projection machinery sees it:
//   A = per-client masked demand simplices (shared across replicas),
//   B_n = replica n's own capacity set {q ≥ 0, Σq ≤ B_n}.
// ADMM splits the objective across the replicas with a consensus copy Z:
//
//   minimize  Σ_n E_n(Σ_c x_{c,n})   s.t.  X = Z,  x_n ∈ B_n,  Z ∈ A.
//
// One round of the scaled form (penalty ρ, scaled duals U):
//   1. x-update (per replica, parallel): each replica solves its local
//      prox subproblem
//        x_n ← argmin_{q ∈ B_n} E_n(Σq) + (ρ/2)‖q − (z_n − u_n)‖²
//      — exactly the LDDM replica subproblem with zero multipliers
//      (optim::solve_replica_subproblem_into), so the existing bisection
//      kernel is reused unchanged;
//   2. z-update: Z ← Proj_A(X + U), one masked-simplex projection per
//      client row (optim::project_demand_set);
//   3. dual update: U ← U + X − Z.
//
// Because the x-update carries the *exact* local energy model (not a
// linearization) and the z-update restores demand feasibility every round,
// the recovered iterate is near-feasible and near-optimal after tens of
// rounds — versus hundreds for a subgradient scheme — at LDDM-class
// client↔replica traffic (no replica↔replica exchange).
//
// Residual-based ρ adaptation (Boyd et al. §3.4.1): when the primal
// residual ‖X − Z‖ outweighs the dual residual ρ‖Z − Z_prev‖ by more than
// adapt_threshold, ρ is multiplied by adapt_factor (and U rescaled to keep
// ρ·U invariant), and symmetrically.  Stopping is residual-based too: both
// residuals below tolerance × demand scale for `patience` consecutive
// rounds.
//
// The engine mirrors CdpsmEngine/LddmEngine: same representation knobs
// (dense golden path, sparse, aggregated), same deterministic parallel
// round contract (static block partitioning, ordered reductions), same
// telemetry and observability surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/simd.hpp"
#include "common/sparse.hpp"
#include "common/thread_pool.hpp"
#include "core/aggregation.hpp"
#include "core/representation.hpp"
#include "optim/convergence.hpp"
#include "optim/problem.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::core {

struct AdmmOptions {
  /// Initial penalty ρ (must be > 0).  With adaptation on, the starting
  /// value mostly sets how fast the first few rounds move; 1.0 is robust
  /// across the paper's setups.
  double rho = 1.0;
  /// Residual-balancing ρ adaptation (keeps primal and dual progress in
  /// lockstep; the main reason ADMM needs no per-instance step tuning).
  bool adapt_rho = true;
  /// Multiplier applied to ρ on each adaptation (τ in Boyd §3.4.1).
  double adapt_factor = 2.0;
  /// Trigger ratio between the residuals (μ in Boyd §3.4.1): adapt when one
  /// residual exceeds the other by this factor.
  double adapt_threshold = 10.0;
  std::size_t max_rounds = 2000;
  /// Converged when primal residual ‖X − Z‖ and dual residual ρ‖ΔZ‖ both
  /// stay below tolerance × demand scale for `patience` consecutive rounds.
  double tolerance = 1e-5;
  std::size_t patience = 3;
  /// Worker lanes for the per-replica x-update and the recovery projection
  /// (0 = all hardware threads).  1 — the default — is the exact serial
  /// path; every other value produces bitwise identical results (static
  /// block partitioning, disjoint column writes, ordered reductions).
  std::size_t threads = 1;
  /// Iterate storage (see core/representation.hpp).  kDense is the golden
  /// path; kSparse/kAggregated keep X, Z, U on the feasible pairs only and
  /// run the maskless subproblem on the compact columns.
  SolverRepresentation representation = SolverRepresentation::kDense;
  /// Kernel dispatch for the consensus/dual axpy sweeps, residual
  /// reductions and projection apply loops (common/simd.hpp).  kScalar —
  /// the default — is the byte-pinned golden path.
  common::simd::Mode simd = common::simd::Mode::kScalar;
};

struct AdmmRoundStats {
  std::size_t round = 0;
  double objective = 0.0;        ///< cost of the repaired consensus iterate
  double primal_residual = 0.0;  ///< ‖X − Z‖_F
  double dual_residual = 0.0;    ///< ρ‖Z − Z_prev‖_F
  double rho = 0.0;              ///< penalty in effect after this round
  std::size_t bytes_exchanged = 0;
};

/// Per-replica view of one round, collected only when enabled — feeds the
/// flight recorder.  Measured on the repaired consensus iterate, which is
/// the solution a deployment would act on.
struct AdmmReplicaStats {
  double local_objective = 0.0;  ///< E_n at this round's recovered load
  double movement = 0.0;         ///< ‖Δ recovered column‖₂ this round
  double load = 0.0;             ///< recovered Σ_c p_{c,n}
  double load_delta = 0.0;  ///< recovered load change vs the previous round
};

class AdmmEngine {
 public:
  AdmmEngine(const optim::Problem& problem, AdmmOptions options = {});

  /// One full round (x-update, z-update, dual update, ρ adaptation).
  AdmmRoundStats round();

  /// Run until convergence or the round limit; returns the trace (residual
  /// = max(primal, dual), matching the other engines' stationarity column).
  optim::ConvergenceTrace run();

  [[nodiscard]] bool converged() const { return converged_; }
  [[nodiscard]] std::size_t rounds_executed() const { return rounds_; }

  /// Current penalty (tracks adaptation; equals options().rho at start).
  [[nodiscard]] double rho() const { return rho_; }

  /// Consensus solution: the demand-feasible Z repaired to full
  /// feasibility (Z satisfies capacity only in the limit).
  [[nodiscard]] Matrix solution() const;

  /// Warm-start the consensus iterate and scaled duals (e.g. from the
  /// previous scheduling epoch); must be called before the first round.
  /// Z is re-projected onto the demand set so the first x-update sees a
  /// feasible prox center.  Dense representation only (throws
  /// std::logic_error otherwise).
  void set_state(const Matrix& z, const Matrix& u);

  /// Current consensus iterate / scaled duals (dense representation only —
  /// the warm-start carrier reads these at epoch end).
  [[nodiscard]] const Matrix& consensus() const { return z_; }
  [[nodiscard]] const Matrix& duals() const { return u_; }

  /// The problem the rounds actually iterate on: the original instance for
  /// kDense/kSparse, the aggregated instance for kAggregated.
  [[nodiscard]] const optim::Problem& work_problem() const { return *work_; }
  /// The client equivalence-class transform when representation ==
  /// kAggregated, null otherwise.
  [[nodiscard]] const ClientAggregation* aggregation() const {
    return aggregation_.get();
  }

  /// Bytes one replica sends to clients per round (its shares, one message
  /// per client).
  [[nodiscard]] std::size_t bytes_per_replica_round() const;
  /// Bytes one client sends to replicas per round (consensus feedback).
  [[nodiscard]] std::size_t bytes_per_client_round() const;

  [[nodiscard]] const AdmmOptions& options() const { return options_; }
  [[nodiscard]] const optim::Problem& problem() const { return *problem_; }

  /// Record per-round x-update/consensus spans and the residual gauges
  /// (solver.admm.*) into `telemetry`.
  void attach_telemetry(telemetry::Telemetry& telemetry);

  /// Use an externally owned pool for the parallel round instead of the
  /// lazily created one implied by options().threads — the algorithm layer
  /// shares one pool across the per-epoch engines so threads are spawned
  /// once per run, not once per epoch.  `pool` must outlive the engine;
  /// null reverts to the options-driven behavior.
  void set_thread_pool(common::ThreadPool* pool) { external_pool_ = pool; }

  /// Collect AdmmReplicaStats during round() (off by default; the flight
  /// recorder path turns it on).
  void set_collect_replica_stats(bool collect) { collect_stats_ = collect; }
  [[nodiscard]] bool collect_replica_stats() const { return collect_stats_; }
  /// Last round's per-replica stats (empty until a collected round ran).
  [[nodiscard]] const std::vector<AdmmReplicaStats>& replica_stats() const {
    return replica_stats_;
  }

  /// Messages / bytes the rounds so far would have put on the wire
  /// (accumulated round by round — the counters ScheduleResult is fed from,
  /// mirrored into solver.admm.* when telemetry is attached).
  [[nodiscard]] std::uint64_t messages_exchanged() const {
    return messages_exchanged_;
  }
  [[nodiscard]] std::uint64_t bytes_exchanged() const {
    return bytes_exchanged_;
  }

 private:
  /// Replica n's x-update: prox center gather, local subproblem, scatter.
  void solve_replica(std::size_t n);
  void solve_replica_sparse(std::size_t n);
  void solution_into(Matrix& out) const;
  void solution_into_sparse(common::SparseAllocation& out) const;
  /// The pool the parallel regions should use this round: the external one
  /// when set, else a lazily built pool per options_.threads; null = serial.
  [[nodiscard]] common::ThreadPool* pool() const;

  const optim::Problem* problem_;
  AdmmOptions options_;
  /// True iff representation != kDense — selects the compact round path.
  bool sparse_ = false;
  /// kAggregated state: the class transform and the aggregated instance the
  /// rounds run on.  work_ points at aggregated_problem_ when aggregating,
  /// else at problem_.
  std::unique_ptr<ClientAggregation> aggregation_;
  std::unique_ptr<optim::Problem> aggregated_problem_;
  const optim::Problem* work_ = nullptr;
  common::ThreadPool* external_pool_ = nullptr;
  mutable std::unique_ptr<common::ThreadPool> owned_pool_;
  std::uint64_t messages_exchanged_ = 0;
  std::uint64_t bytes_exchanged_ = 0;
  telemetry::EventTracer* tracer_ = &telemetry::disabled_tracer();
  telemetry::Counter rounds_metric_;
  telemetry::Counter messages_metric_;
  telemetry::Counter bytes_metric_;
  telemetry::Gauge objective_metric_;
  telemetry::Gauge primal_metric_;
  telemetry::Gauge dual_metric_;
  telemetry::Gauge rho_metric_;
  double rho_ = 1.0;
  bool collect_stats_ = false;
  std::vector<AdmmReplicaStats> replica_stats_;
  // Dense iterates: X (replica-owned columns), Z (consensus), U (scaled
  // duals), with Z double-buffered against z_prev_ for the dual residual.
  Matrix x_;
  Matrix z_;
  Matrix u_;
  Matrix z_prev_;
  std::vector<std::vector<double>> masks_;  // per replica feasibility
  // Compact-path counterparts over the work problem's pattern.
  common::SparseAllocation sparse_x_;
  common::SparseAllocation sparse_z_;
  common::SparseAllocation sparse_u_;
  common::SparseAllocation sparse_z_prev_;
  // Per-replica x-update scratch, reused across rounds: the gathered prox
  // center z_n − u_n and the subproblem output column.
  std::vector<std::vector<double>> prox_scratch_;
  std::vector<std::vector<double>> column_scratch_;
  // Shared all-zeros multiplier vector the x-update passes to the LDDM
  // subproblem kernel (read-only across lanes).
  std::vector<double> zero_mu_;
  // Recovered solution double buffer for observability (same convention as
  // the other engines).
  Matrix scratch_solution_;
  Matrix last_solution_;
  common::SparseAllocation sparse_scratch_solution_;
  common::SparseAllocation sparse_last_solution_;
  bool sparse_has_last_ = false;
  mutable common::SparseAllocation sparse_solution_tmp_;
  std::size_t stable_rounds_ = 0;
  std::size_t rounds_ = 0;
  bool converged_ = false;
};

}  // namespace edr::core
