// Prometheus text exposition (version 0.0.4) for the metrics registry.
//
// The runtime's metric names use dots ("system.epochs"); Prometheus names
// are [a-zA-Z0-9_:], so every other character maps to '_'.  Counters get
// the conventional `_total` suffix; histograms expand to cumulative
// `_bucket{le=...}` series plus `_sum`/`_count`, matching what a scraper
// expects from a client library.
//
// Labeled series: a registered name may carry a label block in the
// client-library convention, e.g. `net.bytes_by_type{type="kRound"}`.
// The block is split off before name sanitization, label *names* are
// sanitized like metric names, and label *values* (stored raw in the
// registry key) are escaped per the exposition-format spec: backslash,
// double quote and newline become \\ , \" and \n.  Emitting them raw —
// the pre-fix behavior — produced unparseable exposition output the
// moment a peer address or frame-type string contained any of the three.
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fmt.hpp"
#include "telemetry/export.hpp"

namespace edr::telemetry {

namespace {

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
    out.insert(out.begin(), '_');
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

struct SeriesName {
  std::string metric;  ///< sanitized metric name, no label block
  /// (sanitized label name, escaped label value) pairs, registration order.
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Split `name.with.dots{key="raw value",...}` into a sanitized metric
/// name plus escaped labels.  Values are stored raw in the registry key;
/// a value may itself contain `\`, `"` or newlines — the closing quote is
/// recognized only when followed by `,` or by `}` at the end of the name,
/// so only a value containing those exact sequences needs pre-escaping by
/// the registrant.  A name with no block (or a malformed one) sanitizes
/// whole, which is the old behavior.
SeriesName split_series(std::string_view name) {
  SeriesName out;
  const auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    out.metric = sanitize(name);
    return out;
  }
  auto block = name.substr(brace + 1, name.size() - brace - 2);
  std::vector<std::pair<std::string, std::string>> labels;
  while (!block.empty()) {
    const auto eq = block.find("=\"");
    if (eq == std::string_view::npos) {
      out.metric = sanitize(name);  // malformed: fall back, mangle whole
      return out;
    }
    const auto key = block.substr(0, eq);
    auto rest = block.substr(eq + 2);
    // Closing quote: a `"` followed by `,` (more pairs) or ending the block.
    std::size_t close = std::string_view::npos;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] != '"') continue;
      if (i + 1 == rest.size() || rest[i + 1] == ',') {
        close = i;
        break;
      }
    }
    if (close == std::string_view::npos) {
      out.metric = sanitize(name);
      return out;
    }
    labels.emplace_back(sanitize(key), escape_label_value(rest.substr(0, close)));
    block = rest.substr(close + 1 == rest.size() ? close + 1 : close + 2);
  }
  out.metric = sanitize(name.substr(0, brace));
  out.labels = std::move(labels);
  return out;
}

/// Render `{a="b",c="d"}` (with `extra` appended last, for histogram `le`),
/// or an empty string when there are no labels at all.
std::string label_block(const SeriesName& series, std::string_view extra = {}) {
  if (series.labels.empty() && extra.empty()) return {};
  std::string out = "{";
  for (const auto& [key, value] : series.labels) {
    if (out.size() > 1) out += ',';
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  if (!extra.empty()) {
    if (out.size() > 1) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

std::string metrics_to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  std::string last_type_line;
  // A labeled family shows up as several registry entries (one per label
  // set) that share a metric name; emit each family's # TYPE header once.
  const auto type_header = [&](const std::string& metric,
                               const char* kind) {
    auto line = strf("# TYPE %s %s\n", metric.c_str(), kind);
    if (line == last_type_line) return;
    last_type_line = line;
    out += line;
  };
  for (const auto& view : registry.counters()) {
    const auto series = split_series(view.name);
    const auto name = series.metric + "_total";
    type_header(name, "counter");
    out += strf("%s%s %llu\n", name.c_str(), label_block(series).c_str(),
                static_cast<unsigned long long>(view.value));
  }
  for (const auto& view : registry.gauges()) {
    const auto series = split_series(view.name);
    type_header(series.metric, "gauge");
    out += strf("%s%s %.17g\n", series.metric.c_str(),
                label_block(series).c_str(), view.value);
  }
  for (const auto& view : registry.histograms()) {
    const auto series = split_series(view.name);
    const auto& name = series.metric;
    type_header(name, "histogram");
    // Exposition buckets are cumulative, unlike the registry's per-bucket
    // counts.
    unsigned long long cumulative = 0;
    for (std::size_t i = 0; i < view.slot->counts.size(); ++i) {
      cumulative += static_cast<unsigned long long>(view.slot->counts[i]);
      const auto le = i < view.slot->bounds.size()
                          ? strf("le=\"%.17g\"", view.slot->bounds[i])
                          : std::string{"le=\"+Inf\""};
      out += strf("%s_bucket%s %llu\n", name.c_str(),
                  label_block(series, le).c_str(), cumulative);
    }
    out += strf("%s_sum%s %.17g\n", name.c_str(), label_block(series).c_str(),
                view.slot->sum);
    out += strf("%s_count%s %llu\n", name.c_str(),
                label_block(series).c_str(),
                static_cast<unsigned long long>(view.slot->count));
  }
  return out;
}

}  // namespace edr::telemetry
