// Prometheus text exposition (version 0.0.4) for the metrics registry.
//
// The runtime's metric names use dots ("system.epochs"); Prometheus names
// are [a-zA-Z0-9_:], so every other character maps to '_'.  Counters get
// the conventional `_total` suffix; histograms expand to cumulative
// `_bucket{le=...}` series plus `_sum`/`_count`, matching what a scraper
// expects from a client library.
#include <string>
#include <string_view>

#include "common/fmt.hpp"
#include "telemetry/export.hpp"

namespace edr::telemetry {

namespace {

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
    out.insert(out.begin(), '_');
  return out;
}

}  // namespace

std::string metrics_to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& view : registry.counters()) {
    const auto name = sanitize(view.name) + "_total";
    out += strf("# TYPE %s counter\n", name.c_str());
    out += strf("%s %llu\n", name.c_str(),
                static_cast<unsigned long long>(view.value));
  }
  for (const auto& view : registry.gauges()) {
    const auto name = sanitize(view.name);
    out += strf("# TYPE %s gauge\n", name.c_str());
    out += strf("%s %.17g\n", name.c_str(), view.value);
  }
  for (const auto& view : registry.histograms()) {
    const auto name = sanitize(view.name);
    out += strf("# TYPE %s histogram\n", name.c_str());
    // Exposition buckets are cumulative, unlike the registry's per-bucket
    // counts.
    unsigned long long cumulative = 0;
    for (std::size_t i = 0; i < view.slot->counts.size(); ++i) {
      cumulative += static_cast<unsigned long long>(view.slot->counts[i]);
      if (i < view.slot->bounds.size()) {
        out += strf("%s_bucket{le=\"%.17g\"} %llu\n", name.c_str(),
                    view.slot->bounds[i], cumulative);
      } else {
        out += strf("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                    cumulative);
      }
    }
    out += strf("%s_sum %.17g\n", name.c_str(), view.slot->sum);
    out += strf("%s_count %llu\n", name.c_str(),
                static_cast<unsigned long long>(view.slot->count));
  }
  return out;
}

}  // namespace edr::telemetry
