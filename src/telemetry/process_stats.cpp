#include "telemetry/process_stats.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace edr::telemetry {

ProcessStats read_process_stats() {
  ProcessStats stats;
  std::FILE* file = std::fopen("/proc/self/stat", "r");
  if (file == nullptr) return stats;
  char buffer[1024];
  const std::size_t got = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  buffer[got] = '\0';
  // Field 2 (comm) is a parenthesized, possibly space-containing string;
  // everything we want sits after the *last* ')'.
  const char* after = std::strrchr(buffer, ')');
  if (after == nullptr) return stats;
  ++after;
  // Fields after comm, 1-indexed from "state" = field 3: utime is field
  // 14, stime 15, rss 24 (pages).
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  long long rss_pages = 0;
  if (std::sscanf(after,
                  " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu"
                  " %*d %*d %*d %*d %*d %*d %*u %*u %lld",
                  &utime, &stime, &rss_pages) != 3)
    return stats;
  const double ticks_per_s =
      static_cast<double>(sysconf(_SC_CLK_TCK) > 0 ? sysconf(_SC_CLK_TCK)
                                                   : 100);
  const long page = sysconf(_SC_PAGESIZE);
  stats.ok = true;
  stats.cpu_seconds = static_cast<double>(utime + stime) / ticks_per_s;
  stats.rss_bytes = rss_pages > 0 ? static_cast<std::uint64_t>(rss_pages) *
                                        static_cast<std::uint64_t>(
                                            page > 0 ? page : 4096)
                                  : 0;
  stats.sampled_at_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
  return stats;
}

double CpuSampler::sample(ProcessStats* stats) {
  const ProcessStats now = read_process_stats();
  if (stats != nullptr) *stats = now;
  double utilization = 0.0;
  if (now.ok && last_.ok) {
    const double wall_s =
        static_cast<double>(now.sampled_at_ns - last_.sampled_at_ns) * 1e-9;
    if (wall_s > 1e-6)
      utilization = (now.cpu_seconds - last_.cpu_seconds) / wall_s;
    if (utilization < 0.0) utilization = 0.0;
  }
  last_ = now;
  return utilization;
}

}  // namespace edr::telemetry
