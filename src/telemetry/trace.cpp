#include "telemetry/trace.hpp"

#include <algorithm>
#include <utility>

namespace edr::telemetry {

EventTracer::EventTracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void EventTracer::set_clock(std::function<double()> clock) {
  if (!clock) last_time_ = now();
  clock_ = std::move(clock);
}

double EventTracer::now() const { return clock_ ? clock_() : last_time_; }

void EventTracer::span(std::string_view name, std::string_view category,
                       double start, double duration, std::uint32_t tid,
                       std::uint64_t id, std::uint64_t parent) {
  if (!enabled_) return;
  TraceEvent event;
  event.ts = start;
  event.dur = std::max(duration, 0.0);
  event.tid = tid;
  event.phase = TraceEvent::Phase::kSpan;
  event.id = id;
  event.parent = parent;
  event.name = name;
  event.category = category;
  push(std::move(event));
}

void EventTracer::instant(std::string_view name, std::string_view category,
                          std::uint32_t tid) {
  if (!enabled_) return;
  TraceEvent event;
  event.ts = now();
  event.tid = tid;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = name;
  event.category = category;
  push(std::move(event));
}

void EventTracer::flow_begin(std::uint64_t id, std::string_view name,
                             std::string_view category, std::uint32_t tid,
                             std::uint64_t parent) {
  if (!enabled_ || id == 0) return;
  TraceEvent event;
  event.ts = now();
  event.tid = tid;
  event.phase = TraceEvent::Phase::kFlowStart;
  event.id = id;
  event.parent = parent;
  event.name = name;
  event.category = category;
  push(std::move(event));
}

void EventTracer::flow_end(std::uint64_t id, std::string_view name,
                           std::string_view category, std::uint32_t tid) {
  if (!enabled_ || id == 0) return;
  TraceEvent event;
  event.ts = now();
  event.tid = tid;
  event.phase = TraceEvent::Phase::kFlowEnd;
  event.id = id;
  event.name = name;
  event.category = category;
  push(std::move(event));
}

void EventTracer::push(TraceEvent event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[recorded_ % capacity_] = std::move(event);
  }
  ++recorded_;
}

std::vector<TraceEvent> EventTracer::events() const {
  if (recorded_ <= capacity_) return ring_;
  // The slot recorded_ % capacity_ holds the oldest retained event.
  std::vector<TraceEvent> ordered;
  ordered.reserve(ring_.size());
  const std::size_t head = recorded_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    ordered.push_back(ring_[(head + i) % capacity_]);
  return ordered;
}

void EventTracer::clear() {
  ring_.clear();
  recorded_ = 0;
}

EventTracer& disabled_tracer() {
  static EventTracer tracer = [] {
    EventTracer t{1};
    t.set_enabled(false);
    return t;
  }();
  return tracer;
}

}  // namespace edr::telemetry
