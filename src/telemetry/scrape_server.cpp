#include "telemetry/scrape_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/fmt.hpp"
#include "telemetry/export.hpp"

namespace edr::telemetry {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

ScrapeServer::ScrapeServer(const MetricsRegistry& registry, std::uint16_t port,
                           std::function<void()> on_scrape)
    : registry_(registry), on_scrape_(std::move(on_scrape)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("ScrapeServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        strf("ScrapeServer: cannot listen on 127.0.0.1:%u: %s",
             static_cast<unsigned>(port), std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ScrapeServer: pipe() failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const char byte = 'q';
  [[maybe_unused]] const auto ignored = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

void ScrapeServer::respond(Connection& connection) {
  if (on_scrape_) on_scrape_();
  const std::string body = metrics_to_prometheus(registry_);
  connection.out =
      strf("HTTP/1.0 200 OK\r\n"
           "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
           "Content-Length: %zu\r\n"
           "Connection: close\r\n"
           "\r\n",
           body.size()) +
      body;
  connection.responding = true;
  scrapes_.fetch_add(1, std::memory_order_relaxed);
}

void ScrapeServer::serve() {
  std::vector<Connection> connections;
  std::vector<pollfd> fds;
  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& connection : connections)
      fds.push_back({connection.fd,
                     static_cast<short>(connection.responding ? POLLOUT
                                                              : POLLIN),
                     0});
    if (::poll(fds.data(), fds.size(), 200) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[16];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    // fds[2..] track the connections that existed when poll() ran; sockets
    // accepted below have no pollfd yet and wait for the next iteration.
    std::size_t polled = fds.size() - 2;
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        connections.push_back(Connection{fd, {}, {}, 0, false});
      }
    }
    for (std::size_t i = 0; i < polled;) {
      auto& connection = connections[i];
      const short revents = fds[2 + i].revents;
      bool close_now = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                       !connection.responding;
      if (!close_now && !connection.responding && (revents & POLLIN) != 0) {
        char buffer[2048];
        for (;;) {
          const ssize_t got = ::read(connection.fd, buffer, sizeof(buffer));
          if (got > 0) {
            connection.in.append(buffer, static_cast<std::size_t>(got));
            if (connection.in.size() > 16 * 1024) {  // header flood: drop
              close_now = true;
              break;
            }
            continue;
          }
          if (got == 0) close_now = connection.in.empty();
          break;
        }
        // Serve on a complete request head; HTTP/1.0 clients that shut
        // down their write side early still get an answer.
        if (!close_now && (connection.in.find("\r\n\r\n") !=
                               std::string::npos ||
                           connection.in.find("\n\n") != std::string::npos))
          respond(connection);
      }
      if (!close_now && connection.responding &&
          (revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        while (connection.written < connection.out.size()) {
          const ssize_t sent =
              ::send(connection.fd, connection.out.data() + connection.written,
                     connection.out.size() - connection.written, MSG_NOSIGNAL);
          if (sent > 0) {
            connection.written += static_cast<std::size_t>(sent);
            continue;
          }
          if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          close_now = true;
          break;
        }
        if (connection.written == connection.out.size()) close_now = true;
      }
      if (close_now) {
        ::close(connection.fd);
        connections.erase(connections.begin() +
                          static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(2 + i));
        --polled;
      } else {
        ++i;
      }
    }
  }
  for (auto& connection : connections) ::close(connection.fd);
}

}  // namespace edr::telemetry
