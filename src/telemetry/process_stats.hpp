// Per-process resource sampling from /proc/self/stat (Linux).
//
// The live runtime's power story needs a *utilization* input per OS
// process: the sim derives it from the modeled activity, a real replica
// has to measure it.  One read of /proc/self/stat yields cumulative
// user+system CPU ticks and the resident set; two reads a known interval
// apart yield a CPU fraction that feeds power::PowerModel exactly like a
// sim-side intensity does.
#pragma once

#include <cstdint>

namespace edr::telemetry {

/// One cumulative sample.  `ok` is false off-Linux or if the file is
/// unreadable, in which case the other fields are zero.
struct ProcessStats {
  bool ok = false;
  double cpu_seconds = 0.0;  ///< utime + stime, seconds since process start
  std::uint64_t rss_bytes = 0;
  std::int64_t sampled_at_ns = 0;  ///< steady-clock stamp of the read
};

[[nodiscard]] ProcessStats read_process_stats();

/// Stateful CPU-fraction sampler: each call reads /proc/self/stat and
/// reports the CPU fraction (0..n_cores) over the interval since the
/// previous call (0.0 on the first call or when sampling fails).
class CpuSampler {
 public:
  /// Returns the utilization over the last interval and updates `stats`
  /// (when non-null) with the raw cumulative sample.
  double sample(ProcessStats* stats = nullptr);

 private:
  ProcessStats last_;
};

}  // namespace edr::telemetry
