// Convergence flight recorder: a bounded ring of per-(round, replica)
// solver samples plus per-epoch summaries.
//
// The paper's evaluation is entirely about convergence trajectories
// (objective descent, consensus disagreement, rounds-to-convergence), yet
// the run report only carries end-of-run aggregates.  The recorder keeps
// the trajectory: `EpochPipeline` asks the active `DistributedAlgorithm`
// to `observe()` after every round (or after a one-shot solve) and feeds
// the resulting samples here.  Like the event tracer, the sample buffer is
// a fixed-capacity ring so a recorder can stay attached to an arbitrarily
// long run; per-epoch summaries are small and kept in full.
//
// The recorder is a strictly opt-in attachment on the Telemetry context
// (see Telemetry::enable_flight_recorder): a run with plain telemetry
// never allocates one and stays byte-identical to the pinned goldens.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edr::telemetry {

/// One structured observation of one replica after one solver round.
/// Iterative algorithms emit one per (round, active replica); one-shot
/// algorithms emit a single round-1 batch per epoch.
struct RoundSample {
  std::size_t epoch = 0;      ///< stamped by the pipeline
  std::size_t round = 0;      ///< 1-based round within the epoch
  std::uint32_t replica = 0;  ///< global replica index
  double time = 0.0;          ///< sim-time, stamped by the pipeline
  double objective = 0.0;     ///< local energy cost E_n at the current load
  /// Global objective of the recovered solution after this round (same
  /// value on every sample of the round).  The divergence detector watches
  /// this, not the local sums: local objectives legitimately rise while
  /// load redistributes between replicas.
  double round_objective = 0.0;
  double gradient_norm = 0.0;  ///< |∇E_n| (0 for gradient-free backends)
  /// Consensus disagreement: max pairwise estimate distance (CDPSM),
  /// demand residual (LDDM), or solution movement (DONAR).
  double disagreement = 0.0;
  /// Magnitude of the feasibility-projection correction this round.
  double projection_correction = 0.0;
  double capacity_slack = 0.0;  ///< bandwidth − assigned load, problem units
  double load = 0.0;            ///< load assigned to this replica
  double load_delta = 0.0;      ///< signed load change vs the previous round
  std::uint64_t messages_sent = 0;  ///< coordination messages this round
  std::uint64_t bytes_sent = 0;     ///< coordination bytes this round
};

/// Aggregate view of one epoch's recorded samples; appended to
/// RunReport::convergence so reports carry the trajectory shape without
/// the full sample stream.
struct EpochSummary {
  std::size_t epoch = 0;
  std::size_t rounds = 0;    ///< highest round observed
  std::size_t replicas = 0;  ///< distinct replicas observed
  std::size_t samples = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  /// Total objective (sum of local E_n) over the first / last round.
  double first_objective = 0.0;
  double final_objective = 0.0;
  double final_disagreement = 0.0;
  double max_gradient_norm = 0.0;
  double min_capacity_slack = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Alerts the monitor raised during this epoch (0 without a monitor).
  std::size_t alerts = 0;
};

struct FlightRecorderOptions {
  /// Sample ring capacity; old samples are overwritten past this.
  std::size_t capacity = 1 << 16;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  /// Open an epoch: resets the running aggregate.  An epoch left open by
  /// an aborted solve (replica death) is simply discarded by the next
  /// begin_epoch.
  void begin_epoch(std::size_t epoch, double now);

  /// Record one sample (the ring accepts samples outside an open epoch,
  /// they just don't aggregate into a summary).
  void record(const RoundSample& sample);

  /// Close the open epoch: finalizes, stores and returns its summary.
  EpochSummary end_epoch(double now);

  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<RoundSample> samples() const;
  [[nodiscard]] const std::vector<EpochSummary>& epochs() const {
    return epochs_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Samples recorded since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
  }

  void clear();

 private:
  std::size_t capacity_;
  std::vector<RoundSample> ring_;
  std::uint64_t recorded_ = 0;
  std::vector<EpochSummary> epochs_;

  // Running aggregate of the open epoch.
  bool epoch_open_ = false;
  EpochSummary current_;
  std::vector<std::uint32_t> seen_replicas_;
  std::size_t first_round_ = 0;
  std::size_t last_round_ = 0;
  double first_objective_sum_ = 0.0;
  double last_objective_sum_ = 0.0;
  double last_disagreement_ = 0.0;
  bool any_sample_ = false;
};

}  // namespace edr::telemetry
