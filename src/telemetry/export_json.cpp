#include <cstdio>
#include <fstream>
#include <string>

#include "common/fmt.hpp"
#include "common/json.hpp"
#include "telemetry/export.hpp"

namespace edr::telemetry {

std::string metrics_to_jsonl(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& view : registry.counters()) {
    JsonWriter json;
    json.begin_object()
        .field("metric", view.name)
        .field("type", "counter")
        .field("value", view.value)
        .end_object();
    out += json.str();
    out += '\n';
  }
  for (const auto& view : registry.gauges()) {
    JsonWriter json;
    json.begin_object()
        .field("metric", view.name)
        .field("type", "gauge")
        .field("value", view.value)
        .end_object();
    out += json.str();
    out += '\n';
  }
  for (const auto& view : registry.histograms()) {
    JsonWriter json;
    json.begin_object()
        .field("metric", view.name)
        .field("type", "histogram")
        .field("count", view.slot->count)
        .field("sum", view.slot->sum)
        .key("buckets")
        .begin_array();
    for (std::size_t i = 0; i < view.slot->counts.size(); ++i) {
      json.begin_object();
      if (i < view.slot->bounds.size())
        json.field("le", view.slot->bounds[i]);
      else
        json.field("le", "+inf");
      json.field("count", view.slot->counts[i]).end_object();
    }
    json.end_array().end_object();
    out += json.str();
    out += '\n';
  }
  return out;
}

std::string metrics_to_csv(const MetricsRegistry& registry) {
  std::string out = "metric,type,value,count,sum\n";
  for (const auto& view : registry.counters())
    out += strf("%s,counter,%llu,,\n", std::string{view.name}.c_str(),
                static_cast<unsigned long long>(view.value));
  for (const auto& view : registry.gauges())
    out += strf("%s,gauge,%.17g,,\n", std::string{view.name}.c_str(),
                view.value);
  for (const auto& view : registry.histograms()) {
    out += strf("%s,histogram,,%llu,%.17g\n", std::string{view.name}.c_str(),
                static_cast<unsigned long long>(view.slot->count),
                view.slot->sum);
    for (std::size_t i = 0; i < view.slot->counts.size(); ++i) {
      const std::string edge =
          i < view.slot->bounds.size()
              ? strf("%.17g", view.slot->bounds[i])
              : std::string{"+inf"};
      out += strf("%s.le.%s,bucket,%llu,,\n", std::string{view.name}.c_str(),
                  edge.c_str(),
                  static_cast<unsigned long long>(view.slot->counts[i]));
    }
  }
  return out;
}

std::string flight_to_jsonl(const FlightRecorder& recorder) {
  std::string out;
  for (const auto& sample : recorder.samples()) {
    JsonWriter json;
    json.begin_object()
        .key("sample")
        .begin_object()
        .field("epoch", sample.epoch)
        .field("round", sample.round)
        .field("replica", sample.replica)
        .field("time", sample.time)
        .field("objective", sample.objective)
        .field("round_objective", sample.round_objective)
        .field("gradient_norm", sample.gradient_norm)
        .field("disagreement", sample.disagreement)
        .field("projection_correction", sample.projection_correction)
        .field("capacity_slack", sample.capacity_slack)
        .field("load", sample.load)
        .field("load_delta", sample.load_delta)
        .field("messages_sent", sample.messages_sent)
        .field("bytes_sent", sample.bytes_sent)
        .end_object()
        .end_object();
    out += json.str();
    out += '\n';
  }
  for (const auto& epoch : recorder.epochs()) {
    JsonWriter json;
    json.begin_object()
        .key("epoch")
        .begin_object()
        .field("epoch", epoch.epoch)
        .field("rounds", epoch.rounds)
        .field("replicas", epoch.replicas)
        .field("samples", epoch.samples)
        .field("start_time", epoch.start_time)
        .field("end_time", epoch.end_time)
        .field("first_objective", epoch.first_objective)
        .field("final_objective", epoch.final_objective)
        .field("final_disagreement", epoch.final_disagreement)
        .field("max_gradient_norm", epoch.max_gradient_norm)
        .field("min_capacity_slack", epoch.min_capacity_slack)
        .field("messages", epoch.messages)
        .field("bytes", epoch.bytes)
        .field("alerts", epoch.alerts)
        .end_object()
        .end_object();
    out += json.str();
    out += '\n';
  }
  return out;
}

bool export_telemetry(const Telemetry& telemetry, const std::string& path) {
  const auto write = [](const std::string& file, const std::string& content) {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "telemetry: cannot write %s\n", file.c_str());
      return false;
    }
    out << content;
    return static_cast<bool>(out);
  };
  bool ok = write(path, trace_to_chrome_json(telemetry.tracer()));
  ok = write(path + ".metrics.jsonl", metrics_to_jsonl(telemetry.metrics())) &&
       ok;
  ok = write(path + ".prom", metrics_to_prometheus(telemetry.metrics())) && ok;
  if (const auto* recorder = telemetry.flight_recorder())
    ok = write(path + ".flight.jsonl", flight_to_jsonl(*recorder)) && ok;
  return ok;
}

}  // namespace edr::telemetry
