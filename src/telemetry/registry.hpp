// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Designed to live on hot paths of the simulator: a handle is one pointer
// to a plain slot owned by the registry, so an update is a single add or
// store.  The simulator is single-threaded, so slots are unsynchronized by
// default; a registry created with atomic=true (used by the threaded-LDDM
// topology) upgrades every update to a relaxed std::atomic_ref operation.
//
// Default-constructed handles point at a process-wide sink slot, so code
// can update metrics unconditionally — a component that was never attached
// to a Telemetry context pays one wasted add per update and nothing else.
// That sink is what makes the disabled state no-op cheap without a branch
// at every call site.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace edr::telemetry {

namespace detail {

struct CounterSlot {
  std::uint64_t value = 0;
  bool atomic = false;
};

struct GaugeSlot {
  double value = 0.0;
  bool atomic = false;
};

struct HistogramSlot {
  /// Ascending upper bucket bounds; an implicit +inf bucket is appended, so
  /// counts.size() == bounds.size() + 1.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  std::uint64_t count = 0;
  bool atomic = false;
};

CounterSlot* counter_sink();
GaugeSlot* gauge_sink();
HistogramSlot* histogram_sink();

/// Zero the process-wide sink slots.  Default-constructed handles funnel
/// into these, so sink values accumulate across runs in one process; tests
/// that read them (or want a clean slate between back-to-back runs) call
/// this instead of inheriting the previous run's counts.
void reset_sinks();

}  // namespace detail

class Counter {
 public:
  Counter() : slot_(detail::counter_sink()) {}

  void add(std::uint64_t delta = 1) {
    if (slot_->atomic) {
      std::atomic_ref<std::uint64_t>(slot_->value)
          .fetch_add(delta, std::memory_order_relaxed);
    } else {
      slot_->value += delta;
    }
  }

  [[nodiscard]] std::uint64_t value() const {
    return slot_->atomic ? std::atomic_ref<const std::uint64_t>(slot_->value)
                               .load(std::memory_order_relaxed)
                         : slot_->value;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterSlot* slot) : slot_(slot) {}
  detail::CounterSlot* slot_;
};

class Gauge {
 public:
  Gauge() : slot_(detail::gauge_sink()) {}

  void set(double value) {
    if (slot_->atomic) {
      std::atomic_ref<double>(slot_->value)
          .store(value, std::memory_order_relaxed);
    } else {
      slot_->value = value;
    }
  }

  void add(double delta) {
    if (slot_->atomic) {
      std::atomic_ref<double> ref(slot_->value);
      double expected = ref.load(std::memory_order_relaxed);
      while (!ref.compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
      }
    } else {
      slot_->value += delta;
    }
  }

  [[nodiscard]] double value() const {
    return slot_->atomic ? std::atomic_ref<const double>(slot_->value)
                               .load(std::memory_order_relaxed)
                         : slot_->value;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeSlot* slot) : slot_(slot) {}
  detail::GaugeSlot* slot_;
};

class Histogram {
 public:
  Histogram() : slot_(detail::histogram_sink()) {}

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  /// Linear-interpolation quantile estimate from the bucket counts.
  /// Clamping contract: q outside [0, 1] is clamped; an empty histogram
  /// (no observations, or a default sink handle with no bounds) reports
  /// 0.0; any mass that landed in the implicit +inf bucket reports the
  /// last finite bound — the estimate never extrapolates past the edges.
  [[nodiscard]] double quantile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramSlot* slot) : slot_(slot) {}
  detail::HistogramSlot* slot_;
};

/// Read-only view of one registered metric, for exporters.
struct CounterView {
  std::string_view name;
  std::uint64_t value = 0;
};
struct GaugeView {
  std::string_view name;
  double value = 0.0;
};
struct HistogramView {
  std::string_view name;
  const detail::HistogramSlot* slot = nullptr;
};

class MetricsRegistry {
 public:
  /// atomic=true upgrades every handle update to relaxed atomics (for the
  /// threaded transport path).  Registration and the view accessors are
  /// serialized by an internal mutex, so the transport's io thread can
  /// lazily register per-peer metrics while a scrape-server thread renders
  /// the registry; handle *updates* stay lock-free either way.
  explicit MetricsRegistry(bool atomic = false) : atomic_(atomic) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration is idempotent: the same name always yields a handle to
  /// the same slot.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` are ascending upper bucket edges; re-registering an existing
  /// histogram ignores the bounds and returns the original slot.
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] bool atomic() const { return atomic_; }
  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock{mutex_};
    return counter_index_.size() + gauge_index_.size() +
           histogram_index_.size();
  }

  /// Views in name order (exporter iteration).
  [[nodiscard]] std::vector<CounterView> counters() const;
  [[nodiscard]] std::vector<GaugeView> gauges() const;
  [[nodiscard]] std::vector<HistogramView> histograms() const;

  /// Default bucket edges for latency-style histograms, in seconds.
  [[nodiscard]] static std::vector<double> latency_bounds_s();
  /// Default bucket edges for response-time histograms, in milliseconds.
  [[nodiscard]] static std::vector<double> response_bounds_ms();

 private:
  bool atomic_;
  mutable std::mutex mutex_;
  // Deques give slot pointers stability across registrations.
  std::deque<detail::CounterSlot> counter_slots_;
  std::deque<detail::GaugeSlot> gauge_slots_;
  std::deque<detail::HistogramSlot> histogram_slots_;
  std::map<std::string, detail::CounterSlot*, std::less<>> counter_index_;
  std::map<std::string, detail::GaugeSlot*, std::less<>> gauge_index_;
  std::map<std::string, detail::HistogramSlot*, std::less<>> histogram_index_;
};

}  // namespace edr::telemetry
