#include "telemetry/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace edr::telemetry {

namespace detail {

CounterSlot* counter_sink() {
  // Atomic so concurrent sink writes from the threaded path stay defined.
  static CounterSlot sink{0, /*atomic=*/true};
  return &sink;
}

GaugeSlot* gauge_sink() {
  static GaugeSlot sink{0.0, /*atomic=*/true};
  return &sink;
}

HistogramSlot* histogram_sink() {
  static HistogramSlot sink{{}, {0}, 0.0, 0, /*atomic=*/true};
  return &sink;
}

void reset_sinks() {
  *counter_sink() = CounterSlot{0, /*atomic=*/true};
  *gauge_sink() = GaugeSlot{0.0, /*atomic=*/true};
  auto* histogram = histogram_sink();
  histogram->bounds.clear();
  histogram->counts.assign(1, 0);
  histogram->sum = 0.0;
  histogram->count = 0;
}

}  // namespace detail

void Histogram::observe(double value) {
  auto* slot = slot_;
  // Lower-bound over ascending upper edges; the last bucket is +inf.
  std::size_t bucket = 0;
  while (bucket < slot->bounds.size() && value > slot->bounds[bucket])
    ++bucket;
  if (slot->atomic) {
    std::atomic_ref<std::uint64_t>(slot->counts[bucket])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(slot->count)
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<double> sum(slot->sum);
    double expected = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(expected, expected + value,
                                      std::memory_order_relaxed)) {
    }
  } else {
    slot->counts[bucket] += 1;
    slot->count += 1;
    slot->sum += value;
  }
}

std::uint64_t Histogram::count() const {
  return slot_->atomic ? std::atomic_ref<const std::uint64_t>(slot_->count)
                             .load(std::memory_order_relaxed)
                       : slot_->count;
}

double Histogram::sum() const {
  return slot_->atomic ? std::atomic_ref<const double>(slot_->sum)
                             .load(std::memory_order_relaxed)
                       : slot_->sum;
}

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const auto* slot = slot_;
  const auto total = count();
  if (total == 0 || slot->bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t bucket = 0; bucket < slot->counts.size(); ++bucket) {
    const auto in_bucket = static_cast<double>(slot->counts[bucket]);
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    // The +inf bucket has no finite upper edge; report the last bound.
    if (bucket >= slot->bounds.size()) return slot->bounds.back();
    const double lower = bucket == 0 ? 0.0 : slot->bounds[bucket - 1];
    const double upper = slot->bounds[bucket];
    const double fraction =
        in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0;
    return lower + (upper - lower) * fraction;
  }
  return slot->bounds.back();
}

Counter MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  if (const auto it = counter_index_.find(name); it != counter_index_.end())
    return Counter{it->second};
  counter_slots_.push_back({0, atomic_});
  auto* slot = &counter_slots_.back();
  counter_index_.emplace(std::string{name}, slot);
  return Counter{slot};
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end())
    return Gauge{it->second};
  gauge_slots_.push_back({0.0, atomic_});
  auto* slot = &gauge_slots_.back();
  gauge_index_.emplace(std::string{name}, slot);
  return Gauge{slot};
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  const std::scoped_lock lock{mutex_};
  if (const auto it = histogram_index_.find(name);
      it != histogram_index_.end())
    return Histogram{it->second};
  if (bounds.empty())
    throw std::invalid_argument("MetricsRegistry::histogram: empty bounds");
  if (!std::is_sorted(bounds.begin(), bounds.end()))
    throw std::invalid_argument(
        "MetricsRegistry::histogram: bounds must be ascending");
  detail::HistogramSlot slot;
  slot.counts.assign(bounds.size() + 1, 0);
  slot.bounds = std::move(bounds);
  slot.atomic = atomic_;
  histogram_slots_.push_back(std::move(slot));
  auto* stored = &histogram_slots_.back();
  histogram_index_.emplace(std::string{name}, stored);
  return Histogram{stored};
}

std::vector<CounterView> MetricsRegistry::counters() const {
  const std::scoped_lock lock{mutex_};
  std::vector<CounterView> views;
  views.reserve(counter_index_.size());
  for (const auto& [name, slot] : counter_index_)
    views.push_back({name, Counter{slot}.value()});
  return views;
}

std::vector<GaugeView> MetricsRegistry::gauges() const {
  const std::scoped_lock lock{mutex_};
  std::vector<GaugeView> views;
  views.reserve(gauge_index_.size());
  for (const auto& [name, slot] : gauge_index_)
    views.push_back({name, Gauge{slot}.value()});
  return views;
}

std::vector<HistogramView> MetricsRegistry::histograms() const {
  const std::scoped_lock lock{mutex_};
  std::vector<HistogramView> views;
  views.reserve(histogram_index_.size());
  for (const auto& [name, slot] : histogram_index_)
    views.push_back({name, slot});
  return views;
}

std::vector<double> MetricsRegistry::latency_bounds_s() {
  return {1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0,
          3.0, 10.0};
}

std::vector<double> MetricsRegistry::response_bounds_ms() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
          1000.0, 2000.0, 5000.0};
}

}  // namespace edr::telemetry
