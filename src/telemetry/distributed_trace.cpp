#include "telemetry/distributed_trace.hpp"

#include <algorithm>
#include <utility>

#include "common/json.hpp"

namespace edr::telemetry {

void ClockOffsetEstimator::observe(std::uint32_t node,
                                   std::int64_t local_send_ns,
                                   std::int64_t remote_ns,
                                   std::int64_t local_recv_ns) {
  auto& estimate = estimates_[node];
  ++estimate.probes;
  const std::int64_t rtt = local_recv_ns - local_send_ns;
  if (rtt < 0) return;  // clock went backwards / crossed probes: discard
  if (estimate.rtt_ns >= 0 && rtt >= estimate.rtt_ns) return;
  estimate.rtt_ns = rtt;
  estimate.offset_ns = remote_ns - (local_send_ns + rtt / 2);
}

std::int64_t ClockOffsetEstimator::offset_ns(std::uint32_t node) const {
  const auto it = estimates_.find(node);
  return it == estimates_.end() ? 0 : it->second.offset_ns;
}

std::int64_t ClockOffsetEstimator::rtt_ns(std::uint32_t node) const {
  const auto it = estimates_.find(node);
  return it == estimates_.end() ? -1 : it->second.rtt_ns;
}

std::size_t ClockOffsetEstimator::probes(std::uint32_t node) const {
  const auto it = estimates_.find(node);
  return it == estimates_.end() ? 0 : it->second.probes;
}

void TraceMerger::set_process(std::uint32_t node, std::string name) {
  tracks_[node].name = std::move(name);
}

void TraceMerger::set_offset_ns(std::uint32_t node, std::int64_t offset_ns) {
  tracks_[node].offset_ns = offset_ns;
}

void TraceMerger::add_events(std::uint32_t node,
                             std::vector<TraceEvent> events) {
  auto& track = tracks_[node];
  track.events.insert(track.events.end(),
                      std::make_move_iterator(events.begin()),
                      std::make_move_iterator(events.end()));
}

void TraceMerger::add_dropped(std::uint32_t node, std::uint64_t dropped) {
  tracks_[node].dropped += dropped;
}

std::size_t TraceMerger::event_count() const {
  std::size_t count = 0;
  for (const auto& [node, track] : tracks_) count += track.events.size();
  return count;
}

std::string TraceMerger::to_chrome_json() const {
  struct Aligned {
    double ts = 0.0;  ///< local-timeline seconds, before rebasing
    std::uint32_t pid = 0;
    const TraceEvent* event = nullptr;
  };
  std::vector<Aligned> aligned;
  aligned.reserve(event_count());
  std::uint64_t dropped = 0;
  for (const auto& [node, track] : tracks_) {
    dropped += track.dropped;
    const double shift_s = static_cast<double>(track.offset_ns) * 1e-9;
    for (const auto& event : track.events)
      aligned.push_back({event.ts - shift_s, node, &event});
  }
  std::stable_sort(aligned.begin(), aligned.end(),
                   [](const Aligned& a, const Aligned& b) {
                     return a.ts < b.ts;
                   });
  // Rebase to the earliest event — steady-clock readings count from boot.
  const double origin = aligned.empty() ? 0.0 : aligned.front().ts;

  JsonWriter json;
  json.begin_object().key("traceEvents").begin_array();
  for (const auto& [node, track] : tracks_) {
    json.begin_object()
        .field("name", "process_name")
        .field("ph", "M")
        .field("pid", node)
        .field("tid", 0)
        .key("args")
        .begin_object()
        .field("name", track.name.empty() ? "node " + std::to_string(node)
                                          : track.name)
        .end_object()
        .end_object();
  }
  for (const auto& record : aligned) {
    const auto& event = *record.event;
    const char* phase = "i";
    switch (event.phase) {
      case TraceEvent::Phase::kSpan:
        phase = "X";
        break;
      case TraceEvent::Phase::kInstant:
        phase = "i";
        break;
      case TraceEvent::Phase::kFlowStart:
        phase = "s";
        break;
      case TraceEvent::Phase::kFlowEnd:
        phase = "f";
        break;
    }
    json.begin_object()
        .field("name", event.name)
        .field("cat", event.category.empty() ? "edr" : event.category)
        .field("ph", phase)
        .field("ts", (record.ts - origin) * 1e6)
        .field("pid", record.pid)
        .field("tid", event.tid);
    switch (event.phase) {
      case TraceEvent::Phase::kSpan:
        json.field("dur", event.dur * 1e6);
        if (event.id != 0) {
          json.key("args").begin_object().field("span_id", event.id);
          if (event.parent != 0) json.field("parent_id", event.parent);
          json.end_object();
        }
        break;
      case TraceEvent::Phase::kInstant:
        json.field("s", "t");
        break;
      case TraceEvent::Phase::kFlowStart:
        json.field("id", event.id);
        if (event.parent != 0) {
          json.key("args")
              .begin_object()
              .field("parent_id", event.parent)
              .end_object();
        }
        break;
      case TraceEvent::Phase::kFlowEnd:
        json.field("id", event.id).field("bp", "e");
        break;
    }
    json.end_object();
  }
  json.end_array()
      .field("displayTimeUnit", "ms")
      .field("droppedEvents", dropped)
      .end_object();
  return json.str();
}

}  // namespace edr::telemetry
