#include "telemetry/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fmt.hpp"

namespace edr::telemetry {

const char* to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kDivergence:
      return "divergence";
    case AlertKind::kOscillation:
      return "oscillation";
    case AlertKind::kStall:
      return "stall";
    case AlertKind::kCapacity:
      return "capacity";
    case AlertKind::kSlo:
      return "slo";
  }
  return "unknown";
}

const char* to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "unknown";
}

ConvergenceMonitor::ConvergenceMonitor(MonitorOptions options)
    : options_(options) {
  options_.divergence_rounds = std::max<std::size_t>(1, options_.divergence_rounds);
  options_.oscillation_window =
      std::max<std::size_t>(2, options_.oscillation_window);
  options_.oscillation_flips = std::max<std::size_t>(1, options_.oscillation_flips);
  options_.stall_rounds = std::max<std::size_t>(1, options_.stall_rounds);
}

void ConvergenceMonitor::attach_metrics(MetricsRegistry& metrics) {
  alerts_metric_ = metrics.counter("monitor.alerts");
  for (std::size_t kind = 0; kind < kNumAlertKinds; ++kind)
    kind_metrics_[kind] = metrics.counter(
        std::string{"monitor.alerts."} +
        to_string(static_cast<AlertKind>(kind)));
}

void ConvergenceMonitor::set_alert_callback(
    std::function<void(const Alert&)> callback) {
  on_alert_ = std::move(callback);
}

void ConvergenceMonitor::set_epoch_callback(
    std::function<void(const EpochSummary&)> callback) {
  on_epoch_ = std::move(callback);
}

void ConvergenceMonitor::begin_epoch(std::size_t epoch) {
  current_epoch_ = epoch;
  raised_this_epoch_ = 0;
  // Detector windows span one epoch: every epoch is a fresh solve from a
  // fresh (or warm-started) iterate, so trends must not leak across the
  // boundary.
  replicas_.clear();
  has_pending_ = false;
  pending_total_ = 0.0;
  pending_disagreement_ = 0.0;
  pending_load_ = 0.0;
  has_round_total_ = false;
  rise_count_ = 0;
  has_disagreement_ = false;
  plateau_count_ = 0;
  std::fill(std::begin(epoch_raised_), std::end(epoch_raised_), false);
}

ConvergenceMonitor::ReplicaState& ConvergenceMonitor::state_for(
    std::uint32_t replica) {
  for (auto& state : replicas_)
    if (state.replica == replica) return state;
  replicas_.emplace_back();
  replicas_.back().replica = replica;
  return replicas_.back();
}

void ConvergenceMonitor::raise(ReplicaState* state, Alert alert) {
  const auto kind = static_cast<std::size_t>(alert.kind);
  if (state != nullptr) {
    if (state->raised[kind]) return;  // one per (kind, replica) per epoch
    state->raised[kind] = true;
  }
  ++raised_total_;
  ++raised_this_epoch_;
  ++raised_by_kind_[kind];
  alerts_metric_.add(1);
  kind_metrics_[kind].add(1);
  if (alerts_.size() < options_.max_alerts) alerts_.push_back(alert);
  if (on_alert_) on_alert_(alert);
}

void ConvergenceMonitor::finalize_round() {
  // Divergence: the recovered solution's global objective rising K
  // consecutive rounds.  Per-replica (and even summed) local objectives
  // rise for long healthy stretches while load redistributes between
  // replicas; the recovered objective only rises when the iteration is
  // actually getting worse.
  if (has_round_total_) {
    const double floor =
        options_.divergence_min_rise *
        std::max(std::abs(last_round_total_), 1.0);
    if (pending_total_ > last_round_total_ + floor) {
      if (rise_count_ == 0) streak_start_ = last_round_total_;
      ++rise_count_;
    } else {
      rise_count_ = 0;
    }
    // A rising streak is divergence only with corroboration: geometric
    // growth since the streak started, or consensus broken outright
    // (disagreement past the whole assigned load) — see MonitorOptions.
    const bool grew = pending_total_ >=
                      options_.divergence_growth *
                          std::max(streak_start_, 1e-12);
    const bool broken_consensus =
        pending_disagreement_ >
        options_.divergence_disagreement * std::max(pending_load_, 1e-9);
    if (rise_count_ >= options_.divergence_rounds &&
        (grew || broken_consensus) &&
        !epoch_raised_[static_cast<std::size_t>(AlertKind::kDivergence)]) {
      epoch_raised_[static_cast<std::size_t>(AlertKind::kDivergence)] = true;
      Alert alert;
      alert.kind = AlertKind::kDivergence;
      alert.severity = AlertSeverity::kCritical;
      alert.epoch = pending_epoch_;
      alert.round = pending_round_;
      alert.value = pending_total_;
      alert.threshold = static_cast<double>(options_.divergence_rounds);
      alert.time = pending_time_;
      alert.message =
          grew ? strf("objective rose %zu consecutive rounds (now %.6g, "
                      "%.2gx since the streak began)",
                      rise_count_, pending_total_,
                      pending_total_ / std::max(streak_start_, 1e-12))
               : strf("objective rose %zu consecutive rounds with consensus "
                      "broken (disagreement %.6g vs load %.6g)",
                      rise_count_, pending_disagreement_, pending_load_);
      raise(nullptr, std::move(alert));
    }
  }
  last_round_total_ = pending_total_;
  has_round_total_ = true;

  // Stall: disagreement plateaus while still a large fraction of the
  // assigned load.  A healthy consensus iteration descends to a small
  // nonzero fixed-point spread (≤ ~8% of load on the paper setups) — only a
  // plateau where the replicas still substantially disagree is a stall.
  const double disagreement = pending_disagreement_;
  const double stall_floor =
      options_.stall_disagreement * std::max(pending_load_, 1e-9);
  if (disagreement > stall_floor) {
    const double reference = std::max(std::abs(last_disagreement_), 1e-12);
    if (has_disagreement_ &&
        std::abs(disagreement - last_disagreement_) <=
            options_.stall_epsilon * reference) {
      ++plateau_count_;
    } else {
      plateau_count_ = 0;
    }
    if (plateau_count_ >= options_.stall_rounds &&
        !epoch_raised_[static_cast<std::size_t>(AlertKind::kStall)]) {
      epoch_raised_[static_cast<std::size_t>(AlertKind::kStall)] = true;
      Alert alert;
      alert.kind = AlertKind::kStall;
      alert.severity = AlertSeverity::kWarning;
      alert.epoch = pending_epoch_;
      alert.round = pending_round_;
      alert.value = disagreement;
      alert.threshold = stall_floor;
      alert.time = pending_time_;
      alert.message = strf(
          "disagreement stuck at %.6g (%.0f%% of assigned load) for %zu "
          "rounds",
          disagreement, 100.0 * disagreement / std::max(pending_load_, 1e-9),
          plateau_count_);
      raise(nullptr, std::move(alert));
    }
  } else {
    plateau_count_ = 0;
  }
  last_disagreement_ = disagreement;
  has_disagreement_ = true;

  pending_total_ = 0.0;
  pending_disagreement_ = 0.0;
  pending_load_ = 0.0;
  has_pending_ = false;
}

void ConvergenceMonitor::observe(const RoundSample& sample) {
  if (has_pending_ && sample.round != pending_round_) finalize_round();
  pending_round_ = sample.round;
  pending_epoch_ = sample.epoch;
  pending_time_ = sample.time;
  pending_total_ = sample.round_objective;
  pending_disagreement_ =
      std::max(pending_disagreement_, sample.disagreement);
  pending_load_ += sample.load;
  has_pending_ = true;

  auto& state = state_for(sample.replica);

  // Oscillation: load_delta sign flipping within the moving window
  // (deltas below a fraction of the load are settling noise, not flips).
  const double delta_floor = options_.oscillation_min_delta *
                             std::max(std::abs(sample.load), 1.0);
  if (std::abs(sample.load_delta) > delta_floor) {
    state.delta_signs.push_back(sample.load_delta > 0.0 ? 1 : -1);
    if (state.delta_signs.size() > options_.oscillation_window)
      state.delta_signs.erase(state.delta_signs.begin());
    std::size_t flips = 0;
    for (std::size_t i = 1; i < state.delta_signs.size(); ++i)
      if (state.delta_signs[i] != state.delta_signs[i - 1]) ++flips;
    if (state.delta_signs.size() >= options_.oscillation_window &&
        flips >= options_.oscillation_flips) {
      Alert alert;
      alert.kind = AlertKind::kOscillation;
      alert.severity = AlertSeverity::kWarning;
      alert.epoch = sample.epoch;
      alert.round = sample.round;
      alert.replica = sample.replica;
      alert.value = static_cast<double>(flips);
      alert.threshold = static_cast<double>(options_.oscillation_flips);
      alert.time = sample.time;
      alert.message =
          strf("allocation delta flipped sign %zu times in %zu rounds on "
               "replica %u",
               flips, state.delta_signs.size(), sample.replica);
      raise(&state, std::move(alert));
    }
  }

  // Capacity: assigned load over the bandwidth cap.
  if (sample.capacity_slack < options_.capacity_slack_min) {
    Alert alert;
    alert.kind = AlertKind::kCapacity;
    alert.severity = AlertSeverity::kCritical;
    alert.epoch = sample.epoch;
    alert.round = sample.round;
    alert.replica = sample.replica;
    alert.value = sample.capacity_slack;
    alert.threshold = options_.capacity_slack_min;
    alert.time = sample.time;
    alert.message =
        strf("replica %u over capacity by %.6g (load %.6g)", sample.replica,
             -sample.capacity_slack, sample.load);
    raise(&state, std::move(alert));
  }
}

void ConvergenceMonitor::observe_response(double response_ms, double time,
                                          std::size_t epoch) {
  if (options_.response_slo_ms <= 0.0 ||
      response_ms <= options_.response_slo_ms)
    return;
  if (std::find(slo_alerted_epochs_.begin(), slo_alerted_epochs_.end(),
                epoch) != slo_alerted_epochs_.end())
    return;
  slo_alerted_epochs_.push_back(epoch);
  Alert alert;
  alert.kind = AlertKind::kSlo;
  alert.severity = AlertSeverity::kWarning;
  alert.epoch = epoch;
  alert.replica = kNoReplica;
  alert.value = response_ms;
  alert.threshold = options_.response_slo_ms;
  alert.time = time;
  alert.message = strf("epoch %zu response time %.3f ms exceeds SLO %.3f ms",
                       epoch, response_ms, options_.response_slo_ms);
  raise(nullptr, std::move(alert));
}

void ConvergenceMonitor::end_epoch(EpochSummary& summary) {
  if (has_pending_) finalize_round();
  summary.alerts = raised_this_epoch_;
  if (on_epoch_) on_epoch_(summary);
}

void ConvergenceMonitor::clear() {
  replicas_.clear();
  alerts_.clear();
  raised_total_ = 0;
  raised_this_epoch_ = 0;
  std::fill(std::begin(raised_by_kind_), std::end(raised_by_kind_), 0);
  slo_alerted_epochs_.clear();
}

}  // namespace edr::telemetry
