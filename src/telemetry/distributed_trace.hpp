// Cross-process tracing support for the live runtime (DESIGN.md §14).
//
// Three small pieces, all transport-agnostic (this layer must not depend
// on edr_net — the net layer depends on us):
//
//  * TraceContext — the compact causal identity (trace id + parent span
//    id) that live_protocol frames carry as an optional tail, so a round
//    received over TCP can be linked back to the sender's span.
//  * ClockOffsetEstimator — per-node clock alignment from probe/reply
//    round trips, NTP style: the remote clock is assumed to read
//    `remote_ns` at the midpoint of the local send/receive interval, and
//    the estimate from the smallest round trip wins (less queueing noise
//    on both legs means a tighter midpoint bound).
//  * TraceMerger — collects per-process span buffers (each stamped by
//    that process's own steady clock), applies the per-node offsets, and
//    emits one Chrome Trace Event Format JSON with a real `pid` per OS
//    process — flow arrows whose begin/end landed in different processes
//    render as arrows crossing process tracks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace edr::telemetry {

/// Causal identity carried across process boundaries on protocol frames.
/// trace_id 0 means "no context" — the frame was sent with tracing off,
/// and decoders treat a missing tail the same way.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< one id per live run
  std::uint64_t span_id = 0;   ///< sender-side span the frame belongs to
  [[nodiscard]] bool valid() const { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Clock-offset estimation from probe round trips, one estimate per node.
///
/// A probe leaves the local clock at `local_send_ns`, the remote stamps it
/// `remote_ns`, and the reply lands at `local_recv_ns`.  Assuming the
/// remote stamped at the interval midpoint, the remote clock leads by
/// `remote_ns - (local_send_ns + local_recv_ns) / 2`.  The estimate taken
/// from the minimum-RTT probe is kept (classic NTP filtering); `offset_ns`
/// for an unprobed node is 0, which merges its events unshifted.
class ClockOffsetEstimator {
 public:
  void observe(std::uint32_t node, std::int64_t local_send_ns,
               std::int64_t remote_ns, std::int64_t local_recv_ns);

  /// Best offset estimate: how far `node`'s clock leads the local clock.
  [[nodiscard]] std::int64_t offset_ns(std::uint32_t node) const;
  /// Round trip of the probe the estimate came from (-1 if unprobed).
  [[nodiscard]] std::int64_t rtt_ns(std::uint32_t node) const;
  [[nodiscard]] std::size_t probes(std::uint32_t node) const;

 private:
  struct Estimate {
    std::int64_t offset_ns = 0;
    std::int64_t rtt_ns = -1;
    std::size_t probes = 0;
  };
  std::map<std::uint32_t, Estimate> estimates_;
};

/// Merges per-process event buffers into one multi-pid Chrome trace.
///
/// Each node contributes events stamped by its own steady clock (seconds);
/// `set_offset_ns` registers how far that clock leads the merging
/// process's clock (from ClockOffsetEstimator), and the export shifts the
/// node's timestamps onto the local timeline.  The whole trace is then
/// rebased so the earliest event sits at t=0 — steady-clock readings count
/// from boot, which the viewer would happily render 10^11 µs deep.
class TraceMerger {
 public:
  /// Row-group title for the node's process track (e.g. "replica 2").
  void set_process(std::uint32_t node, std::string name);
  void set_offset_ns(std::uint32_t node, std::int64_t offset_ns);
  /// Append a batch of events to the node's track (flush order preserved).
  void add_events(std::uint32_t node, std::vector<TraceEvent> events);
  /// Account ring-buffer drops reported by the node's tracer.
  void add_dropped(std::uint32_t node, std::uint64_t dropped);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t process_count() const { return tracks_.size(); }

  /// Chrome Trace Event Format JSON, one pid per node, globally sorted by
  /// aligned timestamp.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  struct Track {
    std::string name;
    std::int64_t offset_ns = 0;
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };
  std::map<std::uint32_t, Track> tracks_;
};

}  // namespace edr::telemetry
