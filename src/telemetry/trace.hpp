// Sim-time event tracer: a bounded ring buffer of structured events.
//
// Events are stamped with the attached clock (the runtime wires it to
// Simulator::now(), so a trace lines up with the discrete-event timeline
// the paper's figures are drawn against).  Two event shapes cover the
// runtime: complete spans (start + duration, Chrome "X" events — robust
// against ring-buffer wraparound because a span never splits across two
// records) and instants (point markers such as a replica crash).
//
// The buffer is a fixed-capacity ring: recording never allocates after
// construction and old events are overwritten once capacity is reached,
// so a tracer can stay attached to an arbitrarily long run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace edr::telemetry {

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kSpan,       ///< complete span: [ts, ts + dur)
    kInstant,    ///< point event at ts
    kFlowStart,  ///< flow arrow tail (Chrome "s"), e.g. a message send
    kFlowEnd,    ///< flow arrow head (Chrome "f"), e.g. its delivery
  };

  double ts = 0.0;   ///< sim-time start, seconds
  double dur = 0.0;  ///< span duration, seconds (0 for instants)
  /// Logical track for the Chrome viewer's row layout (the runtime uses
  /// replica/client node ids; kControlTrack for system-wide events).
  std::uint32_t tid = 0;
  Phase phase = Phase::kInstant;
  /// Causal identity: spans may carry their own id and the id of the
  /// enclosing span (0 = none); a flow-start/flow-end pair shares one id.
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::string category;
};

/// Track id for events that belong to the run as a whole rather than to
/// one node (epochs, solver rounds).
inline constexpr std::uint32_t kControlTrack = 9999;

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity = 1 << 16);

  /// Events are dropped (not recorded) while disabled; a default
  /// constructed tracer is enabled.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Wire the time source (the runtime passes the simulator clock).
  /// A null clock freezes time at the last reading.
  void set_clock(std::function<double()> clock);
  [[nodiscard]] double now() const;

  /// Record a complete span with an explicit start and duration (used when
  /// the duration is known up front, e.g. a scheduled file transfer).
  /// `id`/`parent` link the span into the causal tree (0 = unlinked); the
  /// Chrome export surfaces them as span_id/parent_id args.
  void span(std::string_view name, std::string_view category, double start,
            double duration, std::uint32_t tid = kControlTrack,
            std::uint64_t id = 0, std::uint64_t parent = 0);

  /// Record an instant event at the current clock reading.
  void instant(std::string_view name, std::string_view category,
               std::uint32_t tid = kControlTrack);

  /// Allocate a fresh causal id for a span or flow (0 while disabled, so a
  /// disabled tracer never links anything).
  [[nodiscard]] std::uint64_t new_id() {
    return enabled_ ? id_base_ | ++next_id_ : 0;
  }

  /// OR'd into every allocated id.  Per-process tracers in the live runtime
  /// seed this with a node-unique high-bit prefix so span/flow ids from
  /// different OS processes never collide once their buffers are merged
  /// into one trace.
  void set_id_base(std::uint64_t base) { id_base_ = base; }

  /// Flow arrow tail/head at the current clock reading: a begin on the
  /// sender track and an end on the receiver track sharing `id` render as
  /// one arrow in the Chrome viewer.  `parent` records the span the flow
  /// belongs to (the round that scheduled the message).
  void flow_begin(std::uint64_t id, std::string_view name,
                  std::string_view category, std::uint32_t tid,
                  std::uint64_t parent = 0);
  void flow_end(std::uint64_t id, std::string_view name,
                std::string_view category, std::uint32_t tid);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events recorded since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
  }

  /// Retained events in recording order (oldest retained first).  Sim time
  /// is monotone within a run, but span records are emitted at their *end*,
  /// so exporters sort by ts before writing.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear();

 private:
  void push(TraceEvent event);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t id_base_ = 0;
  bool enabled_ = true;
  double last_time_ = 0.0;
  std::function<double()> clock_;
};

/// A process-wide permanently disabled tracer: components that were never
/// attached to a Telemetry context point here so spans can be opened
/// unconditionally (a ScopedSpan against it is a branch and nothing more).
[[nodiscard]] EventTracer& disabled_tracer();

/// RAII helper: records a complete span from construction to destruction.
/// Construction against a disabled tracer costs one branch and nothing at
/// destruction.
class ScopedSpan {
 public:
  ScopedSpan(EventTracer& tracer, std::string_view name,
             std::string_view category = "span",
             std::uint32_t tid = kControlTrack, std::uint64_t parent = 0)
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ == nullptr) return;
    name_ = name;
    category_ = category;
    tid_ = tid;
    parent_ = parent;
    id_ = tracer_->new_id();
    start_ = tracer_->now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The span's causal id, for linking children (0 against a disabled
  /// tracer).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->span(name_, category_, start_, tracer_->now() - start_, tid_,
                  id_, parent_);
  }

 private:
  EventTracer* tracer_;
  std::string_view name_;
  std::string_view category_;
  std::uint32_t tid_ = kControlTrack;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_ = 0.0;
};

}  // namespace edr::telemetry
