// Telemetry context: one metrics registry plus one event tracer, handed by
// reference through the runtime (SystemConfig owns a shared_ptr; a null
// pointer means telemetry is off and components fall back to sink handles
// and a disabled tracer — see registry.hpp for why that is no-op cheap).
#pragma once

#include <cstddef>
#include <memory>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace edr::telemetry {

struct TelemetryOptions {
  /// Upgrade metric updates to relaxed atomics (threaded transports).
  bool atomic_metrics = false;
  /// Ring-buffer capacity of the event tracer.
  std::size_t trace_capacity = 1 << 16;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {})
      : metrics_(options.atomic_metrics), tracer_(options.trace_capacity) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] EventTracer& tracer() { return tracer_; }
  [[nodiscard]] const EventTracer& tracer() const { return tracer_; }

  /// Opt-in solver observability.  Nothing is allocated or registered
  /// until enabled, so a plain telemetry context observes byte-identical
  /// runs (the golden-equivalence digests depend on this).  Enable before
  /// constructing the system — the pipeline caches the pointers.
  /// Idempotent: a second enable returns the existing attachment.
  FlightRecorder& enable_flight_recorder(FlightRecorderOptions options = {}) {
    if (!recorder_) recorder_ = std::make_unique<FlightRecorder>(options);
    return *recorder_;
  }
  ConvergenceMonitor& enable_monitor(MonitorOptions options = {}) {
    if (!monitor_) {
      monitor_ = std::make_unique<ConvergenceMonitor>(options);
      monitor_->attach_metrics(metrics_);
    }
    return *monitor_;
  }

  /// Null when the corresponding attachment was never enabled.
  [[nodiscard]] FlightRecorder* flight_recorder() { return recorder_.get(); }
  [[nodiscard]] const FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }
  [[nodiscard]] ConvergenceMonitor* monitor() { return monitor_.get(); }
  [[nodiscard]] const ConvergenceMonitor* monitor() const {
    return monitor_.get();
  }

 private:
  MetricsRegistry metrics_;
  EventTracer tracer_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<ConvergenceMonitor> monitor_;
};

/// Convenience factory for the common `cfg.telemetry = make_telemetry()`
/// wiring in benches and the CLI.
[[nodiscard]] inline std::shared_ptr<Telemetry> make_telemetry(
    TelemetryOptions options = {}) {
  return std::make_shared<Telemetry>(options);
}

}  // namespace edr::telemetry
