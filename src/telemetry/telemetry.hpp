// Telemetry context: one metrics registry plus one event tracer, handed by
// reference through the runtime (SystemConfig owns a shared_ptr; a null
// pointer means telemetry is off and components fall back to sink handles
// and a disabled tracer — see registry.hpp for why that is no-op cheap).
#pragma once

#include <cstddef>
#include <memory>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace edr::telemetry {

struct TelemetryOptions {
  /// Upgrade metric updates to relaxed atomics (threaded transports).
  bool atomic_metrics = false;
  /// Ring-buffer capacity of the event tracer.
  std::size_t trace_capacity = 1 << 16;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {})
      : metrics_(options.atomic_metrics), tracer_(options.trace_capacity) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] EventTracer& tracer() { return tracer_; }
  [[nodiscard]] const EventTracer& tracer() const { return tracer_; }

 private:
  MetricsRegistry metrics_;
  EventTracer tracer_;
};

/// Convenience factory for the common `cfg.telemetry = make_telemetry()`
/// wiring in benches and the CLI.
[[nodiscard]] inline std::shared_ptr<Telemetry> make_telemetry(
    TelemetryOptions options = {}) {
  return std::make_shared<Telemetry>(options);
}

}  // namespace edr::telemetry
