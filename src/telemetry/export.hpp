// Exporters: metrics as JSONL/CSV, traces as Chrome chrome://tracing JSON.
//
// JSONL — one JSON object per line per metric, easy to grep/jq and to diff
// in CI.  Chrome JSON — the Trace Event Format's "X"/"i" phases, loadable
// in chrome://tracing or https://ui.perfetto.dev to inspect a solver epoch
// visually (ts/dur are microseconds of *simulated* time).
#pragma once

#include <string>

#include "telemetry/telemetry.hpp"

namespace edr::telemetry {

/// One line per metric: {"metric":...,"type":"counter","value":N}.
[[nodiscard]] std::string metrics_to_jsonl(const MetricsRegistry& registry);

/// Flat CSV: metric,type,value,count,sum (histograms report count/sum and
/// one row per bucket).
[[nodiscard]] std::string metrics_to_csv(const MetricsRegistry& registry);

/// Chrome Trace Event Format JSON ({"traceEvents":[...]}), events sorted by
/// sim-time ts.  `process_name` labels the single emitted pid.
[[nodiscard]] std::string trace_to_chrome_json(
    const EventTracer& tracer, const std::string& process_name = "edr");

/// Write `path` with the Chrome trace and `path` + ".metrics.jsonl" with the
/// metrics dump.  Returns false (and reports via errno-style stderr) if
/// either file cannot be written.
bool export_telemetry(const Telemetry& telemetry, const std::string& path);

}  // namespace edr::telemetry
