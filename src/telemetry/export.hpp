// Exporters: metrics as JSONL/CSV, traces as Chrome chrome://tracing JSON.
//
// JSONL — one JSON object per line per metric, easy to grep/jq and to diff
// in CI.  Chrome JSON — the Trace Event Format's "X"/"i" phases, loadable
// in chrome://tracing or https://ui.perfetto.dev to inspect a solver epoch
// visually (ts/dur are microseconds of *simulated* time).
#pragma once

#include <string>

#include "telemetry/telemetry.hpp"

namespace edr::telemetry {

/// One line per metric: {"metric":...,"type":"counter","value":N}.
[[nodiscard]] std::string metrics_to_jsonl(const MetricsRegistry& registry);

/// Flat CSV: metric,type,value,count,sum (histograms report count/sum and
/// one row per bucket).
[[nodiscard]] std::string metrics_to_csv(const MetricsRegistry& registry);

/// Prometheus text exposition (0.0.4): sanitized names, counters with a
/// `_total` suffix, histograms as cumulative `_bucket{le=}` + `_sum` +
/// `_count` series.  Suitable for the node-exporter textfile collector.
[[nodiscard]] std::string metrics_to_prometheus(
    const MetricsRegistry& registry);

/// Flight-recorder dump as JSONL: one {"sample":...} line per retained
/// RoundSample (oldest first) followed by one {"epoch":...} line per
/// EpochSummary.
[[nodiscard]] std::string flight_to_jsonl(const FlightRecorder& recorder);

/// Chrome Trace Event Format JSON ({"traceEvents":[...]}), events sorted by
/// sim-time ts.  `process_name` labels the single emitted pid.
[[nodiscard]] std::string trace_to_chrome_json(
    const EventTracer& tracer, const std::string& process_name = "edr");

/// Write `path` with the Chrome trace, `path` + ".metrics.jsonl" with the
/// metrics dump, `path` + ".prom" with the Prometheus exposition, and —
/// when a flight recorder is attached — `path` + ".flight.jsonl" with the
/// sample stream.  Returns false (and reports via errno-style stderr) if
/// any file cannot be written.
bool export_telemetry(const Telemetry& telemetry, const std::string& path);

}  // namespace edr::telemetry
