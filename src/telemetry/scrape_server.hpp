// Minimal HTTP/1.0 Prometheus scrape endpoint (DESIGN.md §14).
//
// One background thread owns a nonblocking listen socket plus the accepted
// connections, the same poll()-loop idiom as net::TcpTransport (it lives
// here rather than reusing TcpTransport because edr_net depends on
// edr_telemetry, not the other way around, and a scrape endpoint needs
// none of the framing/backoff machinery).  Any request on the socket gets
// a `200 OK` with the registry rendered in Prometheus text exposition
// format and the connection closed — enough for `curl`, a Prometheus
// scraper, or the bundled Python checker, with no HTTP library in sight.
//
// Rendering happens per request under the registry's internal mutex, so
// the transport io thread may keep lazily registering per-peer series
// while a scrape is in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"

namespace edr::telemetry {

class ScrapeServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// serving thread.  Throws std::runtime_error if the bind fails.
  /// `on_scrape` (optional) runs before each render — the runtime uses it
  /// to refresh /proc-derived resource gauges so every scrape sees fresh
  /// CPU/RSS/power numbers.
  ScrapeServer(const MetricsRegistry& registry, std::uint16_t port,
               std::function<void()> on_scrape = {});
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Requests answered so far.
  [[nodiscard]] std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

  /// Stop serving and join the thread (idempotent; the destructor calls it).
  void stop();

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t written = 0;
    bool responding = false;
  };

  void serve();
  void respond(Connection& connection);

  const MetricsRegistry& registry_;
  std::function<void()> on_scrape_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> scrapes_{0};
  std::thread thread_;
};

}  // namespace edr::telemetry
