#include <algorithm>

#include "common/json.hpp"
#include "telemetry/export.hpp"

namespace edr::telemetry {

std::string trace_to_chrome_json(const EventTracer& tracer,
                                 const std::string& process_name) {
  auto events = tracer.events();
  // Span records land in the ring at their *end* time; sort by start so the
  // file reads in sim-time order (the format does not require it, but
  // ordered files diff cleanly and stream into the viewer faster).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });

  JsonWriter json;
  json.begin_object().key("traceEvents").begin_array();

  // Process-name metadata record (renders as the row-group title).
  json.begin_object()
      .field("name", "process_name")
      .field("ph", "M")
      .field("pid", 0)
      .field("tid", 0)
      .key("args")
      .begin_object()
      .field("name", process_name)
      .end_object()
      .end_object();

  for (const auto& event : events) {
    const char* phase = "i";
    switch (event.phase) {
      case TraceEvent::Phase::kSpan:
        phase = "X";
        break;
      case TraceEvent::Phase::kInstant:
        phase = "i";
        break;
      case TraceEvent::Phase::kFlowStart:
        phase = "s";
        break;
      case TraceEvent::Phase::kFlowEnd:
        phase = "f";
        break;
    }
    json.begin_object()
        .field("name", event.name)
        .field("cat", event.category.empty() ? "edr" : event.category)
        .field("ph", phase)
        // Trace Event Format timestamps are microseconds.
        .field("ts", event.ts * 1e6)
        .field("pid", 0)
        .field("tid", event.tid);
    switch (event.phase) {
      case TraceEvent::Phase::kSpan:
        json.field("dur", event.dur * 1e6);
        // Causal links render in the args pane; the viewer has no native
        // parent field for "X" events.
        if (event.id != 0) {
          json.key("args").begin_object().field("span_id", event.id);
          if (event.parent != 0) json.field("parent_id", event.parent);
          json.end_object();
        }
        break;
      case TraceEvent::Phase::kInstant:
        json.field("s", "t");  // instant scope: thread
        break;
      case TraceEvent::Phase::kFlowStart:
        // A flow-start/flow-end pair is bound by cat + id and drawn as an
        // arrow between their tracks.
        json.field("id", event.id);
        if (event.parent != 0) {
          json.key("args")
              .begin_object()
              .field("parent_id", event.parent)
              .end_object();
        }
        break;
      case TraceEvent::Phase::kFlowEnd:
        json.field("id", event.id).field("bp", "e");
        break;
    }
    json.end_object();
  }

  json.end_array()
      .field("displayTimeUnit", "ms")
      .field("droppedEvents", tracer.dropped())
      .end_object();
  return json.str();
}

}  // namespace edr::telemetry
