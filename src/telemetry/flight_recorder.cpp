#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <limits>

namespace edr::telemetry {

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : capacity_(std::max<std::size_t>(options.capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void FlightRecorder::begin_epoch(std::size_t epoch, double now) {
  epoch_open_ = true;
  current_ = EpochSummary{};
  current_.epoch = epoch;
  current_.start_time = now;
  current_.min_capacity_slack = std::numeric_limits<double>::infinity();
  seen_replicas_.clear();
  first_round_ = 0;
  last_round_ = 0;
  first_objective_sum_ = 0.0;
  last_objective_sum_ = 0.0;
  last_disagreement_ = 0.0;
  any_sample_ = false;
}

void FlightRecorder::record(const RoundSample& sample) {
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
  } else {
    ring_[recorded_ % capacity_] = sample;
  }
  ++recorded_;

  if (!epoch_open_) return;
  any_sample_ = true;
  ++current_.samples;
  current_.rounds = std::max(current_.rounds, sample.round);
  current_.messages += sample.messages_sent;
  current_.bytes += sample.bytes_sent;
  current_.max_gradient_norm =
      std::max(current_.max_gradient_norm, sample.gradient_norm);
  current_.min_capacity_slack =
      std::min(current_.min_capacity_slack, sample.capacity_slack);
  if (std::find(seen_replicas_.begin(), seen_replicas_.end(),
                sample.replica) == seen_replicas_.end())
    seen_replicas_.push_back(sample.replica);

  // First/last-round objective totals; a later round resets the "last"
  // accumulator, the first round ever seen owns the "first" one.
  if (first_round_ == 0) first_round_ = sample.round;
  if (sample.round == first_round_) first_objective_sum_ += sample.objective;
  if (sample.round > last_round_) {
    last_round_ = sample.round;
    last_objective_sum_ = 0.0;
    last_disagreement_ = 0.0;
  }
  if (sample.round == last_round_) {
    last_objective_sum_ += sample.objective;
    last_disagreement_ = std::max(last_disagreement_, sample.disagreement);
  }
}

EpochSummary FlightRecorder::end_epoch(double now) {
  current_.end_time = now;
  current_.replicas = seen_replicas_.size();
  current_.first_objective = first_objective_sum_;
  current_.final_objective = last_objective_sum_;
  current_.final_disagreement = last_disagreement_;
  if (!any_sample_) current_.min_capacity_slack = 0.0;
  epochs_.push_back(current_);
  epoch_open_ = false;
  return current_;
}

std::vector<RoundSample> FlightRecorder::samples() const {
  if (recorded_ <= capacity_) return ring_;
  std::vector<RoundSample> ordered;
  ordered.reserve(ring_.size());
  const std::size_t head = recorded_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    ordered.push_back(ring_[(head + i) % capacity_]);
  return ordered;
}

void FlightRecorder::clear() {
  ring_.clear();
  recorded_ = 0;
  epochs_.clear();
  epoch_open_ = false;
}

}  // namespace edr::telemetry
