// Anomaly + SLO monitor: streaming detectors over flight-recorder samples.
//
// A diverging or oscillating solver used to look identical to a healthy
// one until the final report.  The monitor watches the per-(round,
// replica) sample stream as the pipeline produces it and raises structured
// alerts the moment a trajectory goes wrong:
//
//   divergence   — the round-total objective rises K consecutive rounds
//   oscillation  — a replica's load flips sign of change back and forth
//   stall        — disagreement plateaus at a large fraction of the load
//   capacity     — assigned load exceeds the replica's bandwidth cap
//   slo          — an epoch's client response time exceeds the SLO bound
//
// Divergence and stall are epoch-level trends: a single replica's local
// objective legitimately rises for long stretches while load redistributes
// toward cheap replicas, and CDPSM's raw estimate disagreement settles on a
// nonzero fixed-point spread — only the *total* objective rising, or a
// plateau at a large fraction of the assigned load, separates sickness
// from normal convergence.  Oscillation and capacity stay per-replica.  All
// detectors are deduplicated per (kind, replica, epoch), so a persistently
// sick run raises one alert per epoch, not one per round.
// Like the flight recorder this is a strictly opt-in attachment
// (Telemetry::enable_monitor) — metrics are registered only when enabled,
// keeping the default telemetry path byte-identical to the goldens.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"

namespace edr::telemetry {

enum class AlertKind : std::uint8_t {
  kDivergence,
  kOscillation,
  kStall,
  kCapacity,
  kSlo,
};
inline constexpr std::size_t kNumAlertKinds = 5;

enum class AlertSeverity : std::uint8_t {
  kWarning,
  kCritical,
};

[[nodiscard]] const char* to_string(AlertKind kind);
[[nodiscard]] const char* to_string(AlertSeverity severity);

/// Sentinel replica index for run-wide alerts (SLO violations).
inline constexpr std::uint32_t kNoReplica = 0xffffffffu;

struct Alert {
  AlertKind kind = AlertKind::kDivergence;
  AlertSeverity severity = AlertSeverity::kWarning;
  std::size_t epoch = 0;
  std::size_t round = 0;
  std::uint32_t replica = kNoReplica;
  double value = 0.0;      ///< the observed quantity that tripped the alarm
  double threshold = 0.0;  ///< the configured bound it crossed
  double time = 0.0;       ///< sim-time of the triggering sample
  std::string message;     ///< human-readable one-liner
};

struct MonitorOptions {
  /// Divergence: the round-total objective must rise this many consecutive
  /// rounds.
  std::size_t divergence_rounds = 4;
  /// Minimum per-round rise to count, as a fraction of the previous total
  /// (filters float noise and asymptotic creep).
  double divergence_min_rise = 1e-6;
  /// The streak alone is not enough: healthy runs show long modest rises
  /// (an epoch's feasible start can cost less on the recovered metric than
  /// the constrained optimum it converges to — observed up to ~1.7x growth
  /// over 100+ rounds).  A rising streak is divergence when either
  ///   (a) the objective has grown by `divergence_growth` since the streak
  ///       started (geometric growth clears any constant factor), or
  ///   (b) consensus is broken: disagreement exceeds `divergence_disagreement`
  ///       × the round's total assigned load.  An over-stepped projected
  ///       subgradient stays *bounded* (the projection caps the objective)
  ///       but walks uphill with the replicas in wild disagreement
  ///       (observed ≥ 1.8× load vs ≤ 0.46× in healthy transients).
  double divergence_growth = 3.0;
  double divergence_disagreement = 1.0;
  /// Oscillation: at least `oscillation_flips` sign flips of load_delta
  /// within the last `oscillation_window` moving rounds.
  std::size_t oscillation_window = 12;
  std::size_t oscillation_flips = 8;
  /// |load_delta| below this fraction of the replica's load is treated as
  /// "not moving", not a flip.
  double oscillation_min_delta = 0.005;
  /// Stall: disagreement stays within ±stall_epsilon (relative) of itself
  /// for `stall_rounds` rounds while above `stall_disagreement` × the
  /// round's total assigned load.  The floor is load-relative because a
  /// healthy consensus iteration settles on a small nonzero fixed-point
  /// spread (observed up to ~8% of load); a genuine stall plateaus with
  /// the replicas still substantially disagreeing about the allocation.
  std::size_t stall_rounds = 25;
  double stall_disagreement = 0.25;
  double stall_epsilon = 0.05;
  /// Capacity: slack below this raises a critical alert (slightly negative
  /// to absorb projection round-off).
  double capacity_slack_min = -1e-6;
  /// Response-time SLO in milliseconds; 0 disables the detector.
  double response_slo_ms = 0.0;
  /// Stored-alert bound; past it alerts are counted but not retained.
  std::size_t max_alerts = 1024;
};

class ConvergenceMonitor {
 public:
  explicit ConvergenceMonitor(MonitorOptions options = {});

  /// Register alert counters (monitor.alerts + one per kind) on a metrics
  /// registry.  Called by Telemetry::enable_monitor, so the counters exist
  /// only when a monitor does.
  void attach_metrics(MetricsRegistry& metrics);

  /// Fires synchronously for every alert as it is raised.
  void set_alert_callback(std::function<void(const Alert&)> callback);
  /// Fires at end_epoch with the finalized summary (used by edr_sim
  /// --watch for the per-epoch terminal line).
  void set_epoch_callback(std::function<void(const EpochSummary&)> callback);

  /// Reset per-replica detector state and the per-epoch dedup table.
  void begin_epoch(std::size_t epoch);
  /// Feed one flight-recorder sample through every detector.
  void observe(const RoundSample& sample);
  /// Feed one client response time (ms) for the SLO detector.
  void observe_response(double response_ms, double time, std::size_t epoch);
  /// Stamp the epoch's alert count into `summary` and fire the epoch
  /// callback.
  void end_epoch(EpochSummary& summary);

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  /// Total raised per kind (counts past max_alerts too).
  [[nodiscard]] std::size_t alerts_of(AlertKind kind) const {
    return raised_by_kind_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::size_t total_raised() const { return raised_total_; }
  [[nodiscard]] const MonitorOptions& options() const { return options_; }

  void clear();

 private:
  struct ReplicaState {
    std::uint32_t replica = kNoReplica;
    std::vector<int> delta_signs;  ///< sliding window, oldest first
    bool raised[kNumAlertKinds] = {};  ///< per-epoch (kind, replica) dedup
  };

  ReplicaState& state_for(std::uint32_t replica);
  void raise(ReplicaState* state, Alert alert);
  /// Close the round being accumulated and run the epoch-level detectors
  /// (divergence on the round-total objective, stall on disagreement).
  void finalize_round();

  MonitorOptions options_;
  std::size_t current_epoch_ = 0;
  std::vector<ReplicaState> replicas_;
  /// Round being accumulated (samples for one round arrive together).
  std::size_t pending_round_ = 0;
  double pending_total_ = 0.0;  ///< the round's recovered global objective
  double pending_disagreement_ = 0.0;
  double pending_load_ = 0.0;  ///< total assigned load this round
  double pending_time_ = 0.0;
  std::size_t pending_epoch_ = 0;
  bool has_pending_ = false;
  /// Epoch-level divergence state: previous round's recovered objective.
  double last_round_total_ = 0.0;
  bool has_round_total_ = false;
  std::size_t rise_count_ = 0;
  double streak_start_ = 0.0;  ///< objective where the current streak began
  /// Epoch-level stall state.
  double last_disagreement_ = 0.0;
  bool has_disagreement_ = false;
  std::size_t plateau_count_ = 0;
  bool epoch_raised_[kNumAlertKinds] = {};  ///< dedup for run-wide kinds
  std::vector<Alert> alerts_;
  std::size_t raised_total_ = 0;
  std::size_t raised_this_epoch_ = 0;
  std::size_t raised_by_kind_[kNumAlertKinds] = {};
  /// Epochs that already raised an SLO alert (responses for epoch E arrive
  /// after end_epoch(E), so a per-epoch bool would not dedup them).
  std::vector<std::size_t> slo_alerted_epochs_;
  Counter alerts_metric_;
  Counter kind_metrics_[kNumAlertKinds];
  std::function<void(const Alert&)> on_alert_;
  std::function<void(const EpochSummary&)> on_epoch_;
};

}  // namespace edr::telemetry
