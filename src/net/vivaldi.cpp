#include "net/vivaldi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace edr::net {
namespace {

double norm(const std::array<double, kVivaldiDimensions>& v) {
  double sum = 0.0;
  for (const double x : v) sum += x * x;
  return std::sqrt(sum);
}

}  // namespace

Milliseconds vivaldi_distance(const VivaldiCoord& a, const VivaldiCoord& b) {
  std::array<double, kVivaldiDimensions> diff{};
  for (std::size_t d = 0; d < kVivaldiDimensions; ++d)
    diff[d] = a.position[d] - b.position[d];
  return norm(diff) + a.height + b.height;
}

void VivaldiNode::observe(const VivaldiCoord& remote,
                          Milliseconds measured_rtt) {
  if (measured_rtt <= 0.0) return;  // bogus sample

  const double predicted = vivaldi_distance(coord_, remote);
  const double sample_error =
      std::abs(predicted - measured_rtt) / measured_rtt;

  // Confidence weighting: trust the sample more when the remote is more
  // certain than we are.
  const double weight =
      coord_.error / std::max(coord_.error + remote.error, 1e-9);

  // Exponentially-weighted error estimate.
  coord_.error = clamp(sample_error * config_.error_gain * weight +
                           coord_.error * (1.0 - config_.error_gain * weight),
                       1e-3, 1.0);

  // Unit vector from remote toward us (the force direction).
  std::array<double, kVivaldiDimensions> direction{};
  for (std::size_t d = 0; d < kVivaldiDimensions; ++d)
    direction[d] = coord_.position[d] - remote.position[d];
  const double length = norm(direction);
  if (length < 1e-9) {
    // Coincident coordinates: push along a fixed axis (the caller usually
    // randomizes starts, so this is a corner case, not the norm).
    direction[0] = 1.0;
  } else {
    for (double& x : direction) x /= length;
  }

  const double delta = config_.gain * weight;
  const double force = measured_rtt - predicted;  // >0: move apart
  for (std::size_t d = 0; d < kVivaldiDimensions; ++d)
    coord_.position[d] += delta * force * direction[d];
  // Heights absorb the component that cannot be embedded.
  coord_.height = std::max(config_.min_height,
                           coord_.height + delta * force * 0.5);
}

void VivaldiNode::randomize(Rng& rng, double scale) {
  for (double& x : coord_.position) x = rng.normal(0.0, scale);
  coord_.height = std::max(config_.min_height, rng.uniform(0.0, scale));
}

VivaldiSystem::VivaldiSystem(Matrix rtt, std::uint64_t seed,
                             VivaldiConfig config)
    : rtt_(std::move(rtt)), rng_(seed) {
  if (rtt_.rows() != rtt_.cols())
    throw std::invalid_argument("VivaldiSystem: RTT matrix must be square");
  nodes_.assign(rtt_.rows(), VivaldiNode{config});
  for (auto& node : nodes_) node.randomize(rng_);
}

void VivaldiSystem::gossip(std::size_t rounds, double noise_fraction) {
  const std::size_t n = nodes_.size();
  if (n < 2) return;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t j = static_cast<std::size_t>(rng_.bounded(n - 1));
      if (j >= i) ++j;
      double rtt = rtt_(i, j);
      if (noise_fraction > 0.0)
        rtt = std::max(0.0, rtt * (1.0 + rng_.normal(0.0, noise_fraction)));
      nodes_[i].observe(nodes_[j].coordinate(), rtt);
    }
  }
}

Milliseconds VivaldiSystem::estimate(std::size_t i, std::size_t j) const {
  return nodes_[i].estimate_to(nodes_[j].coordinate());
}

double VivaldiSystem::median_relative_error() const {
  std::vector<double> errors;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (std::size_t j = i + 1; j < nodes_.size(); ++j)
      if (rtt_(i, j) > 1e-9)
        errors.push_back(std::abs(estimate(i, j) - rtt_(i, j)) / rtt_(i, j));
  return percentile(std::move(errors), 50.0);
}

Matrix VivaldiSystem::estimated_matrix() const {
  Matrix out(nodes_.size(), nodes_.size(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (std::size_t j = 0; j < nodes_.size(); ++j)
      if (i != j) out(i, j) = estimate(i, j);
  return out;
}

}  // namespace edr::net
