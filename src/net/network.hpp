// Simulated network: nodes, links, message delivery.
//
// Models the paper's data-center interconnect at the fidelity the
// evaluation depends on: per-link propagation latency (which drives the
// latency-feasibility mask), per-link bandwidth with FIFO serialization
// (which drives transfer times and hence the power-trace peaks), and
// per-node traffic counters (which drive the communication-complexity
// comparisons between CDPSM, LDDM and DONAR).
#pragma once

#include <any>
#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/sim.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::net {

using NodeId = std::uint32_t;

/// A message in flight.  `type` is interpreted by the receiving agent
/// (core defines its protocol enums); `bytes` drives transmission delay and
/// the traffic counters; `payload` carries typed content without copying
/// through a codec on every hop (the codec in net/wire.hpp is used to size
/// messages and at the transport boundary in live mode).
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  int type = 0;
  std::size_t bytes = 0;
  std::any payload;
};

/// Static link properties.
struct LinkParams {
  Milliseconds latency = 0.5;
  /// Link rate in MB/s (paper: ~100 MB/s Ethernet).
  double bandwidth_mbps = 100.0;
  /// Independent per-message drop probability (0 = reliable, the default;
  /// the paper's TCP transport retransmits, but heartbeats and other
  /// datagram-style traffic see real loss — see cluster ring tests).
  double loss_probability = 0.0;
};

/// Per-node traffic statistics.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Per-message-type traffic totals (sent side).  Always on: the runtime
/// derives its coordination-traffic report from these instead of keeping a
/// parallel hand tally, and the telemetry exporters mirror them.
struct TypeTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Message handler: invoked at delivery time on the destination node.
using Handler = std::function<void(const Message&)>;

class SimNetwork {
 public:
  explicit SimNetwork(Simulator& sim) : sim_(sim) {}

  /// Seed the loss process (only consumed on links with loss_probability
  /// > 0, so reliable topologies stay bit-identical across seeds).
  void seed_loss(std::uint64_t seed) { loss_rng_.reseed(seed); }

  /// Register (or replace) the handler for `node`.
  void attach(NodeId node, Handler handler);

  /// Remove a node: pending deliveries to it are dropped (crash semantics).
  void detach(NodeId node);

  [[nodiscard]] bool attached(NodeId node) const;

  /// Default parameters for links without an explicit override.
  void set_default_link(LinkParams params) { default_link_ = params; }
  /// Directed per-pair override.
  void set_link(NodeId from, NodeId to, LinkParams params);
  [[nodiscard]] LinkParams link(NodeId from, NodeId to) const;

  /// Send `message` (from/to must be set).  Delivery is scheduled after
  /// propagation latency plus transmission time; messages on the same
  /// directed link serialize FIFO behind each other (a busy link delays
  /// later sends).  Messages to detached nodes are silently dropped at
  /// delivery time, like packets to a crashed host.
  void send(Message message);

  /// Transmission + propagation delay a fresh message of `bytes` would see
  /// right now on from->to (ignoring queueing).
  [[nodiscard]] SimTime nominal_delay(NodeId from, NodeId to,
                                      std::size_t bytes) const;

  /// Traffic counters for `node`; a node that never sent or received
  /// returns the zero struct *without* growing any internal state (read-only
  /// queries on a const network must stay read-only — the old mutable-map
  /// lazy insert meant a telemetry sweep over candidate ids permanently
  /// inflated the stats table).
  [[nodiscard]] TrafficStats stats(NodeId node) const;
  [[nodiscard]] TrafficStats total_stats() const;
  /// Number of nodes with a traffic record (regression hook for the
  /// no-insert-on-read guarantee above).
  [[nodiscard]] std::size_t tracked_nodes() const { return stats_.size(); }
  /// Messages dropped by lossy links so far.
  [[nodiscard]] std::uint64_t messages_lost() const { return lost_; }

  /// Sent-side totals keyed by Message::type.
  [[nodiscard]] const std::map<int, TypeTraffic>& traffic_by_type() const {
    return traffic_by_type_;
  }
  /// Aggregate of traffic_by_type over [first_type, last_type].
  [[nodiscard]] TypeTraffic traffic_in_range(int first_type,
                                             int last_type) const;

  /// Human-readable label for a message type in telemetry metric names
  /// (the protocol layer registers its enum names; unnamed types export as
  /// "type<k>").  Must be called before traffic of that type flows for the
  /// per-type counters to pick the label up.
  void set_type_name(int type, std::string name);

  /// Wire message/byte counters and the link queueing-delay histogram.
  void attach_telemetry(telemetry::Telemetry& telemetry);

  /// Causal flow tracing: while nonzero (and a tracer is attached and
  /// enabled), every send records a flow-begin on the sender's track and a
  /// flow-end at delivery on the receiver's, linked to `parent` (the
  /// enclosing round span).  The pipeline brackets a round's coordination
  /// fan-out with this; heartbeats and other background traffic keep
  /// parent 0 and record no flows.
  void set_flow_parent(std::uint64_t parent) { flow_parent_ = parent; }

  [[nodiscard]] Simulator& sim() { return sim_; }

 private:
  [[nodiscard]] std::array<telemetry::Counter, 2>& type_metrics(int type);
  Simulator& sim_;
  Rng loss_rng_{0x1055ee7dULL};
  std::uint64_t lost_ = 0;
  LinkParams default_link_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  std::map<std::pair<NodeId, NodeId>, SimTime> link_busy_until_;
  std::map<NodeId, Handler> handlers_;
  std::map<NodeId, TrafficStats> stats_;
  std::map<int, TypeTraffic> traffic_by_type_;
  std::map<int, std::string> type_names_;

  std::uint64_t flow_parent_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;  // null = sink handles only
  telemetry::Counter messages_sent_metric_;
  telemetry::Counter bytes_sent_metric_;
  telemetry::Counter messages_delivered_metric_;
  telemetry::Counter messages_lost_metric_;
  telemetry::Histogram queue_delay_metric_;
  /// Per type: [0] = messages, [1] = bytes.
  std::map<int, std::array<telemetry::Counter, 2>> type_metrics_;
};

}  // namespace edr::net
