// Threaded in-process transport.
//
// The paper's EDR prototype is a multithreaded TCP program: each replica
// runs ClientListener / ReplicaListener / FileDownload threads.  The live
// examples in this repository reproduce that structure with real threads
// communicating through bounded mailboxes — the same actor topology minus
// the socket plumbing (see DESIGN.md §2 for why that substitution is
// faithful).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace edr::net {

/// A thread-safe bounded MPMC queue with shutdown semantics.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Blocking push; returns false if the mailbox was closed.
  bool push(T value) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock,
                   [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional means the mailbox closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Timed pop: waits up to `timeout_s` seconds for a value.  Empty
  /// optional means timeout, or closed-and-drained — check closed() to
  /// distinguish when it matters (the live runtime treats both as "no
  /// frame this tick").
  std::optional<T> pop_for(double timeout_s) {
    std::unique_lock lock{mutex_};
    not_empty_.wait_for(lock,
                        std::chrono::duration<double>(
                            std::max(timeout_s, 0.0)),
                        [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock{mutex_};
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Close: pending pops drain the queue then return nullopt; pushes fail.
  void close() {
    std::scoped_lock lock{mutex_};
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Undo a close: discard anything still queued and accept pushes again
  /// (a rebooted process starts with an empty socket buffer).
  void reopen() {
    std::scoped_lock lock{mutex_};
    queue_.clear();
    closed_ = false;
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock{mutex_};
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Routes Messages between threads: one mailbox per node id.
class InprocTransport {
 public:
  explicit InprocTransport(std::size_t num_nodes,
                           std::size_t mailbox_capacity = 4096);

  [[nodiscard]] std::size_t num_nodes() const { return mailboxes_.size(); }

  /// Deliver to message.to's mailbox; false if that mailbox is closed.
  bool send(Message message);

  /// Blocking receive for `node`; nullopt on shutdown.
  std::optional<Message> receive(NodeId node);

  /// Non-blocking receive.
  std::optional<Message> try_receive(NodeId node);

  /// Timed receive: waits up to `timeout_s` seconds (live-runtime barrier
  /// timeouts); nullopt on timeout or shutdown.
  std::optional<Message> receive_for(NodeId node, double timeout_s);

  /// Close one node's mailbox (crash injection) or all (shutdown).
  void close(NodeId node);
  void close_all();

  /// Replace `node`'s mailbox with a fresh open one (restart after a crash
  /// injected with close()).  Frames queued before the close are gone, as
  /// they would be for a rebooted process.
  void reopen(NodeId node);

 private:
  // unique_ptr because a Mailbox owns synchronization primitives and is
  // neither movable nor copyable.
  std::vector<std::unique_ptr<Mailbox<Message>>> mailboxes_;
};

}  // namespace edr::net
