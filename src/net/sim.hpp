// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's physical SystemG cluster:
// everything time-dependent (message delivery, solver rounds, heartbeats,
// file transfers, power sampling) runs as events on this queue.  Ties are
// broken by insertion order, so a run is a pure function of its inputs and
// seeds — the property every reproduction test leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::net {

class Simulator {
 public:
  using Task = std::function<void()>;

  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `task` at absolute time `when` (clamped to now for past
  /// times — events cannot run in the past).
  void schedule_at(SimTime when, Task task);

  /// Schedule `task` after `delay` seconds.
  void schedule_after(SimTime delay, Task task);

  /// Run a single event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `limit` events have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run events with time ≤ horizon; the clock is left at
  /// min(horizon, time of last executed event's successor).  Events beyond
  /// the horizon remain queued.
  std::size_t run_until(SimTime horizon);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Wire the event-loop metrics (events executed, queue depth, clock
  /// position) and the tracer clock into `telemetry`.  The caller must keep
  /// the context alive for the simulator's lifetime; the clock should be
  /// detached (set_clock(nullptr)) before the simulator dies.
  void attach_telemetry(telemetry::Telemetry& telemetry);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Task task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  // Sink handles until attach_telemetry (see telemetry/registry.hpp).
  telemetry::Counter events_executed_metric_;
  telemetry::Counter events_scheduled_metric_;
  telemetry::Gauge queue_depth_metric_;
  telemetry::Gauge sim_time_metric_;
};

}  // namespace edr::net
