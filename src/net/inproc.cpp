#include "net/inproc.hpp"

#include <stdexcept>

namespace edr::net {

InprocTransport::InprocTransport(std::size_t num_nodes,
                                 std::size_t mailbox_capacity) {
  mailboxes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox<Message>>(mailbox_capacity));
}

bool InprocTransport::send(Message message) {
  if (message.to >= mailboxes_.size())
    throw std::out_of_range("InprocTransport::send: unknown destination");
  return mailboxes_[message.to]->push(std::move(message));
}

std::optional<Message> InprocTransport::receive(NodeId node) {
  if (node >= mailboxes_.size())
    throw std::out_of_range("InprocTransport::receive: unknown node");
  return mailboxes_[node]->pop();
}

std::optional<Message> InprocTransport::try_receive(NodeId node) {
  if (node >= mailboxes_.size())
    throw std::out_of_range("InprocTransport::try_receive: unknown node");
  return mailboxes_[node]->try_pop();
}

std::optional<Message> InprocTransport::receive_for(NodeId node,
                                                    double timeout_s) {
  if (node >= mailboxes_.size())
    throw std::out_of_range("InprocTransport::receive_for: unknown node");
  return mailboxes_[node]->pop_for(timeout_s);
}

void InprocTransport::close(NodeId node) {
  if (node >= mailboxes_.size())
    throw std::out_of_range("InprocTransport::close: unknown node");
  mailboxes_[node]->close();
}

void InprocTransport::reopen(NodeId node) {
  if (node >= mailboxes_.size())
    throw std::out_of_range("InprocTransport::reopen: unknown node");
  mailboxes_[node]->reopen();
}

void InprocTransport::close_all() {
  for (auto& mailbox : mailboxes_) mailbox->close();
}

}  // namespace edr::net
