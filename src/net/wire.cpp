#include "net/wire.hpp"

#include <bit>
#include <stdexcept>

namespace edr::net {

static_assert(std::endian::native == std::endian::little,
              "wire codec assumes a little-endian host");

void WireWriter::raw(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void WireWriter::put_u32(std::uint32_t value) { raw(&value, sizeof(value)); }
void WireWriter::put_u64(std::uint64_t value) { raw(&value, sizeof(value)); }
void WireWriter::put_double(double value) { raw(&value, sizeof(value)); }

void WireWriter::put_string(std::string_view value) {
  put_u32(static_cast<std::uint32_t>(value.size()));
  raw(value.data(), value.size());
}

void WireWriter::put_doubles(std::span<const double> values) {
  put_u32(static_cast<std::uint32_t>(values.size()));
  raw(values.data(), values.size() * sizeof(double));
}

void WireWriter::put_indexed_doubles(std::span<const std::uint32_t> indices,
                                     std::span<const double> values) {
  if (indices.size() != values.size())
    throw std::invalid_argument(
        "WireWriter::put_indexed_doubles: parallel spans differ in length");
  put_u32(static_cast<std::uint32_t>(values.size()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    put_u32(indices[i]);
    put_double(values[i]);
  }
}

void WireWriter::put_matrix(const Matrix& matrix) {
  put_u32(static_cast<std::uint32_t>(matrix.rows()));
  put_u32(static_cast<std::uint32_t>(matrix.cols()));
  const auto flat = matrix.flat();
  raw(flat.data(), flat.size() * sizeof(double));
}

void WireReader::check_declared(std::size_t declared_bytes) const {
  if (declared_bytes > max_frame_bytes_)
    throw std::length_error("WireReader: declared element size exceeds the "
                            "frame cap");
}

void WireReader::raw(void* out, std::size_t size) {
  if (offset_ + size > bytes_.size())
    throw std::out_of_range("WireReader: truncated message");
  std::memcpy(out, bytes_.data() + offset_, size);
  offset_ += size;
}

std::uint8_t WireReader::get_u8() {
  std::uint8_t value;
  raw(&value, sizeof(value));
  return value;
}

std::uint32_t WireReader::get_u32() {
  std::uint32_t value;
  raw(&value, sizeof(value));
  return value;
}

std::uint64_t WireReader::get_u64() {
  std::uint64_t value;
  raw(&value, sizeof(value));
  return value;
}

double WireReader::get_double() {
  double value;
  raw(&value, sizeof(value));
  return value;
}

std::string WireReader::get_string() {
  const std::uint32_t size = get_u32();
  check_declared(size);
  if (offset_ + size > bytes_.size())
    throw std::out_of_range("WireReader: truncated string");
  std::string value(reinterpret_cast<const char*>(bytes_.data() + offset_),
                    size);
  offset_ += size;
  return value;
}

std::vector<double> WireReader::get_doubles() {
  const std::uint32_t count = get_u32();
  check_declared(static_cast<std::size_t>(count) * sizeof(double));
  // Division form: `offset_ + count * 8` can wrap size_t for adversarial
  // counts (offset_ ≤ bytes_.size() always holds, so the subtraction here
  // cannot underflow).
  if (count > (bytes_.size() - offset_) / sizeof(double))
    throw std::out_of_range("WireReader: truncated double vector");
  std::vector<double> values(count);
  raw(values.data(), values.size() * sizeof(double));
  return values;
}

void WireReader::get_indexed_doubles(std::vector<std::uint32_t>& indices,
                                     std::vector<double>& values) {
  const std::uint32_t count = get_u32();
  check_declared(static_cast<std::size_t>(count) * 12);
  // Division form, like get_doubles: count * 12 can wrap size_t.
  if (count > (bytes_.size() - offset_) / 12)
    throw std::out_of_range("WireReader: truncated indexed double vector");
  indices.resize(count);
  values.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    indices[i] = get_u32();
    values[i] = get_double();
  }
}

Matrix WireReader::get_matrix() {
  const std::uint32_t rows = get_u32();
  const std::uint32_t cols = get_u32();
  // rows*cols fits in 64 bits (both are u32), but multiplying by
  // sizeof(double) can wrap — e.g. rows = cols = 2^31 gives a byte count
  // ≡ 0 mod 2^64, which sailed past the old additive check straight into a
  // multi-exabyte allocation.  Compare in division form instead.
  const std::size_t count = static_cast<std::size_t>(rows) * cols;
  // Same division form as the bounds check below: count * 8 can wrap
  // size_t for adversarial dimensions, sailing past a multiplied cap.
  if (count > max_frame_bytes_ / sizeof(double))
    throw std::length_error("WireReader: declared element size exceeds the "
                            "frame cap");
  if (count > (bytes_.size() - offset_) / sizeof(double))
    throw std::out_of_range("WireReader: truncated matrix");
  Matrix matrix(rows, cols);
  raw(matrix.flat().data(), count * sizeof(double));
  return matrix;
}

}  // namespace edr::net
