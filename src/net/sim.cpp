#include "net/sim.hpp"

#include <algorithm>
#include <utility>

namespace edr::net {

void Simulator::schedule_at(SimTime when, Task task) {
  queue_.push({std::max(when, now_), next_seq_++, std::move(task)});
}

void Simulator::schedule_after(SimTime delay, Task task) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(task));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Task must be moved out before execution: the task may schedule new
  // events and reallocate the queue.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++executed_;
  event.task();
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t count = 0;
  while (count < limit && step()) ++count;
  return count;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= horizon) {
    step();
    ++count;
  }
  now_ = std::max(now_, horizon);
  return count;
}

}  // namespace edr::net
