#include "net/sim.hpp"

#include <algorithm>
#include <utility>

namespace edr::net {

void Simulator::schedule_at(SimTime when, Task task) {
  queue_.push({std::max(when, now_), next_seq_++, std::move(task)});
  events_scheduled_metric_.add(1);
}

void Simulator::schedule_after(SimTime delay, Task task) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(task));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Task must be moved out before execution: the task may schedule new
  // events and reallocate the queue.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++executed_;
  events_executed_metric_.add(1);
  queue_depth_metric_.set(static_cast<double>(queue_.size()));
  sim_time_metric_.set(now_);
  event.task();
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t count = 0;
  while (count < limit && step()) ++count;
  return count;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= horizon) {
    step();
    ++count;
  }
  now_ = std::max(now_, horizon);
  return count;
}

void Simulator::attach_telemetry(telemetry::Telemetry& telemetry) {
  auto& metrics = telemetry.metrics();
  events_executed_metric_ = metrics.counter("sim.events_executed");
  events_scheduled_metric_ = metrics.counter("sim.events_scheduled");
  queue_depth_metric_ = metrics.gauge("sim.queue_depth");
  sim_time_metric_ = metrics.gauge("sim.time_s");
  telemetry.tracer().set_clock([this] { return now_; });
}

}  // namespace edr::net
