// Vivaldi network coordinates (Dabek, Cox, Kaashoek, Morris — SIGCOMM'04),
// the decentralized latency-estimation system the paper cites as the other
// coordinator-free approach to replica selection [25].
//
// Each node keeps a low-dimensional coordinate plus a "height" (modelling
// the access-link delay that Euclidean embeddings cannot express).  After a
// measured RTT to a peer, it nudges its coordinate along the error gradient
// with a confidence-weighted adaptive timestep.  Predicted latency between
// two nodes is the coordinate distance plus both heights.
//
// EDR can build its latency-feasibility mask from these predictions instead
// of all-pairs probing: O(|C|+|N|) gossip instead of O(|C|·|N|)
// measurements — exactly the property that made Vivaldi attractive for
// wide-area server selection.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace edr::net {

inline constexpr std::size_t kVivaldiDimensions = 2;

struct VivaldiCoord {
  std::array<double, kVivaldiDimensions> position{};
  /// Access-link component (ms); always ≥ 0.
  double height = 0.1;
  /// Local error estimate in (0, 1]; starts pessimistic.
  double error = 1.0;
};

/// Predicted one-way latency between two coordinates (ms).
[[nodiscard]] Milliseconds vivaldi_distance(const VivaldiCoord& a,
                                            const VivaldiCoord& b);

struct VivaldiConfig {
  /// Coordinate timestep gain c_c (paper's recommended 0.25).
  double gain = 0.25;
  /// Error-averaging gain c_e (paper's recommended 0.25).
  double error_gain = 0.25;
  /// Floor on heights (a link cannot have negative delay).
  double min_height = 0.01;
};

/// One node's Vivaldi state machine.
class VivaldiNode {
 public:
  explicit VivaldiNode(VivaldiConfig config = {}) : config_(config) {}

  /// Incorporate a measured RTT (ms) to a peer advertising `remote`.
  void observe(const VivaldiCoord& remote, Milliseconds measured_rtt);

  [[nodiscard]] const VivaldiCoord& coordinate() const { return coord_; }
  [[nodiscard]] Milliseconds estimate_to(const VivaldiCoord& remote) const {
    return vivaldi_distance(coord_, remote);
  }

  /// Deterministic jitter for breaking the symmetry of coincident starts.
  void randomize(Rng& rng, double scale = 0.1);

 private:
  VivaldiConfig config_;
  VivaldiCoord coord_;
};

/// Test/bench harness: N Vivaldi nodes converging against a ground-truth
/// latency matrix via random pairwise observations.
class VivaldiSystem {
 public:
  /// `rtt(i, j)` is the true RTT between nodes i and j in ms (symmetric).
  VivaldiSystem(Matrix rtt, std::uint64_t seed, VivaldiConfig config = {});

  /// Run `rounds` gossip rounds; each round every node observes one random
  /// peer (RTT perturbed by `noise_fraction` of its magnitude).
  void gossip(std::size_t rounds, double noise_fraction = 0.0);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Milliseconds estimate(std::size_t i, std::size_t j) const;
  [[nodiscard]] Milliseconds truth(std::size_t i, std::size_t j) const {
    return rtt_(i, j);
  }

  /// Median relative prediction error over all pairs — the standard
  /// Vivaldi accuracy metric.
  [[nodiscard]] double median_relative_error() const;

  /// Predicted full latency matrix (for building an optim::Problem).
  [[nodiscard]] Matrix estimated_matrix() const;

 private:
  Matrix rtt_;
  Rng rng_;
  std::vector<VivaldiNode> nodes_;
};

}  // namespace edr::net
