// Wire codec: a small, explicit binary serialization layer.
//
// The paper's implementation ships solution vectors, multipliers and
// membership lists over TCP sockets.  The simulator keeps payloads in
// memory, but it still needs faithful *sizes* for every message (they drive
// transmission delay and the communication-complexity comparisons), and the
// live threaded transport round-trips real bytes.  This codec is the single
// definition of both.
//
// Format: little-endian fixed-width integers and IEEE-754 doubles; vectors
// and strings are length-prefixed with a u32.  No padding, no versioning —
// both ends of a link always run the same build.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"

namespace edr::net {

class WireWriter {
 public:
  void put_u8(std::uint8_t value) { raw(&value, 1); }
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_double(double value);
  void put_string(std::string_view value);
  void put_doubles(std::span<const double> values);
  /// Sparse vector: u32 count, then count (u32 index, f64 value) pairs —
  /// the frame the sparse solve paths ship instead of a dense column or
  /// matrix.  `indices` and `values` must be the same length.
  void put_indexed_doubles(std::span<const std::uint32_t> indices,
                           std::span<const double> values);
  void put_matrix(const Matrix& matrix);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() {
    return std::move(buffer_);
  }

 private:
  void raw(const void* data, std::size_t size);
  std::vector<std::uint8_t> buffer_;
};

/// Reader over a byte span.  Out-of-bounds reads throw std::out_of_range —
/// a truncated message must fail loudly, not read garbage.
///
/// `max_frame_bytes` bounds every length-prefixed element (string, double
/// vector, matrix) *before* any allocation happens: at the transport
/// boundary the span under the reader may be one frame of a larger stream
/// buffer, so "declared length fits the span" is not a sufficient guard —
/// a peer could declare a near-2^32 element count backed by a large
/// receive buffer and drive a multi-gigabyte allocation.  Declared sizes
/// above the cap throw std::length_error.  The default cap is unlimited
/// (in-memory readers over trusted buffers keep the historical behavior).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes,
                      std::size_t max_frame_bytes = SIZE_MAX)
      : bytes_(bytes), max_frame_bytes_(max_frame_bytes) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_double();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] std::vector<double> get_doubles();
  /// Counterpart of put_indexed_doubles; fills the parallel vectors
  /// (replacing their contents).
  void get_indexed_doubles(std::vector<std::uint32_t>& indices,
                           std::vector<double>& values);
  [[nodiscard]] Matrix get_matrix();

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  [[nodiscard]] std::size_t max_frame_bytes() const {
    return max_frame_bytes_;
  }

 private:
  void raw(void* out, std::size_t size);
  /// Throws std::length_error when a declared element size exceeds the cap.
  void check_declared(std::size_t declared_bytes) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
  std::size_t max_frame_bytes_ = SIZE_MAX;
};

/// Serialized sizes used for message-size accounting without building the
/// actual buffer (hot path in the simulator).
[[nodiscard]] constexpr std::size_t wire_size_doubles(std::size_t count) {
  return 4 + 8 * count;
}
[[nodiscard]] constexpr std::size_t wire_size_matrix(std::size_t rows,
                                                     std::size_t cols) {
  return 8 + 8 * rows * cols;
}
[[nodiscard]] constexpr std::size_t wire_size_indexed_doubles(
    std::size_t count) {
  return 4 + 12 * count;
}

}  // namespace edr::net
