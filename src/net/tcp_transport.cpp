#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace edr::net {

namespace {

constexpr std::size_t kHeaderBytes = 16;  // [len][from][to][type]
constexpr std::size_t kFrameMetaBytes = 12;  // len counts from+to+type+payload

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void put_u32_at(std::vector<std::uint8_t>& buf, std::size_t offset,
                std::uint32_t value) {
  std::memcpy(buf.data() + offset, &value, sizeof(value));
}

std::uint32_t read_u32_at(const std::uint8_t* bytes) {
  std::uint32_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

std::vector<std::uint8_t> encode_frame(const Message& message) {
  const std::vector<std::uint8_t>* payload = nullptr;
  if (message.payload.has_value()) {
    payload = std::any_cast<std::vector<std::uint8_t>>(&message.payload);
    if (payload == nullptr)
      throw std::invalid_argument(
          "TcpTransport::send: payload must be std::vector<std::uint8_t>");
  }
  const std::size_t payload_size = payload != nullptr ? payload->size() : 0;
  std::vector<std::uint8_t> frame(kHeaderBytes + payload_size);
  put_u32_at(frame, 0,
             static_cast<std::uint32_t>(kFrameMetaBytes + payload_size));
  put_u32_at(frame, 4, message.from);
  put_u32_at(frame, 8, message.to);
  put_u32_at(frame, 12, static_cast<std::uint32_t>(message.type));
  if (payload != nullptr)
    std::memcpy(frame.data() + kHeaderBytes, payload->data(), payload_size);
  return frame;
}

}  // namespace

TcpTransport::TcpTransport(NodeId self) : TcpTransport(self, Options{}) {}

TcpTransport::TcpTransport(NodeId self, Options options)
    : self_(self), options_(options) {
  if (::pipe(wake_pipe_) != 0)
    throw std::runtime_error("TcpTransport: pipe() failed");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::wake() {
  const char byte = 0;
  (void)!::write(wake_pipe_[1], &byte, 1);
}

void TcpTransport::start_io_thread_locked() {
  if (io_running_) return;
  io_running_ = true;
  io_thread_ = std::thread([this] { io_main(); });
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  std::scoped_lock lock{mutex_};
  if (listen_fd_ >= 0) return listen_port_;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("TcpTransport: socket() failed");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("TcpTransport: bind() failed");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("TcpTransport: listen() failed");
  }
  socklen_t len = sizeof(addr);
  (void)::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);
  listen_fd_ = fd;
  listen_port_ = ntohs(addr.sin_port);
  start_io_thread_locked();
  wake();
  return listen_port_;
}

void TcpTransport::add_peer(NodeId peer, const std::string& host,
                            std::uint16_t port) {
  std::scoped_lock lock{mutex_};
  PeerState& state = peers_[peer];
  state.host = host;
  state.port = port;
  state.retry_at = Clock::now();
  state.backoff_ms = 0.0;
  register_peer_metrics_locked(peer, state);
  start_io_thread_locked();
  wake();
}

void TcpTransport::remove_peer(NodeId peer) {
  std::scoped_lock lock{mutex_};
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  peers_.erase(it);
  wake();
}

void TcpTransport::count_sent_locked(const Message& message,
                                     std::size_t frame_bytes) {
  auto& sender = stats_[message.from];
  sender.messages_sent += 1;
  sender.bytes_sent += frame_bytes;
  auto& by_type = traffic_by_type_[message.type];
  by_type.messages += 1;
  by_type.bytes += frame_bytes;
  messages_sent_metric_.add(1);
  bytes_sent_metric_.add(frame_bytes);
  if (telemetry_ != nullptr) {
    auto it = bytes_by_type_metrics_.find(message.type);
    if (it == bytes_by_type_metrics_.end()) {
      const auto name = type_names_.find(message.type);
      const std::string label = name != type_names_.end()
                                    ? name->second
                                    : std::to_string(message.type);
      it = bytes_by_type_metrics_
               .emplace(message.type,
                        telemetry_->metrics().counter(
                            "net.bytes_by_type{type=\"" + label + "\"}"))
               .first;
    }
    it->second.add(static_cast<double>(frame_bytes));
  }
}

void TcpTransport::register_peer_metrics_locked(NodeId id, PeerState& peer) {
  if (telemetry_ == nullptr) return;
  const std::string label = "{peer=\"" + std::to_string(id) + "\"}";
  peer.sendq_gauge = telemetry_->metrics().gauge("net.sendq_depth" + label);
  peer.backoff_gauge = telemetry_->metrics().gauge("net.backoff_ms" + label);
}

bool TcpTransport::send(Message message) {
  if (message.to == self_) {
    // Loopback: no socket, no fault hook (a process cannot lose a frame to
    // itself), but the counters still see it.
    const auto* payload =
        message.payload.has_value()
            ? std::any_cast<std::vector<std::uint8_t>>(&message.payload)
            : nullptr;
    const std::size_t frame_bytes =
        kHeaderBytes + (payload != nullptr ? payload->size() : 0);
    {
      std::scoped_lock lock{mutex_};
      count_sent_locked(message, frame_bytes);
      auto& receiver = stats_[message.to];
      receiver.messages_received += 1;
      receiver.bytes_received += frame_bytes;
      messages_delivered_metric_.add(1);
    }
    message.bytes = frame_bytes;
    deliver(std::move(message));
    return true;
  }

  std::vector<std::uint8_t> frame = encode_frame(message);
  FaultAction action;
  {
    std::scoped_lock lock{mutex_};
    const auto it = peers_.find(message.to);
    if (it == peers_.end()) return false;
    if (fault_hook_) action = fault_hook_(message);
    count_sent_locked(message, frame.size());
    if (action.drop) {
      ++fault_drops_;
      return true;  // the frame "left" the sender and died on the wire
    }
    PeerState& peer = it->second;
    const int copies = action.duplicate ? 2 : 1;
    if (action.delay_ms > 0.0) {
      const auto release =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 action.delay_ms));
      for (int i = 0; i < copies; ++i)
        delayed_.push_back({release, message.to, frame});
    } else {
      for (int i = 0; i < copies; ++i) {
        if (peer.sendq.size() >= options_.max_queued_frames) {
          ++queue_overflows_;
          return false;
        }
        peer.sendq.push_back(frame);
      }
      peer.sendq_gauge.set(static_cast<double>(peer.sendq.size()));
    }
  }
  wake();
  return true;
}

std::optional<Message> TcpTransport::receive() { return inbox_.pop(); }
std::optional<Message> TcpTransport::try_receive() {
  return inbox_.try_pop();
}
std::optional<Message> TcpTransport::receive_for(double timeout_s) {
  return inbox_.pop_for(timeout_s);
}

void TcpTransport::attach(NodeId node, Handler handler) {
  std::scoped_lock lock{mutex_};
  handlers_[node] = std::move(handler);
}

void TcpTransport::detach(NodeId node) {
  std::scoped_lock lock{mutex_};
  handlers_.erase(node);
}

bool TcpTransport::attached(NodeId node) const {
  std::scoped_lock lock{mutex_};
  return handlers_.contains(node);
}

void TcpTransport::set_fault_hook(FaultHook hook) {
  std::scoped_lock lock{mutex_};
  fault_hook_ = std::move(hook);
}

void TcpTransport::set_on_disconnect(std::function<void(NodeId)> callback) {
  std::scoped_lock lock{mutex_};
  on_disconnect_ = std::move(callback);
}

void TcpTransport::reset_connection(NodeId peer) {
  {
    std::scoped_lock lock{mutex_};
    pending_resets_.push_back(peer);
  }
  wake();
}

TrafficStats TcpTransport::stats(NodeId node) const {
  std::scoped_lock lock{mutex_};
  const auto it = stats_.find(node);
  return it == stats_.end() ? TrafficStats{} : it->second;
}

TrafficStats TcpTransport::total_stats() const {
  std::scoped_lock lock{mutex_};
  TrafficStats total;
  for (const auto& [node, s] : stats_) {
    total.messages_sent += s.messages_sent;
    total.messages_received += s.messages_received;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
  }
  return total;
}

std::size_t TcpTransport::tracked_nodes() const {
  std::scoped_lock lock{mutex_};
  return stats_.size();
}

std::map<int, TypeTraffic> TcpTransport::traffic_by_type() const {
  std::scoped_lock lock{mutex_};
  return traffic_by_type_;
}

TypeTraffic TcpTransport::traffic_in_range(int first_type,
                                           int last_type) const {
  std::scoped_lock lock{mutex_};
  TypeTraffic total;
  for (auto it = traffic_by_type_.lower_bound(first_type);
       it != traffic_by_type_.end() && it->first <= last_type; ++it) {
    total.messages += it->second.messages;
    total.bytes += it->second.bytes;
  }
  return total;
}

void TcpTransport::set_type_name(int type, std::string name) {
  std::scoped_lock lock{mutex_};
  type_names_[type] = std::move(name);
}

void TcpTransport::attach_telemetry(telemetry::Telemetry& telemetry) {
  std::scoped_lock lock{mutex_};
  telemetry_ = &telemetry;
  auto& metrics = telemetry.metrics();
  messages_sent_metric_ = metrics.counter("net.messages_sent");
  bytes_sent_metric_ = metrics.counter("net.bytes_sent");
  messages_delivered_metric_ = metrics.counter("net.messages_delivered");
  frame_errors_metric_ = metrics.counter("net.frame_errors");
  reconnects_metric_ = metrics.counter("net.reconnects");
  for (auto& [id, peer] : peers_) register_peer_metrics_locked(id, peer);
}

std::uint64_t TcpTransport::queue_overflows() const {
  std::scoped_lock lock{mutex_};
  return queue_overflows_;
}
std::uint64_t TcpTransport::frame_errors() const {
  std::scoped_lock lock{mutex_};
  return frame_errors_;
}
std::uint64_t TcpTransport::connects_completed() const {
  std::scoped_lock lock{mutex_};
  return connects_completed_;
}
std::uint64_t TcpTransport::frames_dropped_by_fault() const {
  std::scoped_lock lock{mutex_};
  return fault_drops_;
}

void TcpTransport::shutdown() {
  {
    std::scoped_lock lock{mutex_};
    if (stop_ && !io_running_) return;
    stop_ = true;
  }
  // Unblock the io thread if it is stuck pushing into a full inbox, then
  // wake it out of poll().
  inbox_.close();
  wake();
  if (io_thread_.joinable()) io_thread_.join();
  std::scoped_lock lock{mutex_};
  io_running_ = false;
  for (auto& [id, peer] : peers_)
    if (peer.fd >= 0) {
      ::close(peer.fd);
      peer.fd = -1;
    }
  for (auto& conn : inbound_)
    if (conn.fd >= 0) ::close(conn.fd);
  inbound_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_pipe_[0] >= 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
}

void TcpTransport::begin_connect_locked(PeerState& peer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    peer.backoff_ms = peer.backoff_ms <= 0.0
                          ? options_.backoff_initial_ms
                          : std::min(peer.backoff_ms * 2.0,
                                     options_.backoff_max_ms);
    peer.backoff_gauge.set(peer.backoff_ms);
    peer.retry_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double,
                                                             std::milli>(
                                           peer.backoff_ms));
    return;
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1)
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0) {
    peer.fd = fd;
    peer.connecting = false;
    peer.was_connected = true;
    peer.backoff_ms = 0.0;
    peer.backoff_gauge.set(0.0);
    ++connects_completed_;
    reconnects_metric_.add(1);
    return;
  }
  if (errno == EINPROGRESS) {
    peer.fd = fd;
    peer.connecting = true;
    return;
  }
  ::close(fd);
  peer.backoff_ms = peer.backoff_ms <= 0.0
                        ? options_.backoff_initial_ms
                        : std::min(peer.backoff_ms * 2.0,
                                   options_.backoff_max_ms);
  peer.backoff_gauge.set(peer.backoff_ms);
  peer.retry_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         peer.backoff_ms));
}

void TcpTransport::close_peer_locked(PeerState& peer, bool notify) {
  (void)notify;  // notification is batched by the caller (io_main)
  if (peer.fd >= 0) ::close(peer.fd);
  peer.fd = -1;
  peer.connecting = false;
  peer.readbuf.clear();
  // A partially-written frame cannot be resumed on a new connection; drop
  // it so the fresh stream starts on a frame boundary.  Fully-queued frames
  // survive the reconnect.
  if (peer.write_offset > 0 && !peer.sendq.empty()) peer.sendq.pop_front();
  peer.write_offset = 0;
  peer.backoff_ms = peer.backoff_ms <= 0.0
                        ? options_.backoff_initial_ms
                        : std::min(peer.backoff_ms * 2.0,
                                   options_.backoff_max_ms);
  peer.sendq_gauge.set(static_cast<double>(peer.sendq.size()));
  peer.backoff_gauge.set(peer.backoff_ms);
  peer.retry_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         peer.backoff_ms));
}

void TcpTransport::flush_peer_locked(PeerState& peer) {
  while (!peer.sendq.empty()) {
    const auto& frame = peer.sendq.front();
    const std::size_t remaining = frame.size() - peer.write_offset;
    const ssize_t n = ::send(peer.fd, frame.data() + peer.write_offset,
                             remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_peer_locked(peer, true);
      return;
    }
    peer.write_offset += static_cast<std::size_t>(n);
    if (peer.write_offset == frame.size()) {
      peer.sendq.pop_front();
      peer.write_offset = 0;
    }
  }
  peer.sendq_gauge.set(static_cast<double>(peer.sendq.size()));
}

bool TcpTransport::parse_frames_locked(std::vector<std::uint8_t>& buf,
                                       std::vector<Message>& out,
                                       InboundConn* conn) {
  std::size_t offset = 0;
  while (buf.size() - offset >= 4) {
    const std::uint32_t len = read_u32_at(buf.data() + offset);
    if (len < kFrameMetaBytes || len > options_.max_frame_bytes) {
      ++frame_errors_;
      frame_errors_metric_.add(1);
      return false;  // protocol error: caller closes the connection
    }
    if (buf.size() - offset < 4 + static_cast<std::size_t>(len)) break;
    Message message;
    message.from = read_u32_at(buf.data() + offset + 4);
    message.to = read_u32_at(buf.data() + offset + 8);
    message.type =
        static_cast<int>(read_u32_at(buf.data() + offset + 12));
    const std::size_t payload_size = len - kFrameMetaBytes;
    message.bytes = 4 + len;  // real wire bytes for the counters
    if (payload_size > 0)
      message.payload = std::vector<std::uint8_t>(
          buf.begin() + static_cast<std::ptrdiff_t>(offset + kHeaderBytes),
          buf.begin() +
              static_cast<std::ptrdiff_t>(offset + kHeaderBytes +
                                          payload_size));
    if (conn != nullptr) {
      conn->has_from = true;
      conn->last_from = message.from;
    }
    auto& receiver = stats_[message.to];
    receiver.messages_received += 1;
    receiver.bytes_received += message.bytes;
    messages_delivered_metric_.add(1);
    out.push_back(std::move(message));
    offset += 4 + len;
  }
  if (offset > 0)
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

void TcpTransport::deliver(Message message) {
  Handler handler;
  {
    std::scoped_lock lock{mutex_};
    const auto it = handlers_.find(message.to);
    if (it != handlers_.end()) handler = it->second;
  }
  if (handler) {
    handler(message);
  } else {
    (void)inbox_.push(std::move(message));
  }
}

void TcpTransport::io_main() {
  std::vector<pollfd> fds;
  std::vector<Message> delivered;
  std::vector<NodeId> disconnects;
  std::vector<char> scratch(64 * 1024);

  for (;;) {
    fds.clear();
    delivered.clear();
    disconnects.clear();
    Clock::time_point next_deadline = Clock::now() + std::chrono::hours(1);

    {
      std::scoped_lock lock{mutex_};
      if (stop_) return;

      // Chaos resets requested since the last tick.
      for (const NodeId id : pending_resets_) {
        const auto it = peers_.find(id);
        if (it != peers_.end() && it->second.fd >= 0) {
          close_peer_locked(it->second, false);
          it->second.backoff_ms = options_.backoff_initial_ms;
          it->second.backoff_gauge.set(it->second.backoff_ms);
          it->second.retry_at = Clock::now();
        }
      }
      pending_resets_.clear();

      // Release due delayed frames into their peer queues.
      const auto now = Clock::now();
      for (auto it = delayed_.begin(); it != delayed_.end();) {
        if (it->release_at <= now) {
          const auto peer_it = peers_.find(it->peer);
          if (peer_it != peers_.end() &&
              peer_it->second.sendq.size() < options_.max_queued_frames) {
            peer_it->second.sendq.push_back(std::move(it->frame));
            peer_it->second.sendq_gauge.set(
                static_cast<double>(peer_it->second.sendq.size()));
          }
          it = delayed_.erase(it);
        } else {
          next_deadline = std::min(next_deadline, it->release_at);
          ++it;
        }
      }

      // (Re)connect peers whose retry deadline passed.
      for (auto& [id, peer] : peers_) {
        if (peer.fd < 0 && !peer.host.empty()) {
          if (peer.retry_at <= now)
            begin_connect_locked(peer);
          else
            next_deadline = std::min(next_deadline, peer.retry_at);
        }
      }

      fds.push_back({wake_pipe_[0], POLLIN, 0});
      if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
      for (auto& [id, peer] : peers_) {
        if (peer.fd < 0) continue;
        short events = POLLIN;
        if (peer.connecting || !peer.sendq.empty()) events |= POLLOUT;
        fds.push_back({peer.fd, events, 0});
      }
      for (auto& conn : inbound_) fds.push_back({conn.fd, POLLIN, 0});
    }

    const auto now = Clock::now();
    int timeout_ms = 100;
    if (next_deadline > now) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                             next_deadline - now)
                             .count();
      timeout_ms = static_cast<int>(
          std::clamp<long long>(until, 1, timeout_ms));
    } else {
      timeout_ms = 0;
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) return;

    {
      std::scoped_lock lock{mutex_};
      if (stop_) return;

      for (const pollfd& pfd : fds) {
        if (pfd.revents == 0) continue;

        if (pfd.fd == wake_pipe_[0]) {
          while (::read(wake_pipe_[0], scratch.data(), scratch.size()) > 0) {
          }
          continue;
        }

        if (pfd.fd == listen_fd_) {
          for (;;) {
            const int client = ::accept(listen_fd_, nullptr, nullptr);
            if (client < 0) break;
            set_nonblocking(client);
            set_nodelay(client);
            inbound_.push_back({client, {}, false, 0});
          }
          continue;
        }

        // Outgoing peer socket?
        PeerState* peer = nullptr;
        NodeId peer_id = 0;
        for (auto& [id, state] : peers_)
          if (state.fd == pfd.fd) {
            peer = &state;
            peer_id = id;
            break;
          }
        if (peer != nullptr) {
          if (peer->connecting && (pfd.revents & (POLLOUT | POLLERR | POLLHUP))) {
            int err = 0;
            socklen_t len = sizeof(err);
            (void)::getsockopt(peer->fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
              close_peer_locked(*peer, false);
              continue;
            }
            peer->connecting = false;
            peer->was_connected = true;
            peer->backoff_ms = 0.0;
            peer->backoff_gauge.set(0.0);
            ++connects_completed_;
            reconnects_metric_.add(1);
          }
          if (pfd.revents & (POLLERR | POLLHUP)) {
            const bool established = peer->was_connected && !peer->connecting;
            close_peer_locked(*peer, established);
            if (established) disconnects.push_back(peer_id);
            continue;
          }
          if (pfd.revents & POLLIN) {
            bool closed = false;
            for (;;) {
              const ssize_t n =
                  ::recv(peer->fd, scratch.data(), scratch.size(), 0);
              if (n > 0) {
                peer->readbuf.insert(peer->readbuf.end(), scratch.data(),
                                     scratch.data() + n);
              } else if (n == 0) {
                closed = true;
                break;
              } else {
                if (errno != EAGAIN && errno != EWOULDBLOCK) closed = true;
                break;
              }
            }
            if (!parse_frames_locked(peer->readbuf, delivered, nullptr))
              closed = true;
            if (closed) {
              close_peer_locked(*peer, true);
              disconnects.push_back(peer_id);
              continue;
            }
          }
          if ((pfd.revents & POLLOUT) && peer->fd >= 0 && !peer->connecting)
            flush_peer_locked(*peer);
          continue;
        }

        // Inbound connection.
        for (std::size_t i = 0; i < inbound_.size(); ++i) {
          InboundConn& conn = inbound_[i];
          if (conn.fd != pfd.fd) continue;
          bool closed = (pfd.revents & (POLLERR | POLLHUP)) != 0;
          if (pfd.revents & POLLIN) {
            for (;;) {
              const ssize_t n =
                  ::recv(conn.fd, scratch.data(), scratch.size(), 0);
              if (n > 0) {
                conn.readbuf.insert(conn.readbuf.end(), scratch.data(),
                                    scratch.data() + n);
              } else if (n == 0) {
                closed = true;
                break;
              } else {
                if (errno != EAGAIN && errno != EWOULDBLOCK) closed = true;
                break;
              }
            }
          }
          if (!parse_frames_locked(conn.readbuf, delivered, &conn))
            closed = true;
          if (closed) {
            if (conn.has_from) disconnects.push_back(conn.last_from);
            ::close(conn.fd);
            inbound_.erase(inbound_.begin() +
                           static_cast<std::ptrdiff_t>(i));
          }
          break;
        }
      }

      // Opportunistic flush for peers that became connected this tick.
      for (auto& [id, peer] : peers_)
        if (peer.fd >= 0 && !peer.connecting && !peer.sendq.empty())
          flush_peer_locked(peer);
    }

    // Deliveries and disconnect notifications run unlocked: handlers and
    // callbacks may call back into the transport.
    for (auto& message : delivered) deliver(std::move(message));
    if (!disconnects.empty()) {
      std::function<void(NodeId)> callback;
      {
        std::scoped_lock lock{mutex_};
        callback = on_disconnect_;
      }
      if (callback)
        for (const NodeId id : disconnects) callback(id);
    }
  }
}

}  // namespace edr::net
