// TCP socket transport for the live runtime.
//
// The paper's EDR prototype is a real multithreaded TCP program; this
// transport is the repository's socket plumbing for running the same
// replicas as separate OS processes.  It implements the repo's transport
// contract (attach/detach handlers, mailbox-style timed receive, per-node
// and per-type traffic counters, telemetry hooks) over nonblocking sockets
// driven by one poll()-based io thread per process:
//
//   frame    := [u32 len][u32 from][u32 to][u32 type][payload bytes]
//               (len counts everything after itself; payload is opaque to
//               the transport — the live protocol encodes it with
//               net/wire.hpp and decodes with a WireReader capped at
//               max_frame_bytes)
//   connect  := nonblocking, retried with exponential backoff
//               (backoff_initial_ms doubling to backoff_max_ms); frames
//               sent before the connection is up wait in the per-peer
//               bounded send queue and flush on connect
//   receive  := declared lengths above max_frame_bytes (or below the
//               header size) are protocol errors: the connection is closed
//               before any payload buffering happens
//
// Fault injection for the chaos harness rides the send path: a FaultHook
// can drop, duplicate, or delay individual frames, and reset_connection()
// force-closes a peer's socket mid-stream (the io thread reconnects with
// backoff).  None of this is reachable unless a hook is installed.
//
// Live mode is not bit-reproducible (wall-clock interleavings are real);
// determinism of the *algorithms* across transports is preserved at a
// higher layer — see DESIGN.md §11.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc.hpp"
#include "net/network.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::net {

/// Fate of one outgoing frame, decided by the fault-injection hook before
/// the frame reaches a send queue.
struct FaultAction {
  bool drop = false;       ///< discard the frame (simulated loss)
  bool duplicate = false;  ///< enqueue the frame twice
  double delay_ms = 0.0;   ///< hold the frame before queueing
};
using FaultHook = std::function<FaultAction(const Message&)>;

class TcpTransport {
 public:
  struct Options {
    /// Upper bound on a declared frame length; larger declarations close
    /// the connection before any buffering (see net/wire.hpp for why the
    /// check must happen at the declaration, not the allocation).
    std::size_t max_frame_bytes = 16u << 20;
    /// Per-peer send-queue bound; a full queue fails the send (the caller
    /// sees false, queue_overflows() counts it).
    std::size_t max_queued_frames = 4096;
    double backoff_initial_ms = 10.0;
    double backoff_max_ms = 500.0;
  };

  explicit TcpTransport(NodeId self);
  TcpTransport(NodeId self, Options options);
  ~TcpTransport();
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Bind and listen on `port` (0 = ephemeral); returns the bound port.
  /// Must be called before destinations can reach this node; starts the io
  /// thread on first call.
  std::uint16_t listen(std::uint16_t port = 0);

  /// Register `peer`'s address.  The io thread establishes and maintains
  /// the outgoing connection (connect retries and reconnects after drops
  /// use the exponential backoff policy).
  void add_peer(NodeId peer, const std::string& host, std::uint16_t port);
  void remove_peer(NodeId peer);

  /// Queue `message` for delivery.  `message.payload` must hold a
  /// std::vector<std::uint8_t> (or be empty); `message.to == self()` loops
  /// back locally without touching a socket.  Returns false when the
  /// peer's queue is full or the peer is unknown.  Thread-safe.
  bool send(Message message);

  /// Mailbox-style receives for frames addressed to an id with no attached
  /// handler (the live runtime's main loop).  Thread-safe.
  std::optional<Message> receive();
  std::optional<Message> try_receive();
  /// Timed receive; nullopt on timeout or shutdown.
  std::optional<Message> receive_for(double timeout_s);

  /// Handler-style delivery (the SimNetwork contract): frames addressed to
  /// `node` invoke `handler` on the io thread instead of the inbox.
  void attach(NodeId node, Handler handler);
  void detach(NodeId node);
  [[nodiscard]] bool attached(NodeId node) const;

  /// Install the chaos hook (nullptr to clear).  Applies to subsequent
  /// sends; never invoked for loopback frames.
  void set_fault_hook(FaultHook hook);
  /// Invoked on the io thread when an *established* connection to/from
  /// `peer` is lost (outgoing: the registered id; incoming: the last
  /// sender seen on that socket).
  void set_on_disconnect(std::function<void(NodeId)> callback);
  /// Chaos: force-close the socket to `peer` mid-stream.  Queued frames
  /// survive and flush after the backoff reconnect; a partially-written
  /// frame is dropped (the receiver discards its partial buffer on close).
  void reset_connection(NodeId peer);

  /// Traffic counters, same contract as SimNetwork: per-node stats count
  /// real wire bytes (16-byte header + payload); unknown nodes return the
  /// zero struct without growing state.  Thread-safe, by value.
  [[nodiscard]] TrafficStats stats(NodeId node) const;
  [[nodiscard]] TrafficStats total_stats() const;
  [[nodiscard]] std::size_t tracked_nodes() const;
  [[nodiscard]] std::map<int, TypeTraffic> traffic_by_type() const;
  [[nodiscard]] TypeTraffic traffic_in_range(int first_type,
                                             int last_type) const;
  void set_type_name(int type, std::string name);

  /// Wire counters into `telemetry` (construct its registry with
  /// atomic=true — updates happen on the io thread).
  void attach_telemetry(telemetry::Telemetry& telemetry);

  /// Frames refused because a peer queue was full.
  [[nodiscard]] std::uint64_t queue_overflows() const;
  /// Connections closed for declaring an invalid frame length.
  [[nodiscard]] std::uint64_t frame_errors() const;
  /// Outgoing connections successfully established (reconnects included).
  [[nodiscard]] std::uint64_t connects_completed() const;
  /// Frames dropped by the fault hook.
  [[nodiscard]] std::uint64_t frames_dropped_by_fault() const;

  /// Stop the io thread, close every socket, close the inbox (pending
  /// receives drain then return nullopt).  Idempotent; the destructor
  /// calls it.
  void shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct PeerState {
    std::string host;
    std::uint16_t port = 0;
    int fd = -1;
    bool connecting = false;      // nonblocking connect in flight
    double backoff_ms = 0.0;      // next retry delay
    Clock::time_point retry_at{};  // when to attempt (re)connect
    std::deque<std::vector<std::uint8_t>> sendq;
    std::size_t write_offset = 0;  // into sendq.front()
    std::vector<std::uint8_t> readbuf;
    bool was_connected = false;   // disconnect callback gating
    /// Live transport gauges (sink handles until telemetry is attached):
    /// net.sendq_depth{peer="N"} and net.backoff_ms{peer="N"} — a stalled
    /// peer shows as a rising queue behind a nonzero backoff.
    telemetry::Gauge sendq_gauge;
    telemetry::Gauge backoff_gauge;
  };

  struct InboundConn {
    int fd = -1;
    std::vector<std::uint8_t> readbuf;
    bool has_from = false;
    NodeId last_from = 0;
  };

  struct DelayedFrame {
    Clock::time_point release_at;
    NodeId peer;
    std::vector<std::uint8_t> frame;
  };

  void io_main();
  void wake();
  void start_io_thread_locked();
  void begin_connect_locked(PeerState& peer);
  void close_peer_locked(PeerState& peer, bool notify);
  void flush_peer_locked(PeerState& peer);
  bool parse_frames_locked(std::vector<std::uint8_t>& buf,
                           std::vector<Message>& out, InboundConn* conn);
  void deliver(Message message);
  void count_sent_locked(const Message& message, std::size_t frame_bytes);
  void register_peer_metrics_locked(NodeId id, PeerState& peer);

  const NodeId self_;
  const Options options_;

  mutable std::mutex mutex_;
  std::thread io_thread_;
  bool io_running_ = false;
  bool stop_ = false;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::map<NodeId, PeerState> peers_;
  std::vector<InboundConn> inbound_;
  std::vector<DelayedFrame> delayed_;
  std::vector<NodeId> pending_resets_;

  Mailbox<Message> inbox_{4096};
  std::map<NodeId, Handler> handlers_;
  FaultHook fault_hook_;
  std::function<void(NodeId)> on_disconnect_;

  std::map<NodeId, TrafficStats> stats_;
  std::map<int, TypeTraffic> traffic_by_type_;
  std::map<int, std::string> type_names_;
  std::uint64_t queue_overflows_ = 0;
  std::uint64_t frame_errors_ = 0;
  std::uint64_t connects_completed_ = 0;
  std::uint64_t fault_drops_ = 0;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter messages_sent_metric_;
  telemetry::Counter bytes_sent_metric_;
  telemetry::Counter messages_delivered_metric_;
  telemetry::Counter frame_errors_metric_;
  telemetry::Counter reconnects_metric_;
  /// net.bytes_by_type{type="..."} counters, registered lazily per frame
  /// type (labelled with set_type_name names when present).
  std::map<int, telemetry::Counter> bytes_by_type_metrics_;
};

}  // namespace edr::net
