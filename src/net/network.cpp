#include "net/network.hpp"

#include <algorithm>
#include <utility>

namespace edr::net {

void SimNetwork::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void SimNetwork::detach(NodeId node) { handlers_.erase(node); }

bool SimNetwork::attached(NodeId node) const {
  return handlers_.contains(node);
}

void SimNetwork::set_link(NodeId from, NodeId to, LinkParams params) {
  links_[{from, to}] = params;
}

LinkParams SimNetwork::link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

SimTime SimNetwork::nominal_delay(NodeId from, NodeId to,
                                  std::size_t bytes) const {
  const LinkParams params = link(from, to);
  const double transmission =
      params.bandwidth_mbps > 0.0
          ? static_cast<double>(bytes) / (params.bandwidth_mbps * 1e6)
          : 0.0;
  return seconds(params.latency) + transmission;
}

void SimNetwork::send(Message message) {
  auto& sender = stats_[message.from];
  sender.messages_sent += 1;
  sender.bytes_sent += message.bytes;

  const LinkParams params = link(message.from, message.to);
  const double transmission =
      params.bandwidth_mbps > 0.0
          ? static_cast<double>(message.bytes) / (params.bandwidth_mbps * 1e6)
          : 0.0;

  // FIFO serialization on the directed link: transmission starts when the
  // link frees up.
  SimTime& busy_until = link_busy_until_[{message.from, message.to}];
  const SimTime start = std::max(sim_.now(), busy_until);
  busy_until = start + transmission;
  const SimTime delivery = busy_until + seconds(params.latency);

  // Loss happens on the wire: the sender already paid the transmission
  // slot, the receiver just never sees the frame.
  if (params.loss_probability > 0.0 &&
      loss_rng_.uniform() < params.loss_probability) {
    ++lost_;
    return;
  }

  sim_.schedule_at(delivery, [this, msg = std::move(message)]() {
    const auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) return;  // crashed host: drop
    auto& receiver = stats_[msg.to];
    receiver.messages_received += 1;
    receiver.bytes_received += msg.bytes;
    it->second(msg);
  });
}

const TrafficStats& SimNetwork::stats(NodeId node) const {
  return stats_[node];  // default-constructs zeros for unknown nodes
}

TrafficStats SimNetwork::total_stats() const {
  TrafficStats total;
  for (const auto& [node, s] : stats_) {
    total.messages_sent += s.messages_sent;
    total.messages_received += s.messages_received;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
  }
  return total;
}

}  // namespace edr::net
