#include "net/network.hpp"

#include <algorithm>
#include <utility>

namespace edr::net {

void SimNetwork::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void SimNetwork::detach(NodeId node) { handlers_.erase(node); }

bool SimNetwork::attached(NodeId node) const {
  return handlers_.contains(node);
}

void SimNetwork::set_link(NodeId from, NodeId to, LinkParams params) {
  links_[{from, to}] = params;
}

LinkParams SimNetwork::link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

SimTime SimNetwork::nominal_delay(NodeId from, NodeId to,
                                  std::size_t bytes) const {
  const LinkParams params = link(from, to);
  const double transmission =
      params.bandwidth_mbps > 0.0
          ? static_cast<double>(bytes) / (params.bandwidth_mbps * 1e6)
          : 0.0;
  return seconds(params.latency) + transmission;
}

void SimNetwork::send(Message message) {
  auto& sender = stats_[message.from];
  sender.messages_sent += 1;
  sender.bytes_sent += message.bytes;
  auto& by_type = traffic_by_type_[message.type];
  by_type.messages += 1;
  by_type.bytes += message.bytes;
  messages_sent_metric_.add(1);
  bytes_sent_metric_.add(message.bytes);
  if (telemetry_ != nullptr) {
    auto& per_type = type_metrics(message.type);
    per_type[0].add(1);
    per_type[1].add(message.bytes);
  }

  const LinkParams params = link(message.from, message.to);
  const double transmission =
      params.bandwidth_mbps > 0.0
          ? static_cast<double>(message.bytes) / (params.bandwidth_mbps * 1e6)
          : 0.0;

  // FIFO serialization on the directed link: transmission starts when the
  // link frees up.
  SimTime& busy_until = link_busy_until_[{message.from, message.to}];
  const SimTime start = std::max(sim_.now(), busy_until);
  queue_delay_metric_.observe(start - sim_.now());
  busy_until = start + transmission;
  const SimTime delivery = busy_until + seconds(params.latency);

  // Flow arrow tail on the sender's track; the head is recorded at
  // delivery so the viewer draws send -> receive across the two tracks.
  std::uint64_t flow_id = 0;
  if (flow_parent_ != 0 && telemetry_ != nullptr &&
      telemetry_->tracer().enabled()) {
    auto& tracer = telemetry_->tracer();
    flow_id = tracer.new_id();
    const auto name_it = type_names_.find(message.type);
    tracer.flow_begin(flow_id,
                      name_it != type_names_.end() ? name_it->second
                                                   : "message",
                      "net", message.from, flow_parent_);
  }

  // Loss happens on the wire: the sender already paid the transmission
  // slot, the receiver just never sees the frame.
  if (params.loss_probability > 0.0 &&
      loss_rng_.uniform() < params.loss_probability) {
    ++lost_;
    messages_lost_metric_.add(1);
    return;
  }

  sim_.schedule_at(delivery, [this, flow_id, msg = std::move(message)]() {
    const auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) return;  // crashed host: drop
    auto& receiver = stats_[msg.to];
    receiver.messages_received += 1;
    receiver.bytes_received += msg.bytes;
    messages_delivered_metric_.add(1);
    if (flow_id != 0 && telemetry_ != nullptr) {
      const auto name_it = type_names_.find(msg.type);
      telemetry_->tracer().flow_end(
          flow_id,
          name_it != type_names_.end() ? name_it->second : "message", "net",
          msg.to);
    }
    it->second(msg);
  });
}

TypeTraffic SimNetwork::traffic_in_range(int first_type,
                                         int last_type) const {
  TypeTraffic total;
  for (auto it = traffic_by_type_.lower_bound(first_type);
       it != traffic_by_type_.end() && it->first <= last_type; ++it) {
    total.messages += it->second.messages;
    total.bytes += it->second.bytes;
  }
  return total;
}

void SimNetwork::set_type_name(int type, std::string name) {
  type_names_[type] = std::move(name);
}

void SimNetwork::attach_telemetry(telemetry::Telemetry& telemetry) {
  telemetry_ = &telemetry;
  auto& metrics = telemetry.metrics();
  messages_sent_metric_ = metrics.counter("net.messages_sent");
  bytes_sent_metric_ = metrics.counter("net.bytes_sent");
  messages_delivered_metric_ = metrics.counter("net.messages_delivered");
  messages_lost_metric_ = metrics.counter("net.messages_lost");
  queue_delay_metric_ = metrics.histogram(
      "net.link_queue_delay_s", telemetry::MetricsRegistry::latency_bounds_s());
}

std::array<telemetry::Counter, 2>& SimNetwork::type_metrics(int type) {
  const auto it = type_metrics_.find(type);
  if (it != type_metrics_.end()) return it->second;
  const auto name_it = type_names_.find(type);
  const std::string label = name_it != type_names_.end()
                                ? name_it->second
                                : "type" + std::to_string(type);
  auto& metrics = telemetry_->metrics();
  return type_metrics_
      .emplace(type,
               std::array<telemetry::Counter, 2>{
                   metrics.counter("net.sent." + label + ".messages"),
                   metrics.counter("net.sent." + label + ".bytes")})
      .first->second;
}

TrafficStats SimNetwork::stats(NodeId node) const {
  const auto it = stats_.find(node);
  return it == stats_.end() ? TrafficStats{} : it->second;
}

TrafficStats SimNetwork::total_stats() const {
  TrafficStats total;
  for (const auto& [node, s] : stats_) {
    total.messages_sent += s.messages_sent;
    total.messages_received += s.messages_received;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
  }
  return total;
}

}  // namespace edr::net
