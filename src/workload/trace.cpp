#include "workload/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "workload/arrivals.hpp"
#include "workload/zipf.hpp"

namespace edr::workload {

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests)) {
  std::ranges::stable_sort(requests_, [](const Request& a, const Request& b) {
    return a.arrival < b.arrival;
  });
}

Trace Trace::generate(Rng& rng, const AppProfile& app,
                      const TraceOptions& options) {
  DiurnalParams diurnal = options.diurnal;
  if (options.compress_day_into_horizon) diurnal.day_length = options.horizon;
  const DiurnalCurve curve{diurnal};
  const ZipfSampler zipf{app.num_objects, app.zipf_exponent};

  const auto& flash = options.flash;
  const bool has_flash = flash.duration > 0.0 && flash.multiplier > 1.0;
  auto in_flash = [&](SimTime t) {
    return has_flash && t >= flash.start && t < flash.start + flash.duration;
  };

  std::vector<SimTime> times;
  if (!has_flash) {
    times = diurnal_arrivals(rng, curve, app.base_rate_hz, options.horizon);
  } else {
    const double bound = app.base_rate_hz * curve.params().peak_multiplier *
                         flash.multiplier;
    times = nonhomogeneous_arrivals(
        rng,
        [&](SimTime t) {
          return app.base_rate_hz * curve.multiplier(t) *
                 (in_flash(t) ? flash.multiplier : 1.0);
        },
        bound, options.horizon);
  }

  std::vector<Request> requests;
  requests.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    Request request;
    request.id = i;
    request.client = static_cast<std::uint32_t>(
        rng.bounded(options.num_clients));
    request.arrival = times[i];
    request.size_mb = app.sample_size(rng);
    // During a flash crowd most requests chase the viral object.
    request.object_id = in_flash(times[i]) && rng.uniform() < 0.8
                            ? flash.hot_object
                            : zipf.sample(rng);
    requests.push_back(request);
  }
  return Trace{std::move(requests)};
}

Megabytes Trace::total_megabytes() const {
  KahanSum total;
  for (const auto& request : requests_) total.add(request.size_mb);
  return total.value();
}

SimTime Trace::horizon() const {
  return requests_.empty() ? 0.0 : requests_.back().arrival;
}

std::vector<Request> Trace::window(SimTime from, SimTime to) const {
  std::vector<Request> out;
  for (const auto& request : requests_)
    if (request.arrival >= from && request.arrival < to)
      out.push_back(request);
  return out;
}

std::vector<Megabytes> Trace::demand_by_client(std::size_t num_clients) const {
  std::vector<Megabytes> demands(num_clients, 0.0);
  for (const auto& request : requests_) {
    if (request.client >= num_clients)
      throw std::out_of_range("Trace::demand_by_client: client out of range");
    demands[request.client] += request.size_mb;
  }
  return demands;
}

void Trace::save_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.row({"id", "client", "arrival", "size_mb", "object_id"});
  for (const auto& request : requests_) {
    csv.field(static_cast<std::size_t>(request.id))
        .field(static_cast<std::size_t>(request.client))
        .field(request.arrival)
        .field(request.size_mb)
        .field(static_cast<std::size_t>(request.object_id));
    csv.end_row();
  }
}

Trace Trace::load_csv(std::istream& in) {
  std::vector<Request> requests;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string field;
    Request request;
    auto next = [&]() -> std::string {
      if (!std::getline(fields, field, ','))
        throw std::invalid_argument("Trace::load_csv: short row: " + line);
      return field;
    };
    request.id = std::stoull(next());
    request.client = static_cast<std::uint32_t>(std::stoul(next()));
    request.arrival = std::stod(next());
    request.size_mb = std::stod(next());
    request.object_id = std::stoull(next());
    requests.push_back(request);
  }
  return Trace{std::move(requests)};
}

}  // namespace edr::workload
