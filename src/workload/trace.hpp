// Request traces: generation, recording and replay.
//
// A trace is the unit of reproducibility for the evaluation harness: every
// figure's workload is a trace generated from a seed, and the same trace is
// replayed against each scheduling algorithm so cost differences are due to
// the algorithm alone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/apps.hpp"
#include "workload/diurnal.hpp"

namespace edr::workload {

struct Request {
  std::uint64_t id = 0;
  std::uint32_t client = 0;
  SimTime arrival = 0.0;
  Megabytes size_mb = 0.0;
  std::uint64_t object_id = 0;
};

/// A sudden traffic spike layered on top of the diurnal pattern (a video
/// going viral): the arrival rate is multiplied by `multiplier` during
/// [start, start + duration), and the spike's requests concentrate on a
/// single hot object.
struct FlashCrowd {
  SimTime start = 0.0;
  SimTime duration = 0.0;
  double multiplier = 5.0;
  std::uint64_t hot_object = 0;
};

struct TraceOptions {
  std::size_t num_clients = 8;
  SimTime horizon = 100.0;
  /// Compress a full diurnal day into the horizon so benches see the whole
  /// cycle (the paper replays hours of YouTube pattern in minutes).
  bool compress_day_into_horizon = true;
  DiurnalParams diurnal;
  /// Optional flash crowd (no spike when duration == 0).
  FlashCrowd flash;
};

/// A generated or replayed sequence of requests, sorted by arrival time.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Request> requests);

  /// Synthesize a YouTube-patterned trace for `app`.
  static Trace generate(Rng& rng, const AppProfile& app,
                        const TraceOptions& options);

  [[nodiscard]] const std::vector<Request>& requests() const {
    return requests_;
  }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] bool empty() const { return requests_.empty(); }

  [[nodiscard]] Megabytes total_megabytes() const;
  [[nodiscard]] SimTime horizon() const;

  /// Requests with arrival in [from, to), preserving order.
  [[nodiscard]] std::vector<Request> window(SimTime from, SimTime to) const;

  /// Per-client demand totals (MB) over the whole trace.
  [[nodiscard]] std::vector<Megabytes> demand_by_client(
      std::size_t num_clients) const;

  /// CSV round-trip (id,client,arrival,size_mb,object_id header included).
  void save_csv(std::ostream& out) const;
  static Trace load_csv(std::istream& in);

 private:
  std::vector<Request> requests_;
};

}  // namespace edr::workload
