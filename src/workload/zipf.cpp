#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edr::workload {

ZipfSampler::ZipfSampler(std::size_t num_objects, double exponent)
    : exponent_(exponent) {
  if (num_objects == 0)
    throw std::invalid_argument("ZipfSampler: need at least one object");
  if (exponent < 0.0)
    throw std::invalid_argument("ZipfSampler: negative exponent");
  cdf_.resize(num_objects);
  double total = 0.0;
  for (std::size_t k = 0; k < num_objects; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::ranges::lower_bound(cdf_, u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cdf_.size())
    throw std::out_of_range("ZipfSampler::probability: rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace edr::workload
