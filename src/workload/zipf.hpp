// Zipf-distributed object popularity.
//
// Gill et al.'s YouTube edge measurement (the paper's workload reference
// [34]) found video popularity to be Zipf-like; requests in our synthetic
// YouTube workload pick objects from this sampler so a small set of hot
// objects dominates traffic, as in the original trace.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace edr::workload {

class ZipfSampler {
 public:
  /// `num_objects` ranks with P(rank k) ∝ 1/k^exponent.  Exponent 0 gives
  /// the uniform distribution; YouTube measurements sit near 0.8-1.0.
  ZipfSampler(std::size_t num_objects, double exponent);

  /// Draw an object id in [0, num_objects).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Probability of rank k (0-based).
  [[nodiscard]] double probability(std::size_t rank) const;

  [[nodiscard]] std::size_t num_objects() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace edr::workload
