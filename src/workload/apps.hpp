// Application profiles for the paper's two data-intensive workloads.
//
// §IV-A: "We set the size per request for the video streaming [to]
// approximately 100 MBytes and for the distributed file service it is
// approximately 10 MBytes."
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace edr::workload {

struct AppProfile {
  std::string name;
  /// Mean request size.
  Megabytes mean_request_mb = 10.0;
  /// Relative jitter ("approximately"): sizes are drawn uniform in
  /// mean·(1 ± jitter).
  double size_jitter = 0.1;
  /// Mean request rate used by benches (requests/s at the diurnal mean).
  double base_rate_hz = 2.0;
  /// Zipf popularity exponent of the object catalog.
  double zipf_exponent = 0.9;
  /// Catalog size.
  std::size_t num_objects = 1000;

  /// Draw one request size.
  [[nodiscard]] Megabytes sample_size(Rng& rng) const {
    return mean_request_mb * rng.uniform(1.0 - size_jitter, 1.0 + size_jitter);
  }
};

/// Video streaming: ~100 MB per request (a transcoded clip segment set).
[[nodiscard]] AppProfile video_streaming();

/// Distributed file service: ~10 MB per request (a file chunk).
[[nodiscard]] AppProfile distributed_file_service();

}  // namespace edr::workload
