#include "workload/apps.hpp"

namespace edr::workload {

AppProfile video_streaming() {
  AppProfile app;
  app.name = "video-streaming";
  app.mean_request_mb = 100.0;
  app.size_jitter = 0.1;
  app.base_rate_hz = 2.0;
  app.zipf_exponent = 0.9;
  app.num_objects = 2000;
  return app;
}

AppProfile distributed_file_service() {
  AppProfile app;
  app.name = "distributed-file-service";
  app.mean_request_mb = 10.0;
  app.size_jitter = 0.1;
  app.base_rate_hz = 20.0;
  app.zipf_exponent = 0.8;
  app.num_objects = 10000;
  return app;
}

}  // namespace edr::workload
