// Diurnal request-rate modulation.
//
// The YouTube edge traces the paper replays show a strong time-of-day
// cycle: a deep overnight trough and a broad evening peak.  We model the
// cycle as a smooth periodic curve that multiplies a base arrival rate.
#pragma once

#include "common/units.hpp"

namespace edr::workload {

struct DiurnalParams {
  /// Peak-hour multiplier relative to the daily mean.
  double peak_multiplier = 1.8;
  /// Trough multiplier (> 0).
  double trough_multiplier = 0.3;
  /// Hour of day of the peak (0-24; YouTube edge peaks in the evening).
  double peak_hour = 20.0;
  /// Seconds per simulated day (kept configurable so benches can compress
  /// a day into seconds).
  double day_length = 86400.0;
};

class DiurnalCurve {
 public:
  explicit DiurnalCurve(DiurnalParams params = {});

  /// Rate multiplier at `time`; smooth, periodic, bounded by
  /// [trough_multiplier, peak_multiplier].
  [[nodiscard]] double multiplier(SimTime time) const;

  [[nodiscard]] const DiurnalParams& params() const { return params_; }

 private:
  DiurnalParams params_;
};

}  // namespace edr::workload
