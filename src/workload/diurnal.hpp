// Diurnal request-rate modulation.
//
// The YouTube edge traces the paper replays show a strong time-of-day
// cycle: a deep overnight trough and a broad evening peak.  We model the
// cycle as a smooth periodic curve that multiplies a base arrival rate.
#pragma once

#include "common/units.hpp"

namespace edr::workload {

struct DiurnalParams {
  /// Raw multiplier at the peak hour.  NOTE: peak/trough bound the raw
  /// cosine, whose daily mean is (peak + trough) / 2 — NOT 1.  Set
  /// `normalize_to_unit_mean` when the multipliers should be read
  /// relative to the daily mean (so a base rate stays the daily mean
  /// regardless of curve shape).
  double peak_multiplier = 1.8;
  /// Raw multiplier at the trough (> 0).
  double trough_multiplier = 0.3;
  /// Hour of day of the peak (0-24; YouTube edge peaks in the evening).
  double peak_hour = 20.0;
  /// Seconds per simulated day (kept configurable so benches can compress
  /// a day into seconds).
  double day_length = 86400.0;
  /// When set, the curve is rescaled by its raw daily mean so that
  /// multiplier() integrates to exactly 1 over a day and total offered
  /// load no longer drifts with curve shape.  Off by default: the
  /// committed traces (and their golden digests) use the raw curve.
  bool normalize_to_unit_mean = false;
};

class DiurnalCurve {
 public:
  explicit DiurnalCurve(DiurnalParams params = {});

  /// Rate multiplier at `time`; smooth and periodic.  Raw curve: bounded
  /// by [trough_multiplier, peak_multiplier] with daily mean
  /// (peak + trough) / 2.  Normalized: the same shape divided by that
  /// mean, so the daily mean is exactly 1.
  [[nodiscard]] double multiplier(SimTime time) const;

  /// Exact daily mean of multiplier(): (peak + trough) / 2 raw, 1 when
  /// normalized (the cosine bump integrates to its midpoint).
  [[nodiscard]] double mean_multiplier() const;

  /// Exact maximum of multiplier() — the tight thinning bound for
  /// Lewis-Shedler sampling.
  [[nodiscard]] double max_multiplier() const;

  [[nodiscard]] const DiurnalParams& params() const { return params_; }

 private:
  DiurnalParams params_;
  double scale_ = 1.0;  ///< 1 / raw mean when normalizing, else 1
};

}  // namespace edr::workload
