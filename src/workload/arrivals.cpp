#include "workload/arrivals.hpp"

#include <stdexcept>

namespace edr::workload {

std::vector<SimTime> poisson_arrivals(Rng& rng, double rate, SimTime horizon) {
  std::vector<SimTime> arrivals;
  if (rate <= 0.0 || horizon <= 0.0) return arrivals;
  SimTime t = rng.exponential(rate);
  while (t < horizon) {
    arrivals.push_back(t);
    t += rng.exponential(rate);
  }
  return arrivals;
}

std::vector<SimTime> nonhomogeneous_arrivals(
    Rng& rng, const std::function<double(SimTime)>& rate_fn,
    double rate_bound, SimTime horizon) {
  if (rate_bound <= 0.0)
    throw std::invalid_argument("nonhomogeneous_arrivals: bound must be > 0");
  std::vector<SimTime> arrivals;
  SimTime t = 0.0;
  for (;;) {
    t += rng.exponential(rate_bound);
    if (t >= horizon) break;
    const double rate = rate_fn(t);
    if (rate > rate_bound * (1.0 + 1e-9))
      throw std::invalid_argument(
          "nonhomogeneous_arrivals: rate exceeds bound");
    if (rng.uniform() * rate_bound < rate) arrivals.push_back(t);
  }
  return arrivals;
}

std::vector<SimTime> diurnal_arrivals(Rng& rng, const DiurnalCurve& curve,
                                      double base_rate, SimTime horizon) {
  const double bound = base_rate * curve.max_multiplier();
  return nonhomogeneous_arrivals(
      rng, [&](SimTime t) { return base_rate * curve.multiplier(t); }, bound,
      horizon);
}

}  // namespace edr::workload
