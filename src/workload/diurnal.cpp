#include "workload/diurnal.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace edr::workload {

DiurnalCurve::DiurnalCurve(DiurnalParams params) : params_(params) {
  if (params_.trough_multiplier <= 0.0)
    throw std::invalid_argument("DiurnalCurve: trough must be positive");
  if (params_.peak_multiplier < params_.trough_multiplier)
    throw std::invalid_argument("DiurnalCurve: peak below trough");
  if (params_.day_length <= 0.0)
    throw std::invalid_argument("DiurnalCurve: non-positive day length");
}

double DiurnalCurve::multiplier(SimTime time) const {
  const double day_fraction =
      std::fmod(time, params_.day_length) / params_.day_length;
  const double peak_fraction = params_.peak_hour / 24.0;
  // Cosine bump centered on the peak hour.
  const double phase =
      2.0 * std::numbers::pi * (day_fraction - peak_fraction);
  const double normalized = 0.5 * (1.0 + std::cos(phase));  // 1 at peak
  return params_.trough_multiplier +
         (params_.peak_multiplier - params_.trough_multiplier) * normalized;
}

}  // namespace edr::workload
