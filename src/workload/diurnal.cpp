#include "workload/diurnal.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace edr::workload {

DiurnalCurve::DiurnalCurve(DiurnalParams params) : params_(params) {
  if (params_.trough_multiplier <= 0.0)
    throw std::invalid_argument("DiurnalCurve: trough must be positive");
  if (params_.peak_multiplier < params_.trough_multiplier)
    throw std::invalid_argument("DiurnalCurve: peak below trough");
  if (params_.day_length <= 0.0)
    throw std::invalid_argument("DiurnalCurve: non-positive day length");
  if (params_.normalize_to_unit_mean) {
    const double raw_mean =
        0.5 * (params_.peak_multiplier + params_.trough_multiplier);
    scale_ = 1.0 / raw_mean;
  }
}

double DiurnalCurve::multiplier(SimTime time) const {
  const double day_fraction =
      std::fmod(time, params_.day_length) / params_.day_length;
  const double peak_fraction = params_.peak_hour / 24.0;
  // Cosine bump centered on the peak hour.
  const double phase =
      2.0 * std::numbers::pi * (day_fraction - peak_fraction);
  const double normalized = 0.5 * (1.0 + std::cos(phase));  // 1 at peak
  const double raw =
      params_.trough_multiplier +
      (params_.peak_multiplier - params_.trough_multiplier) * normalized;
  return raw * scale_;
}

double DiurnalCurve::mean_multiplier() const {
  // The cosine bump averages to 1/2 over a period, so the raw mean is
  // the midpoint of trough and peak.
  return 0.5 * (params_.peak_multiplier + params_.trough_multiplier) * scale_;
}

double DiurnalCurve::max_multiplier() const {
  return params_.peak_multiplier * scale_;
}

}  // namespace edr::workload
