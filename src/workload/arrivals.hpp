// Request arrival processes.
//
// Arrivals follow a non-homogeneous Poisson process: a base rate modulated
// by the diurnal curve, sampled by Lewis-Shedler thinning (exact for any
// bounded rate function).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/diurnal.hpp"

namespace edr::workload {

/// Generate arrival times on [0, horizon) for a constant-rate Poisson
/// process (`rate` arrivals per second).
[[nodiscard]] std::vector<SimTime> poisson_arrivals(Rng& rng, double rate,
                                                    SimTime horizon);

/// Generate arrival times on [0, horizon) for a non-homogeneous Poisson
/// process with instantaneous rate `rate_fn(t)`; `rate_bound` must dominate
/// rate_fn everywhere on the horizon (thinning rejects above it).
[[nodiscard]] std::vector<SimTime> nonhomogeneous_arrivals(
    Rng& rng, const std::function<double(SimTime)>& rate_fn,
    double rate_bound, SimTime horizon);

/// Convenience: diurnal-modulated arrivals at `base_rate` mean rate.
[[nodiscard]] std::vector<SimTime> diurnal_arrivals(Rng& rng,
                                                    const DiurnalCurve& curve,
                                                    double base_rate,
                                                    SimTime horizon);

}  // namespace edr::workload
