#include "runtime/replica.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/algorithm_registry.hpp"
#include "core/epoch_problem.hpp"

namespace edr::runtime {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LiveReplica::LiveReplica(MessageBus& bus, net::NodeId coordinator,
                         ReplicaOptions options)
    : bus_(bus), coordinator_(coordinator), options_(options) {}

ReplicaExit LiveReplica::run() {
  LiveHello hello;
  hello.node = bus_.self();
  hello.port = options_.listen_port;
  if (observer_ != nullptr)
    hello.trace = observer_->flow_out("hello", "live_ctl");
  bus_.post(encode_hello(bus_.self(), coordinator_, hello));

  std::optional<LiveStart> queued_start;
  double idle_since = now_seconds();
  while (true) {
    if (queued_start) {
      // A start frame handed back by a preempted epoch runs immediately.
      const LiveStart start = *queued_start;
      queued_start.reset();
      if (config_ && start.alive.size() > bus_.self() &&
          start.alive[bus_.self()]) {
        rebuild_for_generation(start.generation);
        EpochOutcome outcome = run_epoch(start);
        if (outcome.bus_closed) return ReplicaExit::kBusClosed;
        flush_telemetry();
        if (outcome.shutdown) return ReplicaExit::kShutdown;
        if (outcome.next_start) queued_start = outcome.next_start;
      }
      idle_since = now_seconds();
      continue;
    }
    const auto received = bus_.receive_for(0.25);
    if (!received) {
      if (now_seconds() - idle_since > options_.idle_timeout_s)
        return ReplicaExit::kIdleTimeout;
      continue;
    }
    idle_since = now_seconds();
    switch (received->type) {
      case kConfig: {
        config_ = decode_config(*received, bus_.max_frame_bytes());
        if (!config_->power_per_replica.empty() &&
            config_->power_per_replica.size() != config_->num_replicas())
          throw std::invalid_argument(
              "live: need one power model per replica (or none)");
        system_config_ = config_->to_system_config();
        shared_model_ = power::PowerModel{config_->power};
        models_.clear();
        for (const auto& params : config_->power_per_replica)
          models_.emplace_back(params);
        if (observer_ != nullptr) observer_->set_power_params(config_->power);
        algorithm_.reset();
        retry_backlog_.clear();
        // pending_rounds_ survives deliberately: over TCP a fast peer's
        // first round frame can arrive on its own connection before the
        // coordinator's config frame is drained from the shared inbox.
        bucket_requests();
        break;
      }
      case kPeers:
        apply_peers(decode_peers(*received, bus_.max_frame_bytes()));
        break;
      case kStart:
        queued_start = decode_start(*received, bus_.max_frame_bytes());
        if (observer_ != nullptr)
          observer_->flow_in(queued_start->trace, "start", "live_start");
        break;
      case kTimeProbe:
        reply_time_probe(*received);
        break;
      case kRound: {
        // A fast peer's first round frame can overtake our own kStart (the
        // coordinator posts starts one receiver at a time).  Buffer it for
        // the barrier instead of dropping it, or the peer gets blamed for
        // a stall it did not cause.
        const LiveRound peer = decode_round(*received, bus_.max_frame_bytes());
        if (observer_ != nullptr)
          observer_->flow_in(peer.trace, "round", "live_round");
        pending_rounds_[{peer.generation, peer.epoch, peer.round}]
                       [received->from] = peer.digest;
        break;
      }
      case kShutdown:
        flush_telemetry();
        return ReplicaExit::kShutdown;
      default:
        break;  // peer-down notices and strays: not ours to act on
    }
  }
}

void LiveReplica::apply_peers(const LivePeers& peers) {
  if (observer_ != nullptr)
    observer_->flow_in(peers.trace, "peers", "live_ctl");
  generation_ = std::max(generation_, peers.generation);
  scheduled_ = peers.alive;
  for (const auto& entry : peers.peers) {
    if (entry.node == bus_.self() || entry.port == 0) continue;
    bus_.connect_peer(entry.node, "127.0.0.1", entry.port);
  }
}

void LiveReplica::rebuild_for_generation(std::uint64_t generation) {
  if (algorithm_ && algorithm_generation_ == generation) return;
  // A membership change cold-starts *every* replica: survivors carry
  // warm-start state and retry backlogs a rejoiner cannot reconstruct, so
  // determinism requires discarding both on a generation bump.
  algorithm_ = core::make_algorithm(system_config_);
  algorithm_generation_ = generation;
  retry_backlog_.clear();
}

void LiveReplica::bucket_requests() {
  epoch_buckets_.assign(config_->epochs, {});
  for (const auto& request : config_->requests) {
    if (request.client >= config_->num_clients)
      throw std::invalid_argument("live: request client out of range");
    const auto epoch =
        static_cast<std::size_t>(request.arrival / config_->epoch_length);
    if (epoch >= epoch_buckets_.size()) continue;  // beyond the schedule
    epoch_buckets_[epoch].push_back(
        {request.id, request.client, request.arrival, request.size_mb});
  }
}

LiveReplica::EpochOutcome LiveReplica::run_epoch(const LiveStart& start) {
  EpochOutcome outcome;
  const auto tid = static_cast<std::uint32_t>(bus_.self());
  const telemetry::ScopedSpan epoch_span(tracer(), "epoch", "live_epoch", tid);
  const auto num_replicas = config_->num_replicas();
  const auto num_clients = std::size_t{config_->num_clients};
  const std::uint64_t mismatches_before = digest_mismatches_;

  // ---- batch assembly: identical arithmetic to EpochPipeline::start_solve
  current_requests_ = epoch_buckets_[start.epoch];
  for (auto& request : retry_backlog_) current_requests_.push_back(request);
  retry_backlog_.clear();

  active_replicas_.clear();
  replica_alive_.assign(num_replicas, false);
  for (std::size_t n = 0; n < num_replicas; ++n)
    if (n < start.alive.size() && start.alive[n]) {
      active_replicas_.push_back(n);
      replica_alive_[n] = true;
    }

  std::vector<double> demand_by_client(num_clients, 0.0);
  for (const auto& request : current_requests_)
    demand_by_client[request.client] += request.size_mb;

  active_clients_.clear();
  std::vector<Megabytes> demands;
  std::vector<core::PendingRequest> kept;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    if (demand_by_client[c] <= 0.0) continue;
    bool reachable = false;
    for (const std::size_t n : active_replicas_)
      if (config_->latency(c, n) <= config_->max_latency) reachable = true;
    if (!reachable) continue;
    active_clients_.push_back(c);
    demands.push_back(demand_by_client[c]);
  }
  for (const auto& request : current_requests_)
    for (const std::uint32_t c : active_clients_)
      if (request.client == c) {
        kept.push_back(request);
        break;
      }
  current_requests_ = std::move(kept);

  LiveEpochDone done_frame;
  done_frame.epoch = start.epoch;
  done_frame.generation = start.generation;

  if (active_clients_.empty()) {
    // Nothing to schedule this epoch; agree on the empty allocation.
    done_frame.digest = digest_doubles(nullptr, 0);
    if (observer_ != nullptr)
      done_frame.trace =
          observer_->flow_out("epoch_done", "live_ctl", epoch_span.id());
    bus_.post(encode_epoch_done(bus_.self(), coordinator_, done_frame));
    ++epochs_completed_;
    outcome.completed = true;
    return outcome;
  }

  const core::EpochProblemSpec spec{
      .cfg = &system_config_,
      .window = config_->epoch_length * config_->transfer_window_fraction,
      .now = start.now,
      .active_clients = active_clients_,
      .active_replicas = active_replicas_,
      .models = models_,
      .shared_model = &shared_model_};
  problem_.emplace(core::make_epoch_problem(spec, std::move(demands)));

  const double shed_fraction =
      core::shed_to_feasible(problem_, config_->max_latency);
  if (shed_fraction > 0.0) {
    for (auto& request : current_requests_) {
      const double shed_mb = request.size_mb * shed_fraction;
      request.size_mb -= shed_mb;
      if (config_->retry_shed && request.retries < config_->max_retries) {
        core::PendingRequest remainder = request;
        remainder.size_mb = shed_mb;
        remainder.retries += 1;
        retry_backlog_.push_back(remainder);
      }
    }
  }

  core::EpochContext ctx;
  ctx.problem = &*problem_;
  ctx.active_replicas = &active_replicas_;
  ctx.active_clients = &active_clients_;
  ctx.requests = &current_requests_;
  ctx.replica_alive = &replica_alive_;
  ctx.num_replicas = num_replicas;
  ctx.num_clients = num_clients;
  ctx.num_solvers = num_replicas;
  algorithm_->begin_epoch(ctx);

  // ---- lockstep rounds
  Matrix allocation;
  std::uint32_t round = 0;
  std::vector<telemetry::RoundSample> samples;
  if (algorithm_->iterative()) {
    while (true) {
      const telemetry::ScopedSpan round_span(tracer(), "round", "live_round",
                                             tid, epoch_span.id());
      bool done = false;
      {
        const telemetry::ScopedSpan solve_span(tracer(), "solve",
                                               "live_round", tid,
                                               round_span.id());
        done = algorithm_->step_round(ctx);
        ++round;
        samples.clear();
        algorithm_->observe(ctx, samples);
      }
      for (auto& sample : samples) {
        sample.epoch = start.epoch;
        sample.time = start.now;
      }
      const std::uint64_t digest = digest_samples(samples);
      LiveRound frame;
      frame.epoch = start.epoch;
      frame.generation = start.generation;
      frame.round = round;
      frame.digest = digest;
      for (const auto& sample : samples) {
        if (sample.replica != bus_.self()) continue;
        frame.load = sample.load;
        const auto sample_trace =
            observer_ != nullptr
                ? observer_->flow_out("sample", "live_sample", round_span.id())
                : telemetry::TraceContext{};
        bus_.post(
            encode_sample(bus_.self(), coordinator_, sample, sample_trace));
      }
      for (const std::size_t n : active_replicas_) {
        if (n == bus_.self()) continue;
        if (observer_ != nullptr)
          frame.trace =
              observer_->flow_out("round", "live_round", round_span.id());
        bus_.post(
            encode_round(bus_.self(), static_cast<net::NodeId>(n), frame));
      }
      bool barrier_ok = false;
      {
        const telemetry::ScopedSpan exchange_span(
            tracer(), "exchange", "live_round", tid, round_span.id());
        barrier_ok = await_round_barrier(start, round, digest, outcome);
      }
      if (!barrier_ok) {
        algorithm_->abort_epoch();
        return outcome;
      }
      if (done) break;
    }
    allocation = algorithm_->extract_allocation(ctx);
  } else {
    auto oneshot = algorithm_->solve_oneshot(ctx);
    if (!oneshot) {
      // The backend declined (e.g. its chosen coordinator replica is
      // gone); stall until the coordinator re-generations the epoch.
      send_stall(start, round, {});
      algorithm_->abort_epoch();
      const double stall_started = now_seconds();
      while (true) {
        const auto received = bus_.receive_for(0.25);
        if (!received) {
          if (now_seconds() - stall_started > options_.idle_timeout_s) {
            outcome.bus_closed = true;
            return outcome;
          }
          continue;
        }
        if (received->type == kStart) {
          outcome.next_start =
              decode_start(*received, bus_.max_frame_bytes());
          if (observer_ != nullptr)
            observer_->flow_in(outcome.next_start->trace, "start",
                               "live_start");
          return outcome;
        }
        if (received->type == kPeers) {
          apply_peers(decode_peers(*received, bus_.max_frame_bytes()));
        } else if (received->type == kTimeProbe) {
          reply_time_probe(*received);
        } else if (received->type == kShutdown) {
          outcome.shutdown = true;
          return outcome;
        }
      }
    }
    allocation = std::move(*oneshot);
    round = 1;
    samples.clear();
    algorithm_->observe(ctx, samples);
    for (auto& sample : samples) {
      sample.epoch = start.epoch;
      sample.time = start.now;
      if (sample.replica != bus_.self()) continue;
      const auto sample_trace =
          observer_ != nullptr
              ? observer_->flow_out("sample", "live_sample", epoch_span.id())
              : telemetry::TraceContext{};
      bus_.post(
          encode_sample(bus_.self(), coordinator_, sample, sample_trace));
    }
  }

  // ---- epoch completion: own column + full-matrix digest cross-check
  done_frame.rounds = round;
  done_frame.digest = digest_matrix(allocation);
  done_frame.objective = problem_->total_cost(allocation);
  done_frame.digest_mismatches =
      static_cast<std::uint32_t>(digest_mismatches_ - mismatches_before);
  std::size_t own_col = active_replicas_.size();
  for (std::size_t col = 0; col < active_replicas_.size(); ++col)
    if (active_replicas_[col] == bus_.self()) own_col = col;
  if (observer_ != nullptr)
    done_frame.trace =
        observer_->flow_out("epoch_done", "live_ctl", epoch_span.id());
  if (own_col < active_replicas_.size()) {
    if (system_config_.representation !=
        core::SolverRepresentation::kDense) {
      // Compact column: ship only the nonzero rows as (index, value)
      // pairs; the coordinator zero-fills, so assembly is exact.
      done_frame.kind = LiveEpochDone::kSparseColumn;
      done_frame.num_rows =
          static_cast<std::uint32_t>(active_clients_.size());
      for (std::size_t row = 0; row < active_clients_.size(); ++row) {
        const double value = allocation(row, own_col);
        if (value == 0.0) continue;
        done_frame.indices.push_back(static_cast<std::uint32_t>(row));
        done_frame.column.push_back(value);
      }
    } else {
      done_frame.column.resize(active_clients_.size());
      for (std::size_t row = 0; row < active_clients_.size(); ++row)
        done_frame.column[row] = allocation(row, own_col);
    }
  }
  bus_.post(encode_epoch_done(bus_.self(), coordinator_, done_frame));
  ++epochs_completed_;
#ifdef EDR_LIVE_TRACE
  std::fprintf(stderr, "[replica %u] done epoch=%u gen=%llu rounds=%u\n",
               bus_.self(), start.epoch,
               (unsigned long long)start.generation, round);
#endif

  // Prune barrier buffers for rounds at or before the epoch just finished.
  const auto limit =
      std::make_tuple(start.generation, start.epoch + 1, std::uint32_t{0});
  pending_rounds_.erase(pending_rounds_.begin(),
                        pending_rounds_.lower_bound(limit));
  outcome.completed = true;
  return outcome;
}

bool LiveReplica::await_round_barrier(const LiveStart& start,
                                      std::uint32_t round,
                                      std::uint64_t own_digest,
                                      EpochOutcome& outcome) {
  std::vector<net::NodeId> waiting;
  for (const std::size_t n : active_replicas_)
    if (n != bus_.self()) waiting.push_back(static_cast<net::NodeId>(n));

  auto absorb = [&](net::NodeId from, std::uint64_t digest) {
    const auto it = std::find(waiting.begin(), waiting.end(), from);
    if (it == waiting.end()) return;
    waiting.erase(it);
    if (digest != own_digest) ++digest_mismatches_;
  };

  // Frames that raced ahead of our barrier wait.
  const auto key = std::make_tuple(start.generation, start.epoch, round);
  if (const auto buffered = pending_rounds_.find(key);
      buffered != pending_rounds_.end()) {
    for (const auto& [from, digest] : buffered->second) absorb(from, digest);
    pending_rounds_.erase(buffered);
  }

  const double wait_started = now_seconds();
  bool stalled = false;
  while (!waiting.empty()) {
    const auto received = bus_.receive_for(0.05);
    if (!received) {
      const double waited = now_seconds() - wait_started;
      if (!stalled && waited > options_.barrier_timeout_s) {
        send_stall(start, round, waiting);
        stalled = true;
      }
      if (waited > options_.idle_timeout_s) {
        outcome.bus_closed = true;
        return false;
      }
      continue;
    }
    switch (received->type) {
      case kRound: {
        const LiveRound peer =
            decode_round(*received, bus_.max_frame_bytes());
        if (observer_ != nullptr)
          observer_->flow_in(peer.trace, "round", "live_round");
        if (peer.generation < start.generation) break;  // stale
        if (peer.generation == start.generation &&
            peer.epoch == start.epoch && peer.round == round) {
          absorb(received->from, peer.digest);
        } else {
          pending_rounds_[{peer.generation, peer.epoch, peer.round}]
                         [received->from] = peer.digest;
        }
        break;
      }
      case kStart: {
        const LiveStart next =
            decode_start(*received, bus_.max_frame_bytes());
        if (observer_ != nullptr)
          observer_->flow_in(next.trace, "start", "live_start");
        if (next.generation > start.generation || next.epoch != start.epoch) {
          outcome.next_start = next;
          return false;
        }
        break;  // duplicate of the running epoch
      }
      case kPeers:
        apply_peers(decode_peers(*received, bus_.max_frame_bytes()));
        break;
      case kTimeProbe:
        reply_time_probe(*received);
        break;
      case kShutdown:
        outcome.shutdown = true;
        return false;
      default:
        break;  // kPeerDown and strays: membership is the coordinator's call
    }
  }
  return true;
}

void LiveReplica::send_stall(const LiveStart& start, std::uint32_t round,
                             const std::vector<net::NodeId>& waiting) {
  LiveStall stall;
  stall.epoch = start.epoch;
  stall.generation = start.generation;
  stall.round = round;
  stall.missing.assign(config_->num_replicas(), 0);
  for (const net::NodeId n : waiting)
    if (n < stall.missing.size()) stall.missing[n] = 1;
  ++stalls_reported_;
  if (observer_ != nullptr) {
    observer_->tracer().instant("stall", "live_alert",
                                static_cast<std::uint32_t>(bus_.self()));
    stall.trace = observer_->flow_out("stall", "live_ctl");
  }
#ifdef EDR_LIVE_TRACE
  std::fprintf(stderr, "[replica %u] stall epoch=%u gen=%llu round=%u\n",
               bus_.self(), start.epoch,
               (unsigned long long)start.generation, round);
#endif
  bus_.post(encode_stall(bus_.self(), coordinator_, stall));
}

void LiveReplica::reply_time_probe(const net::Message& msg) {
  const LiveTimeProbe probe = decode_time_probe(msg, bus_.max_frame_bytes());
  LiveTimeReply reply;
  reply.probe = probe.probe;
  reply.probe_ns = probe.sent_ns;
  reply.replica_ns = RuntimeObserver::now_ns();
  bus_.post(encode_time_reply(bus_.self(), coordinator_, reply));
}

void LiveReplica::flush_telemetry() {
  if (observer_ == nullptr) return;
  observer_->refresh_resource_gauges();
  if (!observer_->tracing()) return;
  bus_.post(encode_telemetry(bus_.self(), coordinator_, observer_->drain()));
}

}  // namespace edr::runtime
