#include "runtime/local_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace edr::runtime {

namespace {

/// Decorates a MessageBus with a kill switch: a killed node's sends fail
/// and it never hears a peer again, exactly what a SIGKILLed process
/// presents to the world.  The replica's own thread is handed a synthetic
/// shutdown so it exits promptly (the dead process is gone immediately;
/// only its *peers* need to discover that the hard way).
class KillableBus final : public MessageBus {
 public:
  KillableBus(std::unique_ptr<MessageBus> inner,
              std::shared_ptr<std::atomic<bool>> killed)
      : inner_(std::move(inner)), killed_(std::move(killed)) {}

  [[nodiscard]] net::NodeId self() const override { return inner_->self(); }

  bool post(net::Message message) override {
    if (killed_->load(std::memory_order_relaxed)) return false;
    return inner_->post(std::move(message));
  }

  std::optional<net::Message> receive_for(double timeout_s) override {
    if (killed_->load(std::memory_order_relaxed)) {
      // The wire already went silent (posts fail, the transport is shut);
      // hand the replica a synthetic shutdown so its thread exits now
      // instead of burning the idle timeout — a SIGKILLed process is gone
      // immediately too.
      net::Message shutdown;
      shutdown.from = inner_->self();
      shutdown.to = inner_->self();
      shutdown.type = kShutdown;
      return shutdown;
    }
    return inner_->receive_for(timeout_s);
  }

  void connect_peer(net::NodeId peer, const std::string& host,
                    std::uint16_t port) override {
    if (!killed_->load(std::memory_order_relaxed))
      inner_->connect_peer(peer, host, port);
  }

  [[nodiscard]] std::size_t max_frame_bytes() const override {
    return inner_->max_frame_bytes();
  }

 private:
  std::unique_ptr<MessageBus> inner_;
  std::shared_ptr<std::atomic<bool>> killed_;
};

}  // namespace

LocalCluster::LocalCluster(LiveConfig config, LocalClusterOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  const auto n = config_.num_replicas();
  if (n == 0) throw std::invalid_argument("LocalCluster: no replicas");
  coordinator_id_ = static_cast<net::NodeId>(n);
  nodes_.resize(n);

  if (options_.transport == LiveTransport::kInproc) {
    inproc_ = std::make_unique<net::InprocTransport>(n + 1);
    coordinator_bus_ = std::make_unique<InprocBus>(*inproc_, coordinator_id_,
                                                   options_.max_frame_bytes);
  } else {
    net::TcpTransport::Options tcp_options;
    tcp_options.max_frame_bytes = options_.max_frame_bytes;
    coordinator_tcp_ = std::make_unique<net::TcpTransport>(coordinator_id_,
                                                           tcp_options);
    coordinator_port_ = coordinator_tcp_->listen(0);
    coordinator_bus_ = std::make_unique<TcpBus>(*coordinator_tcp_);
  }
}

LocalCluster::~LocalCluster() {
  for (auto& node : nodes_) {
    if (node.killed) node.killed->store(true);
    if (node.tcp) node.tcp->shutdown();
  }
  if (inproc_) inproc_->close_all();
  if (coordinator_tcp_) coordinator_tcp_->shutdown();
  for (auto& node : nodes_)
    if (node.thread.joinable()) node.thread.join();
  for (auto& node : graveyard_)
    if (node.thread.joinable()) node.thread.join();
}

void LocalCluster::start_replica(net::NodeId id) {
  Node& node = nodes_[id];
  node.killed = std::make_shared<std::atomic<bool>>(false);
  ReplicaOptions replica_options = options_.replica;

  std::unique_ptr<MessageBus> inner;
  if (options_.transport == LiveTransport::kInproc) {
    inner = std::make_unique<InprocBus>(*inproc_, id,
                                        options_.max_frame_bytes);
  } else {
    net::TcpTransport::Options tcp_options;
    tcp_options.max_frame_bytes = options_.max_frame_bytes;
    node.tcp = std::make_unique<net::TcpTransport>(id, tcp_options);
    replica_options.listen_port = node.tcp->listen(0);
    node.tcp->add_peer(coordinator_id_, "127.0.0.1", coordinator_port_);
    inner = std::make_unique<TcpBus>(*node.tcp);
  }
  node.bus = std::make_unique<KillableBus>(std::move(inner), node.killed);
  node.replica = std::make_unique<LiveReplica>(*node.bus, coordinator_id_,
                                               replica_options);
  if (observing()) {
    ObserverOptions observer_options = options_.observer;
    observer_options.metrics_port = 0;  // ephemeral: N endpoints, one host
    node.observer = std::make_unique<RuntimeObserver>(
        id, "replica " + std::to_string(id), observer_options);
    node.replica->set_observer(node.observer.get());
  }
  node.thread = std::thread{[replica = node.replica.get()] {
    try {
      replica->run();
    } catch (const std::exception&) {
      // A replica dying on a protocol error looks like a crash to the
      // rest of the cluster, which is exactly what the runtime handles.
    }
  }};
}

LiveRunResult LocalCluster::run() {
  if (ran_) throw std::logic_error("LocalCluster::run: already ran");
  ran_ = true;

  for (std::size_t n = 0; n < nodes_.size(); ++n)
    start_replica(static_cast<net::NodeId>(n));

  CoordinatorOptions coordinator_options = options_.coordinator;
  auto user_hook = coordinator_options.on_epoch_start;
  coordinator_options.on_epoch_start = [this,
                                        user_hook](std::uint32_t epoch) {
    apply_chaos(epoch);
    if (user_hook) user_hook(epoch);
  };

  LiveCoordinator coordinator{*coordinator_bus_, config_,
                              coordinator_options};
  if (observing()) {
    coordinator_observer_ = std::make_unique<RuntimeObserver>(
        coordinator_id_, "coordinator", options_.observer);
    coordinator.set_observer(coordinator_observer_.get());
  }
  coordinator_ = &coordinator;
  LiveRunResult result = coordinator.run();
  if (options_.observer.tracing)
    merged_trace_json_ = coordinator.merged_trace_json();
  coordinator_ = nullptr;

  // Orderly teardown: the coordinator already said kShutdown; closing the
  // transports unblocks anything still waiting.
  for (auto& node : nodes_) {
    if (node.killed) node.killed->store(true);
    if (node.tcp) node.tcp->shutdown();
  }
  if (inproc_) inproc_->close_all();
  for (auto& node : nodes_)
    if (node.thread.joinable()) node.thread.join();
  for (auto& node : graveyard_)
    if (node.thread.joinable()) node.thread.join();
  graveyard_.clear();
  return result;
}

void LocalCluster::kill_replica(net::NodeId replica) {
  if (replica >= nodes_.size()) return;
  Node& node = nodes_[replica];
  if (node.killed) node.killed->store(true);
  if (options_.transport == LiveTransport::kInproc) {
    if (inproc_) inproc_->close(replica);  // queued frames die with it
  } else if (node.tcp) {
    node.tcp->shutdown();  // peers learn from the dead sockets
  }
}

void LocalCluster::restart_replica(net::NodeId replica) {
  if (replica >= nodes_.size()) return;
  Node& node = nodes_[replica];
  if (node.killed && !node.killed->load()) kill_replica(replica);
  // Move the dead node's remains aside (the thread exits on the synthetic
  // shutdown; its transport must stay alive until joined) and boot a
  // fresh replica in its slot.
  graveyard_.push_back(std::move(node));
  node = Node{};
  if (options_.transport == LiveTransport::kInproc && inproc_)
    inproc_->reopen(replica);
  start_replica(replica);
}

void LocalCluster::reset_connection(net::NodeId replica, net::NodeId peer) {
  if (replica < nodes_.size() && nodes_[replica].tcp)
    nodes_[replica].tcp->reset_connection(peer);
}

void LocalCluster::set_fault_hook(net::NodeId replica, net::FaultHook hook) {
  if (replica < nodes_.size() && nodes_[replica].tcp)
    nodes_[replica].tcp->set_fault_hook(std::move(hook));
}

void LocalCluster::apply_chaos(std::uint32_t epoch) {
  for (const auto& action : options_.chaos.actions) {
    if (action.epoch != epoch) continue;
    // The fault lands in the same timeline the coordinator writes its
    // membership transitions into — the post-mortem's causal spine.
    if (coordinator_ != nullptr)
      coordinator_->log_event("fault", to_string(action.kind),
                              action.replica);
    switch (action.kind) {
      case ChaosKind::kKill:
        kill_replica(action.replica);
        break;
      case ChaosKind::kRestart:
        restart_replica(action.replica);
        break;
      case ChaosKind::kResetConnection:
        reset_connection(action.replica, action.peer);
        break;
      case ChaosKind::kClearFaults:
        set_fault_hook(action.replica, nullptr);
        break;
      case ChaosKind::kDropFrames:
      case ChaosKind::kDelayFrames:
      case ChaosKind::kDuplicateFrames: {
        const auto period = static_cast<std::uint64_t>(std::max<long long>(
            1, std::llround(1.0 / std::max(action.probability, 1e-9))));
        auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
        const ChaosAction fault = action;
        set_fault_hook(
            action.replica,
            [fault, period, counter](const net::Message& msg) {
              net::FaultAction result;
              if (fault.message_type >= 0 && msg.type != fault.message_type)
                return result;
              if (counter->fetch_add(1, std::memory_order_relaxed) % period !=
                  period - 1)
                return result;
              switch (fault.kind) {
                case ChaosKind::kDropFrames:
                  result.drop = true;
                  break;
                case ChaosKind::kDelayFrames:
                  result.delay_ms = fault.delay_ms;
                  break;
                case ChaosKind::kDuplicateFrames:
                  result.duplicate = true;
                  break;
                default:
                  break;
              }
              return result;
            });
        break;
      }
    }
  }
}

}  // namespace edr::runtime
