#include "runtime/chaos.hpp"

#include <algorithm>

namespace edr::runtime {

const char* to_string(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kKill: return "kill";
    case ChaosKind::kRestart: return "restart";
    case ChaosKind::kResetConnection: return "reset_connection";
    case ChaosKind::kDropFrames: return "drop_frames";
    case ChaosKind::kDelayFrames: return "delay_frames";
    case ChaosKind::kDuplicateFrames: return "duplicate_frames";
    case ChaosKind::kClearFaults: return "clear_faults";
  }
  return "unknown";
}

std::vector<std::uint32_t> ChaosPlan::fault_epochs() const {
  std::vector<std::uint32_t> epochs;
  for (const auto& action : actions) epochs.push_back(action.epoch);
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs;
}

ChaosScore score_chaos_run(const LiveRunResult& result, const ChaosPlan& plan,
                           std::uint32_t total_epochs) {
  ChaosScore score;
  score.epochs_completed = result.epochs.size();
  score.generations = result.generations;

  score.reconverged = result.completed && !result.epochs.empty() &&
                      result.epochs.back().digests_agree;

  if (plan.empty()) {
    // No faults: a clean run "passes" when it converged alert-free.
    score.alerts_fired = result.alerts.empty();
    score.alerts_cleared = result.alerts.empty();
    return score;
  }

  const auto epochs = plan.fault_epochs();
  const std::uint32_t first_fault = epochs.front();
  // Epoch-latency SLO breaches are observed when the epoch *finishes*, so
  // a fault in epoch E can legitimately alert in E or E+1.
  const std::uint32_t last_fault =
      std::min(epochs.back() + 1, total_epochs == 0 ? 0 : total_epochs - 1);
  for (const auto& alert : result.alerts) {
    if (alert.epoch >= first_fault && alert.epoch <= last_fault)
      ++score.alerts_during_faults;
    else if (alert.epoch > last_fault)
      ++score.alerts_in_tail;
  }
  score.alerts_fired = score.alerts_during_faults > 0;
  score.alerts_cleared =
      score.alerts_in_tail == 0 && last_fault + 1 < total_epochs;
  return score;
}

}  // namespace edr::runtime
