#include "runtime/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

namespace edr::runtime {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LiveCoordinator::LiveCoordinator(MessageBus& bus, LiveConfig config,
                                 CoordinatorOptions options)
    : bus_(bus),
      config_(std::move(config)),
      options_(std::move(options)),
      monitor_(options_.monitor) {
  if (config_.num_replicas() == 0)
    throw std::invalid_argument("live: no replicas configured");
  const auto n = config_.num_replicas();
  alive_.assign(n, 0);
  ever_helloed_.assign(n, 0);
  peer_table_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    peer_table_[i].node = static_cast<net::NodeId>(i);
}

std::size_t LiveCoordinator::alive_count() const {
  std::size_t count = 0;
  for (const auto a : alive_) count += a;
  return count;
}

void LiveCoordinator::mark_dead(net::NodeId replica) {
  if (replica >= alive_.size() || !alive_[replica]) return;
#ifdef EDR_LIVE_TRACE
  std::fprintf(stderr, "[coord] mark_dead replica=%u gen=%llu\n", replica,
               (unsigned long long)generation_);
#endif
  log_event("mark_dead", {}, replica);
  if (observer_ != nullptr)
    observer_->tracer().instant("mark_dead", "live_membership",
                                static_cast<std::uint32_t>(bus_.self()));
  alive_[replica] = 0;
  if (std::find(result_.failed_replicas.begin(), result_.failed_replicas.end(),
                replica) == result_.failed_replicas.end())
    result_.failed_replicas.push_back(replica);
}

void LiveCoordinator::handle_hello(const net::Message& msg) {
  const LiveHello hello = decode_hello(msg, bus_.max_frame_bytes());
  if (hello.node >= config_.num_replicas()) return;  // not one of ours
  if (observer_ != nullptr)
    observer_->flow_in(hello.trace, "hello", "live_ctl");
  peer_table_[hello.node].port = hello.port;
  if (hello.port != 0)
    bus_.connect_peer(hello.node, "127.0.0.1", hello.port);
  ever_helloed_[hello.node] = 1;
  if (!alive_[hello.node]) {
    // Mid-run (re)join: configure it now, schedule it from the next epoch
    // boundary (joining mid-epoch would break the survivors' lockstep).
    log_event("hello", "rejoin", hello.node);
    const auto config_trace =
        observer_ != nullptr ? observer_->flow_out("config", "live_ctl")
                             : telemetry::TraceContext{};
    bus_.post(encode_config(bus_.self(), hello.node, config_, config_trace));
    LivePeers peers;
    peers.generation = generation_;
    peers.peers = peer_table_;
    peers.alive = alive_;
    if (observer_ != nullptr)
      peers.trace = observer_->flow_out("peers", "live_ctl");
    bus_.post(encode_peers(bus_.self(), hello.node, peers));
    if (std::find(pending_joins_.begin(), pending_joins_.end(), hello.node) ==
        pending_joins_.end())
      pending_joins_.push_back(hello.node);
  }
}

void LiveCoordinator::broadcast_peers() {
  LivePeers peers;
  peers.generation = generation_;
  peers.peers = peer_table_;
  peers.alive = alive_;
  for (std::size_t n = 0; n < ever_helloed_.size(); ++n) {
    if (!ever_helloed_[n]) continue;
    if (observer_ != nullptr)
      peers.trace = observer_->flow_out("peers", "live_ctl");
    bus_.post(encode_peers(bus_.self(), static_cast<net::NodeId>(n), peers));
  }
}

void LiveCoordinator::broadcast_start(std::uint32_t epoch) {
  LiveStart start;
  start.epoch = epoch;
  start.generation = generation_;
  start.now = static_cast<double>(epoch) * config_.epoch_length;
  start.alive = alive_;
  for (std::size_t n = 0; n < ever_helloed_.size(); ++n) {
    if (!ever_helloed_[n]) continue;
    if (observer_ != nullptr)
      start.trace = observer_->flow_out("start", "live_start");
    bus_.post(encode_start(bus_.self(), static_cast<net::NodeId>(n), start));
  }
}

void LiveCoordinator::log_event(std::string_view kind, std::string detail,
                                std::int64_t replica) {
  RuntimeEvent event;
  event.t_s = run_started_s_ > 0.0 ? now_seconds() - run_started_s_ : 0.0;
  event.kind = std::string(kind);
  event.epoch = current_epoch_;
  event.replica = replica;
  event.generation = generation_;
  event.detail = std::move(detail);
  result_.timeline.push_back(std::move(event));
}

void LiveCoordinator::send_time_probes() {
  if (observer_ == nullptr || !observer_->tracing()) return;
  for (std::size_t n = 0; n < ever_helloed_.size(); ++n) {
    if (!ever_helloed_[n] || !alive_[n]) continue;
    // A small burst per replica: the estimator keeps the lowest-RTT
    // exchange, so one quiet round trip is enough for a good offset.
    for (int burst = 0; burst < 3; ++burst) {
      LiveTimeProbe probe;
      probe.probe = next_probe_++;
      probe.sent_ns = RuntimeObserver::now_ns();
      bus_.post(
          encode_time_probe(bus_.self(), static_cast<net::NodeId>(n), probe));
    }
  }
}

void LiveCoordinator::handle_telemetry(const net::Message& msg) {
  auto batch = decode_telemetry(msg, bus_.max_frame_bytes());
  merger_.set_process(batch.node, "replica " + std::to_string(batch.node));
  merger_.add_dropped(batch.node, batch.dropped);
  merger_.add_events(batch.node, std::move(batch.events));
}

void LiveCoordinator::handle_time_reply(const net::Message& msg) {
  const auto reply = decode_time_reply(msg, bus_.max_frame_bytes());
  estimator_.observe(msg.from, reply.probe_ns, reply.replica_ns,
                     RuntimeObserver::now_ns());
}

void LiveCoordinator::drain_telemetry(double window_s) {
  const double deadline = now_seconds() + window_s;
  while (now_seconds() < deadline) {
    const auto msg = bus_.receive_for(0.05);
    if (!msg) continue;
    if (msg->type == kTelemetry) handle_telemetry(*msg);
    else if (msg->type == kTimeReply) handle_time_reply(*msg);
  }
}

std::string LiveCoordinator::merged_trace_json() {
  if (observer_ != nullptr) {
    auto batch = observer_->drain();
    merger_.set_process(batch.node, "coordinator");
    merger_.add_dropped(batch.node, batch.dropped);
    merger_.add_events(batch.node, std::move(batch.events));
  }
  for (std::size_t n = 0; n < ever_helloed_.size(); ++n) {
    if (!ever_helloed_[n]) continue;
    merger_.set_process(static_cast<std::uint32_t>(n),
                        "replica " + std::to_string(n));
    merger_.set_offset_ns(static_cast<std::uint32_t>(n),
                          estimator_.offset_ns(static_cast<std::uint32_t>(n)));
  }
  return merger_.to_chrome_json();
}

LiveRunResult LiveCoordinator::run() {
  run_started_s_ = now_seconds();
  log_event("run_start",
            "replicas=" + std::to_string(config_.num_replicas()) +
                " epochs=" + std::to_string(config_.epochs));
  monitor_.set_alert_callback([this](const telemetry::Alert& alert) {
    log_event("alert",
              std::string(telemetry::to_string(alert.kind)) + " " +
                  telemetry::to_string(alert.severity),
              alert.replica == telemetry::kNoReplica
                  ? std::int64_t{-1}
                  : static_cast<std::int64_t>(alert.replica));
    if (observer_ != nullptr)
      observer_->tracer().instant(telemetry::to_string(alert.kind),
                                  "live_alert",
                                  static_cast<std::uint32_t>(bus_.self()));
  });

  // ---- assembly: wait for the initial hellos
  const double hello_deadline = now_seconds() + options_.hello_timeout_s;
  while (alive_count() < config_.num_replicas() &&
         now_seconds() < hello_deadline) {
    const auto msg = bus_.receive_for(0.25);
    if (!msg) continue;
    if (msg->type == kHello) {
      const LiveHello hello = decode_hello(*msg, bus_.max_frame_bytes());
      if (hello.node >= config_.num_replicas()) continue;
      if (observer_ != nullptr)
        observer_->flow_in(hello.trace, "hello", "live_ctl");
      peer_table_[hello.node].port = hello.port;
      if (hello.port != 0)
        bus_.connect_peer(hello.node, "127.0.0.1", hello.port);
      ever_helloed_[hello.node] = 1;
      alive_[hello.node] = 1;
      log_event("hello", {}, hello.node);
    }
  }
  if (alive_count() == 0)
    throw std::runtime_error("live: no replica said hello");

  for (std::size_t n = 0; n < ever_helloed_.size(); ++n) {
    if (!ever_helloed_[n]) continue;
    const auto config_trace =
        observer_ != nullptr ? observer_->flow_out("config", "live_ctl")
                             : telemetry::TraceContext{};
    bus_.post(encode_config(bus_.self(), static_cast<net::NodeId>(n),
                            config_, config_trace));
  }
  broadcast_peers();
  send_time_probes();

  // ---- epoch schedule
  bool prev_epoch_alerted = false;
  for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    current_epoch_ = epoch;
    if (options_.on_epoch_start) options_.on_epoch_start(epoch);
    // Rejoiners enter at epoch boundaries, under a fresh generation.
    if (!pending_joins_.empty()) {
      bool changed = false;
      for (const net::NodeId n : pending_joins_)
        if (!alive_[n]) {
          alive_[n] = 1;
          changed = true;
        }
      pending_joins_.clear();
      if (changed) {
        ++generation_;
        log_event("generation", "rejoin");
        broadcast_peers();
      }
    }
    if (alive_count() == 0) break;

    std::size_t attempts = 0;
    // Wall-clock latency spans every attempt: time lost to a stalled
    // attempt is real time the epoch's clients waited, and it is what
    // trips the monitor's response SLO during chaos.
    const double epoch_started = now_seconds();
    while (true) {
      const double logical_now =
          static_cast<double>(epoch) * config_.epoch_length;
      recorder_.begin_epoch(epoch, logical_now);
      monitor_.begin_epoch(epoch);
      log_event("epoch_start",
                attempts == 0 ? std::string{}
                              : "attempt " + std::to_string(attempts + 1));
      send_time_probes();
      broadcast_start(epoch);
      auto outcome = await_epoch(epoch, epoch_started);
      if (outcome) {
        monitor_.observe_response(outcome->wall_ms,
                                  logical_now + config_.epoch_length, epoch);
        auto summary = recorder_.end_epoch(logical_now + config_.epoch_length);
        monitor_.end_epoch(summary);
        if (prev_epoch_alerted && summary.alerts == 0)
          log_event("alert_cleared");
        prev_epoch_alerted = summary.alerts > 0;
        log_event("epoch_done",
                  "rounds=" + std::to_string(outcome->rounds) +
                      " wall_ms=" + std::to_string(outcome->wall_ms));
        result_.convergence.push_back(summary);
        result_.total_rounds += outcome->rounds;
        result_.epochs.push_back(std::move(*outcome));
        break;
      }
      if (++attempts > options_.max_epoch_retries || alive_count() == 0) {
        // Aborting the run: still tell every replica to exit, or they sit
        // out their idle timeout waiting for a start that never comes.
        log_event("run_abort");
        for (std::size_t n = 0; n < ever_helloed_.size(); ++n)
          if (ever_helloed_[n])
            bus_.post(
                encode_shutdown(bus_.self(), static_cast<net::NodeId>(n)));
        if (observer_ != nullptr && observer_->tracing())
          drain_telemetry(0.75);
        result_.alerts = monitor_.alerts();
        result_.generations = generation_;
        return result_;  // completed stays false
      }
    }
  }

  log_event("shutdown");
  for (std::size_t n = 0; n < ever_helloed_.size(); ++n)
    if (ever_helloed_[n])
      bus_.post(encode_shutdown(bus_.self(), static_cast<net::NodeId>(n)));
  // The final epoch's flush and the shutdown flush are still in flight;
  // soak them up so the merged trace covers the whole run.
  if (observer_ != nullptr && observer_->tracing()) drain_telemetry(0.75);

  result_.alerts = monitor_.alerts();
  result_.generations = generation_;
  result_.completed = result_.epochs.size() == config_.epochs;
  log_event("run_end");
  return result_;
}

std::optional<LiveEpochResult> LiveCoordinator::await_epoch(
    std::uint32_t epoch, double started_at) {
  std::map<net::NodeId, LiveEpochDone> done;
  std::vector<net::NodeId> expected;
  for (std::size_t n = 0; n < alive_.size(); ++n)
    if (alive_[n]) expected.push_back(static_cast<net::NodeId>(n));

  const std::uint64_t epoch_generation = generation_;
  // Watchdog clock restarts per attempt; started_at (the first attempt's
  // start) is only the base for the reported wall latency.
  double last_progress = now_seconds();
  auto regenerate = [&] {
    ++generation_;
    log_event("generation");
    broadcast_peers();
    return std::nullopt;
  };

  while (true) {
    if (done.size() == expected.size()) {
      // Assemble: columns in replica order, digests cross-checked.
      LiveEpochResult result;
      result.epoch = epoch;
      result.generation = epoch_generation;
      result.participants = expected;
      result.wall_ms = (now_seconds() - started_at) * 1e3;
      std::size_t rows = 0;
      for (const auto& [node, frame] : done) {
        rows = std::max(rows, frame.kind == LiveEpochDone::kSparseColumn
                                  ? std::size_t{frame.num_rows}
                                  : frame.column.size());
        result.rounds = std::max(result.rounds, frame.rounds);
      }
      result.allocation = Matrix(rows, expected.size(), 0.0);
      const auto& first = done.begin()->second;
      result.digest = first.digest;
      result.objective = first.objective;
      for (std::size_t col = 0; col < expected.size(); ++col) {
        const auto& frame = done.at(expected[col]);
        if (frame.digest != first.digest || frame.digest_mismatches != 0)
          result.digests_agree = false;
        if (frame.kind == LiveEpochDone::kSparseColumn) {
          for (std::size_t i = 0; i < frame.indices.size(); ++i)
            result.allocation(frame.indices[i], col) = frame.column[i];
        } else {
          for (std::size_t row = 0; row < frame.column.size(); ++row)
            result.allocation(row, col) = frame.column[row];
        }
      }
      return result;
    }

    const auto msg = bus_.receive_for(0.1);
    if (!msg) {
      if (now_seconds() - last_progress > options_.epoch_timeout_s) {
        // Watchdog: everyone still missing is presumed dead.
        log_event("watchdog_timeout");
        for (const net::NodeId n : expected)
          if (!done.count(n)) mark_dead(n);
        return regenerate();
      }
      continue;
    }
    last_progress = now_seconds();
    switch (msg->type) {
      case kSample: {
        telemetry::TraceContext trace;
        const auto sample =
            decode_sample(*msg, bus_.max_frame_bytes(), &trace);
        if (observer_ != nullptr)
          observer_->flow_in(trace, "sample", "live_sample");
        recorder_.record(sample);
        monitor_.observe(sample);
        break;
      }
      case kEpochDone: {
        auto frame = decode_epoch_done(*msg, bus_.max_frame_bytes());
        if (observer_ != nullptr)
          observer_->flow_in(frame.trace, "epoch_done", "live_ctl");
        if (frame.epoch == epoch && frame.generation == epoch_generation)
          done[msg->from] = std::move(frame);
        break;
      }
      case kTelemetry:
        handle_telemetry(*msg);
        break;
      case kTimeReply:
        handle_time_reply(*msg);
        break;
      case kStall: {
        const auto stall = decode_stall(*msg, bus_.max_frame_bytes());
        if (observer_ != nullptr)
          observer_->flow_in(stall.trace, "stall", "live_ctl");
        log_event("stall", "round " + std::to_string(stall.round),
                  msg->from);
        if (stall.generation != epoch_generation) break;  // already handled
        bool changed = false;
        for (std::size_t n = 0; n < stall.missing.size(); ++n)
          if (stall.missing[n] && n < alive_.size() && alive_[n]) {
            mark_dead(static_cast<net::NodeId>(n));
            changed = true;
          }
        if (!changed && alive_.size() > msg->from && alive_[msg->from]) {
          // A stall naming nobody (one-shot backend declined): restart the
          // epoch under a new generation with the same membership.
          return regenerate();
        }
        if (changed) return regenerate();
        break;
      }
      case kPeerDown: {
        if (msg->from < alive_.size() && alive_[msg->from]) {
          log_event("peer_down", {}, msg->from);
          mark_dead(msg->from);
          return regenerate();
        }
        break;
      }
      case kHello:
        handle_hello(*msg);
        break;
      default:
        break;
    }
  }
}

}  // namespace edr::runtime
