#include "runtime/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

namespace edr::runtime {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LiveCoordinator::LiveCoordinator(MessageBus& bus, LiveConfig config,
                                 CoordinatorOptions options)
    : bus_(bus),
      config_(std::move(config)),
      options_(std::move(options)),
      monitor_(options_.monitor) {
  if (config_.num_replicas() == 0)
    throw std::invalid_argument("live: no replicas configured");
  const auto n = config_.num_replicas();
  alive_.assign(n, 0);
  ever_helloed_.assign(n, 0);
  peer_table_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    peer_table_[i].node = static_cast<net::NodeId>(i);
}

std::size_t LiveCoordinator::alive_count() const {
  std::size_t count = 0;
  for (const auto a : alive_) count += a;
  return count;
}

void LiveCoordinator::mark_dead(net::NodeId replica) {
  if (replica >= alive_.size() || !alive_[replica]) return;
#ifdef EDR_LIVE_TRACE
  std::fprintf(stderr, "[coord] mark_dead replica=%u gen=%llu\n", replica,
               (unsigned long long)generation_);
#endif
  alive_[replica] = 0;
  if (std::find(result_.failed_replicas.begin(), result_.failed_replicas.end(),
                replica) == result_.failed_replicas.end())
    result_.failed_replicas.push_back(replica);
}

void LiveCoordinator::handle_hello(const net::Message& msg) {
  const LiveHello hello = decode_hello(msg, bus_.max_frame_bytes());
  if (hello.node >= config_.num_replicas()) return;  // not one of ours
  peer_table_[hello.node].port = hello.port;
  if (hello.port != 0)
    bus_.connect_peer(hello.node, "127.0.0.1", hello.port);
  ever_helloed_[hello.node] = 1;
  if (!alive_[hello.node]) {
    // Mid-run (re)join: configure it now, schedule it from the next epoch
    // boundary (joining mid-epoch would break the survivors' lockstep).
    bus_.post(encode_config(bus_.self(), hello.node, config_));
    LivePeers peers{generation_, peer_table_, alive_};
    bus_.post(encode_peers(bus_.self(), hello.node, peers));
    if (std::find(pending_joins_.begin(), pending_joins_.end(), hello.node) ==
        pending_joins_.end())
      pending_joins_.push_back(hello.node);
  }
}

void LiveCoordinator::broadcast_peers() {
  LivePeers peers{generation_, peer_table_, alive_};
  for (std::size_t n = 0; n < ever_helloed_.size(); ++n)
    if (ever_helloed_[n])
      bus_.post(
          encode_peers(bus_.self(), static_cast<net::NodeId>(n), peers));
}

void LiveCoordinator::broadcast_start(std::uint32_t epoch) {
  LiveStart start;
  start.epoch = epoch;
  start.generation = generation_;
  start.now = static_cast<double>(epoch) * config_.epoch_length;
  start.alive = alive_;
  for (std::size_t n = 0; n < ever_helloed_.size(); ++n)
    if (ever_helloed_[n])
      bus_.post(
          encode_start(bus_.self(), static_cast<net::NodeId>(n), start));
}

LiveRunResult LiveCoordinator::run() {
  // ---- assembly: wait for the initial hellos
  const double hello_deadline = now_seconds() + options_.hello_timeout_s;
  while (alive_count() < config_.num_replicas() &&
         now_seconds() < hello_deadline) {
    const auto msg = bus_.receive_for(0.25);
    if (!msg) continue;
    if (msg->type == kHello) {
      const LiveHello hello = decode_hello(*msg, bus_.max_frame_bytes());
      if (hello.node >= config_.num_replicas()) continue;
      peer_table_[hello.node].port = hello.port;
      if (hello.port != 0)
        bus_.connect_peer(hello.node, "127.0.0.1", hello.port);
      ever_helloed_[hello.node] = 1;
      alive_[hello.node] = 1;
    }
  }
  if (alive_count() == 0)
    throw std::runtime_error("live: no replica said hello");

  for (std::size_t n = 0; n < ever_helloed_.size(); ++n)
    if (ever_helloed_[n])
      bus_.post(
          encode_config(bus_.self(), static_cast<net::NodeId>(n), config_));
  broadcast_peers();

  // ---- epoch schedule
  for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    if (options_.on_epoch_start) options_.on_epoch_start(epoch);
    // Rejoiners enter at epoch boundaries, under a fresh generation.
    if (!pending_joins_.empty()) {
      bool changed = false;
      for (const net::NodeId n : pending_joins_)
        if (!alive_[n]) {
          alive_[n] = 1;
          changed = true;
        }
      pending_joins_.clear();
      if (changed) {
        ++generation_;
        broadcast_peers();
      }
    }
    if (alive_count() == 0) break;

    std::size_t attempts = 0;
    // Wall-clock latency spans every attempt: time lost to a stalled
    // attempt is real time the epoch's clients waited, and it is what
    // trips the monitor's response SLO during chaos.
    const double epoch_started = now_seconds();
    while (true) {
      const double logical_now =
          static_cast<double>(epoch) * config_.epoch_length;
      recorder_.begin_epoch(epoch, logical_now);
      monitor_.begin_epoch(epoch);
      broadcast_start(epoch);
      auto outcome = await_epoch(epoch, epoch_started);
      if (outcome) {
        monitor_.observe_response(outcome->wall_ms,
                                  logical_now + config_.epoch_length, epoch);
        auto summary = recorder_.end_epoch(logical_now + config_.epoch_length);
        monitor_.end_epoch(summary);
        result_.convergence.push_back(summary);
        result_.total_rounds += outcome->rounds;
        result_.epochs.push_back(std::move(*outcome));
        break;
      }
      if (++attempts > options_.max_epoch_retries || alive_count() == 0) {
        // Aborting the run: still tell every replica to exit, or they sit
        // out their idle timeout waiting for a start that never comes.
        for (std::size_t n = 0; n < ever_helloed_.size(); ++n)
          if (ever_helloed_[n])
            bus_.post(
                encode_shutdown(bus_.self(), static_cast<net::NodeId>(n)));
        result_.alerts = monitor_.alerts();
        result_.generations = generation_;
        return result_;  // completed stays false
      }
    }
  }

  for (std::size_t n = 0; n < ever_helloed_.size(); ++n)
    if (ever_helloed_[n])
      bus_.post(encode_shutdown(bus_.self(), static_cast<net::NodeId>(n)));

  result_.alerts = monitor_.alerts();
  result_.generations = generation_;
  result_.completed = result_.epochs.size() == config_.epochs;
  return result_;
}

std::optional<LiveEpochResult> LiveCoordinator::await_epoch(
    std::uint32_t epoch, double started_at) {
  std::map<net::NodeId, LiveEpochDone> done;
  std::vector<net::NodeId> expected;
  for (std::size_t n = 0; n < alive_.size(); ++n)
    if (alive_[n]) expected.push_back(static_cast<net::NodeId>(n));

  const std::uint64_t epoch_generation = generation_;
  // Watchdog clock restarts per attempt; started_at (the first attempt's
  // start) is only the base for the reported wall latency.
  double last_progress = now_seconds();
  auto regenerate = [&] {
    ++generation_;
    broadcast_peers();
    return std::nullopt;
  };

  while (true) {
    if (done.size() == expected.size()) {
      // Assemble: columns in replica order, digests cross-checked.
      LiveEpochResult result;
      result.epoch = epoch;
      result.generation = epoch_generation;
      result.participants = expected;
      result.wall_ms = (now_seconds() - started_at) * 1e3;
      std::size_t rows = 0;
      for (const auto& [node, frame] : done) {
        rows = std::max(rows, frame.kind == LiveEpochDone::kSparseColumn
                                  ? std::size_t{frame.num_rows}
                                  : frame.column.size());
        result.rounds = std::max(result.rounds, frame.rounds);
      }
      result.allocation = Matrix(rows, expected.size(), 0.0);
      const auto& first = done.begin()->second;
      result.digest = first.digest;
      result.objective = first.objective;
      for (std::size_t col = 0; col < expected.size(); ++col) {
        const auto& frame = done.at(expected[col]);
        if (frame.digest != first.digest || frame.digest_mismatches != 0)
          result.digests_agree = false;
        if (frame.kind == LiveEpochDone::kSparseColumn) {
          for (std::size_t i = 0; i < frame.indices.size(); ++i)
            result.allocation(frame.indices[i], col) = frame.column[i];
        } else {
          for (std::size_t row = 0; row < frame.column.size(); ++row)
            result.allocation(row, col) = frame.column[row];
        }
      }
      return result;
    }

    const auto msg = bus_.receive_for(0.1);
    if (!msg) {
      if (now_seconds() - last_progress > options_.epoch_timeout_s) {
        // Watchdog: everyone still missing is presumed dead.
        for (const net::NodeId n : expected)
          if (!done.count(n)) mark_dead(n);
        return regenerate();
      }
      continue;
    }
    last_progress = now_seconds();
    switch (msg->type) {
      case kSample: {
        const auto sample = decode_sample(*msg, bus_.max_frame_bytes());
        recorder_.record(sample);
        monitor_.observe(sample);
        break;
      }
      case kEpochDone: {
        auto frame = decode_epoch_done(*msg, bus_.max_frame_bytes());
        if (frame.epoch == epoch && frame.generation == epoch_generation)
          done[msg->from] = std::move(frame);
        break;
      }
      case kStall: {
        const auto stall = decode_stall(*msg, bus_.max_frame_bytes());
        if (stall.generation != epoch_generation) break;  // already handled
        bool changed = false;
        for (std::size_t n = 0; n < stall.missing.size(); ++n)
          if (stall.missing[n] && n < alive_.size() && alive_[n]) {
            mark_dead(static_cast<net::NodeId>(n));
            changed = true;
          }
        if (!changed && alive_.size() > msg->from && alive_[msg->from]) {
          // A stall naming nobody (one-shot backend declined): restart the
          // epoch under a new generation with the same membership.
          return regenerate();
        }
        if (changed) return regenerate();
        break;
      }
      case kPeerDown: {
        if (msg->from < alive_.size() && alive_[msg->from]) {
          mark_dead(msg->from);
          return regenerate();
        }
        break;
      }
      case kHello:
        handle_hello(*msg);
        break;
      default:
        break;
    }
  }
}

}  // namespace edr::runtime
