#include "runtime/live_protocol.hpp"

#include <any>
#include <cstring>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "net/wire.hpp"
#include "optim/instance.hpp"
#include "workload/apps.hpp"

namespace edr::runtime {

namespace {

net::Message finish(net::NodeId from, net::NodeId to, int type,
                    net::WireWriter writer) {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = type;
  msg.bytes = writer.size();
  msg.payload = writer.take();
  return msg;
}

net::WireReader reader_for(const net::Message& msg,
                           std::size_t max_frame_bytes) {
  const auto& bytes =
      std::any_cast<const std::vector<std::uint8_t>&>(msg.payload);
  return net::WireReader{std::span{bytes.data(), bytes.size()},
                         max_frame_bytes};
}

void put_power(net::WireWriter& writer, const power::PowerModelParams& p) {
  writer.put_double(p.idle);
  writer.put_double(p.selection_compute);
  writer.put_double(p.coordination_per_intensity);
  writer.put_double(p.transfer_linear);
  writer.put_double(p.transfer_poly);
  writer.put_double(p.gamma);
}

power::PowerModelParams get_power(net::WireReader& reader) {
  power::PowerModelParams p;
  p.idle = reader.get_double();
  p.selection_compute = reader.get_double();
  p.coordination_per_intensity = reader.get_double();
  p.transfer_linear = reader.get_double();
  p.transfer_poly = reader.get_double();
  p.gamma = reader.get_double();
  return p;
}

void put_bytes(net::WireWriter& writer, const std::vector<std::uint8_t>& v) {
  writer.put_u32(static_cast<std::uint32_t>(v.size()));
  for (const std::uint8_t b : v) writer.put_u8(b);
}

std::vector<std::uint8_t> get_bytes(net::WireReader& reader) {
  const std::uint32_t count = reader.get_u32();
  if (count > reader.remaining())
    throw std::out_of_range{"live: byte vector truncated"};
  std::vector<std::uint8_t> v(count);
  for (auto& b : v) b = reader.get_u8();
  return v;
}

/// Optional observability tail: 16 bytes appended after the frame body
/// only when a trace context exists, so tracing-off byte streams are
/// unchanged and pre-tail decoders (which never read past the body) stay
/// compatible.
void put_trace_tail(net::WireWriter& writer,
                    const telemetry::TraceContext& trace) {
  if (!trace.valid()) return;
  writer.put_u64(trace.trace_id);
  writer.put_u64(trace.span_id);
}

telemetry::TraceContext get_trace_tail(net::WireReader& reader) {
  telemetry::TraceContext trace;
  if (reader.remaining() < 16) return trace;
  trace.trace_id = reader.get_u64();
  trace.span_id = reader.get_u64();
  return trace;
}

}  // namespace

core::SystemConfig LiveConfig::to_system_config() const {
  core::SystemConfig cfg;
  cfg.algorithm = algorithm;
  cfg.replicas = replicas;
  cfg.num_clients = num_clients;
  cfg.latency = latency;
  cfg.max_latency = max_latency;
  cfg.epoch_length = epoch_length;
  cfg.derive_energy_model_from_power = derive_energy_model_from_power;
  cfg.warm_start = warm_start;
  cfg.retry_shed = retry_shed;
  cfg.max_retries = max_retries;
  cfg.representation = representation;
  cfg.simd = simd;
  cfg.power = power;
  cfg.power_per_replica = power_per_replica;
  cfg.cdpsm = cdpsm;
  cfg.lddm = lddm;
  cfg.admm = admm;
  cfg.solver_threads = 1;  // replicas are the parallelism in live mode
  cfg.enable_ring = false;  // TCP disconnects are the failure detector
  cfg.record_traces = false;
  cfg.seed = seed;
  return cfg;
}

LiveConfig make_default_live_config(std::size_t num_replicas,
                                    std::size_t num_clients,
                                    std::uint32_t epochs,
                                    std::uint64_t seed) {
  LiveConfig cfg;
  cfg.epochs = epochs;
  cfg.num_clients = static_cast<std::uint32_t>(num_clients);
  cfg.seed = seed;
  const auto base = optim::paper_replica_set();
  for (std::size_t n = 0; n < num_replicas; ++n)
    cfg.replicas.push_back(base[n % base.size()]);
  Rng rng{seed};
  // SystemG-like single-LAN links (see analysis::paper_config).
  cfg.latency = core::make_latency_matrix(rng, num_clients, num_replicas,
                                          0.05, 0.35, cfg.max_latency);
  workload::TraceOptions trace_options;
  trace_options.num_clients = num_clients;
  trace_options.horizon = cfg.epoch_length * epochs;
  // The bench default (2 req/s) leaves whole epochs empty at live-smoke
  // horizons of a few seconds; a live epoch with no traffic exercises
  // nothing, so run the same app at a much denser rate.
  auto app = workload::video_streaming();
  app.base_rate_hz = 30.0;
  cfg.requests =
      workload::Trace::generate(rng, app, trace_options).requests();
  return cfg;
}

std::uint64_t fnv1a(std::uint64_t hash, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (bits >> shift) & 0xffu;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t digest_doubles(const double* values, std::size_t count) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < count; ++i) hash = fnv1a(hash, values[i]);
  return hash;
}

std::uint64_t digest_matrix(const Matrix& matrix) {
  const auto flat = matrix.flat();
  return digest_doubles(flat.data(), flat.size());
}

std::uint64_t digest_samples(
    const std::vector<telemetry::RoundSample>& samples) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const auto& s : samples) {
    hash = fnv1a(hash, static_cast<double>(s.round));
    hash = fnv1a(hash, s.round_objective);
    hash = fnv1a(hash, s.disagreement);
    hash = fnv1a(hash, s.load);
  }
  return hash;
}

net::Message encode_hello(net::NodeId from, net::NodeId to,
                          const LiveHello& hello) {
  net::WireWriter w;
  w.put_u32(hello.node);
  w.put_u32(hello.port);
  put_trace_tail(w, hello.trace);
  return finish(from, to, kHello, std::move(w));
}

LiveHello decode_hello(const net::Message& msg, std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveHello hello;
  hello.node = r.get_u32();
  hello.port = static_cast<std::uint16_t>(r.get_u32());
  hello.trace = get_trace_tail(r);
  return hello;
}

net::Message encode_config(net::NodeId from, net::NodeId to,
                           const LiveConfig& config,
                           const telemetry::TraceContext& trace) {
  net::WireWriter w;
  w.put_string(config.algorithm);
  w.put_u32(config.epochs);
  w.put_double(config.epoch_length);
  w.put_u32(config.num_clients);
  w.put_double(config.max_latency);
  w.put_double(config.transfer_window_fraction);
  w.put_u8(config.derive_energy_model_from_power ? 1 : 0);
  w.put_u8(config.warm_start ? 1 : 0);
  w.put_u8(config.retry_shed ? 1 : 0);
  w.put_u32(config.max_retries);
  w.put_u8(static_cast<std::uint8_t>(config.representation));
  w.put_u8(static_cast<std::uint8_t>(config.simd));
  w.put_u64(config.seed);
  w.put_u32(static_cast<std::uint32_t>(config.replicas.size()));
  for (const auto& p : config.replicas) {
    w.put_double(p.price);
    w.put_double(p.alpha);
    w.put_double(p.beta);
    w.put_double(p.gamma);
    w.put_double(p.bandwidth);
  }
  w.put_matrix(config.latency);
  put_power(w, config.power);
  w.put_u32(static_cast<std::uint32_t>(config.power_per_replica.size()));
  for (const auto& p : config.power_per_replica) put_power(w, p);
  w.put_double(config.cdpsm.step);
  w.put_u8(config.cdpsm.diminishing_step ? 1 : 0);
  w.put_u64(config.cdpsm.max_rounds);
  w.put_double(config.cdpsm.tolerance);
  w.put_u64(config.cdpsm.patience);
  w.put_double(config.lddm.rho);
  w.put_double(config.lddm.mu_step);
  w.put_double(config.lddm.mu_step_factor);
  w.put_u64(config.lddm.max_rounds);
  w.put_double(config.lddm.initial_mu);
  w.put_double(config.lddm.tolerance);
  w.put_u64(config.lddm.patience);
  w.put_double(config.admm.rho);
  w.put_u8(config.admm.adapt_rho ? 1 : 0);
  w.put_double(config.admm.adapt_factor);
  w.put_double(config.admm.adapt_threshold);
  w.put_u64(config.admm.max_rounds);
  w.put_double(config.admm.tolerance);
  w.put_u64(config.admm.patience);
  w.put_u32(static_cast<std::uint32_t>(config.requests.size()));
  for (const auto& request : config.requests) {
    w.put_u64(request.id);
    w.put_u32(request.client);
    w.put_double(request.arrival);
    w.put_double(request.size_mb);
    w.put_u64(request.object_id);
  }
  put_trace_tail(w, trace);
  return finish(from, to, kConfig, std::move(w));
}

LiveConfig decode_config(const net::Message& msg,
                         std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveConfig config;
  config.algorithm = r.get_string();
  config.epochs = r.get_u32();
  config.epoch_length = r.get_double();
  config.num_clients = r.get_u32();
  config.max_latency = r.get_double();
  config.transfer_window_fraction = r.get_double();
  config.derive_energy_model_from_power = r.get_u8() != 0;
  config.warm_start = r.get_u8() != 0;
  config.retry_shed = r.get_u8() != 0;
  config.max_retries = r.get_u32();
  const std::uint8_t representation = r.get_u8();
  if (representation >
      static_cast<std::uint8_t>(core::SolverRepresentation::kAggregated))
    throw std::out_of_range{"live: unknown solver representation"};
  config.representation =
      static_cast<core::SolverRepresentation>(representation);
  const std::uint8_t simd = r.get_u8();
  if (simd > static_cast<std::uint8_t>(common::simd::Mode::kAuto))
    throw std::out_of_range{"live: unknown simd mode"};
  config.simd = static_cast<common::simd::Mode>(simd);
  config.seed = r.get_u64();
  const std::uint32_t num_replicas = r.get_u32();
  if (std::size_t{num_replicas} * 40 > max_frame_bytes)
    throw std::length_error{"live: replica table exceeds frame cap"};
  config.replicas.reserve(num_replicas);
  for (std::uint32_t n = 0; n < num_replicas; ++n) {
    optim::ReplicaParams p;
    p.price = r.get_double();
    p.alpha = r.get_double();
    p.beta = r.get_double();
    p.gamma = r.get_double();
    p.bandwidth = r.get_double();
    config.replicas.push_back(p);
  }
  config.latency = r.get_matrix();
  config.power = get_power(r);
  const std::uint32_t num_models = r.get_u32();
  if (std::size_t{num_models} * 48 > max_frame_bytes)
    throw std::length_error{"live: power table exceeds frame cap"};
  config.power_per_replica.reserve(num_models);
  for (std::uint32_t n = 0; n < num_models; ++n)
    config.power_per_replica.push_back(get_power(r));
  config.cdpsm.step = r.get_double();
  config.cdpsm.diminishing_step = r.get_u8() != 0;
  config.cdpsm.max_rounds = r.get_u64();
  config.cdpsm.tolerance = r.get_double();
  config.cdpsm.patience = r.get_u64();
  config.lddm.rho = r.get_double();
  config.lddm.mu_step = r.get_double();
  config.lddm.mu_step_factor = r.get_double();
  config.lddm.max_rounds = r.get_u64();
  config.lddm.initial_mu = r.get_double();
  config.lddm.tolerance = r.get_double();
  config.lddm.patience = r.get_u64();
  config.admm.rho = r.get_double();
  config.admm.adapt_rho = r.get_u8() != 0;
  config.admm.adapt_factor = r.get_double();
  config.admm.adapt_threshold = r.get_double();
  config.admm.max_rounds = r.get_u64();
  config.admm.tolerance = r.get_double();
  config.admm.patience = r.get_u64();
  const std::uint32_t num_requests = r.get_u32();
  if (std::size_t{num_requests} * 36 > max_frame_bytes)
    throw std::length_error{"live: request schedule exceeds frame cap"};
  config.requests.reserve(num_requests);
  for (std::uint32_t i = 0; i < num_requests; ++i) {
    workload::Request request;
    request.id = r.get_u64();
    request.client = r.get_u32();
    request.arrival = r.get_double();
    request.size_mb = r.get_double();
    request.object_id = r.get_u64();
    config.requests.push_back(request);
  }
  return config;
}

net::Message encode_peers(net::NodeId from, net::NodeId to,
                          const LivePeers& peers) {
  net::WireWriter w;
  w.put_u64(peers.generation);
  w.put_u32(static_cast<std::uint32_t>(peers.peers.size()));
  for (const auto& entry : peers.peers) {
    w.put_u32(entry.node);
    w.put_u32(entry.port);
  }
  put_bytes(w, peers.alive);
  put_trace_tail(w, peers.trace);
  return finish(from, to, kPeers, std::move(w));
}

LivePeers decode_peers(const net::Message& msg, std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LivePeers peers;
  peers.generation = r.get_u64();
  const std::uint32_t count = r.get_u32();
  if (std::size_t{count} * 8 > max_frame_bytes)
    throw std::length_error{"live: peer table exceeds frame cap"};
  peers.peers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PeerEntry entry;
    entry.node = r.get_u32();
    entry.port = static_cast<std::uint16_t>(r.get_u32());
    peers.peers.push_back(entry);
  }
  peers.alive = get_bytes(r);
  peers.trace = get_trace_tail(r);
  return peers;
}

net::Message encode_start(net::NodeId from, net::NodeId to,
                          const LiveStart& start) {
  net::WireWriter w;
  w.put_u32(start.epoch);
  w.put_u64(start.generation);
  w.put_double(start.now);
  put_bytes(w, start.alive);
  put_trace_tail(w, start.trace);
  return finish(from, to, kStart, std::move(w));
}

LiveStart decode_start(const net::Message& msg, std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveStart start;
  start.epoch = r.get_u32();
  start.generation = r.get_u64();
  start.now = r.get_double();
  start.alive = get_bytes(r);
  start.trace = get_trace_tail(r);
  return start;
}

net::Message encode_round(net::NodeId from, net::NodeId to,
                          const LiveRound& round) {
  net::WireWriter w;
  w.put_u32(round.epoch);
  w.put_u64(round.generation);
  w.put_u32(round.round);
  w.put_u64(round.digest);
  w.put_double(round.load);
  put_trace_tail(w, round.trace);
  return finish(from, to, kRound, std::move(w));
}

LiveRound decode_round(const net::Message& msg, std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveRound round;
  round.epoch = r.get_u32();
  round.generation = r.get_u64();
  round.round = r.get_u32();
  round.digest = r.get_u64();
  round.load = r.get_double();
  round.trace = get_trace_tail(r);
  return round;
}

net::Message encode_sample(net::NodeId from, net::NodeId to,
                           const telemetry::RoundSample& s,
                           const telemetry::TraceContext& trace) {
  net::WireWriter w;
  w.put_u64(s.epoch);
  w.put_u64(s.round);
  w.put_u32(s.replica);
  w.put_double(s.time);
  w.put_double(s.objective);
  w.put_double(s.round_objective);
  w.put_double(s.gradient_norm);
  w.put_double(s.disagreement);
  w.put_double(s.projection_correction);
  w.put_double(s.capacity_slack);
  w.put_double(s.load);
  w.put_double(s.load_delta);
  w.put_u64(s.messages_sent);
  w.put_u64(s.bytes_sent);
  put_trace_tail(w, trace);
  return finish(from, to, kSample, std::move(w));
}

telemetry::RoundSample decode_sample(const net::Message& msg,
                                     std::size_t max_frame_bytes,
                                     telemetry::TraceContext* trace) {
  auto r = reader_for(msg, max_frame_bytes);
  telemetry::RoundSample s;
  s.epoch = r.get_u64();
  s.round = r.get_u64();
  s.replica = r.get_u32();
  s.time = r.get_double();
  s.objective = r.get_double();
  s.round_objective = r.get_double();
  s.gradient_norm = r.get_double();
  s.disagreement = r.get_double();
  s.projection_correction = r.get_double();
  s.capacity_slack = r.get_double();
  s.load = r.get_double();
  s.load_delta = r.get_double();
  s.messages_sent = r.get_u64();
  s.bytes_sent = r.get_u64();
  if (trace != nullptr) *trace = get_trace_tail(r);
  return s;
}

net::Message encode_epoch_done(net::NodeId from, net::NodeId to,
                               const LiveEpochDone& done) {
  net::WireWriter w;
  w.put_u32(done.epoch);
  w.put_u64(done.generation);
  w.put_u32(done.rounds);
  w.put_u64(done.digest);
  w.put_double(done.objective);
  w.put_u32(done.digest_mismatches);
  w.put_u8(done.kind);
  if (done.kind == LiveEpochDone::kSparseColumn) {
    w.put_u32(done.num_rows);
    w.put_indexed_doubles(done.indices, done.column);
  } else {
    w.put_doubles(done.column);
  }
  put_trace_tail(w, done.trace);
  return finish(from, to, kEpochDone, std::move(w));
}

LiveEpochDone decode_epoch_done(const net::Message& msg,
                                std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveEpochDone done;
  done.epoch = r.get_u32();
  done.generation = r.get_u64();
  done.rounds = r.get_u32();
  done.digest = r.get_u64();
  done.objective = r.get_double();
  done.digest_mismatches = r.get_u32();
  done.kind = r.get_u8();
  if (done.kind == LiveEpochDone::kSparseColumn) {
    done.num_rows = r.get_u32();
    r.get_indexed_doubles(done.indices, done.column);
    for (const std::uint32_t row : done.indices)
      if (row >= done.num_rows)
        throw std::out_of_range{"live: sparse column index out of range"};
  } else if (done.kind == LiveEpochDone::kDenseColumn) {
    done.column = r.get_doubles();
    done.num_rows = static_cast<std::uint32_t>(done.column.size());
  } else {
    throw std::out_of_range{"live: unknown epoch-done column encoding"};
  }
  done.trace = get_trace_tail(r);
  return done;
}

net::Message encode_stall(net::NodeId from, net::NodeId to,
                          const LiveStall& stall) {
  net::WireWriter w;
  w.put_u32(stall.epoch);
  w.put_u64(stall.generation);
  w.put_u32(stall.round);
  put_bytes(w, stall.missing);
  put_trace_tail(w, stall.trace);
  return finish(from, to, kStall, std::move(w));
}

LiveStall decode_stall(const net::Message& msg, std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveStall stall;
  stall.epoch = r.get_u32();
  stall.generation = r.get_u64();
  stall.round = r.get_u32();
  stall.missing = get_bytes(r);
  stall.trace = get_trace_tail(r);
  return stall;
}

net::Message encode_shutdown(net::NodeId from, net::NodeId to) {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = kShutdown;
  msg.bytes = 0;
  msg.payload = std::vector<std::uint8_t>{};
  return msg;
}

net::Message encode_telemetry(net::NodeId from, net::NodeId to,
                              const LiveTelemetry& batch) {
  net::WireWriter w;
  w.put_u32(batch.node);
  w.put_u64(batch.dropped);
  w.put_u32(static_cast<std::uint32_t>(batch.events.size()));
  for (const auto& event : batch.events) {
    w.put_double(event.ts);
    w.put_double(event.dur);
    w.put_u32(event.tid);
    w.put_u8(static_cast<std::uint8_t>(event.phase));
    w.put_u64(event.id);
    w.put_u64(event.parent);
    w.put_string(event.name);
    w.put_string(event.category);
  }
  put_trace_tail(w, batch.trace);
  return finish(from, to, kTelemetry, std::move(w));
}

LiveTelemetry decode_telemetry(const net::Message& msg,
                               std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveTelemetry batch;
  batch.node = r.get_u32();
  batch.dropped = r.get_u64();
  const std::uint32_t count = r.get_u32();
  // 45 bytes is the floor per event (fixed fields + two empty strings), so
  // a declared count past this bound cannot fit in any legal frame.
  if (std::size_t{count} * 45 > max_frame_bytes)
    throw std::length_error{"live: telemetry batch exceeds frame cap"};
  batch.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    telemetry::TraceEvent event;
    event.ts = r.get_double();
    event.dur = r.get_double();
    event.tid = r.get_u32();
    const std::uint8_t phase = r.get_u8();
    if (phase > static_cast<std::uint8_t>(
                    telemetry::TraceEvent::Phase::kFlowEnd))
      throw std::out_of_range{"live: unknown trace event phase"};
    event.phase = static_cast<telemetry::TraceEvent::Phase>(phase);
    event.id = r.get_u64();
    event.parent = r.get_u64();
    event.name = r.get_string();
    event.category = r.get_string();
    batch.events.push_back(std::move(event));
  }
  batch.trace = get_trace_tail(r);
  return batch;
}

net::Message encode_time_probe(net::NodeId from, net::NodeId to,
                               const LiveTimeProbe& probe) {
  net::WireWriter w;
  w.put_u32(probe.probe);
  w.put_u64(static_cast<std::uint64_t>(probe.sent_ns));
  return finish(from, to, kTimeProbe, std::move(w));
}

LiveTimeProbe decode_time_probe(const net::Message& msg,
                                std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveTimeProbe probe;
  probe.probe = r.get_u32();
  probe.sent_ns = static_cast<std::int64_t>(r.get_u64());
  return probe;
}

net::Message encode_time_reply(net::NodeId from, net::NodeId to,
                               const LiveTimeReply& reply) {
  net::WireWriter w;
  w.put_u32(reply.probe);
  w.put_u64(static_cast<std::uint64_t>(reply.probe_ns));
  w.put_u64(static_cast<std::uint64_t>(reply.replica_ns));
  return finish(from, to, kTimeReply, std::move(w));
}

LiveTimeReply decode_time_reply(const net::Message& msg,
                                std::size_t max_frame_bytes) {
  auto r = reader_for(msg, max_frame_bytes);
  LiveTimeReply reply;
  reply.probe = r.get_u32();
  reply.probe_ns = static_cast<std::int64_t>(r.get_u64());
  reply.replica_ns = static_cast<std::int64_t>(r.get_u64());
  return reply;
}

const char* live_frame_type_name(int type) {
  switch (type) {
    case kHello: return "hello";
    case kConfig: return "config";
    case kPeers: return "peers";
    case kStart: return "start";
    case kRound: return "round";
    case kSample: return "sample";
    case kEpochDone: return "epoch_done";
    case kStall: return "stall";
    case kShutdown: return "shutdown";
    case kPeerDown: return "peer_down";
    case kTelemetry: return "telemetry";
    case kTimeProbe: return "time_probe";
    case kTimeReply: return "time_reply";
    default: return nullptr;
  }
}

}  // namespace edr::runtime
