#include "runtime/live_report.hpp"

#include <cstdio>

#include "common/json.hpp"
#include "common/table.hpp"

namespace edr::runtime {

std::string live_run_to_json(const LiveRunResult& result) {
  JsonWriter json;
  json.begin_object();
  json.field("completed", result.completed);
  json.field("generations", result.generations);
  json.field("total_rounds", result.total_rounds);
  json.key("failed_replicas");
  json.begin_array();
  for (const auto replica : result.failed_replicas)
    json.value(static_cast<std::uint64_t>(replica));
  json.end_array();
  json.key("epochs");
  json.begin_array();
  for (const auto& epoch : result.epochs) {
    json.begin_object();
    json.field("epoch", epoch.epoch);
    json.field("generation", epoch.generation);
    json.field("rounds", epoch.rounds);
    json.field("participants",
               static_cast<std::uint64_t>(epoch.participants.size()));
    json.field("digests_agree", epoch.digests_agree);
    json.field("digest", epoch.digest);
    json.field("objective", epoch.objective);
    json.field("wall_ms", epoch.wall_ms);
    json.end_object();
  }
  json.end_array();
  json.key("alerts");
  json.begin_array();
  for (const auto& alert : result.alerts) {
    json.begin_object();
    json.field("kind", std::string{telemetry::to_string(alert.kind)});
    json.field("severity",
               std::string{telemetry::to_string(alert.severity)});
    json.field("epoch", static_cast<std::uint64_t>(alert.epoch));
    json.field("message", alert.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string live_run_to_table(const LiveRunResult& result) {
  Table table({"epoch", "gen", "rounds", "participants", "agree",
               "objective", "wall ms"});
  for (const auto& epoch : result.epochs)
    table.add_row({std::to_string(epoch.epoch),
                   std::to_string(epoch.generation),
                   std::to_string(epoch.rounds),
                   std::to_string(epoch.participants.size()),
                   epoch.digests_agree ? "yes" : "NO",
                   Table::num(epoch.objective, 6),
                   Table::num(epoch.wall_ms, 2)});
  std::string out = table.to_string();
  for (const auto& alert : result.alerts) {
    out += "alert [";
    out += telemetry::to_string(alert.kind);
    out += "/";
    out += telemetry::to_string(alert.severity);
    out += "] epoch " + std::to_string(alert.epoch) + ": " + alert.message +
           "\n";
  }
  return out;
}

}  // namespace edr::runtime
