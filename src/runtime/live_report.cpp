#include "runtime/live_report.hpp"

#include <cstdio>

#include "common/json.hpp"
#include "common/table.hpp"

namespace edr::runtime {

namespace {

void write_timeline(JsonWriter& json, const LiveRunResult& result) {
  json.key("timeline");
  json.begin_array();
  for (const auto& event : result.timeline) {
    json.begin_object();
    json.field("t_s", event.t_s);
    json.field("kind", event.kind);
    json.field("epoch", event.epoch);
    json.field("replica", event.replica);
    json.field("generation", event.generation);
    if (!event.detail.empty()) json.field("detail", event.detail);
    json.end_object();
  }
  json.end_array();
}

void write_transport(JsonWriter& json, const TransportReport& transport) {
  json.key("transport");
  json.begin_object();
  json.field("messages_sent", transport.totals.messages_sent);
  json.field("messages_received", transport.totals.messages_received);
  json.field("bytes_sent", transport.totals.bytes_sent);
  json.field("bytes_received", transport.totals.bytes_received);
  json.field("queue_overflows", transport.queue_overflows);
  json.field("frame_errors", transport.frame_errors);
  json.field("connects_completed", transport.connects_completed);
  json.field("frames_dropped_by_fault", transport.frames_dropped_by_fault);
  json.key("by_type");
  json.begin_array();
  for (const auto& [type, traffic] : transport.by_type) {
    json.begin_object();
    const auto name = transport.type_names.find(type);
    json.field("type", name != transport.type_names.end()
                           ? name->second
                           : std::to_string(type));
    json.field("messages", traffic.messages);
    json.field("bytes", traffic.bytes);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::string live_run_to_json(const LiveRunResult& result,
                             const TransportReport* transport) {
  JsonWriter json;
  json.begin_object();
  json.field("completed", result.completed);
  json.field("generations", result.generations);
  json.field("total_rounds", result.total_rounds);
  json.key("failed_replicas");
  json.begin_array();
  for (const auto replica : result.failed_replicas)
    json.value(static_cast<std::uint64_t>(replica));
  json.end_array();
  json.key("epochs");
  json.begin_array();
  for (const auto& epoch : result.epochs) {
    json.begin_object();
    json.field("epoch", epoch.epoch);
    json.field("generation", epoch.generation);
    json.field("rounds", epoch.rounds);
    json.field("participants",
               static_cast<std::uint64_t>(epoch.participants.size()));
    json.field("digests_agree", epoch.digests_agree);
    json.field("digest", epoch.digest);
    json.field("objective", epoch.objective);
    json.field("wall_ms", epoch.wall_ms);
    json.end_object();
  }
  json.end_array();
  json.key("alerts");
  json.begin_array();
  for (const auto& alert : result.alerts) {
    json.begin_object();
    json.field("kind", std::string{telemetry::to_string(alert.kind)});
    json.field("severity",
               std::string{telemetry::to_string(alert.severity)});
    json.field("epoch", static_cast<std::uint64_t>(alert.epoch));
    json.field("message", alert.message);
    json.end_object();
  }
  json.end_array();
  write_timeline(json, result);
  if (transport != nullptr) write_transport(json, *transport);
  json.end_object();
  return json.str();
}

std::string live_postmortem_json(const LiveRunResult& result) {
  JsonWriter json;
  json.begin_object();
  json.field("completed", result.completed);
  json.field("generations", result.generations);
  json.key("failed_replicas");
  json.begin_array();
  for (const auto replica : result.failed_replicas)
    json.value(static_cast<std::uint64_t>(replica));
  json.end_array();
  write_timeline(json, result);
  // Re-convergence summary: the epochs as the membership saw them, so a
  // reader can line the timeline's generation bumps up against rounds
  // and digest agreement without the full run report.
  json.key("epochs");
  json.begin_array();
  for (const auto& epoch : result.epochs) {
    json.begin_object();
    json.field("epoch", epoch.epoch);
    json.field("generation", epoch.generation);
    json.field("rounds", epoch.rounds);
    json.field("participants",
               static_cast<std::uint64_t>(epoch.participants.size()));
    json.field("digests_agree", epoch.digests_agree);
    json.field("wall_ms", epoch.wall_ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string live_run_to_table(const LiveRunResult& result) {
  Table table({"epoch", "gen", "rounds", "participants", "agree",
               "objective", "wall ms"});
  for (const auto& epoch : result.epochs)
    table.add_row({std::to_string(epoch.epoch),
                   std::to_string(epoch.generation),
                   std::to_string(epoch.rounds),
                   std::to_string(epoch.participants.size()),
                   epoch.digests_agree ? "yes" : "NO",
                   Table::num(epoch.objective, 6),
                   Table::num(epoch.wall_ms, 2)});
  std::string out = table.to_string();
  for (const auto& alert : result.alerts) {
    out += "alert [";
    out += telemetry::to_string(alert.kind);
    out += "/";
    out += telemetry::to_string(alert.severity);
    out += "] epoch " + std::to_string(alert.epoch) + ": " + alert.message +
           "\n";
  }
  return out;
}

}  // namespace edr::runtime
