// LiveReplica — one replica process of the live runtime.
//
// Runs the unchanged DistributedAlgorithm as a deterministic replicated
// state machine (the paper's ReplicaListener role, structured after the
// listener/communication split of a real server shell): every replica
// holds the full algorithm over identical inputs, steps it in lockstep
// rounds, and uses the kRound frame as the synchronization barrier.  The
// frame carries an FNV-1a digest of the round's observable state, so any
// divergence between replicas is *detected*, not silently averaged away.
//
// Lifecycle (driven entirely by the coordinator's frames):
//
//   hello -> config -> peers -> { start -> rounds* -> epoch_done }* -> shutdown
//
// Membership: the coordinator owns it.  A replica that stops hearing a
// peer at the barrier reports kStall and keeps waiting; the coordinator
// responds with a new generation (kPeers + kStart for the same epoch),
// at which point every survivor aborts the epoch, discards warm-start
// state and the retry backlog (both would diverge between survivors and
// a cold rejoiner), and re-solves with the reduced replica set.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/algorithm.hpp"
#include "runtime/bus.hpp"
#include "runtime/live_protocol.hpp"
#include "runtime/observer.hpp"

namespace edr::runtime {

struct ReplicaOptions {
  /// Round-barrier wait before reporting kStall to the coordinator.
  double barrier_timeout_s = 2.0;
  /// Wait for the next coordinator frame (config/start) before giving up.
  double idle_timeout_s = 60.0;
  /// Listen port to announce in the hello (0 over inproc).
  std::uint16_t listen_port = 0;
};

/// Why run() returned.
enum class ReplicaExit {
  kShutdown,     ///< coordinator said kShutdown — the normal path
  kIdleTimeout,  ///< nothing from the coordinator for idle_timeout_s
  kBusClosed,    ///< transport shut down underneath us
};

class LiveReplica {
 public:
  LiveReplica(MessageBus& bus, net::NodeId coordinator, ReplicaOptions options);

  /// Attach the process's observability plane (spans, flows, resource
  /// gauges, kTelemetry flushes at epoch boundaries).  Optional; call
  /// before run().  The observer must outlive the replica.
  void set_observer(RuntimeObserver* observer) { observer_ = observer; }

  /// Announce, configure, serve epochs until shutdown.  Safe to call once.
  ReplicaExit run();

  [[nodiscard]] std::size_t epochs_completed() const {
    return epochs_completed_;
  }
  [[nodiscard]] std::uint64_t digest_mismatches() const {
    return digest_mismatches_;
  }
  [[nodiscard]] std::uint64_t stalls_reported() const {
    return stalls_reported_;
  }

 private:
  /// Outcome of one epoch attempt.
  struct EpochOutcome {
    bool completed = false;
    /// A kStart that preempted the epoch (newer generation) or arrived
    /// while idle; the main loop runs it next.
    std::optional<LiveStart> next_start;
    bool shutdown = false;
    bool bus_closed = false;
  };

  void apply_peers(const LivePeers& peers);
  void rebuild_for_generation(std::uint64_t generation);
  void bucket_requests();
  EpochOutcome run_epoch(const LiveStart& start);
  /// Wait until every other scheduled replica reported `round`; fills
  /// `outcome` and returns false when the wait was preempted.
  bool await_round_barrier(const LiveStart& start, std::uint32_t round,
                           std::uint64_t own_digest, EpochOutcome& outcome);
  void send_stall(const LiveStart& start, std::uint32_t round,
                  const std::vector<net::NodeId>& waiting);
  /// Answer a coordinator clock probe with our steady-clock reading.
  void reply_time_probe(const net::Message& msg);
  /// Ship the drained span buffer to the coordinator (no-op when the
  /// observer is absent or tracing is off).
  void flush_telemetry();
  [[nodiscard]] telemetry::EventTracer& tracer() {
    return observer_ != nullptr ? observer_->tracer()
                                : telemetry::disabled_tracer();
  }

  MessageBus& bus_;
  const net::NodeId coordinator_;
  const ReplicaOptions options_;
  RuntimeObserver* observer_ = nullptr;

  std::optional<LiveConfig> config_;
  core::SystemConfig system_config_;  // cached config_.to_system_config()
  std::vector<power::PowerModel> models_;
  power::PowerModel shared_model_;
  std::uint64_t generation_ = 0;
  std::vector<std::uint8_t> scheduled_;  // current alive mask (kPeers/kStart)

  std::unique_ptr<core::DistributedAlgorithm> algorithm_;
  std::uint64_t algorithm_generation_ = 0;  // generation it was built for

  std::vector<std::vector<core::PendingRequest>> epoch_buckets_;
  std::vector<core::PendingRequest> retry_backlog_;

  // Epoch-scoped state referenced by the EpochContext.
  std::optional<optim::Problem> problem_;
  std::vector<std::size_t> active_replicas_;
  std::vector<std::uint32_t> active_clients_;
  std::vector<core::PendingRequest> current_requests_;
  std::vector<bool> replica_alive_;

  /// Round frames that raced ahead of our own barrier wait, keyed by
  /// (generation, epoch, round) -> per-sender digest.  Generation is part
  /// of the key so frames from a peer that restarted into a newer
  /// generation before we processed the matching kStart are not lost.
  std::map<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>,
           std::map<net::NodeId, std::uint64_t>>
      pending_rounds_;

  std::size_t epochs_completed_ = 0;
  std::uint64_t digest_mismatches_ = 0;
  std::uint64_t stalls_reported_ = 0;
};

}  // namespace edr::runtime
