// Shared rendering of a LiveRunResult — one JSON shape and one table for
// every front end (edr_live, edr_sim --transport inproc/tcp), so their
// outputs can be diffed directly (scripts/check.sh live-smoke compares
// the per-epoch objectives across transports this way).
#pragma once

#include <string>

#include "runtime/coordinator.hpp"

namespace edr::runtime {

/// Machine-readable run result: completion, generations, per-epoch rows
/// (epoch, generation, rounds, participants, digests_agree, objective,
/// wall_ms) and the monitor's alerts.
[[nodiscard]] std::string live_run_to_json(const LiveRunResult& result);

/// Human-readable per-epoch table plus alert lines, for stdout.
[[nodiscard]] std::string live_run_to_table(const LiveRunResult& result);

}  // namespace edr::runtime
