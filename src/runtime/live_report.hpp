// Shared rendering of a LiveRunResult — one JSON shape and one table for
// every front end (edr_live, edr_sim --transport inproc/tcp), so their
// outputs can be diffed directly (scripts/check.sh live-smoke compares
// the per-epoch objectives across transports this way).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/network.hpp"
#include "runtime/coordinator.hpp"

namespace edr::runtime {

/// Socket-level totals for the optional `transport` section of the JSON
/// report — filled by the front end from its TcpTransport (totals,
/// per-frame-type traffic, overflow/error/reconnect counters).
struct TransportReport {
  net::TrafficStats totals;
  std::map<int, net::TypeTraffic> by_type;
  /// Labels for `by_type` keys (missing ids render as the number).
  std::map<int, std::string> type_names;
  std::uint64_t queue_overflows = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t connects_completed = 0;
  std::uint64_t frames_dropped_by_fault = 0;
};

/// Machine-readable run result: completion, generations, per-epoch rows
/// (epoch, generation, rounds, participants, digests_agree, objective,
/// wall_ms), the monitor's alerts, and the runtime event timeline.  When
/// `transport` is non-null a `transport` section with socket-level stats
/// is appended (edr_live --json).
[[nodiscard]] std::string live_run_to_json(
    const LiveRunResult& result, const TransportReport* transport = nullptr);

/// Human-readable per-epoch table plus alert lines, for stdout.
[[nodiscard]] std::string live_run_to_table(const LiveRunResult& result);

/// Chaos post-mortem: one JSON document whose `timeline` correlates the
/// injected faults, membership transitions (mark_dead / generation
/// bumps), monitor alerts (fired and cleared), and each epoch's
/// re-convergence (rounds, digests) in wall-clock order.
[[nodiscard]] std::string live_postmortem_json(const LiveRunResult& result);

}  // namespace edr::runtime
