// Chaos plan + scoring for the live runtime.
//
// A ChaosPlan is a deterministic schedule of faults keyed to epoch
// boundaries (epoch-based, not wall-clock-based, so a scenario injects
// the same fault at the same logical point every run): kill a replica
// without goodbyes, restart it, reset a live TCP connection mid-stream,
// or drop/delay/duplicate frames through the transport fault hook.
//
// Scoring closes the loop with the SLO/anomaly monitor: a chaos run
// passes when the survivors kept completing epochs with agreeing digests
// (re-convergence), the monitor raised alerts while the faults were
// active (detection), and the quiet tail raised none (recovery).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "runtime/coordinator.hpp"

namespace edr::runtime {

enum class ChaosKind : std::uint8_t {
  kKill,             ///< close the replica's transport, no goodbyes
  kRestart,          ///< boot a fresh process image for the replica
  kResetConnection,  ///< force-close one peer link mid-stream (tcp only)
  kDropFrames,       ///< fault hook: drop outgoing frames (tcp only)
  kDelayFrames,      ///< fault hook: hold outgoing frames (tcp only)
  kDuplicateFrames,  ///< fault hook: send outgoing frames twice (tcp only)
  kClearFaults,      ///< remove the replica's fault hook (tcp only)
};

/// Short fault name for timelines and post-mortems ("kill", "restart"...).
[[nodiscard]] const char* to_string(ChaosKind kind);

struct ChaosAction {
  /// Applied right before this epoch's kStart broadcast.
  std::uint32_t epoch = 0;
  ChaosKind kind = ChaosKind::kKill;
  net::NodeId replica = 0;  ///< the faulted node
  net::NodeId peer = 0;     ///< other end, for kResetConnection
  /// Fraction of frames affected by a frame fault (1 / period, applied
  /// deterministically every round(1/probability)-th frame).
  double probability = 1.0;
  double delay_ms = 0.0;  ///< for kDelayFrames
  /// Restrict a frame fault to one message type (-1 = all types).
  int message_type = -1;
};

struct ChaosPlan {
  std::vector<ChaosAction> actions;

  [[nodiscard]] bool empty() const { return actions.empty(); }
  /// Epochs with at least one action, sorted ascending.
  [[nodiscard]] std::vector<std::uint32_t> fault_epochs() const;
};

struct ChaosScore {
  /// The schedule ran to completion and the last epoch's replica digests
  /// agree — the survivors re-converged onto one allocation.
  bool reconverged = false;
  /// At least one monitor alert in [first fault epoch, last fault epoch + 1]
  /// (epoch-latency SLO breaches surface one epoch late at the earliest).
  bool alerts_fired = false;
  /// No alert in the quiet tail after the faults.
  bool alerts_cleared = false;
  std::size_t alerts_during_faults = 0;
  std::size_t alerts_in_tail = 0;
  std::size_t epochs_completed = 0;
  std::uint64_t generations = 1;

  [[nodiscard]] bool passed() const {
    return reconverged && alerts_fired && alerts_cleared;
  }
};

/// Grade `result` against `plan`.  `total_epochs` is the configured
/// schedule length (the run may have died early — that fails).
[[nodiscard]] ChaosScore score_chaos_run(const LiveRunResult& result,
                                         const ChaosPlan& plan,
                                         std::uint32_t total_epochs);

}  // namespace edr::runtime
