#include "runtime/observer.hpp"

#include <chrono>
#include <utility>

namespace edr::runtime {

namespace {

/// High-bit prefix making every process's causal ids globally unique in
/// the merged trace: 2^40 ids per process before any overlap.
std::uint64_t id_base_for(net::NodeId node) {
  return (std::uint64_t{node} + 1) << 40;
}

}  // namespace

RuntimeObserver::RuntimeObserver(net::NodeId node, std::string role,
                                 ObserverOptions options)
    : node_(node),
      role_(std::move(role)),
      options_(options),
      telemetry_(telemetry::TelemetryOptions{
          .atomic_metrics = true, .trace_capacity = options.trace_capacity}) {
  auto& tracer = telemetry_.tracer();
  tracer.set_enabled(options_.tracing);
  tracer.set_id_base(id_base_for(node_));
  tracer.set_clock(
      [] { return static_cast<double>(now_ns()) * 1e-9; });
  if (options_.tracing) trace_id_ = 1;  // one live run = one trace

  cpu_gauge_ = metrics().gauge("process.cpu_utilization");
  rss_gauge_ = metrics().gauge("process.rss_bytes");
  watts_gauge_ = metrics().gauge("process.power_watts");
  refresh_resource_gauges();  // prime the CPU sampler's baseline

  if (options_.metrics_server)
    scrape_ = std::make_unique<telemetry::ScrapeServer>(
        metrics(), options_.metrics_port,
        [this] { refresh_resource_gauges(); });
}

std::int64_t RuntimeObserver::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

telemetry::TraceContext RuntimeObserver::flow_out(std::string_view name,
                                                  std::string_view category,
                                                  std::uint64_t parent) {
  if (!options_.tracing) return {};
  auto& tracer = telemetry_.tracer();
  const std::uint64_t id = tracer.new_id();
  tracer.flow_begin(id, name, category, node_, parent);
  return {trace_id_, id};
}

void RuntimeObserver::flow_in(const telemetry::TraceContext& trace,
                              std::string_view name,
                              std::string_view category) {
  if (!options_.tracing || !trace.valid()) return;
  telemetry_.tracer().flow_end(trace.span_id, name, category, node_);
}

LiveTelemetry RuntimeObserver::drain() {
  LiveTelemetry batch;
  batch.node = node_;
  auto& tracer = telemetry_.tracer();
  batch.events = tracer.events();
  batch.dropped = tracer.dropped();  // drops since the previous drain
  drained_drops_ += batch.dropped;
  tracer.clear();  // keeps the id counter: later spans get fresh ids
  return batch;
}

void RuntimeObserver::set_power_params(
    const power::PowerModelParams& params) {
  const std::scoped_lock lock{resource_mutex_};
  power_model_ = power::PowerModel{params};
}

void RuntimeObserver::refresh_resource_gauges() {
  const std::scoped_lock lock{resource_mutex_};
  telemetry::ProcessStats stats;
  const double utilization = cpu_sampler_.sample(&stats);
  if (!stats.ok) return;  // not on Linux/procfs: leave the gauges at zero
  cpu_gauge_.set(utilization);
  rss_gauge_.set(static_cast<double>(stats.rss_bytes));
  // Measured utilization stands in for the sim's modeled coordination
  // intensity: a busy replica is "selecting", an idle one idles.
  const auto activity = utilization > 0.01 ? power::Activity::kSelecting
                                           : power::Activity::kIdle;
  watts_gauge_.set(power_model_.draw(activity, utilization));
}

}  // namespace edr::runtime
