// LocalCluster — the whole live runtime in one process.
//
// Boots N LiveReplica threads plus a LiveCoordinator over either the
// threaded in-process transport or real localhost TCP sockets (one
// TcpTransport per node — the same code path as the separate-process
// deployment in examples/edr_replicad.cpp, minus fork/exec).  This is
// how tests and the chaos suite drive the runtime: same frames, same
// barriers, same membership protocol, switchable plumbing.
//
// The chaos plan executes on the coordinator's thread at epoch
// boundaries: kills close a node's transport with no goodbyes (peers
// only learn from the dead sockets or the stalled barrier, exactly like
// a SIGKILLed process), restarts boot a fresh replica that rejoins
// through the hello path, and the frame faults ride the TcpTransport
// fault hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/inproc.hpp"
#include "net/tcp_transport.hpp"
#include "runtime/bus.hpp"
#include "runtime/chaos.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/replica.hpp"

namespace edr::runtime {

enum class LiveTransport : std::uint8_t { kInproc, kTcp };

struct LocalClusterOptions {
  LiveTransport transport = LiveTransport::kInproc;
  CoordinatorOptions coordinator;
  /// Tighter defaults than a WAN deployment would use: the cluster is
  /// localhost, so seconds of silence already mean death.
  ReplicaOptions replica{.barrier_timeout_s = 0.5, .idle_timeout_s = 10.0};
  ChaosPlan chaos;
  std::size_t max_frame_bytes = 16u << 20;
  /// Per-node observability (off by default; digests are unaffected
  /// either way).  `metrics_port` applies to the coordinator's endpoint;
  /// replica endpoints always bind ephemeral ports — read them back via
  /// replica_observer()->metrics_port().
  ObserverOptions observer;
};

class LocalCluster {
 public:
  LocalCluster(LiveConfig config, LocalClusterOptions options = {});
  ~LocalCluster();
  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Boot the replicas, run the coordinator on the calling thread, join
  /// everything; call once.
  LiveRunResult run();

  // ---- chaos primitives (coordinator-thread only, i.e. from the epoch
  // hook or between construction and run())
  void kill_replica(net::NodeId replica);
  void restart_replica(net::NodeId replica);
  void reset_connection(net::NodeId replica, net::NodeId peer);
  void set_fault_hook(net::NodeId replica, net::FaultHook hook);

  [[nodiscard]] LiveTransport transport() const {
    return options_.transport;
  }

  /// Merged multi-process Chrome trace; empty unless observer.tracing
  /// was on.  Valid after run().
  [[nodiscard]] const std::string& merged_trace_json() const {
    return merged_trace_json_;
  }
  /// The coordinator's observer (null when observability is off).
  [[nodiscard]] RuntimeObserver* coordinator_observer() {
    return coordinator_observer_.get();
  }
  /// A live replica's observer (null when off or the node is down).
  [[nodiscard]] RuntimeObserver* replica_observer(net::NodeId replica) {
    return replica < nodes_.size() ? nodes_[replica].observer.get() : nullptr;
  }

 private:
  struct Node {
    std::unique_ptr<net::TcpTransport> tcp;  // tcp mode only
    std::unique_ptr<MessageBus> bus;
    std::shared_ptr<std::atomic<bool>> killed;
    std::unique_ptr<RuntimeObserver> observer;  // observability on only
    std::unique_ptr<LiveReplica> replica;
    std::thread thread;
  };

  [[nodiscard]] bool observing() const {
    return options_.observer.tracing || options_.observer.metrics_server;
  }

  void start_replica(net::NodeId id);
  void apply_chaos(std::uint32_t epoch);

  LiveConfig config_;
  LocalClusterOptions options_;
  net::NodeId coordinator_id_;

  std::unique_ptr<net::InprocTransport> inproc_;  // inproc mode only
  std::unique_ptr<net::TcpTransport> coordinator_tcp_;
  std::uint16_t coordinator_port_ = 0;
  std::unique_ptr<MessageBus> coordinator_bus_;

  std::vector<Node> nodes_;
  /// Killed-then-replaced nodes' remains: exiting threads and the
  /// transports that must outlive them.  Joined in the destructor.
  std::vector<Node> graveyard_;
  std::unique_ptr<RuntimeObserver> coordinator_observer_;
  LiveCoordinator* coordinator_ = nullptr;  // run()-scoped, for chaos logs
  std::string merged_trace_json_;
  bool ran_ = false;
};

}  // namespace edr::runtime
