// RuntimeObserver — the per-process observability plane of the live
// runtime (DESIGN.md §14).
//
// One observer lives in each live process (every replica daemon plus the
// coordinator) and bundles what the single-process sim gets from its
// Telemetry context, re-based onto *wall clock*:
//
//  * a steady-clock EventTracer whose causal ids carry a node-unique
//    high-bit prefix, so spans/flows from different OS processes never
//    collide after merging;
//  * trace-context helpers that pair a local flow-begin with the 16-byte
//    tail a live_protocol frame carries, and the matching flow-end on the
//    receiving process — the cross-process arrows of the merged trace;
//  * drain() — the span-buffer flush a replica ships to the coordinator
//    as a kTelemetry frame at each epoch boundary;
//  * an atomic MetricsRegistry shared by the transport io thread, and an
//    optional HTTP scrape endpoint serving it live;
//  * /proc/self/stat resource gauges (CPU fraction, RSS) plus an
//    estimated power draw through power::PowerModel — live-mode power
//    metering, with measured utilization standing in for the sim's
//    modeled activity intensity.
//
// Everything here is opt-in and stays off the algorithm path: round
// digests hash solver state, never frames or clocks, so a run with an
// observer attached is byte-identical to one without.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "net/network.hpp"
#include "power/model.hpp"
#include "runtime/live_protocol.hpp"
#include "telemetry/process_stats.hpp"
#include "telemetry/scrape_server.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::runtime {

struct ObserverOptions {
  /// Record spans/flows and stamp frames with trace contexts.
  bool tracing = false;
  /// Serve the registry over HTTP (Prometheus text format).
  bool metrics_server = false;
  /// Port for the scrape endpoint (0 = ephemeral; see metrics_port()).
  std::uint16_t metrics_port = 0;
  /// Tracer ring capacity per flush interval.
  std::size_t trace_capacity = 1 << 15;
};

class RuntimeObserver {
 public:
  /// `role` labels the process track in the merged trace ("replica 2",
  /// "coordinator").  Throws std::runtime_error if the scrape port
  /// cannot be bound.
  RuntimeObserver(net::NodeId node, std::string role, ObserverOptions options);

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& role() const { return role_; }
  [[nodiscard]] bool tracing() const { return options_.tracing; }

  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const {
    return telemetry_;
  }
  [[nodiscard]] telemetry::MetricsRegistry& metrics() {
    return telemetry_.metrics();
  }
  [[nodiscard]] telemetry::EventTracer& tracer() {
    return telemetry_.tracer();
  }

  /// Steady-clock reading, the tracer's time base.
  [[nodiscard]] static std::int64_t now_ns();

  /// Bound scrape port (0 when no server was requested).
  [[nodiscard]] std::uint16_t metrics_port() const {
    return scrape_ ? scrape_->port() : 0;
  }
  [[nodiscard]] std::uint64_t scrapes() const {
    return scrape_ ? scrape_->scrapes() : 0;
  }

  /// Record a flow-begin on this process's track and return the context
  /// to stamp on the outgoing frame (invalid context when tracing is off
  /// — the frame then carries no tail).
  [[nodiscard]] telemetry::TraceContext flow_out(std::string_view name,
                                                 std::string_view category,
                                                 std::uint64_t parent = 0);
  /// Record the matching flow-end for a context received on a frame.
  void flow_in(const telemetry::TraceContext& trace, std::string_view name,
               std::string_view category);

  /// Flush the span buffer: everything recorded since the previous drain,
  /// ready to ship as a kTelemetry frame.  Ring drops since the previous
  /// drain ride along so the merger can report loss.
  [[nodiscard]] LiveTelemetry drain();

  /// Parameters for the estimated-watts gauge (defaults to the paper's
  /// SystemG model until the LiveConfig arrives).
  void set_power_params(const power::PowerModelParams& params);

  /// Re-sample /proc/self/stat into the process.* gauges.  Called at
  /// epoch boundaries and before every scrape render.
  void refresh_resource_gauges();

 private:
  net::NodeId node_;
  std::string role_;
  ObserverOptions options_;
  telemetry::Telemetry telemetry_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t drained_drops_ = 0;

  std::mutex resource_mutex_;  // scrape thread vs. epoch-boundary refresh
  telemetry::CpuSampler cpu_sampler_;
  power::PowerModel power_model_;
  telemetry::Gauge cpu_gauge_;
  telemetry::Gauge rss_gauge_;
  telemetry::Gauge watts_gauge_;

  std::unique_ptr<telemetry::ScrapeServer> scrape_;  // last: uses the rest
};

}  // namespace edr::runtime
