#include "runtime/bus.hpp"

#include <utility>

#include "runtime/live_protocol.hpp"

namespace edr::runtime {

TcpBus::TcpBus(net::TcpTransport& transport) : transport_(transport) {
  // Runs on the io thread: just record the loss, the message loop turns
  // it into a frame on its own thread.
  transport_.set_on_disconnect([this](net::NodeId peer) {
    const std::scoped_lock lock{mutex_};
    down_.push_back(peer);
  });
}

net::NodeId TcpBus::self() const { return transport_.self(); }

bool TcpBus::post(net::Message message) {
  return transport_.send(std::move(message));
}

std::optional<net::Message> TcpBus::receive_for(double timeout_s) {
  {
    const std::scoped_lock lock{mutex_};
    if (!down_.empty()) {
      net::Message msg;
      msg.from = down_.front();
      msg.to = transport_.self();
      msg.type = kPeerDown;
      msg.payload = std::vector<std::uint8_t>{};
      down_.erase(down_.begin());
      return msg;
    }
  }
  return transport_.receive_for(timeout_s);
}

void TcpBus::connect_peer(net::NodeId peer, const std::string& host,
                          std::uint16_t port) {
  transport_.add_peer(peer, host, port);
}

std::size_t TcpBus::max_frame_bytes() const {
  return transport_.options().max_frame_bytes;
}

InprocBus::InprocBus(net::InprocTransport& transport, net::NodeId self,
                     std::size_t max_frame_bytes)
    : transport_(transport), self_(self), max_frame_bytes_(max_frame_bytes) {}

net::NodeId InprocBus::self() const { return self_; }

bool InprocBus::post(net::Message message) {
  return transport_.send(std::move(message));
}

std::optional<net::Message> InprocBus::receive_for(double timeout_s) {
  return transport_.receive_for(self_, timeout_s);
}

}  // namespace edr::runtime
