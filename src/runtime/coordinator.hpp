// LiveCoordinator — the control plane of the live runtime.
//
// Owns the run: collects replica hellos, distributes the LiveConfig and
// peer table, starts each epoch, and arbitrates membership.  Replicas do
// all scheduling work; the coordinator never touches the optimization —
// it assembles the per-replica allocation columns, cross-checks the
// replicas' full-matrix digests (deterministic replication is a checked
// invariant), and feeds every RoundSample plus the wall-clock epoch
// latency into the PR 3 flight recorder + ConvergenceMonitor, which is
// how chaos runs are scored (SLO alerts fire in fault epochs and stay
// clear once the survivors re-converge).
//
// Membership protocol: one generation counter.  A kStall, a TCP
// disconnect (synthetic kPeerDown), or the epoch watchdog marks replicas
// dead -> generation bump -> kPeers + kStart for the *same* epoch; every
// survivor cold-starts and re-solves with the reduced set.  A rejoining
// replica (fresh kHello) is re-sent the config and joins at the next
// epoch boundary under another generation bump.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"
#include "runtime/bus.hpp"
#include "runtime/live_protocol.hpp"
#include "runtime/observer.hpp"
#include "telemetry/distributed_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/monitor.hpp"

namespace edr::runtime {

struct CoordinatorOptions {
  /// Wait for the initial replica hellos.
  double hello_timeout_s = 30.0;
  /// Per-epoch watchdog: no completion within this -> mark the laggards
  /// dead and re-generation the epoch.
  double epoch_timeout_s = 20.0;
  /// Give up entirely after this many watchdog strikes in one epoch.
  std::size_t max_epoch_retries = 3;
  telemetry::MonitorOptions monitor;
  /// Chaos hook, called right before each epoch's kStart broadcast.
  std::function<void(std::uint32_t epoch)> on_epoch_start;
};

struct LiveEpochResult {
  std::uint32_t epoch = 0;
  std::uint64_t generation = 0;
  std::uint32_t rounds = 0;
  /// Columns assembled from the replicas' kEpochDone frames; rows are the
  /// epoch's active clients, cols the epoch's active replicas.
  Matrix allocation;
  std::uint64_t digest = 0;
  /// Every participant reported the same full-matrix digest and zero
  /// round-digest mismatches.
  bool digests_agree = true;
  double objective = 0.0;
  double wall_ms = 0.0;  ///< kStart broadcast -> last kEpochDone
  std::vector<net::NodeId> participants;
};

/// One entry of the run's control-plane timeline: faults injected by a
/// chaos plan, membership transitions, monitor alerts, and epoch
/// milestones, in wall-clock order.  The post-mortem export correlates
/// these (fault -> alert fired -> generation bump -> re-convergence).
struct RuntimeEvent {
  double t_s = 0.0;  ///< seconds since run() started
  std::string kind;  ///< "fault", "alert", "mark_dead", "generation", ...
  std::uint32_t epoch = 0;
  std::int64_t replica = -1;  ///< -1 when the event is not replica-scoped
  std::uint64_t generation = 0;
  std::string detail;
};

struct LiveRunResult {
  std::vector<LiveEpochResult> epochs;
  std::vector<telemetry::EpochSummary> convergence;
  std::vector<telemetry::Alert> alerts;
  std::uint64_t total_rounds = 0;
  std::uint64_t generations = 1;
  std::vector<net::NodeId> failed_replicas;  ///< marked dead at least once
  bool completed = false;  ///< every configured epoch produced a result
  /// Control-plane event timeline (always recorded; the post-mortem and
  /// chaos reports are built from it).
  std::vector<RuntimeEvent> timeline;
};

class LiveCoordinator {
 public:
  LiveCoordinator(MessageBus& bus, LiveConfig config,
                  CoordinatorOptions options = {});

  /// Attach the coordinator process's observability plane.  Optional;
  /// call before run().  With tracing on, the coordinator probes replica
  /// clocks, collects their kTelemetry flushes, and can export the merged
  /// cross-process trace afterwards.
  void set_observer(RuntimeObserver* observer) { observer_ = observer; }

  /// Execute the whole schedule; call once.  Throws std::runtime_error
  /// when the cluster never assembles (hello timeout).
  LiveRunResult run();

  /// Append an event to the run timeline.  Public so chaos drivers can
  /// record the faults they inject next to the membership transitions
  /// the coordinator records itself.
  void log_event(std::string_view kind, std::string detail = {},
                 std::int64_t replica = -1);

  /// Merged multi-process Chrome trace (coordinator's own spans plus every
  /// kTelemetry flush, replica clocks aligned via the probe estimates).
  /// Call after run().
  [[nodiscard]] std::string merged_trace_json();
  [[nodiscard]] const telemetry::TraceMerger& trace_merger() const {
    return merger_;
  }
  [[nodiscard]] const telemetry::ClockOffsetEstimator& clock_offsets() const {
    return estimator_;
  }

  /// Membership + monitor state, readable between epochs from the chaos
  /// hook's thread (the hook runs on the coordinator's own thread).
  [[nodiscard]] const std::vector<std::uint8_t>& alive() const {
    return alive_;
  }
  [[nodiscard]] const telemetry::ConvergenceMonitor& monitor() const {
    return monitor_;
  }

 private:
  void mark_dead(net::NodeId replica);
  void broadcast_peers();
  void broadcast_start(std::uint32_t epoch);
  /// Returns the epoch result, or nullopt when the epoch was re-generated
  /// (membership changed) and must be restarted.
  std::optional<LiveEpochResult> await_epoch(std::uint32_t epoch,
                                             double started_at);
  void handle_hello(const net::Message& msg);
  [[nodiscard]] std::size_t alive_count() const;
  /// Clock-probe burst to every alive replica (no-op unless tracing).
  void send_time_probes();
  void handle_telemetry(const net::Message& msg);
  void handle_time_reply(const net::Message& msg);
  /// Soak up the post-shutdown kTelemetry flushes for `window_s` seconds.
  void drain_telemetry(double window_s);

  MessageBus& bus_;
  LiveConfig config_;
  CoordinatorOptions options_;
  RuntimeObserver* observer_ = nullptr;

  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> ever_helloed_;
  std::vector<PeerEntry> peer_table_;
  std::vector<net::NodeId> pending_joins_;
  std::uint64_t generation_ = 1;

  telemetry::FlightRecorder recorder_;
  telemetry::ConvergenceMonitor monitor_;
  LiveRunResult result_;

  telemetry::TraceMerger merger_;
  telemetry::ClockOffsetEstimator estimator_;
  double run_started_s_ = 0.0;
  std::uint32_t current_epoch_ = 0;
  std::uint32_t next_probe_ = 0;
};

}  // namespace edr::runtime
