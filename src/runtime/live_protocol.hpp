// Live-runtime wire protocol: the frames real EDR processes exchange.
//
// The live runtime executes the unchanged DistributedAlgorithm backends as
// deterministic replicated state machines: every replica holds the full
// algorithm and identical inputs, so each synchronous round produces the
// same state everywhere; the TCP round frame is the *barrier* that keeps
// the replicas in lockstep and carries an FNV-1a digest of the sender's
// state so replication is a checked invariant, not an assumption (see
// DESIGN.md §11).  The coordinator distributes the run configuration
// (including the full request schedule, so demand bucketing is identical
// on every host), starts epochs, collects per-round flight-recorder
// samples for the SLO/anomaly monitor, and arbitrates membership when a
// replica dies mid-epoch.
//
// All payloads are encoded with net/wire.hpp; receivers decode through a
// WireReader capped at the transport's max_frame_bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/simd.hpp"
#include "core/admm.hpp"
#include "core/cdpsm.hpp"
#include "core/lddm.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "optim/problem.hpp"
#include "power/model.hpp"
#include "telemetry/distributed_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace.hpp"
#include "workload/trace.hpp"

namespace edr::runtime {

/// Frame type ids.  The ring owns [100, 200); algorithms own small ids —
/// the live runtime claims [200, 216).
enum LiveMessageType : int {
  kHello = 200,      ///< replica -> coord: I am up, my listen port
  kConfig = 201,     ///< coord -> replica: the serialized LiveConfig
  kPeers = 202,      ///< coord -> replica: peer table + membership
  kStart = 203,      ///< coord -> replica: run epoch e under generation g
  kRound = 204,      ///< replica <-> replica: round barrier + state digest
  kSample = 205,     ///< replica -> coord: one RoundSample
  kEpochDone = 206,  ///< replica -> coord: own allocation column + digest
  kStall = 207,      ///< replica -> coord: barrier timed out, who is missing
  kShutdown = 208,   ///< coord -> replica: exit cleanly
  kPeerDown = 209,   ///< synthetic (local): transport lost a connection
  kTelemetry = 210,  ///< replica -> coord: flushed span-buffer batch
  kTimeProbe = 211,  ///< coord -> replica: clock probe (coord steady ns)
  kTimeReply = 212,  ///< replica -> coord: probe echo + replica steady ns
};

/// Human label for a LiveMessageType ("hello", "round", ...); nullptr for
/// ids outside the live range.  Front ends feed these to
/// Transport::set_type_name so per-type traffic reports and the
/// net.bytes_by_type metric read "round" instead of "204".
[[nodiscard]] const char* live_frame_type_name(int type);

// Observability tail: every encoder below accepts a telemetry::TraceContext
// (either as a struct member or a trailing default argument) and appends a
// 16-byte (trace_id, span_id) tail to the payload *only when the context
// is valid* — with tracing off the wire bytes are unchanged.  Decoders read
// the tail iff at least 16 payload bytes remain after the body; decoders
// that predate the tail simply never look past the body, so old and new
// processes interoperate in both directions (see DESIGN.md §14).

/// Everything a replica needs to run the whole schedule deterministically.
/// A subset of SystemConfig plus the full request trace; features the live
/// runtime does not reproduce (power metering, file transfers, tariffs,
/// the heartbeat ring) are intentionally absent — see DESIGN.md §11 for
/// the determinism boundary.
struct LiveConfig {
  std::string algorithm = "lddm";
  std::uint32_t epochs = 3;
  double epoch_length = 1.0;
  std::uint32_t num_clients = 8;
  double max_latency = 1.8;
  double transfer_window_fraction = 0.7;
  bool derive_energy_model_from_power = true;
  bool warm_start = true;
  bool retry_shed = true;
  std::uint32_t max_retries = 3;
  /// Iterate storage for the iterative backends (see SystemConfig); every
  /// replica must use the same representation or round digests diverge.
  core::SolverRepresentation representation =
      core::SolverRepresentation::kDense;
  /// Kernel dispatch (see SystemConfig::simd).  Shipped on the wire for the
  /// same reason as the representation: kAuto results depend on the host's
  /// widest ISA, so a mixed-ISA cluster must pin kScalar (or accept the
  /// coordinator's digest checks flagging the divergence).
  common::simd::Mode simd = common::simd::Mode::kScalar;
  std::uint64_t seed = 1;
  std::vector<optim::ReplicaParams> replicas;
  Matrix latency;  ///< clients x replicas, ms
  power::PowerModelParams power;
  std::vector<power::PowerModelParams> power_per_replica;
  core::CdpsmOptions cdpsm{.step = 0.0, .max_rounds = 300,
                           .tolerance = 1e-4, .patience = 3};
  core::LddmOptions lddm{.rho = 2.0, .mu_step = 0.0, .mu_step_factor = 3.0,
                         .max_rounds = 300, .tolerance = 1e-4,
                         .patience = 3};
  core::AdmmOptions admm{.rho = 1.0, .max_rounds = 300, .tolerance = 1e-4,
                         .patience = 3};
  /// The full request schedule, sorted by arrival; every replica buckets
  /// it into epochs identically (epoch = floor(arrival / epoch_length)).
  std::vector<workload::Request> requests;

  [[nodiscard]] std::size_t num_replicas() const { return replicas.size(); }
  /// The SystemConfig the algorithm registry and epoch-problem builder
  /// consume (telemetry unset, ring disabled).
  [[nodiscard]] core::SystemConfig to_system_config() const;
};

/// A sane default workload + cluster for live smoke runs: heterogeneous
/// prices/bandwidths, a deterministic request schedule from `seed`.
[[nodiscard]] LiveConfig make_default_live_config(std::size_t num_replicas,
                                                  std::size_t num_clients,
                                                  std::uint32_t epochs,
                                                  std::uint64_t seed);

struct LiveHello {
  net::NodeId node = 0;
  std::uint16_t port = 0;  ///< 0 over transports without ports (inproc)
  telemetry::TraceContext trace;
};

struct PeerEntry {
  net::NodeId node = 0;
  std::uint16_t port = 0;
};

struct LivePeers {
  std::uint64_t generation = 0;
  std::vector<PeerEntry> peers;
  std::vector<std::uint8_t> alive;  ///< per replica id, 1 = scheduled
  telemetry::TraceContext trace;
};

struct LiveStart {
  std::uint32_t epoch = 0;
  std::uint64_t generation = 0;
  double now = 0.0;  ///< logical epoch-start time (tariff clock)
  std::vector<std::uint8_t> alive;
  telemetry::TraceContext trace;
};

struct LiveRound {
  std::uint32_t epoch = 0;
  std::uint64_t generation = 0;
  std::uint32_t round = 0;
  std::uint64_t digest = 0;  ///< sender's post-step state digest
  double load = 0.0;         ///< sender's assigned load after this round
  telemetry::TraceContext trace;
};

struct LiveEpochDone {
  std::uint32_t epoch = 0;
  std::uint64_t generation = 0;
  std::uint32_t rounds = 0;
  std::uint64_t digest = 0;  ///< digest of the full final allocation
  double objective = 0.0;
  std::uint32_t digest_mismatches = 0;  ///< round digests that disagreed
  /// Column encoding.  kDenseColumn ships every row; kSparseColumn ships
  /// only the nonzero rows as (index, value) pairs over num_rows rows —
  /// what the compact representations use, since a replica's column has at
  /// most nnz-of-its-feasible-set entries.  The coordinator zero-fills, so
  /// the two encodings assemble identical allocations.
  static constexpr std::uint8_t kDenseColumn = 0;
  static constexpr std::uint8_t kSparseColumn = 1;
  std::uint8_t kind = kDenseColumn;
  std::uint32_t num_rows = 0;            ///< active clients (kSparseColumn)
  std::vector<std::uint32_t> indices;    ///< row ids (kSparseColumn)
  /// Dense: one value per active client.  Sparse: one value per index.
  std::vector<double> column;
  telemetry::TraceContext trace;
};

struct LiveStall {
  std::uint32_t epoch = 0;
  std::uint64_t generation = 0;
  std::uint32_t round = 0;
  std::vector<std::uint8_t> missing;  ///< per replica id, 1 = not heard from
  telemetry::TraceContext trace;
};

/// Flushed span-buffer batch (kTelemetry): a replica ships the events its
/// local steady-clock tracer recorded since the previous flush.  Timestamps
/// are the *sender's* clock; the coordinator aligns them with its
/// ClockOffsetEstimator offsets before merging.  An empty batch is legal
/// (a flush with nothing new still reports `dropped`).
struct LiveTelemetry {
  net::NodeId node = 0;
  std::uint64_t dropped = 0;  ///< sender-side ring-buffer drops so far
  std::vector<telemetry::TraceEvent> events;
  telemetry::TraceContext trace;
};

/// Clock probe (kTimeProbe): the coordinator stamps its own steady clock;
/// the replica echoes it back with its own reading (kTimeReply).  The
/// coordinator computes the NTP-style midpoint offset from the echo and
/// its receive time — see telemetry::ClockOffsetEstimator.
struct LiveTimeProbe {
  std::uint32_t probe = 0;     ///< sequence number, echoed verbatim
  std::int64_t sent_ns = 0;    ///< sender steady-clock at send
};

struct LiveTimeReply {
  std::uint32_t probe = 0;
  std::int64_t probe_ns = 0;    ///< echoed LiveTimeProbe::sent_ns
  std::int64_t replica_ns = 0;  ///< replica steady-clock at reply
};

/// FNV-1a over raw double bit patterns — the replication digest.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash, double value);
[[nodiscard]] std::uint64_t digest_doubles(const double* values,
                                           std::size_t count);
[[nodiscard]] std::uint64_t digest_matrix(const Matrix& matrix);
[[nodiscard]] std::uint64_t digest_samples(
    const std::vector<telemetry::RoundSample>& samples);

// Encoders build a complete net::Message (payload = encoded bytes, bytes =
// payload size); decoders throw std::out_of_range / std::length_error on
// malformed frames (callers treat that as a protocol error).
[[nodiscard]] net::Message encode_hello(net::NodeId from, net::NodeId to,
                                        const LiveHello& hello);
[[nodiscard]] LiveHello decode_hello(const net::Message& msg,
                                     std::size_t max_frame_bytes);

/// LiveConfig itself stays inside the determinism boundary, so the trace
/// context rides as a trailing argument instead of a struct member;
/// decode_config ignores the tail (config delivery needs no causal link).
[[nodiscard]] net::Message encode_config(
    net::NodeId from, net::NodeId to, const LiveConfig& config,
    const telemetry::TraceContext& trace = {});
[[nodiscard]] LiveConfig decode_config(const net::Message& msg,
                                       std::size_t max_frame_bytes);

[[nodiscard]] net::Message encode_peers(net::NodeId from, net::NodeId to,
                                        const LivePeers& peers);
[[nodiscard]] LivePeers decode_peers(const net::Message& msg,
                                     std::size_t max_frame_bytes);

[[nodiscard]] net::Message encode_start(net::NodeId from, net::NodeId to,
                                        const LiveStart& start);
[[nodiscard]] LiveStart decode_start(const net::Message& msg,
                                     std::size_t max_frame_bytes);

[[nodiscard]] net::Message encode_round(net::NodeId from, net::NodeId to,
                                        const LiveRound& round);
[[nodiscard]] LiveRound decode_round(const net::Message& msg,
                                     std::size_t max_frame_bytes);

/// RoundSample is a telemetry type, so (like kConfig) the trace context
/// rides beside it; decode fills `trace` when non-null and a tail exists.
[[nodiscard]] net::Message encode_sample(
    net::NodeId from, net::NodeId to, const telemetry::RoundSample& s,
    const telemetry::TraceContext& trace = {});
[[nodiscard]] telemetry::RoundSample decode_sample(
    const net::Message& msg, std::size_t max_frame_bytes,
    telemetry::TraceContext* trace = nullptr);

[[nodiscard]] net::Message encode_epoch_done(net::NodeId from, net::NodeId to,
                                             const LiveEpochDone& done);
[[nodiscard]] LiveEpochDone decode_epoch_done(const net::Message& msg,
                                              std::size_t max_frame_bytes);

[[nodiscard]] net::Message encode_stall(net::NodeId from, net::NodeId to,
                                        const LiveStall& stall);
[[nodiscard]] LiveStall decode_stall(const net::Message& msg,
                                     std::size_t max_frame_bytes);

[[nodiscard]] net::Message encode_shutdown(net::NodeId from, net::NodeId to);

[[nodiscard]] net::Message encode_telemetry(net::NodeId from, net::NodeId to,
                                            const LiveTelemetry& batch);
[[nodiscard]] LiveTelemetry decode_telemetry(const net::Message& msg,
                                             std::size_t max_frame_bytes);

[[nodiscard]] net::Message encode_time_probe(net::NodeId from, net::NodeId to,
                                             const LiveTimeProbe& probe);
[[nodiscard]] LiveTimeProbe decode_time_probe(const net::Message& msg,
                                              std::size_t max_frame_bytes);

[[nodiscard]] net::Message encode_time_reply(net::NodeId from, net::NodeId to,
                                             const LiveTimeReply& reply);
[[nodiscard]] LiveTimeReply decode_time_reply(const net::Message& msg,
                                              std::size_t max_frame_bytes);

}  // namespace edr::runtime
