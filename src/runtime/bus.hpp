// MessageBus — the live runtime's view of a transport.
//
// The replica and coordinator logic is transport-agnostic: the same
// deterministic state machines run over real TCP sockets (separate OS
// processes, examples/edr_replicad.cpp) and over the threaded in-process
// transport (LocalCluster, the test/bench path).  This interface is the
// seam: post a frame, wait for a frame, learn a peer's address.
//
// Loss of an established TCP connection surfaces as a synthetic kPeerDown
// frame on the receive path (from = the lost peer), so callers handle
// "peer died" and "peer said goodbye" through one message loop.  The
// inproc transport has no connections to lose; there, death is detected
// by the round-barrier timeout instead (see LiveReplica).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/inproc.hpp"
#include "net/network.hpp"
#include "net/tcp_transport.hpp"

namespace edr::runtime {

class MessageBus {
 public:
  virtual ~MessageBus() = default;

  [[nodiscard]] virtual net::NodeId self() const = 0;
  /// Queue `message` for delivery; false when the destination is unknown,
  /// its queue is full, or the transport has shut down.
  virtual bool post(net::Message message) = 0;
  /// Wait up to `timeout_s` for a frame addressed to self; nullopt on
  /// timeout or shutdown.
  virtual std::optional<net::Message> receive_for(double timeout_s) = 0;
  /// Learn a peer's address (no-op for transports without addresses).
  virtual void connect_peer(net::NodeId peer, const std::string& host,
                            std::uint16_t port) = 0;
  /// Frame-size cap to decode incoming payloads under.
  [[nodiscard]] virtual std::size_t max_frame_bytes() const = 0;
};

/// MessageBus over a TcpTransport.  Connection losses become synthetic
/// kPeerDown frames, queued locally and drained ahead of socket frames.
class TcpBus final : public MessageBus {
 public:
  explicit TcpBus(net::TcpTransport& transport);

  [[nodiscard]] net::NodeId self() const override;
  bool post(net::Message message) override;
  std::optional<net::Message> receive_for(double timeout_s) override;
  void connect_peer(net::NodeId peer, const std::string& host,
                    std::uint16_t port) override;
  [[nodiscard]] std::size_t max_frame_bytes() const override;

 private:
  net::TcpTransport& transport_;
  std::mutex mutex_;
  std::vector<net::NodeId> down_;  // peers lost since the last receive
};

/// MessageBus over a shared InprocTransport (one per thread-node).
class InprocBus final : public MessageBus {
 public:
  InprocBus(net::InprocTransport& transport, net::NodeId self,
            std::size_t max_frame_bytes = 16u << 20);

  [[nodiscard]] net::NodeId self() const override;
  bool post(net::Message message) override;
  std::optional<net::Message> receive_for(double timeout_s) override;
  void connect_peer(net::NodeId, const std::string&, std::uint16_t) override {
  }
  [[nodiscard]] std::size_t max_frame_bytes() const override {
    return max_frame_bytes_;
  }

 private:
  net::InprocTransport& transport_;
  net::NodeId self_;
  std::size_t max_frame_bytes_;
};

}  // namespace edr::runtime
