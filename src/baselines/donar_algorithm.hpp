// DONAR as a DistributedAlgorithm backend.
//
// The related-work baseline (distributed mapping nodes running a
// consensus-ish balance iteration) hosted on the same EpochPipeline as the
// EDR schedulers: solvers are the mapping nodes (not the replicas), each
// client announces only to its owning node, and one assignment per client
// flows back from that owner.  DonarSystem composes this backend with the
// DONAR PipelinePolicy (no per-client links, no power model, no
// transfers).
#pragma once

#include <memory>
#include <vector>

#include "baselines/donar.hpp"
#include "core/algorithm.hpp"

namespace edr::baselines {

/// DONAR's message-type ids (below the ring's 100-199 range, disjoint from
/// the host protocol and the EDR round types).
enum DonarMessageType : int {
  kDonarRequest = 50,     ///< client -> owning mapping node: new request
  kDonarAggregate = 51,   ///< mapping node -> mapping node: load aggregate
  kDonarAssignment = 52,  ///< owning mapping node -> client: final share
};

class DonarAlgorithm final : public core::DistributedAlgorithm {
 public:
  explicit DonarAlgorithm(DonarOptions options) : options_(options) {}

  [[nodiscard]] const char* name() const override { return "donar"; }
  [[nodiscard]] const char* display_name() const override { return "DONAR"; }
  [[nodiscard]] std::span<const core::MessageTypeInfo> message_types()
      const override;

  [[nodiscard]] int announce_type() const override { return kDonarRequest; }
  void announce_targets(std::uint32_t client, std::size_t num_solvers,
                        std::vector<std::size_t>& out) const override;

  [[nodiscard]] int assignment_type() const override {
    return kDonarAssignment;
  }
  void plan_assignments(const core::EpochContext& ctx,
                        std::vector<core::PlannedMessage>& out) const override;

  [[nodiscard]] double compute_factor(
      const core::EpochContext& ctx) const override;
  void begin_epoch(const core::EpochContext& ctx) override;
  void plan_round(const core::EpochContext& ctx,
                  std::vector<core::PlannedMessage>& out) const override;
  bool step_round(const core::EpochContext& ctx) override;
  void observe(const core::EpochContext& ctx,
               std::vector<telemetry::RoundSample>& out) override;
  Matrix extract_allocation(const core::EpochContext& ctx) override;
  void abort_epoch() override;

 private:
  DonarOptions options_;
  std::unique_ptr<DonarEngine> engine_;
  DonarRoundStats last_round_;
  std::vector<double> previous_loads_;  // for per-replica load deltas
};

/// Add "donar" (default DonarOptions) to the process-wide algorithm
/// registry.  Idempotent; DonarSystem calls it on construction, and tests
/// or tools that want `SystemConfig::algorithm = "donar"` call it directly.
void register_donar_algorithm();

}  // namespace edr::baselines
