#include "baselines/donar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/wire.hpp"
#include "optim/flow.hpp"
#include "optim/projection.hpp"

namespace edr::baselines {

DonarEngine::DonarEngine(const optim::Problem& problem, DonarOptions options)
    : problem_(&problem), options_(options) {
  const std::string issue = problem.validate();
  if (!issue.empty())
    throw std::invalid_argument("DonarEngine: invalid problem: " + issue);
  if (options_.num_mapping_nodes == 0)
    throw std::invalid_argument("DonarEngine: need at least one mapping node");

  auto start = optim::initial_feasible_point(problem);
  if (!start)
    throw std::runtime_error("DonarEngine: instance is not feasible");
  allocation_ = std::move(*start);
  aggregate_ = allocation_.col_sums();

  // Uniform split weights over the replicas (the operator default).
  targets_.assign(problem.num_replicas(),
                  problem.total_demand() /
                      static_cast<double>(problem.num_replicas()));
}

std::vector<double> DonarEngine::step_node(std::size_t m) {
  const std::size_t clients = problem_->num_clients();
  const std::size_t replicas = problem_->num_replicas();
  const double kappa = options_.balance_weight;

  // Count owned rows for the inner step size (Hessian of the balance term
  // couples all owned rows of a column: spectral norm 2κ·|C_m|).
  std::size_t owned = 0;
  for (std::size_t c = 0; c < clients; ++c)
    if (owner(c) == m) ++owned;
  const double step =
      1.0 / (2.0 * kappa * static_cast<double>(std::max<std::size_t>(owned, 1)) +
             1.0);

  std::vector<double> mask(replicas);
  for (std::size_t it = 0; it < options_.inner_steps; ++it) {
    for (std::size_t c = 0; c < clients; ++c) {
      if (owner(c) != m) continue;
      auto row = allocation_.row(c);
      for (std::size_t n = 0; n < replicas; ++n) {
        const double grad = problem_->latency(c, n) +
                            2.0 * kappa * (aggregate_[n] - targets_[n]);
        aggregate_[n] -= row[n];
        row[n] -= step * grad;
        mask[n] = problem_->feasible_pair(c, n) ? 1.0 : 0.0;
      }
      optim::project_masked_simplex(row, mask, problem_->demand(c));
      for (std::size_t n = 0; n < replicas; ++n) aggregate_[n] += row[n];
    }
  }

  std::vector<double> own_aggregate(replicas, 0.0);
  for (std::size_t c = 0; c < clients; ++c)
    if (owner(c) == m)
      for (std::size_t n = 0; n < replicas; ++n)
        own_aggregate[n] += allocation_(c, n);
  return own_aggregate;
}

DonarRoundStats DonarEngine::round() {
  DonarRoundStats stats;
  for (std::size_t m = 0; m < options_.num_mapping_nodes; ++m) step_node(m);
  // Refresh the exact aggregate (guards against incremental drift).
  aggregate_ = allocation_.col_sums();

  stats.round = ++rounds_;
  stats.bytes_exchanged = options_.num_mapping_nodes * bytes_per_node_round();

  Matrix current = solution();
  stats.objective = donar_objective(current);
  stats.movement =
      last_solution_.empty() ? 0.0 : current.distance(last_solution_);
  const double scale = std::max(problem_->total_demand(), 1.0);
  if (!last_solution_.empty() &&
      stats.movement <= options_.tolerance * scale) {
    if (++stable_rounds_ >= options_.patience) converged_ = true;
  } else {
    stable_rounds_ = 0;
  }
  last_solution_ = std::move(current);
  return stats;
}

optim::ConvergenceTrace DonarEngine::run() {
  optim::ConvergenceTrace trace;
  double bytes_total = 0.0;
  while (!converged_ && rounds_ < options_.max_rounds) {
    const auto stats = round();
    bytes_total += static_cast<double>(stats.bytes_exchanged);
    trace.record({stats.round, stats.objective, stats.movement, bytes_total});
  }
  return trace;
}

double DonarEngine::donar_objective(const Matrix& allocation) const {
  double perf = 0.0;
  for (std::size_t c = 0; c < problem_->num_clients(); ++c)
    for (std::size_t n = 0; n < problem_->num_replicas(); ++n)
      perf += allocation(c, n) * problem_->latency(c, n);
  const auto loads = allocation.col_sums();
  double balance = 0.0;
  for (std::size_t n = 0; n < problem_->num_replicas(); ++n) {
    const double d = loads[n] - targets_[n];
    balance += d * d;
  }
  return perf + options_.balance_weight * balance;
}

Matrix DonarEngine::solution() const {
  Matrix current = allocation_;
  optim::project_feasible(*problem_, current);
  return current;
}

std::size_t DonarEngine::bytes_per_node_round() const {
  // Each mapping node broadcasts its aggregate load vector to its peers.
  return net::wire_size_doubles(problem_->num_replicas()) *
         (options_.num_mapping_nodes - 1);
}

core::ScheduleResult DonarScheduler::schedule(const optim::Problem& problem) {
  DonarEngine engine(problem, options_);
  engine.run();
  core::ScheduleResult result;
  result.allocation = engine.solution();
  result.rounds = engine.rounds_executed();
  result.converged = engine.converged();
  result.messages = result.rounds * options_.num_mapping_nodes *
                    (options_.num_mapping_nodes - 1);
  result.bytes = result.rounds * options_.num_mapping_nodes *
                 engine.bytes_per_node_round();
  return result;
}

}  // namespace edr::baselines
