// Message-driven DONAR deployment on the simulated network (paper Fig 9).
//
// Clients submit requests to their assigned mapping node; mapping nodes
// batch them per epoch, run DonarEngine rounds with real aggregate-exchange
// traffic (round k+1 starts after every round-k broadcast is delivered),
// then return assignments.  Only decision latency is modelled — Fig 9
// compares response time, not energy — so there are no power meters or
// transfers here.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/donar.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "workload/trace.hpp"

namespace edr::baselines {

struct DonarSystemConfig {
  DonarOptions donar;
  std::vector<optim::ReplicaParams> replicas;
  std::size_t num_clients = 8;
  Matrix latency;  ///< client x replica, ms; empty = generated
  Milliseconds min_link_latency = 0.1;
  Milliseconds max_link_latency = 2.0;
  Milliseconds max_latency = 1.8;
  SimTime epoch_length = 1.0;
  double compute_seconds_per_entry = 2e-7;
  /// Per-request handling cost at the mapping nodes (same role as
  /// core::SystemConfig::request_service_seconds).
  double request_service_seconds = 5e-4;
  std::uint64_t seed = 1;
};

struct DonarRunReport {
  std::vector<double> response_times_ms;
  [[nodiscard]] double mean_response_ms() const;
  std::size_t epochs = 0;
  std::size_t total_rounds = 0;
  std::size_t requests_served = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  SimTime makespan = 0.0;
};

class DonarSystem {
 public:
  DonarSystem(DonarSystemConfig config, workload::Trace trace);
  ~DonarSystem();
  DonarSystem(const DonarSystem&) = delete;
  DonarSystem& operator=(const DonarSystem&) = delete;

  /// Execute the whole trace; may be called once.
  DonarRunReport run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace edr::baselines
