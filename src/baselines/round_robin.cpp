#include "baselines/round_robin.hpp"

namespace edr::baselines {

core::ScheduleResult RoundRobinScheduler::schedule(
    const optim::Problem& problem) {
  core::ScheduleResult result;
  result.allocation = core::round_robin_allocation(problem);
  // No coordination: each replica can derive the split from the request
  // broadcast alone.  Count only the assignment fan-out.
  result.messages = problem.num_clients() * problem.num_replicas();
  result.bytes = result.messages * 16;
  return result;
}

}  // namespace edr::baselines
