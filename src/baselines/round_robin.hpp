// Round-Robin baseline (the paper's Figs 6-8 comparison point).
#pragma once

#include "core/scheduler.hpp"

namespace edr::baselines {

/// Energy-oblivious equal split across latency-feasible replicas; see
/// core::round_robin_allocation for the exact policy.
class RoundRobinScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "RoundRobin"; }
  [[nodiscard]] core::ScheduleResult schedule(
      const optim::Problem& problem) override;
};

}  // namespace edr::baselines
