#include "baselines/donar_algorithm.hpp"

#include "core/algorithm_registry.hpp"
#include "core/system.hpp"
#include "net/wire.hpp"

namespace edr::baselines {

namespace {
constexpr core::MessageTypeInfo kDonarTypes[] = {
    {kDonarRequest, "donar_request", /*round=*/false},
    {kDonarAggregate, "donar_aggregate", /*round=*/true},
    {kDonarAssignment, "donar_assignment", /*round=*/false},
};
}  // namespace

std::span<const core::MessageTypeInfo> DonarAlgorithm::message_types() const {
  return kDonarTypes;
}

void DonarAlgorithm::announce_targets(std::uint32_t client,
                                      std::size_t num_solvers,
                                      std::vector<std::size_t>& out) const {
  // One request message to the owning mapping node only.
  out.clear();
  out.push_back(client % num_solvers);
}

void DonarAlgorithm::plan_assignments(
    const core::EpochContext& ctx,
    std::vector<core::PlannedMessage>& out) const {
  // One assignment per client, from its owner (the EDR default would have
  // every replica notify every client).
  out.clear();
  for (const std::uint32_t c : *ctx.active_clients)
    out.push_back({core::Endpoint::kSolver, c % ctx.num_solvers,
                   core::Endpoint::kClient, c, kDonarAssignment, 16});
}

double DonarAlgorithm::compute_factor(const core::EpochContext& ctx) const {
  (void)ctx;
  return static_cast<double>(options_.inner_steps);
}

void DonarAlgorithm::begin_epoch(const core::EpochContext& ctx) {
  engine_ = std::make_unique<DonarEngine>(*ctx.problem, options_);
  last_round_ = {};
  previous_loads_.assign(ctx.problem->num_replicas(), 0.0);
}

void DonarAlgorithm::plan_round(const core::EpochContext& ctx,
                                std::vector<core::PlannedMessage>& out) const {
  // Every mapping node broadcasts its load aggregate to every peer.
  out.clear();
  const std::size_t bytes =
      net::wire_size_doubles(ctx.problem->num_replicas());
  for (std::size_t i = 0; i < ctx.num_solvers; ++i) {
    for (std::size_t j = 0; j < ctx.num_solvers; ++j) {
      if (i == j) continue;
      out.push_back({core::Endpoint::kSolver, i, core::Endpoint::kSolver, j,
                     kDonarAggregate, bytes});
    }
  }
}

bool DonarAlgorithm::step_round(const core::EpochContext& ctx) {
  (void)ctx;
  last_round_ = engine_->round();
  return engine_->converged() ||
         engine_->rounds_executed() >= options_.max_rounds;
}

void DonarAlgorithm::observe(const core::EpochContext& ctx,
                             std::vector<telemetry::RoundSample>& out) {
  if (!engine_ || engine_->rounds_executed() == 0) return;
  const auto& loads = engine_->aggregate();
  const auto& replicas = *ctx.active_replicas;
  const std::size_t mapping_nodes = options_.num_mapping_nodes;
  for (std::size_t col = 0; col < replicas.size(); ++col) {
    const double load = loads[col];
    telemetry::RoundSample sample;
    sample.round = engine_->rounds_executed();
    sample.replica = static_cast<std::uint32_t>(replicas[col]);
    // DONAR's objective is joint across mapping nodes, not per replica;
    // every sample carries the global value, with the allocation movement
    // standing in for the (absent) gradient/disagreement signals.
    sample.objective = last_round_.objective;
    sample.round_objective = last_round_.objective;
    sample.gradient_norm = last_round_.movement;
    sample.disagreement = last_round_.movement;
    sample.capacity_slack = ctx.problem->replica(col).bandwidth - load;
    sample.load = load;
    sample.load_delta = load - previous_loads_[col];
    // Round traffic belongs to the mapping nodes, not the replicas;
    // charge the epoch totals through the first sample.
    if (col == 0) {
      sample.messages_sent = mapping_nodes * (mapping_nodes - 1);
      sample.bytes_sent = mapping_nodes * engine_->bytes_per_node_round();
    }
    out.push_back(sample);
    previous_loads_[col] = load;
  }
}

Matrix DonarAlgorithm::extract_allocation(const core::EpochContext& ctx) {
  (void)ctx;
  Matrix allocation = engine_->solution();
  engine_.reset();
  return allocation;
}

void DonarAlgorithm::abort_epoch() { engine_.reset(); }

void register_donar_algorithm() {
  core::AlgorithmRegistry::instance().add(
      "donar",
      "Latency-first mapping-node baseline (no energy model)",
      [](const core::SystemConfig&) {
        return std::make_unique<DonarAlgorithm>(DonarOptions{});
      });
}

}  // namespace edr::baselines
