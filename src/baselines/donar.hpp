// DONAR — decentralized, performance-aware (energy-oblivious) replica
// selection, reimplemented from Wendell et al., "DONAR: decentralized
// server selection for cloud services", SIGCOMM 2010 (the paper's Fig 9
// comparison system).
//
// DONAR's mapping nodes each own a partition of the clients and minimize
//
//   Σ_c Σ_n p_{c,n} · perf(c, n)  +  κ · Σ_n (s_n − w_n·S)²
//
// subject to the per-client demand simplices and bandwidth caps, where
// perf(c, n) is the client->replica network cost (RTT here), w_n are
// operator split weights (uniform by default), S the total demand, and κ
// the load-balance pressure.  Crucially there is NO energy/price term —
// that is the point of the comparison.
//
// Decentralization follows the original: each mapping node re-solves its
// *local* share of the objective against the latest aggregate loads
// reported by the other mapping nodes, then broadcasts its own aggregate;
// the fixed point is the global optimum of the (strictly convex) objective.
// Per-round communication is |M|·(|M|−1) aggregate vectors of |N| doubles —
// the O(|C|·|N|·|M|) total the paper quotes for DONAR.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "core/scheduler.hpp"
#include "optim/convergence.hpp"
#include "optim/problem.hpp"

namespace edr::baselines {

struct DonarOptions {
  std::size_t num_mapping_nodes = 3;  // paper's Fig 9 setup
  /// Load-balance pressure κ (relative to perf costs).
  double balance_weight = 0.05;
  /// Inner projected-gradient steps per node per round.
  std::size_t inner_steps = 8;
  std::size_t max_rounds = 200;
  /// Converged when the assembled allocation stops moving.
  double tolerance = 1e-5;
  std::size_t patience = 3;
};

struct DonarRoundStats {
  std::size_t round = 0;
  double objective = 0.0;  ///< DONAR's own (perf + balance) objective
  double movement = 0.0;
  std::size_t bytes_exchanged = 0;
};

class DonarEngine {
 public:
  DonarEngine(const optim::Problem& problem, DonarOptions options = {});

  /// Mapping node that owns client c (round-robin partition).
  [[nodiscard]] std::size_t owner(std::size_t client) const {
    return client % options_.num_mapping_nodes;
  }

  /// One local step for mapping node m given every node's last aggregate
  /// loads; updates this node's rows and returns its new aggregate.
  std::vector<double> step_node(std::size_t m);

  /// One synchronous round over all mapping nodes.
  DonarRoundStats round();

  /// Run to convergence or the round cap.
  optim::ConvergenceTrace run();

  [[nodiscard]] bool converged() const { return converged_; }
  [[nodiscard]] std::size_t rounds_executed() const { return rounds_; }

  /// DONAR's objective value for an allocation (perf + balance, no energy).
  [[nodiscard]] double donar_objective(const Matrix& allocation) const;

  /// Current allocation, repaired to exact feasibility.
  [[nodiscard]] Matrix solution() const;

  /// Per-replica aggregate loads s_n as of the last round (exact column
  /// sums — round() refreshes them); feeds the flight recorder.
  [[nodiscard]] const std::vector<double>& aggregate() const {
    return aggregate_;
  }

  [[nodiscard]] std::size_t bytes_per_node_round() const;
  [[nodiscard]] const DonarOptions& options() const { return options_; }

 private:
  const optim::Problem* problem_;
  DonarOptions options_;
  Matrix allocation_;
  std::vector<double> aggregate_;       // current s_n as known globally
  std::vector<double> targets_;         // w_n · S
  Matrix last_solution_;
  std::size_t stable_rounds_ = 0;
  std::size_t rounds_ = 0;
  bool converged_ = false;
};

/// Scheduler-interface wrapper (for the cost comparisons: DONAR picks good
/// network paths but ignores electricity prices).
class DonarScheduler final : public core::Scheduler {
 public:
  explicit DonarScheduler(DonarOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "DONAR"; }
  [[nodiscard]] core::ScheduleResult schedule(
      const optim::Problem& problem) override;

 private:
  DonarOptions options_;
};

}  // namespace edr::baselines
