#include "baselines/donar_system.hpp"

#include <stdexcept>
#include <utility>

#include "baselines/donar_algorithm.hpp"
#include "common/math_util.hpp"
#include "core/epoch_pipeline.hpp"
#include "core/system.hpp"

namespace edr::baselines {

double DonarRunReport::mean_response_ms() const {
  return mean(std::span<const double>{response_times_ms});
}

namespace {

/// DONAR host policy: mapping nodes are the solvers (a fixed count, not one
/// per replica), every path rides the default interconnect link, and only
/// decision latency is modelled — no power meters, no transfers, and the
/// full epoch length is usable capacity.
core::PipelinePolicy donar_policy(const DonarSystemConfig& cfg) {
  core::PipelinePolicy policy;
  policy.num_solvers = cfg.donar.num_mapping_nodes;
  policy.solvers_are_replicas = false;
  policy.per_client_links = false;
  policy.drop_unreachable_clients = false;
  policy.model_power = false;
  policy.file_transfers = false;
  policy.transfer_window_fraction = 1.0;
  policy.run_to_drain = true;
  policy.split_service_delay = true;
  return policy;
}

core::SystemConfig to_system_config(const DonarSystemConfig& cfg) {
  core::SystemConfig sys;
  sys.algorithm = "donar";
  sys.replicas = cfg.replicas;
  sys.num_clients = cfg.num_clients;
  sys.latency = cfg.latency;
  sys.min_link_latency = cfg.min_link_latency;
  sys.max_link_latency = cfg.max_link_latency;
  sys.max_latency = cfg.max_latency;
  sys.epoch_length = cfg.epoch_length;
  sys.compute_seconds_per_entry = cfg.compute_seconds_per_entry;
  sys.request_service_seconds = cfg.request_service_seconds;
  sys.seed = cfg.seed;
  sys.derive_energy_model_from_power = false;
  sys.retry_shed = false;
  sys.enable_ring = false;
  sys.record_traces = false;
  return sys;
}

}  // namespace

struct DonarSystem::Impl {
  DonarSystemConfig cfg;
  core::EpochPipeline pipeline;

  Impl(DonarSystemConfig config, workload::Trace trace)
      : cfg(std::move(config)),
        pipeline(to_system_config(cfg), donar_policy(cfg),
                 std::make_unique<DonarAlgorithm>(cfg.donar),
                 std::move(trace)) {}
};

DonarSystem::DonarSystem(DonarSystemConfig config, workload::Trace trace) {
  if (config.replicas.empty())
    throw std::invalid_argument("DonarSystem: no replicas configured");
  if (config.donar.num_mapping_nodes == 0)
    throw std::invalid_argument("DonarSystem: no mapping nodes");
  register_donar_algorithm();
  impl_ = std::make_unique<Impl>(std::move(config), std::move(trace));
}

DonarSystem::~DonarSystem() = default;

DonarRunReport DonarSystem::run() {
  const core::RunReport report = impl_->pipeline.run();
  DonarRunReport out;
  out.response_times_ms = report.response_times_ms;
  out.epochs = report.epochs;
  out.total_rounds = report.total_rounds;
  out.requests_served = report.requests_served;
  out.control_messages = report.control_messages;
  out.control_bytes = report.control_bytes;
  out.makespan = report.makespan;
  return out;
}

}  // namespace edr::baselines
