#include "baselines/donar_system.hpp"

#include <deque>
#include <map>
#include <stdexcept>

#include "common/math_util.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "net/sim.hpp"
#include "net/wire.hpp"
#include "optim/flow.hpp"

namespace edr::baselines {

namespace {
enum DonarMessageType : int {
  kDonarRequest = 50,
  kDonarAggregate = 51,
  kDonarAssignment = 52,
};
}  // namespace

double DonarRunReport::mean_response_ms() const {
  return mean(std::span<const double>{response_times_ms});
}

struct DonarSystem::Impl {
  DonarSystemConfig cfg;
  workload::Trace trace;
  Rng rng;
  net::Simulator sim;
  net::SimNetwork network{sim};

  std::size_t num_nodes = 0;    // mapping nodes
  std::size_t num_clients = 0;

  [[nodiscard]] net::NodeId mapping_node(std::size_t m) const {
    return static_cast<net::NodeId>(m);
  }
  [[nodiscard]] net::NodeId client_node(std::size_t c) const {
    return static_cast<net::NodeId>(num_nodes + c);
  }

  struct Pending {
    std::uint32_t client = 0;
    SimTime arrival = 0.0;
    Megabytes size_mb = 0.0;
  };
  std::vector<std::vector<Pending>> epoch_buckets;
  std::deque<std::size_t> solve_queue;
  bool solve_in_flight = false;

  std::size_t current_epoch = 0;
  std::optional<optim::Problem> problem;
  std::vector<std::uint32_t> active_clients;
  std::vector<Pending> current_requests;
  std::unique_ptr<DonarEngine> engine;
  std::size_t round_msgs_pending = 0;

  DonarRunReport report;
  std::map<std::size_t, std::size_t> expected_assignments;
  std::map<std::size_t, std::vector<SimTime>> pending_responses;

  Impl(DonarSystemConfig config, workload::Trace workload_trace)
      : cfg(std::move(config)), trace(std::move(workload_trace)),
        rng(cfg.seed) {
    num_nodes = cfg.donar.num_mapping_nodes;
    num_clients = cfg.num_clients;
    if (cfg.replicas.empty())
      throw std::invalid_argument("DonarSystem: no replicas configured");
    if (num_nodes == 0)
      throw std::invalid_argument("DonarSystem: no mapping nodes");
    if (cfg.latency.empty())
      cfg.latency = core::make_latency_matrix(
          rng, num_clients, cfg.replicas.size(), cfg.min_link_latency,
          cfg.max_link_latency, cfg.max_latency);
  }

  void setup() {
    net::LinkParams link;
    link.latency = cfg.min_link_latency;
    link.bandwidth_mbps = cfg.replicas.front().bandwidth;
    network.set_default_link(link);

    for (std::size_t m = 0; m < num_nodes; ++m)
      network.attach(mapping_node(m),
                     [this](const net::Message& msg) { on_node(msg); });
    for (std::size_t c = 0; c < num_clients; ++c)
      network.attach(client_node(c),
                     [this](const net::Message& msg) { on_client(msg); });

    const SimTime horizon = std::max(trace.horizon(), cfg.epoch_length) + 1e-9;
    epoch_buckets.assign(
        static_cast<std::size_t>(horizon / cfg.epoch_length) + 1, {});
    for (const auto& request : trace.requests()) {
      const auto epoch =
          static_cast<std::size_t>(request.arrival / cfg.epoch_length);
      epoch_buckets[epoch].push_back(
          {request.client, request.arrival, request.size_mb});
      sim.schedule_at(request.arrival, [this, c = request.client] {
        // One request message to the owning mapping node.
        send(client_node(c), mapping_node(c % num_nodes), kDonarRequest, 28);
      });
    }
    for (std::size_t e = 0; e < epoch_buckets.size(); ++e) {
      sim.schedule_at(static_cast<double>(e + 1) * cfg.epoch_length,
                      [this, e] {
                        if (!epoch_buckets[e].empty()) {
                          solve_queue.push_back(e);
                          maybe_start();
                        }
                      });
    }
  }

  void send(net::NodeId from, net::NodeId to, int type, std::size_t bytes,
            std::any payload = {}) {
    net::Message msg;
    msg.from = from;
    msg.to = to;
    msg.type = type;
    msg.bytes = bytes;
    msg.payload = std::move(payload);
    ++report.control_messages;
    report.control_bytes += bytes;
    network.send(std::move(msg));
  }

  void on_node(const net::Message& msg) {
    if (msg.type == kDonarAggregate) {
      if (round_msgs_pending > 0 && --round_msgs_pending == 0)
        complete_round();
    }
  }

  void on_client(const net::Message& msg) {
    if (msg.type != kDonarAssignment) return;
    const auto* epoch = std::any_cast<std::size_t>(&msg.payload);
    if (epoch == nullptr) return;
    auto it = expected_assignments.find(*epoch);
    if (it == expected_assignments.end() || it->second == 0) return;
    if (--it->second == 0) {
      for (const SimTime arrival : pending_responses[*epoch])
        report.response_times_ms.push_back(
            milliseconds(sim.now() - arrival));
      pending_responses.erase(*epoch);
      expected_assignments.erase(it);
    }
  }

  void maybe_start() {
    if (solve_in_flight || solve_queue.empty()) return;
    current_epoch = solve_queue.front();
    solve_queue.pop_front();
    start_solve();
  }

  void start_solve() {
    current_requests = epoch_buckets[current_epoch];
    std::vector<double> demand(num_clients, 0.0);
    for (const auto& request : current_requests)
      demand[request.client] += request.size_mb;

    active_clients.clear();
    std::vector<Megabytes> demands;
    for (std::uint32_t c = 0; c < num_clients; ++c) {
      if (demand[c] <= 0.0) continue;
      active_clients.push_back(c);
      demands.push_back(demand[c]);
    }
    if (active_clients.empty()) {
      maybe_start();
      return;
    }

    std::vector<optim::ReplicaParams> params = cfg.replicas;
    for (auto& p : params) p.bandwidth *= cfg.epoch_length;
    Matrix latency(active_clients.size(), params.size());
    for (std::size_t row = 0; row < active_clients.size(); ++row)
      for (std::size_t n = 0; n < params.size(); ++n)
        latency(row, n) = cfg.latency(active_clients[row], n);
    problem.emplace(std::move(demands), std::move(params), std::move(latency),
                    cfg.max_latency);

    // Same admission control as EdrSystem: shed proportionally when a
    // traffic spike exceeds the pooled epoch capacity.
    const auto transport = optim::check_transport_feasible(*problem);
    if (!transport.feasible) {
      const double scale = transport.routed / problem->total_demand() * 0.999;
      std::vector<Megabytes> scaled = problem->demands();
      for (auto& d : scaled) d *= scale;
      std::vector<optim::ReplicaParams> reps = problem->replicas();
      Matrix lat(active_clients.size(), reps.size());
      for (std::size_t row = 0; row < active_clients.size(); ++row)
        for (std::size_t n = 0; n < reps.size(); ++n)
          lat(row, n) = problem->latency(row, n);
      problem.emplace(std::move(scaled), std::move(reps), std::move(lat),
                      cfg.max_latency);
    }

    engine = std::make_unique<DonarEngine>(*problem, cfg.donar);
    solve_in_flight = true;
    ++report.epochs;
    const SimTime service_delay =
        static_cast<double>(current_requests.size()) *
        cfg.request_service_seconds;
    sim.schedule_after(service_delay, [this] { schedule_round(); });
  }

  [[nodiscard]] SimTime compute_delay() const {
    return cfg.compute_seconds_per_entry *
           static_cast<double>(problem->num_clients()) *
           static_cast<double>(problem->num_replicas()) *
           static_cast<double>(cfg.donar.inner_steps);
  }

  void schedule_round() {
    sim.schedule_after(compute_delay(), [this] { launch_round(); });
  }

  void launch_round() {
    round_msgs_pending = 0;
    const std::size_t bytes =
        net::wire_size_doubles(problem->num_replicas());
    for (std::size_t i = 0; i < num_nodes; ++i)
      for (std::size_t j = 0; j < num_nodes; ++j) {
        if (i == j) continue;
        ++round_msgs_pending;
        send(mapping_node(i), mapping_node(j), kDonarAggregate, bytes);
      }
    if (round_msgs_pending == 0) complete_round();
  }

  void complete_round() {
    ++report.total_rounds;
    engine->round();
    if (engine->converged() ||
        engine->rounds_executed() >= cfg.donar.max_rounds) {
      finish_solve();
    } else {
      schedule_round();
    }
  }

  void finish_solve() {
    solve_in_flight = false;
    engine.reset();
    for (const std::uint32_t c : active_clients)
      send(mapping_node(c % num_nodes), client_node(c), kDonarAssignment, 16,
           std::make_any<std::size_t>(current_epoch));
    expected_assignments[current_epoch] = active_clients.size();
    for (const auto& request : current_requests)
      pending_responses[current_epoch].push_back(request.arrival);
    report.requests_served += current_requests.size();
    maybe_start();
  }

  DonarRunReport run() {
    setup();
    sim.run();
    report.makespan = sim.now();
    return std::move(report);
  }
};

DonarSystem::DonarSystem(DonarSystemConfig config, workload::Trace trace)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(trace))) {}

DonarSystem::~DonarSystem() = default;

DonarRunReport DonarSystem::run() { return impl_->run(); }

}  // namespace edr::baselines
