// Experiment presets: the paper's §IV-A setup, shared by every bench binary
// and example so the figures all run against the same configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "workload/apps.hpp"
#include "workload/trace.hpp"

namespace edr::analysis {

/// The paper's system setup: 8 replicas with prices (1,8,1,6,1,5,2,3),
/// 100 MB/s caps, T = 1.8 ms, SystemG-like power model, 50 Hz metering.
/// `algorithm` is a registry key ("lddm", "cdpsm", "central", "rr", ...).
[[nodiscard]] core::SystemConfig paper_config(const std::string& algorithm,
                                              std::uint64_t seed = 7);

/// A YouTube-patterned trace for `app` over `horizon` seconds (one full
/// compressed diurnal cycle), 8 clients.
[[nodiscard]] workload::Trace paper_trace(const workload::AppProfile& app,
                                          std::uint64_t seed = 42,
                                          SimTime horizon = 100.0);

/// One algorithm's end-to-end result on one workload.
struct ComparisonRow {
  std::string algorithm;  ///< registry key
  std::string name;       ///< display name ("EDR-LDDM")
  core::RunReport report;
};

/// Run the same trace through each algorithm (identical seeds/config
/// otherwise).
[[nodiscard]] std::vector<ComparisonRow> run_comparison(
    const std::vector<std::string>& algorithms,
    const workload::AppProfile& app, std::uint64_t config_seed = 7,
    std::uint64_t trace_seed = 42, SimTime horizon = 100.0,
    bool record_traces = false);

/// The paper's "40 runs under various configurations" sweep (Fig 8 text):
/// random prices in [1, 20] per run, same trace per run across algorithms.
struct SavingsSummary {
  std::size_t runs = 0;
  /// Mean relative saving of EDR-LDDM vs Round-Robin in active cost
  /// (paper: ~12% total cost saving).
  double lddm_cost_saving = 0.0;
  /// Mean relative saving of EDR-CDPSM vs Round-Robin in active energy
  /// (paper: ~22.64% consumption saving).
  double cdpsm_energy_saving = 0.0;
  double lddm_energy_saving = 0.0;
  double cdpsm_cost_saving = 0.0;
  /// Sample standard deviations of the per-run savings (spread across
  /// price configurations, not measurement noise — runs are deterministic).
  double lddm_cost_saving_stddev = 0.0;
  double cdpsm_energy_saving_stddev = 0.0;
};

[[nodiscard]] SavingsSummary run_savings_sweep(const workload::AppProfile& app,
                                               std::size_t runs,
                                               std::uint64_t base_seed = 1000,
                                               SimTime horizon = 60.0);

}  // namespace edr::analysis
