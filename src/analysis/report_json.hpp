// JSON serialization of run reports — the machine-readable output of the
// CLI and any CI harness diffing runs over time.
#pragma once

#include <string>

#include "core/system.hpp"

namespace edr::analysis {

/// Serialize a RunReport (power traces are summarized, not dumped; use the
/// CSV emitters in the bench binaries for full series).
[[nodiscard]] std::string report_to_json(const core::RunReport& report,
                                         const std::string& label = {});

}  // namespace edr::analysis
