#include "analysis/experiments.hpp"

#include "common/math_util.hpp"
#include "core/algorithm_registry.hpp"
#include "optim/instance.hpp"

namespace edr::analysis {

core::SystemConfig paper_config(const std::string& algorithm,
                                std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.algorithm = algorithm;
  cfg.replicas = optim::paper_replica_set();
  cfg.num_clients = 8;
  // SystemG is a single-LAN cluster: sub-millisecond links, with T = 1.8 ms
  // the worst-case full-size-frame latency bound (§IV-A).
  cfg.min_link_latency = 0.05;
  cfg.max_link_latency = 0.35;
  cfg.max_latency = 1.8;
  cfg.seed = seed;
  return cfg;
}

workload::Trace paper_trace(const workload::AppProfile& app,
                            std::uint64_t seed, SimTime horizon) {
  Rng rng{seed};
  workload::TraceOptions options;
  options.num_clients = 8;
  options.horizon = horizon;
  return workload::Trace::generate(rng, app, options);
}

std::vector<ComparisonRow> run_comparison(
    const std::vector<std::string>& algorithms,
    const workload::AppProfile& app, std::uint64_t config_seed,
    std::uint64_t trace_seed, SimTime horizon, bool record_traces) {
  std::vector<ComparisonRow> rows;
  for (const auto& algorithm : algorithms) {
    auto cfg = paper_config(algorithm, config_seed);
    cfg.record_traces = record_traces;
    core::EdrSystem system(std::move(cfg),
                           paper_trace(app, trace_seed, horizon));
    rows.push_back({algorithm, core::algorithm_display_name(algorithm),
                    system.run()});
  }
  return rows;
}

SavingsSummary run_savings_sweep(const workload::AppProfile& app,
                                 std::size_t runs, std::uint64_t base_seed,
                                 SimTime horizon) {
  SavingsSummary summary;
  std::vector<double> lddm_cost_samples, cdpsm_energy_samples;
  Rng price_rng{base_seed};
  for (std::size_t run = 0; run < runs; ++run) {
    // Random regional prices per run (paper §IV-A.2), shared across the
    // three algorithms; same trace per run.
    std::vector<optim::ReplicaParams> replicas = optim::paper_replica_set();
    for (auto& rep : replicas)
      rep.price = static_cast<double>(price_rng.uniform_int(1, 20));
    const std::uint64_t trace_seed = base_seed + 17 * run + 1;

    double cost[3] = {0, 0, 0};
    double energy[3] = {0, 0, 0};
    const char* const algos[3] = {"lddm", "cdpsm", "rr"};
    for (int a = 0; a < 3; ++a) {
      auto cfg = paper_config(algos[a], base_seed + run);
      cfg.replicas = replicas;
      cfg.record_traces = false;
      core::EdrSystem system(std::move(cfg),
                             paper_trace(app, trace_seed, horizon));
      const auto report = system.run();
      cost[a] = report.total_active_cost;
      energy[a] = report.total_active_energy;
    }
    if (cost[2] > 0.0) {
      lddm_cost_samples.push_back((cost[2] - cost[0]) / cost[2]);
      summary.lddm_cost_saving += lddm_cost_samples.back();
      summary.cdpsm_cost_saving += (cost[2] - cost[1]) / cost[2];
    }
    if (energy[2] > 0.0) {
      cdpsm_energy_samples.push_back((energy[2] - energy[1]) / energy[2]);
      summary.lddm_energy_saving += (energy[2] - energy[0]) / energy[2];
      summary.cdpsm_energy_saving += cdpsm_energy_samples.back();
    }
    ++summary.runs;
  }
  if (summary.runs > 0) {
    const auto n = static_cast<double>(summary.runs);
    summary.lddm_cost_saving /= n;
    summary.cdpsm_cost_saving /= n;
    summary.lddm_energy_saving /= n;
    summary.cdpsm_energy_saving /= n;
    summary.lddm_cost_saving_stddev = stddev(lddm_cost_samples);
    summary.cdpsm_energy_saving_stddev = stddev(cdpsm_energy_samples);
  }
  return summary;
}

}  // namespace edr::analysis
