#include "analysis/report_json.hpp"

#include "common/json.hpp"

namespace edr::analysis {

std::string report_to_json(const core::RunReport& report,
                           const std::string& label) {
  JsonWriter json;
  json.begin_object();
  if (!label.empty()) json.field("label", label);
  json.field("total_cost_cents", report.total_cost);
  json.field("total_active_cost_cents", report.total_active_cost);
  json.field("total_energy_joules", report.total_energy);
  json.field("total_active_energy_joules", report.total_active_energy);
  json.field("epochs", report.epochs);
  json.field("total_rounds", report.total_rounds);
  json.field("requests_served", report.requests_served);
  json.field("requests_dropped", report.requests_dropped);
  json.field("megabytes_served", report.megabytes_served);
  json.field("control_messages", report.control_messages);
  json.field("control_bytes", report.control_bytes);
  json.field("makespan_seconds", report.makespan);
  json.field("mean_response_ms", report.mean_response_ms());
  json.field("p99_response_ms", report.p99_response_ms());

  json.key("replicas").begin_array();
  for (const auto& replica : report.replicas) {
    json.begin_object();
    json.field("assigned_mb", replica.assigned_mb);
    json.field("energy_joules", replica.energy);
    json.field("active_energy_joules", replica.active_energy);
    json.field("cost_cents", replica.cost);
    json.field("active_cost_cents", replica.active_cost);
    json.field("alive", replica.alive);
    json.field("downtime_seconds", replica.downtime);
    if (!replica.trace.samples.empty()) {
      json.key("power_summary").begin_object();
      json.field("min_watts", replica.trace.min_watts());
      json.field("mean_watts", replica.trace.mean_watts());
      json.field("max_watts", replica.trace.max_watts());
      json.field("samples", replica.trace.samples.size());
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();

  json.key("failed_replicas").begin_array();
  for (const auto id : report.failed_replicas)
    json.value(static_cast<std::uint64_t>(id));
  json.end_array();

  // Observability sections appear only when the run carried the opt-in
  // flight recorder / monitor, so default-telemetry reports keep their
  // pinned byte layout (golden_equivalence_test).
  if (!report.convergence.empty()) {
    json.key("convergence").begin_array();
    for (const auto& epoch : report.convergence) {
      json.begin_object();
      json.field("epoch", epoch.epoch);
      json.field("rounds", epoch.rounds);
      json.field("replicas", epoch.replicas);
      json.field("samples", epoch.samples);
      json.field("first_objective", epoch.first_objective);
      json.field("final_objective", epoch.final_objective);
      json.field("final_disagreement", epoch.final_disagreement);
      json.field("max_gradient_norm", epoch.max_gradient_norm);
      json.field("min_capacity_slack", epoch.min_capacity_slack);
      json.field("messages", epoch.messages);
      json.field("bytes", epoch.bytes);
      json.field("alerts", epoch.alerts);
      json.end_object();
    }
    json.end_array();
  }
  if (!report.alerts.empty()) {
    json.key("alerts").begin_array();
    for (const auto& alert : report.alerts) {
      json.begin_object();
      json.field("kind", telemetry::to_string(alert.kind));
      json.field("severity", telemetry::to_string(alert.severity));
      json.field("epoch", alert.epoch);
      json.field("round", alert.round);
      if (alert.replica != telemetry::kNoReplica)
        json.field("replica", alert.replica);
      json.field("value", alert.value);
      json.field("threshold", alert.threshold);
      json.field("time", alert.time);
      json.field("message", alert.message);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  return json.str();
}

}  // namespace edr::analysis
