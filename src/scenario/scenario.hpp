// Dynamic-world scenarios: config-driven timed event plans.
//
// A Scenario describes everything that changes while EDR runs — diurnal +
// flash-crowd demand, time-varying per-replica electricity prices u_n(t),
// replica deaths/joins, and link degradation — plus the scoring contract
// the run must satisfy (bounded re-convergence after every event, monitor
// alerts firing where expected and clearing by the quiet tail).  ROADMAP
// item 2.
//
// Scenarios load from JSON files (see DESIGN.md §15 for the schema) or
// from the named builtin set (price-flip, flash-crowd, replica-churn,
// brownout-link, cheap-night); the builtins are themselves JSON documents
// parsed through the same loader, so the file path and the named path
// cannot drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/system.hpp"
#include "workload/diurnal.hpp"
#include "workload/trace.hpp"

namespace edr::json {
class Value;
}

namespace edr::scenario {

/// One flash crowd plus its scoring expectation.
struct FlashSpec {
  workload::FlashCrowd flash;
  /// Must the monitor raise an alert in this flash's event window?
  bool expect_alert = false;
};

/// The offered load: a diurnal base curve with optional flash crowds.
struct DemandSpec {
  /// Workload profile name: "distributed_file_service" or
  /// "video_streaming".
  std::string app = "distributed_file_service";
  /// Total arrival rate at multiplier 1 (0 = the app profile's default).
  double base_rate_hz = 0.0;
  workload::DiurnalParams diurnal;
  /// Compress one diurnal day into the scenario horizon (the usual bench
  /// convention).
  bool compress_day_into_horizon = true;
  std::vector<FlashSpec> flashes;
};

/// Time-varying price for a group of replicas, in one of three modes:
/// static (no change), a daily peak window, or an absolute-time step
/// schedule.
struct PricePlan {
  /// Replica indices this plan applies to (empty = all replicas).
  std::vector<std::size_t> replicas;
  /// Base price (0 = keep each replica's static configured price).
  CentsPerKwh base = 0.0;
  /// Time-of-day window mode (active when peak_multiplier != 1).
  double peak_multiplier = 1.0;
  double peak_start_hours = 0.0;
  double peak_end_hours = 0.0;
  /// Seconds per tariff day (0 = the scenario horizon — one compressed
  /// day, matching the demand curve).
  double day_length = 0.0;
  /// Step-schedule mode (overrides the window mode when non-empty).
  std::vector<power::PriceStep> steps;
  /// Must price changes under this plan raise a monitor alert?
  bool expect_alert = false;
};

/// One replica crash, with an optional later rejoin.
struct ReplicaEvent {
  std::size_t replica = 0;
  SimTime crash_at = 0.0;
  SimTime recover_at = -1.0;  ///< < 0: stays dead
  bool expect_alert = false;
};

/// One link degradation window, lifted by injecting the inverse factors.
struct LinkEvent {
  core::LinkDegradation change;
  SimTime at = 0.0;
  SimTime until = -1.0;  ///< < 0: permanent
  bool expect_alert = false;
};

/// The pass/fail contract a scenario run is scored against.
struct ScoringSpec {
  /// After each event, some epoch among the next `reconverge_epochs`
  /// completed ones must finish within `round_bound` solver rounds.
  std::size_t reconverge_epochs = 3;
  std::size_t round_bound = 120;
  /// Response-time SLO fed to the ConvergenceMonitor (0 = detector off).
  double response_slo_ms = 0.0;
  /// Seconds before the end of the run in which no alert may be raised
  /// (the "alerts clear" half of the contract).
  SimTime quiet_tail = 4.0;
  /// Window after each event in which an expected alert must fire
  /// (0 = reconverge_epochs epoch-lengths).
  SimTime alert_window = 0.0;
};

/// One scored instant on the timeline (derived from the event lists).
struct EventMark {
  std::string label;
  SimTime at = 0.0;
  bool expect_alert = false;
};

struct Scenario {
  std::string name;
  std::string description;
  std::string algorithm = "lddm";
  SimTime horizon = 20.0;
  std::size_t num_clients = 8;
  std::uint64_t config_seed = 7;
  std::uint64_t trace_seed = 42;
  DemandSpec demand;
  std::vector<PricePlan> prices;
  std::vector<ReplicaEvent> replica_events;
  std::vector<LinkEvent> link_events;
  ScoringSpec scoring;

  /// Every scored instant, sorted by time: flash starts, crashes,
  /// recoveries, link hits/lifts, and price switches inside the horizon.
  [[nodiscard]] std::vector<EventMark> marks() const;

  /// The per-replica tariffs this scenario's price plans induce over a
  /// run against `replicas` (arity = replicas.size(); empty when no plan
  /// applies, i.e. the static-price path).
  [[nodiscard]] std::vector<power::TimeOfDayTariff> build_tariffs(
      const std::vector<optim::ReplicaParams>& replicas) const;

  /// Synthesize the demand trace (diurnal curve + all flash crowds).
  [[nodiscard]] workload::Trace build_trace() const;
};

/// Parse a scenario document (see DESIGN.md §15).  Throws json::JsonError
/// or std::invalid_argument on schema violations.
[[nodiscard]] Scenario from_json(const json::Value& doc);

/// Names of the builtin scenarios, in canonical order.
[[nodiscard]] std::vector<std::string> builtin_names();

/// Load a builtin by name; throws std::invalid_argument for unknown names.
[[nodiscard]] Scenario builtin(const std::string& name);

/// Load from a builtin name or, failing that, a JSON file path.
[[nodiscard]] Scenario load(const std::string& name_or_path);

}  // namespace edr::scenario
