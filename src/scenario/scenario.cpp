#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/fmt.hpp"
#include "common/json_parse.hpp"
#include "workload/apps.hpp"
#include "workload/arrivals.hpp"
#include "workload/zipf.hpp"

namespace edr::scenario {

namespace {

workload::AppProfile app_by_name(const std::string& name) {
  if (name == "distributed_file_service")
    return workload::distributed_file_service();
  if (name == "video_streaming") return workload::video_streaming();
  throw std::invalid_argument("scenario: unknown app profile: " + name);
}

/// Materialize one plan as a tariff over a given static base price.
power::TimeOfDayTariff plan_tariff(const PricePlan& plan,
                                   CentsPerKwh static_price,
                                   SimTime horizon) {
  const CentsPerKwh base = plan.base > 0.0 ? plan.base : static_price;
  const double day = plan.day_length > 0.0 ? plan.day_length : horizon;
  if (!plan.steps.empty())
    return power::TimeOfDayTariff::step_schedule(base, plan.steps);
  power::TimeOfDayTariff tariff{base, plan.peak_multiplier,
                                plan.peak_start_hours, plan.peak_end_hours};
  tariff.set_day_length(day);
  return tariff;
}

}  // namespace

std::vector<EventMark> Scenario::marks() const {
  std::vector<EventMark> out;
  // Events hitting the same instant (a multi-link brownout, price plans
  // switching together) merge into one mark; expect_alert ORs across them.
  auto add = [&out](std::string label, SimTime at, bool expect_alert) {
    auto existing = std::ranges::find_if(
        out, [&](const EventMark& m) { return m.label == label; });
    if (existing != out.end())
      existing->expect_alert = existing->expect_alert || expect_alert;
    else
      out.push_back({std::move(label), at, expect_alert});
  };
  for (const auto& spec : demand.flashes)
    add(strf("flash@%g", spec.flash.start), spec.flash.start,
        spec.expect_alert);
  for (const auto& event : replica_events) {
    add(strf("crash:r%zu@%g", event.replica, event.crash_at), event.crash_at,
        event.expect_alert);
    if (event.recover_at >= 0.0)
      add(strf("recover:r%zu@%g", event.replica, event.recover_at),
          event.recover_at, false);
  }
  for (const auto& event : link_events) {
    add(strf("link@%g", event.at), event.at, event.expect_alert);
    if (event.until >= 0.0)
      add(strf("link-lift@%g", event.until), event.until, false);
  }
  // Price switches: walk each plan's representative tariff over the
  // horizon.
  for (const auto& plan : prices) {
    const auto tariff = plan_tariff(plan, 1.0, horizon);
    SimTime cursor = 0.0;
    while (true) {
      const SimTime next = tariff.next_switch(cursor);
      if (next >= horizon) break;
      add(strf("price@%g", next), next, plan.expect_alert);
      cursor = next;
    }
  }
  std::ranges::stable_sort(
      out, [](const EventMark& a, const EventMark& b) { return a.at < b.at; });
  return out;
}

std::vector<power::TimeOfDayTariff> Scenario::build_tariffs(
    const std::vector<optim::ReplicaParams>& replicas) const {
  if (prices.empty()) return {};
  // Start every replica on a constant tariff at its static price, then
  // overlay each plan onto its group.
  std::vector<power::TimeOfDayTariff> tariffs;
  tariffs.reserve(replicas.size());
  for (const auto& rep : replicas)
    tariffs.emplace_back(rep.price, 1.0, 0.0, 0.0);
  for (const auto& plan : prices) {
    std::vector<std::size_t> group = plan.replicas;
    if (group.empty())
      for (std::size_t n = 0; n < replicas.size(); ++n) group.push_back(n);
    for (const std::size_t n : group) {
      if (n >= replicas.size())
        throw std::invalid_argument(
            strf("scenario %s: price plan replica %zu out of range",
                 name.c_str(), n));
      tariffs[n] = plan_tariff(plan, replicas[n].price, horizon);
    }
  }
  return tariffs;
}

workload::Trace Scenario::build_trace() const {
  Rng rng{trace_seed};
  const auto app = app_by_name(demand.app);
  const double base_rate =
      demand.base_rate_hz > 0.0 ? demand.base_rate_hz : app.base_rate_hz;

  workload::DiurnalParams diurnal = demand.diurnal;
  if (demand.compress_day_into_horizon) diurnal.day_length = horizon;
  const workload::DiurnalCurve curve{diurnal};
  const workload::ZipfSampler zipf{app.num_objects, app.zipf_exponent};

  // Which flash is active at t (scenarios keep flashes disjoint; with
  // overlap the multipliers compose).
  auto flash_multiplier = [&](SimTime t) {
    double m = 1.0;
    for (const auto& spec : demand.flashes) {
      const auto& f = spec.flash;
      if (f.duration > 0.0 && t >= f.start && t < f.start + f.duration)
        m *= f.multiplier;
    }
    return m;
  };
  auto hot_object_at = [&](SimTime t) -> const workload::FlashCrowd* {
    for (const auto& spec : demand.flashes) {
      const auto& f = spec.flash;
      if (f.duration > 0.0 && t >= f.start && t < f.start + f.duration)
        return &f;
    }
    return nullptr;
  };
  // Dominating bound: the diurnal max times the product of every flash
  // multiplier (exact when flashes overlap, conservative otherwise).
  double flash_bound = 1.0;
  for (const auto& spec : demand.flashes)
    if (spec.flash.duration > 0.0) flash_bound *= spec.flash.multiplier;
  const double bound = base_rate * curve.max_multiplier() * flash_bound;

  const auto times = workload::nonhomogeneous_arrivals(
      rng,
      [&](SimTime t) {
        return base_rate * curve.multiplier(t) * flash_multiplier(t);
      },
      bound, horizon);

  std::vector<workload::Request> requests;
  requests.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    workload::Request request;
    request.id = i;
    request.client =
        static_cast<std::uint32_t>(rng.bounded(num_clients));
    request.arrival = times[i];
    request.size_mb = app.sample_size(rng);
    const auto* flash = hot_object_at(times[i]);
    request.object_id = flash != nullptr && rng.uniform() < 0.8
                            ? flash->hot_object
                            : zipf.sample(rng);
    requests.push_back(request);
  }
  return workload::Trace{std::move(requests)};
}

// ---------- JSON loading ----------

namespace {

std::size_t index_field(const json::Value& doc, std::string_view key,
                        std::size_t fallback) {
  const double raw = doc.number_or(key, static_cast<double>(fallback));
  if (raw < 0.0)
    throw std::invalid_argument(strf("scenario: negative \"%.*s\"",
                                     static_cast<int>(key.size()),
                                     key.data()));
  return static_cast<std::size_t>(raw);
}

workload::DiurnalParams parse_diurnal(const json::Value& doc) {
  workload::DiurnalParams params;
  params.peak_multiplier =
      doc.number_or("peak_multiplier", params.peak_multiplier);
  params.trough_multiplier =
      doc.number_or("trough_multiplier", params.trough_multiplier);
  params.peak_hour = doc.number_or("peak_hour", params.peak_hour);
  if (doc.has("day_length"))
    params.day_length = doc.at("day_length").as_number();
  params.normalize_to_unit_mean =
      doc.bool_or("normalize_to_unit_mean", params.normalize_to_unit_mean);
  return params;
}

DemandSpec parse_demand(const json::Value& doc) {
  DemandSpec demand;
  demand.app = doc.string_or("app", demand.app);
  demand.base_rate_hz = doc.number_or("base_rate_hz", 0.0);
  demand.compress_day_into_horizon =
      doc.bool_or("compress_day_into_horizon", true);
  if (doc.has("diurnal")) demand.diurnal = parse_diurnal(doc.at("diurnal"));
  if (const auto* flashes = doc.find("flashes")) {
    for (const auto& entry : flashes->as_array()) {
      FlashSpec spec;
      spec.flash.start = entry.at("start").as_number();
      spec.flash.duration = entry.at("duration").as_number();
      spec.flash.multiplier = entry.number_or("multiplier", 5.0);
      spec.flash.hot_object = static_cast<std::uint64_t>(
          entry.number_or("hot_object", 0.0));
      spec.expect_alert = entry.bool_or("expect_alert", false);
      demand.flashes.push_back(spec);
    }
  }
  return demand;
}

PricePlan parse_price_plan(const json::Value& doc) {
  PricePlan plan;
  if (const auto* replicas = doc.find("replicas"))
    for (const auto& entry : replicas->as_array())
      plan.replicas.push_back(static_cast<std::size_t>(entry.as_number()));
  plan.base = doc.number_or("base", 0.0);
  plan.peak_multiplier = doc.number_or("peak_multiplier", 1.0);
  plan.peak_start_hours = doc.number_or("peak_start", 0.0);
  plan.peak_end_hours = doc.number_or("peak_end", 0.0);
  plan.day_length = doc.number_or("day_length", 0.0);
  if (const auto* steps = doc.find("steps")) {
    for (const auto& entry : steps->as_array())
      plan.steps.push_back({entry.at("time").as_number(),
                            entry.at("price").as_number()});
  }
  plan.expect_alert = doc.bool_or("expect_alert", false);
  return plan;
}

ScoringSpec parse_scoring(const json::Value& doc) {
  ScoringSpec scoring;
  scoring.reconverge_epochs =
      index_field(doc, "reconverge_epochs", scoring.reconverge_epochs);
  scoring.round_bound = index_field(doc, "round_bound", scoring.round_bound);
  scoring.response_slo_ms =
      doc.number_or("response_slo_ms", scoring.response_slo_ms);
  scoring.quiet_tail = doc.number_or("quiet_tail", scoring.quiet_tail);
  scoring.alert_window = doc.number_or("alert_window", scoring.alert_window);
  return scoring;
}

}  // namespace

Scenario from_json(const json::Value& doc) {
  Scenario s;
  s.name = doc.string_or("name", "unnamed");
  s.description = doc.string_or("description", "");
  s.algorithm = doc.string_or("algorithm", s.algorithm);
  s.horizon = doc.number_or("horizon", s.horizon);
  if (s.horizon <= 0.0)
    throw std::invalid_argument("scenario: non-positive horizon");
  s.num_clients = index_field(doc, "clients", s.num_clients);
  s.config_seed =
      static_cast<std::uint64_t>(doc.number_or("config_seed", 7.0));
  s.trace_seed =
      static_cast<std::uint64_t>(doc.number_or("trace_seed", 42.0));
  if (doc.has("demand")) s.demand = parse_demand(doc.at("demand"));
  if (const auto* prices = doc.find("prices"))
    for (const auto& entry : prices->as_array())
      s.prices.push_back(parse_price_plan(entry));
  if (const auto* events = doc.find("replica_events")) {
    for (const auto& entry : events->as_array()) {
      ReplicaEvent event;
      event.replica = static_cast<std::size_t>(
          entry.at("replica").as_number());
      event.crash_at = entry.at("crash_at").as_number();
      event.recover_at = entry.number_or("recover_at", -1.0);
      event.expect_alert = entry.bool_or("expect_alert", false);
      s.replica_events.push_back(event);
    }
  }
  if (const auto* events = doc.find("link_events")) {
    for (const auto& entry : events->as_array()) {
      LinkEvent event;
      event.change.client =
          static_cast<int>(entry.number_or("client", -1.0));
      event.change.replica =
          static_cast<int>(entry.number_or("replica", -1.0));
      event.change.latency_factor = entry.number_or("latency_factor", 1.0);
      event.change.bandwidth_factor =
          entry.number_or("bandwidth_factor", 1.0);
      event.at = entry.at("at").as_number();
      event.until = entry.number_or("until", -1.0);
      event.expect_alert = entry.bool_or("expect_alert", false);
      s.link_events.push_back(event);
    }
  }
  if (doc.has("scoring")) s.scoring = parse_scoring(doc.at("scoring"));
  return s;
}

// ---------- builtins ----------
//
// Each builtin is a JSON document run through the same loader as files, so
// the named path exercises (and cannot drift from) the schema.

namespace {

struct Builtin {
  const char* name;
  const char* text;
};

constexpr const char* kPriceFlip = R"({
  "name": "price-flip",
  "description": "Step tariffs invert mid-run; the scheduler must abandon the formerly cheap half of the cluster within a few epochs.",
  "algorithm": "lddm",
  "horizon": 20,
  "prices": [
    {"replicas": [0, 1, 2, 3],
     "steps": [{"time": 0, "price": 1}, {"time": 10, "price": 12}]},
    {"replicas": [4, 5, 6, 7],
     "steps": [{"time": 0, "price": 12}, {"time": 10, "price": 1}]}
  ],
  "scoring": {"reconverge_epochs": 3, "round_bound": 200, "quiet_tail": 4}
})";

constexpr const char* kFlashCrowd = R"({
  "name": "flash-crowd",
  "description": "A viral object multiplies arrivals 10x for four seconds; the SLO detector must fire during the spike and clear once it passes.",
  "algorithm": "lddm",
  "horizon": 20,
  "demand": {
    "flashes": [{"start": 8, "duration": 4, "multiplier": 10,
                 "hot_object": 7, "expect_alert": true}]
  },
  "scoring": {"reconverge_epochs": 4, "round_bound": 200,
              "response_slo_ms": 1120, "quiet_tail": 3}
})";

constexpr const char* kReplicaChurn = R"({
  "name": "replica-churn",
  "description": "Two replicas die within one heartbeat timeout (a multi-death cascade) and later rejoin; solves abort, restart on the shrunken ring, and re-converge.",
  "algorithm": "lddm",
  "horizon": 24,
  "replica_events": [
    {"replica": 1, "crash_at": 6.0, "recover_at": 16.0,
     "expect_alert": false},
    {"replica": 2, "crash_at": 6.2, "recover_at": 18.0,
     "expect_alert": false}
  ],
  "scoring": {"reconverge_epochs": 4, "round_bound": 200, "quiet_tail": 4}
})";

constexpr const char* kBrownoutLink = R"({
  "name": "brownout-link",
  "description": "A brownout cuts half the cluster's links to 5% capacity for eight seconds; the surviving half absorbs the load, batches stretch past the response SLO, and the detector clears after the lift.",
  "algorithm": "lddm",
  "horizon": 20,
  "link_events": [
    {"replica": 0, "latency_factor": 3, "bandwidth_factor": 0.05,
     "at": 6, "until": 14, "expect_alert": true},
    {"replica": 1, "latency_factor": 3, "bandwidth_factor": 0.05,
     "at": 6, "until": 14},
    {"replica": 2, "latency_factor": 3, "bandwidth_factor": 0.05,
     "at": 6, "until": 14},
    {"replica": 3, "latency_factor": 3, "bandwidth_factor": 0.05,
     "at": 6, "until": 14}
  ],
  "scoring": {"reconverge_epochs": 5, "round_bound": 200,
              "response_slo_ms": 1150, "quiet_tail": 3}
})";

constexpr const char* kCheapNight = R"({
  "name": "cheap-night",
  "description": "Opposed time-of-day tariff windows over one compressed day: half the cluster is cheap by night, half by day, under diurnal demand.",
  "algorithm": "lddm",
  "horizon": 24,
  "demand": {
    "diurnal": {"peak_multiplier": 1.8, "trough_multiplier": 0.3,
                "peak_hour": 20}
  },
  "prices": [
    {"replicas": [0, 1, 2, 3], "base": 2, "peak_multiplier": 8,
     "peak_start": 8, "peak_end": 20},
    {"replicas": [4, 5, 6, 7], "base": 2, "peak_multiplier": 8,
     "peak_start": 20, "peak_end": 8}
  ],
  "scoring": {"reconverge_epochs": 3, "round_bound": 200, "quiet_tail": 3}
})";

constexpr Builtin kBuiltins[] = {
    {"price-flip", kPriceFlip},     {"flash-crowd", kFlashCrowd},
    {"replica-churn", kReplicaChurn}, {"brownout-link", kBrownoutLink},
    {"cheap-night", kCheapNight},
};

}  // namespace

std::vector<std::string> builtin_names() {
  std::vector<std::string> names;
  for (const auto& entry : kBuiltins) names.emplace_back(entry.name);
  return names;
}

Scenario builtin(const std::string& name) {
  for (const auto& entry : kBuiltins)
    if (name == entry.name) return from_json(json::parse(entry.text));
  throw std::invalid_argument("scenario: unknown builtin: " + name);
}

Scenario load(const std::string& name_or_path) {
  for (const auto& entry : kBuiltins)
    if (name_or_path == entry.name)
      return from_json(json::parse(entry.text));
  return from_json(json::parse_file(name_or_path));
}

}  // namespace edr::scenario
