#include "scenario/runner.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "analysis/experiments.hpp"
#include "common/fmt.hpp"
#include "telemetry/telemetry.hpp"

namespace edr::scenario {

bool ScenarioResult::passed() const {
  if (!alerts_cleared || !end_converged) return false;
  if (report.megabytes_served <= 0.0) return false;
  return std::ranges::all_of(
      events, [](const EventVerdict& v) { return v.ok(); });
}

std::string ScenarioResult::verdict_text() const {
  std::ostringstream out;
  out << strf("scenario %s (%s): %zu events, %zu alerts\n", name.c_str(),
              algorithm.c_str(), events.size(), alerts_total);
  for (const auto& v : events) {
    out << strf("  event %-18s %s", v.mark.label.c_str(),
                v.reconverged
                    ? strf("reconverged in %zu epoch(s) (%zu rounds)",
                           v.epochs_waited, v.rounds)
                          .c_str()
                    : "DID NOT reconverge");
    if (v.mark.expect_alert)
      out << (v.alert_fired ? ", alert fired" : ", alert MISSING");
    out << (v.ok() ? "  [ok]\n" : "  [FAIL]\n");
  }
  out << strf("  alerts cleared by quiet tail: %s\n",
              alerts_cleared ? "yes" : "NO");
  out << strf("  final epoch converged: %s\n", end_converged ? "yes" : "NO");
  out << strf("verdict: %s\n", passed() ? "PASS" : "FAIL");
  return out.str();
}

ScenarioResult run(const Scenario& scenario, const RunOptions& options) {
  ScenarioResult result;
  result.name = scenario.name;
  result.algorithm =
      options.algorithm.empty() ? scenario.algorithm : options.algorithm;

  auto cfg = analysis::paper_config(result.algorithm, scenario.config_seed);
  cfg.num_clients = scenario.num_clients;
  cfg.record_traces = options.record_traces;
  cfg.tariffs = scenario.build_tariffs(cfg.replicas);

  auto telemetry = std::make_shared<telemetry::Telemetry>();
  telemetry->enable_flight_recorder();
  telemetry::MonitorOptions monitor_options;
  monitor_options.response_slo_ms = scenario.scoring.response_slo_ms;
  auto& monitor = telemetry->enable_monitor(monitor_options);
  if (options.on_alert) monitor.set_alert_callback(options.on_alert);
  if (options.on_epoch) monitor.set_epoch_callback(options.on_epoch);
  cfg.telemetry = telemetry;

  const SimTime epoch_length = cfg.epoch_length;
  core::EdrSystem system(std::move(cfg), scenario.build_trace());
  for (const auto& event : scenario.replica_events) {
    system.inject_failure(event.replica, event.crash_at);
    if (event.recover_at >= 0.0)
      system.inject_recovery(event.replica, event.recover_at);
  }
  for (const auto& event : scenario.link_events) {
    system.inject_link_change(event.change, event.at);
    if (event.until >= 0.0) {
      core::LinkDegradation inverse = event.change;
      inverse.latency_factor = 1.0 / event.change.latency_factor;
      inverse.bandwidth_factor = 1.0 / event.change.bandwidth_factor;
      system.inject_link_change(inverse, event.until);
    }
  }
  result.report = system.run();

  // ---------- scoring ----------
  const auto& scoring = scenario.scoring;
  const auto& summaries = result.report.convergence;  // completion order
  const auto& alerts = result.report.alerts;
  result.alerts_total = alerts.size();
  const SimTime alert_window =
      scoring.alert_window > 0.0
          ? scoring.alert_window
          : static_cast<double>(scoring.reconverge_epochs) * epoch_length +
                epoch_length;

  for (const auto& mark : scenario.marks()) {
    EventVerdict verdict;
    verdict.mark = mark;
    std::size_t inspected = 0;
    for (const auto& summary : summaries) {
      if (summary.end_time <= mark.at) continue;
      ++inspected;
      if (summary.rounds <= scoring.round_bound) {
        verdict.reconverged = true;
        verdict.epochs_waited = inspected;
        verdict.rounds = summary.rounds;
        break;
      }
      if (inspected >= scoring.reconverge_epochs) break;
    }
    verdict.alert_fired = std::ranges::any_of(
        alerts, [&](const telemetry::Alert& alert) {
          return alert.time >= mark.at && alert.time < mark.at + alert_window;
        });
    result.events.push_back(verdict);
  }

  const SimTime quiet_start = result.report.makespan - scoring.quiet_tail;
  result.alerts_cleared = std::ranges::none_of(
      alerts, [&](const telemetry::Alert& alert) {
        return alert.time >= quiet_start;
      });
  if (!summaries.empty())
    result.end_converged = summaries.back().rounds <= scoring.round_bound;
  return result;
}

}  // namespace edr::scenario
