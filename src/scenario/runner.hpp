// Scenario runner: execute a Scenario end to end and score the result.
//
// The runner instantiates the paper's cluster (analysis::paper_config)
// with the scenario's tariffs, synthesizes the dynamic demand trace,
// attaches the flight recorder + convergence monitor, injects every
// timed event, runs the system, and grades the outcome against the
// scenario's ScoringSpec:
//
//   - after every event mark, some epoch among the next N completed ones
//     must finish within the round bound (EDR re-converged);
//   - events marked expect_alert must raise a monitor alert inside their
//     window (the detector fired);
//   - no alert may be raised inside the quiet tail at the end of the run
//     (the detectors cleared);
//   - the final completed epoch must itself be within the round bound.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "telemetry/monitor.hpp"

namespace edr::scenario {

/// Grade of one event mark.
struct EventVerdict {
  EventMark mark;
  bool reconverged = false;
  /// Completed epochs after the mark until the first converged one
  /// (1 = the very next epoch), when reconverged.
  std::size_t epochs_waited = 0;
  /// Solver rounds of that converging epoch.
  std::size_t rounds = 0;
  /// Did any alert fire inside [mark.at, mark.at + alert window)?
  bool alert_fired = false;

  [[nodiscard]] bool ok() const {
    return reconverged && (!mark.expect_alert || alert_fired);
  }
};

struct ScenarioResult {
  std::string name;
  std::string algorithm;
  core::RunReport report;
  std::vector<EventVerdict> events;
  /// No alert raised within the quiet tail before the end of the run.
  bool alerts_cleared = true;
  /// The last completed epoch converged within the round bound.
  bool end_converged = true;
  std::size_t alerts_total = 0;

  [[nodiscard]] bool passed() const;
  /// Human-readable verdict block, one line per event plus a PASS/FAIL
  /// summary line (grepped by the scenario-smoke CI stage).
  [[nodiscard]] std::string verdict_text() const;
};

struct RunOptions {
  /// Override the scenario's algorithm (empty = keep it).  The sweep
  /// bench runs every backend over the same scenario this way.
  std::string algorithm;
  /// Record 50 Hz power traces (off: scenarios only need cost totals).
  bool record_traces = false;
  /// Live hooks, fired as the run progresses (edr_sim --watch).
  std::function<void(const telemetry::Alert&)> on_alert;
  std::function<void(const telemetry::EpochSummary&)> on_epoch;
};

/// Execute and score one scenario run.
[[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                 const RunOptions& options = {});

}  // namespace edr::scenario
