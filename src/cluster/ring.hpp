// Ring fault-tolerance (paper §III-C).
//
// "We guarantee the reliability of the system by using a combination of
//  time-out mechanism and ring fault-tolerance structure. ... Once a
//  replica malfunctions, the other replicas will know and then remove this
//  dead replica from their 'active member lists' and the ring structure.
//  After that, EDR will perform the runtime scheduling again based on the
//  new ring of replicas."
//
// Implementation: every replica heartbeats its ring *successor* and watches
// its *predecessor*.  A predecessor silent for longer than the timeout is
// declared dead; the detector broadcasts a removal notice, every member
// prunes its list (re-deriving the ring), and an owner-supplied callback
// fires so the runtime can reschedule.
#pragma once

#include <functional>

#include "cluster/member_list.hpp"
#include "net/network.hpp"

namespace edr::cluster {

/// Ring protocol message types (the `Message::type` space is partitioned in
/// core/protocol.hpp; the ring owns 100-199).
enum RingMessageType : int {
  kHeartbeat = 100,
  kRemovalNotice = 101,
  kJoinNotice = 102,
};

/// Payload of a removal notice.
struct RemovalNotice {
  net::NodeId dead = 0;
  net::NodeId reporter = 0;
};

/// Payload of a join notice (a recovered replica announcing itself).
struct JoinNotice {
  net::NodeId joiner = 0;
};

struct RingConfig {
  SimTime heartbeat_period = 0.25;
  /// Predecessor silent for this long => declared dead.  Must comfortably
  /// exceed heartbeat_period plus link latency.
  SimTime failure_timeout = 1.0;
};

/// One replica's participation in the heartbeat ring.  The owner wires this
/// into its message loop: forward ring-typed messages to handle(), call
/// start() once the node is live, and receive membership-change callbacks.
class RingNode {
 public:
  using MembershipCallback =
      std::function<void(const MemberList&, net::NodeId dead)>;

  RingNode(net::SimNetwork& network, net::NodeId self, MemberList members,
           RingConfig config = {});

  /// Begin heartbeating and monitoring.
  void start();

  /// Stop participating (clean shutdown or injected crash; a crashed node
  /// simply stops sending heartbeats — its peers detect the silence).
  void stop();

  /// Rejoin after a crash: adopt `members` (the survivors, learned from any
  /// seed, plus ourselves), announce ourselves to every other member, and
  /// resume heartbeating.
  void rejoin(MemberList members);

  /// Feed a ring message received by the owner.
  void handle(const net::Message& message);

  /// Invoked (on every surviving node) after a member is removed.
  void on_membership_change(MembershipCallback callback);

  /// Invoked after a member (re)joins the ring.
  using JoinCallback = std::function<void(const MemberList&, net::NodeId)>;
  void on_member_joined(JoinCallback callback);

  [[nodiscard]] const MemberList& members() const { return members_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] net::NodeId self() const { return self_; }

 private:
  void send_heartbeat();
  void check_predecessor();
  void remove_member(net::NodeId dead, bool broadcast);

  net::SimNetwork& network_;
  net::NodeId self_;
  MemberList members_;
  RingConfig config_;
  MembershipCallback callback_;
  JoinCallback join_callback_;
  SimTime last_heard_ = 0.0;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // invalidates timers from before a stop()
};

}  // namespace edr::cluster
