#include "cluster/member_list.hpp"

#include <algorithm>

namespace edr::cluster {

MemberList::MemberList(std::vector<net::NodeId> members)
    : members_(std::move(members)) {
  std::ranges::sort(members_);
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
}

bool MemberList::contains(net::NodeId node) const {
  return std::ranges::binary_search(members_, node);
}

bool MemberList::add(net::NodeId node) {
  const auto it = std::ranges::lower_bound(members_, node);
  if (it != members_.end() && *it == node) return false;
  members_.insert(it, node);
  ++version_;
  return true;
}

bool MemberList::remove(net::NodeId node) {
  const auto it = std::ranges::lower_bound(members_, node);
  if (it == members_.end() || *it != node) return false;
  members_.erase(it);
  ++version_;
  return true;
}

std::optional<net::NodeId> MemberList::successor(net::NodeId node) const {
  if (members_.size() < 2 || !contains(node)) return std::nullopt;
  const auto it = std::ranges::upper_bound(members_, node);
  return it == members_.end() ? members_.front() : *it;
}

std::optional<net::NodeId> MemberList::predecessor(net::NodeId node) const {
  if (members_.size() < 2 || !contains(node)) return std::nullopt;
  const auto it = std::ranges::lower_bound(members_, node);
  return it == members_.begin() ? members_.back() : *(it - 1);
}

}  // namespace edr::cluster
