// Active member list — the paper's per-replica view of which replicas are
// alive, arranged in a logical ring for fault monitoring (§III-C).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace edr::cluster {

/// A sorted set of node ids with ring-successor semantics.  Every replica
/// holds one; the ring structure is derived (successor = next id in sorted
/// order, wrapping), so all replicas with the same member set agree on the
/// ring without extra coordination.
class MemberList {
 public:
  MemberList() = default;
  explicit MemberList(std::vector<net::NodeId> members);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] bool contains(net::NodeId node) const;
  [[nodiscard]] const std::vector<net::NodeId>& members() const {
    return members_;
  }

  /// Insert keeping sorted order; no-op if present.  Returns true if added.
  bool add(net::NodeId node);
  /// Remove; returns true if the node was present.
  bool remove(net::NodeId node);

  /// Ring successor of `node` (the next larger id, wrapping).  nullopt when
  /// `node` is not a member or is the only member.
  [[nodiscard]] std::optional<net::NodeId> successor(net::NodeId node) const;
  /// Ring predecessor (the next smaller id, wrapping).
  [[nodiscard]] std::optional<net::NodeId> predecessor(net::NodeId node) const;

  /// Monotonic version, bumped by every successful add/remove — lets agents
  /// cheaply detect that the ring changed under them.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  friend bool operator==(const MemberList& a, const MemberList& b) {
    return a.members_ == b.members_;
  }

 private:
  std::vector<net::NodeId> members_;
  std::uint64_t version_ = 0;
};

}  // namespace edr::cluster
