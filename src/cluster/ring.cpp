#include "cluster/ring.hpp"

#include "common/log.hpp"

namespace edr::cluster {

RingNode::RingNode(net::SimNetwork& network, net::NodeId self,
                   MemberList members, RingConfig config)
    : network_(network),
      self_(self),
      members_(std::move(members)),
      config_(config) {}

void RingNode::start() {
  running_ = true;
  ++epoch_;
  last_heard_ = network_.sim().now();
  send_heartbeat();
  check_predecessor();
}

void RingNode::stop() {
  running_ = false;
  ++epoch_;
}

void RingNode::on_membership_change(MembershipCallback callback) {
  callback_ = std::move(callback);
}

void RingNode::on_member_joined(JoinCallback callback) {
  join_callback_ = std::move(callback);
}

void RingNode::rejoin(MemberList members) {
  members_ = std::move(members);
  members_.add(self_);
  for (const net::NodeId peer : members_.members()) {
    if (peer == self_) continue;
    net::Message msg;
    msg.from = self_;
    msg.to = peer;
    msg.type = kJoinNotice;
    msg.bytes = 16;
    msg.payload = JoinNotice{self_};
    network_.send(std::move(msg));
  }
  start();
}

void RingNode::send_heartbeat() {
  if (!running_) return;
  if (const auto succ = members_.successor(self_)) {
    net::Message msg;
    msg.from = self_;
    msg.to = *succ;
    msg.type = kHeartbeat;
    msg.bytes = 16;  // node id + sequence on the wire
    network_.send(std::move(msg));
  }
  const auto epoch = epoch_;
  network_.sim().schedule_after(config_.heartbeat_period, [this, epoch] {
    if (epoch == epoch_) send_heartbeat();
  });
}

void RingNode::check_predecessor() {
  if (!running_) return;
  const auto pred = members_.predecessor(self_);
  if (pred &&
      network_.sim().now() - last_heard_ > config_.failure_timeout) {
    logf(LogLevel::kInfo, "ring: node %u declares predecessor %u dead",
         self_, *pred);
    remove_member(*pred, /*broadcast=*/true);
  }
  const auto epoch = epoch_;
  network_.sim().schedule_after(config_.heartbeat_period, [this, epoch] {
    if (epoch == epoch_) check_predecessor();
  });
}

void RingNode::handle(const net::Message& message) {
  if (!running_) return;
  switch (message.type) {
    case kHeartbeat:
      // Only the current predecessor's heartbeats refresh the deadline;
      // stale members may still have us as successor right after a change.
      if (members_.predecessor(self_) == message.from)
        last_heard_ = network_.sim().now();
      break;
    case kRemovalNotice: {
      const auto& notice = std::any_cast<const RemovalNotice&>(message.payload);
      remove_member(notice.dead, /*broadcast=*/false);
      break;
    }
    case kJoinNotice: {
      const auto& notice = std::any_cast<const JoinNotice&>(message.payload);
      if (members_.add(notice.joiner)) {
        // Ring neighbors changed; restart the predecessor clock.
        last_heard_ = network_.sim().now();
        if (join_callback_) join_callback_(members_, notice.joiner);
      }
      break;
    }
    default:
      break;
  }
}

void RingNode::remove_member(net::NodeId dead, bool broadcast) {
  if (!members_.remove(dead)) return;  // already pruned
  // The ring changed: our predecessor may be new, so restart its clock.
  last_heard_ = network_.sim().now();
  if (broadcast) {
    for (const net::NodeId peer : members_.members()) {
      if (peer == self_) continue;
      net::Message msg;
      msg.from = self_;
      msg.to = peer;
      msg.type = kRemovalNotice;
      msg.bytes = 24;
      msg.payload = RemovalNotice{dead, self_};
      network_.send(std::move(msg));
    }
  }
  if (callback_) callback_(members_, dead);
}

}  // namespace edr::cluster
