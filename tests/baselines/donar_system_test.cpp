#include "baselines/donar_system.hpp"

#include <gtest/gtest.h>

#include "optim/instance.hpp"
#include "workload/apps.hpp"

namespace edr::baselines {
namespace {

DonarSystemConfig small_config() {
  DonarSystemConfig cfg;
  cfg.replicas = optim::paper_replica_set();
  cfg.num_clients = 6;
  cfg.seed = 5;
  return cfg;
}

workload::Trace small_trace(std::uint64_t seed = 99) {
  Rng rng{seed};
  workload::TraceOptions options;
  options.num_clients = 6;
  options.horizon = 10.0;
  return workload::Trace::generate(rng, workload::distributed_file_service(),
                                   options);
}

TEST(DonarSystem, ServesEveryRequest) {
  const auto trace = small_trace();
  DonarSystem system(small_config(), trace);
  const auto report = system.run();
  EXPECT_EQ(report.requests_served, trace.size());
  EXPECT_EQ(report.response_times_ms.size(), trace.size());
}

TEST(DonarSystem, ResponseTimesPositiveAndBounded) {
  DonarSystem system(small_config(), small_trace());
  const auto report = system.run();
  for (const double ms : report.response_times_ms) {
    EXPECT_GT(ms, 0.0);
    EXPECT_LT(ms, 10'000.0);
  }
  EXPECT_GT(report.mean_response_ms(), 0.0);
}

TEST(DonarSystem, Deterministic) {
  const auto trace = small_trace();
  DonarSystem a(small_config(), trace);
  DonarSystem b(small_config(), trace);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.total_rounds, rb.total_rounds);
  EXPECT_EQ(ra.control_messages, rb.control_messages);
  ASSERT_EQ(ra.response_times_ms.size(), rb.response_times_ms.size());
  for (std::size_t i = 0; i < ra.response_times_ms.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.response_times_ms[i], rb.response_times_ms[i]);
}

TEST(DonarSystem, RoundTrafficScalesWithMappingNodes) {
  const auto trace = small_trace();
  auto three = small_config();
  three.donar.num_mapping_nodes = 3;
  auto five = small_config();
  five.donar.num_mapping_nodes = 5;
  DonarSystem a(three, trace);
  DonarSystem b(five, trace);
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_GT(ra.total_rounds, 0u);
  ASSERT_GT(rb.total_rounds, 0u);
  const double per_round_a =
      static_cast<double>(ra.control_bytes) / ra.total_rounds;
  const double per_round_b =
      static_cast<double>(rb.control_bytes) / rb.total_rounds;
  EXPECT_GT(per_round_b, per_round_a);
}

TEST(DonarSystem, RejectsBrokenConfig) {
  auto cfg = small_config();
  cfg.replicas.clear();
  EXPECT_THROW(DonarSystem(cfg, small_trace()), std::invalid_argument);
  auto no_nodes = small_config();
  no_nodes.donar.num_mapping_nodes = 0;
  EXPECT_THROW(DonarSystem(no_nodes, small_trace()), std::invalid_argument);
}

}  // namespace
}  // namespace edr::baselines
