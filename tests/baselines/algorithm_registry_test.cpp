// Registry behavior plus the message-type claim audit: every registered
// backend's wire-protocol ids must be disjoint from the host protocol,
// from the ring's range, and from every other backend.  Lives in the
// baselines suite so the audit sees "donar" alongside the built-ins.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "baselines/donar_algorithm.hpp"
#include "cluster/ring.hpp"
#include "core/algorithm_registry.hpp"
#include "core/system.hpp"

namespace edr {
namespace {

core::AlgorithmRegistry& registry_with_donar() {
  baselines::register_donar_algorithm();
  return core::AlgorithmRegistry::instance();
}

TEST(AlgorithmRegistry, BuiltinsAndDonarAreRegistered) {
  auto& registry = registry_with_donar();
  for (const char* key : {"lddm", "cdpsm", "central", "rr", "donar"})
    EXPECT_TRUE(registry.contains(key)) << key;
}

TEST(AlgorithmRegistry, MakeConfiguresFromSystemConfig) {
  auto& registry = registry_with_donar();
  core::SystemConfig cfg;
  for (const auto& key : registry.keys()) {
    const auto algorithm = registry.make(key, cfg);
    ASSERT_NE(algorithm, nullptr) << key;
    EXPECT_EQ(algorithm->name(), key);
    EXPECT_STRNE(algorithm->display_name(), "");
  }
}

TEST(AlgorithmRegistry, UnknownKeyThrowsListingKnownOnes) {
  auto& registry = registry_with_donar();
  core::SystemConfig cfg;
  try {
    (void)registry.make("simulated-annealing", cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("simulated-annealing"), std::string::npos);
    EXPECT_NE(what.find("lddm"), std::string::npos);
    EXPECT_NE(what.find("donar"), std::string::npos);
  }
}

TEST(AlgorithmRegistry, ReplacingAKeyIsIdempotent) {
  // register_donar_algorithm runs again without duplicating the entry.
  auto& registry = registry_with_donar();
  const auto before = registry.keys().size();
  baselines::register_donar_algorithm();
  EXPECT_EQ(registry.keys().size(), before);
}

TEST(AlgorithmRegistry, MessageTypeIdsNeverCollide) {
  auto& registry = registry_with_donar();
  core::SystemConfig cfg;

  // The host protocol's claims, then every backend's.
  std::map<int, std::string> claims = {
      {core::kClientRequest, "host"},
      {core::kAssignment, "host"},
      {core::kFileData, "host"},
  };
  for (const auto& key : registry.keys()) {
    const auto algorithm = registry.make(key, cfg);
    std::set<int> own;  // a backend may not claim one id twice either
    for (const auto& info : algorithm->message_types()) {
      EXPECT_TRUE(own.insert(info.id).second)
          << key << " claims id " << info.id << " twice";
      EXPECT_FALSE(info.id >= 100 && info.id < 200)
          << key << " claims id " << info.id
          << " inside the ring's reserved range [100, 200)";
      // Overriding a host type (announce/assignment) is legal only by
      // declaring the same id; a *different* owner is a collision.
      const auto [it, inserted] = claims.emplace(info.id, key);
      EXPECT_TRUE(inserted || it->second == key)
          << "id " << info.id << " claimed by both " << it->second
          << " and " << key;
    }
  }
}

TEST(AlgorithmRegistry, AnnounceAndAssignmentTypesAreDeclared) {
  // The pipeline routes announce/assignment types by value; a backend that
  // overrides them must also declare them in message_types() so telemetry
  // names and the collision audit see them.
  auto& registry = registry_with_donar();
  core::SystemConfig cfg;
  for (const auto& key : registry.keys()) {
    const auto algorithm = registry.make(key, cfg);
    for (const int type :
         {algorithm->announce_type(), algorithm->assignment_type()}) {
      if (type == core::kClientRequest || type == core::kAssignment)
        continue;  // host defaults, named by the pipeline itself
      bool declared = false;
      for (const auto& info : algorithm->message_types())
        if (info.id == type) declared = true;
      EXPECT_TRUE(declared)
          << key << " routes type " << type << " without declaring it";
    }
  }
}

}  // namespace
}  // namespace edr
