#include "baselines/donar.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/scheduler.hpp"
#include "optim/instance.hpp"

namespace edr::baselines {
namespace {

optim::Problem make_instance(std::uint64_t seed, std::size_t clients = 12,
                             std::size_t replicas = 6) {
  Rng rng{seed};
  optim::InstanceOptions opts;
  opts.num_clients = clients;
  opts.num_replicas = replicas;
  return optim::make_random_instance(rng, opts);
}

TEST(Donar, RejectsBadConfiguration) {
  const auto problem = make_instance(1);
  DonarOptions options;
  options.num_mapping_nodes = 0;
  EXPECT_THROW((DonarEngine{problem, options}), std::invalid_argument);
}

TEST(Donar, OwnerPartitionCoversAllClients) {
  const auto problem = make_instance(2);
  DonarEngine engine{problem};
  std::vector<std::size_t> counts(engine.options().num_mapping_nodes, 0);
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    counts[engine.owner(c)]++;
  for (const auto count : counts) EXPECT_GT(count, 0u);
}

TEST(Donar, SolutionsAreFeasible) {
  const auto problem = make_instance(3);
  DonarEngine engine{problem};
  for (int k = 0; k < 30; ++k) {
    engine.round();
    EXPECT_TRUE(optim::check_feasibility(problem, engine.solution()).ok(1e-5));
  }
}

TEST(Donar, ConvergesAndImprovesItsOwnObjective) {
  const auto problem = make_instance(4);
  DonarEngine engine{problem};
  const double initial = engine.donar_objective(engine.solution());
  engine.run();
  EXPECT_TRUE(engine.converged());
  EXPECT_LT(engine.donar_objective(engine.solution()), initial);
}

TEST(Donar, PrefersLowLatencyReplicas) {
  // One client, two replicas, identical capacity; replica 1 is 10x closer.
  std::vector<Megabytes> demands{10.0};
  std::vector<optim::ReplicaParams> reps(2);
  Matrix latency(1, 2);
  latency(0, 0) = 1.5;
  latency(0, 1) = 0.15;
  optim::Problem problem(demands, reps, latency, 1.8);
  DonarOptions options;
  options.balance_weight = 0.001;  // let perf dominate
  DonarEngine engine{problem, options};
  engine.run();
  const auto solution = engine.solution();
  EXPECT_GT(solution(0, 1), solution(0, 0));
}

TEST(Donar, BalanceWeightSpreadsLoad) {
  std::vector<Megabytes> demands{10.0};
  std::vector<optim::ReplicaParams> reps(2);
  Matrix latency(1, 2);
  latency(0, 0) = 1.5;
  latency(0, 1) = 0.15;
  optim::Problem problem(demands, reps, latency, 1.8);
  DonarOptions heavy;
  heavy.balance_weight = 100.0;  // balance dominates perf
  DonarEngine engine{problem, heavy};
  engine.run();
  const auto solution = engine.solution();
  EXPECT_NEAR(solution(0, 0), solution(0, 1), 1.0);
}

TEST(Donar, IgnoresElectricityPrices) {
  // Same geometry, wildly different prices: DONAR's answer cannot change.
  std::vector<Megabytes> demands{10.0, 8.0};
  Matrix latency(2, 2, 0.5);
  latency(0, 0) = 0.3;
  latency(1, 1) = 0.4;

  std::vector<optim::ReplicaParams> cheap(2);
  cheap[0].price = 1.0;
  cheap[1].price = 1.0;
  std::vector<optim::ReplicaParams> spread(2);
  spread[0].price = 1.0;
  spread[1].price = 20.0;

  optim::Problem problem_cheap(demands, cheap, latency, 1.8);
  optim::Problem problem_spread(demands, spread, latency, 1.8);
  DonarEngine engine_a{problem_cheap};
  DonarEngine engine_b{problem_spread};
  engine_a.run();
  engine_b.run();
  EXPECT_LT(engine_a.solution().distance(engine_b.solution()), 1e-6);
}

TEST(Donar, SchedulerWrapperReportsTraffic) {
  const auto problem = make_instance(5);
  DonarScheduler scheduler;
  const auto result = scheduler.schedule(problem);
  EXPECT_TRUE(optim::check_feasibility(problem, result.allocation).ok(1e-5));
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GT(result.bytes, 0u);
  EXPECT_EQ(scheduler.name(), "DONAR");
}

TEST(Donar, EdrBeatsDonarOnCostUnderPriceSpread) {
  // DONAR optimizes network performance; with heterogeneous prices EDR must
  // win on energy cost (the paper's motivation for EDR over DONAR).
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    const auto problem = make_instance(seed);
    core::LddmScheduler lddm;
    DonarScheduler donar;
    const double edr_cost =
        problem.total_cost(lddm.schedule(problem).allocation);
    const double donar_cost =
        problem.total_cost(donar.schedule(problem).allocation);
    EXPECT_LE(edr_cost, donar_cost * (1.0 + 1e-6)) << "seed " << seed;
  }
}

TEST(Donar, CommunicationBytesMatchMappingNodeModel) {
  const auto problem = make_instance(6, 10, 4);
  DonarOptions options;
  options.num_mapping_nodes = 3;
  DonarEngine engine{problem, options};
  // Aggregate vector of 4 doubles to each of 2 peers.
  EXPECT_EQ(engine.bytes_per_node_round(), 2u * (4 + 8 * 4));
}

}  // namespace
}  // namespace edr::baselines
