// Live runtime: wire protocol round-trips, digest helpers, and full
// LocalCluster integration runs — the five registry backends as replicated
// state machines over both transports, plus chaos scenarios scored by the
// SLO monitor.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/donar_algorithm.hpp"
#include "net/inproc.hpp"
#include "runtime/chaos.hpp"
#include "runtime/live_protocol.hpp"
#include "runtime/local_cluster.hpp"

namespace edr::runtime {
namespace {

// ---------------------------------------------------------------- protocol

TEST(LiveProtocol, HelloRoundTrip) {
  const LiveHello hello{.node = 3, .port = 45123};
  const auto msg = encode_hello(3, 9, hello);
  EXPECT_EQ(msg.from, 3u);
  EXPECT_EQ(msg.to, 9u);
  EXPECT_EQ(msg.type, kHello);
  const auto back = decode_hello(msg, 1 << 20);
  EXPECT_EQ(back.node, hello.node);
  EXPECT_EQ(back.port, hello.port);
}

TEST(LiveProtocol, PeersRoundTrip) {
  LivePeers peers;
  peers.generation = 7;
  peers.peers = {{0, 1000}, {1, 0}, {2, 65535}};
  peers.alive = {1, 0, 1};
  const auto back = decode_peers(encode_peers(9, 1, peers), 1 << 20);
  EXPECT_EQ(back.generation, 7u);
  ASSERT_EQ(back.peers.size(), 3u);
  EXPECT_EQ(back.peers[2].node, 2u);
  EXPECT_EQ(back.peers[2].port, 65535);
  EXPECT_EQ(back.alive, peers.alive);
}

TEST(LiveProtocol, StartAndRoundRoundTrip) {
  LiveStart start{.epoch = 4, .generation = 2, .now = 4.0, .alive = {1, 1, 0}};
  const auto s = decode_start(encode_start(9, 0, start), 1 << 20);
  EXPECT_EQ(s.epoch, 4u);
  EXPECT_EQ(s.generation, 2u);
  EXPECT_DOUBLE_EQ(s.now, 4.0);
  EXPECT_EQ(s.alive, start.alive);

  LiveRound round{.epoch = 4, .generation = 2, .round = 17,
                  .digest = 0xdeadbeefcafe1234ull, .load = 12.5};
  const auto r = decode_round(encode_round(0, 1, round), 1 << 20);
  EXPECT_EQ(r.round, 17u);
  EXPECT_EQ(r.digest, round.digest);
  EXPECT_DOUBLE_EQ(r.load, 12.5);
}

TEST(LiveProtocol, SampleRoundTrip) {
  telemetry::RoundSample sample;
  sample.epoch = 2;
  sample.round = 31;
  sample.replica = 1;
  sample.time = 2.5;
  sample.objective = 10.25;
  sample.round_objective = 40.5;
  sample.gradient_norm = 0.125;
  sample.disagreement = 0.0625;
  sample.projection_correction = 0.5;
  sample.capacity_slack = 3.75;
  sample.load = 19.5;
  sample.load_delta = -0.25;
  sample.messages_sent = 6;
  const auto back = decode_sample(encode_sample(1, 9, sample), 1 << 20);
  EXPECT_EQ(back.epoch, sample.epoch);
  EXPECT_EQ(back.round, sample.round);
  EXPECT_EQ(back.replica, sample.replica);
  EXPECT_DOUBLE_EQ(back.time, sample.time);
  EXPECT_DOUBLE_EQ(back.objective, sample.objective);
  EXPECT_DOUBLE_EQ(back.round_objective, sample.round_objective);
  EXPECT_DOUBLE_EQ(back.gradient_norm, sample.gradient_norm);
  EXPECT_DOUBLE_EQ(back.disagreement, sample.disagreement);
  EXPECT_DOUBLE_EQ(back.projection_correction, sample.projection_correction);
  EXPECT_DOUBLE_EQ(back.capacity_slack, sample.capacity_slack);
  EXPECT_DOUBLE_EQ(back.load, sample.load);
  EXPECT_DOUBLE_EQ(back.load_delta, sample.load_delta);
  EXPECT_EQ(back.messages_sent, sample.messages_sent);
}

TEST(LiveProtocol, EpochDoneAndStallRoundTrip) {
  LiveEpochDone done;
  done.epoch = 1;
  done.generation = 3;
  done.rounds = 88;
  done.digest = 42;
  done.objective = 123.5;
  done.digest_mismatches = 2;
  done.column = {0.5, 1.25, 0.0, 7.5};
  const auto d = decode_epoch_done(encode_epoch_done(2, 9, done), 1 << 20);
  EXPECT_EQ(d.rounds, 88u);
  EXPECT_EQ(d.digest_mismatches, 2u);
  EXPECT_EQ(d.column, done.column);

  LiveStall stall{.epoch = 1, .generation = 3, .round = 5,
                  .missing = {0, 1, 0, 1}};
  const auto st = decode_stall(encode_stall(2, 9, stall), 1 << 20);
  EXPECT_EQ(st.round, 5u);
  EXPECT_EQ(st.missing, stall.missing);
}

TEST(LiveProtocol, ConfigRoundTripPreservesEverything) {
  LiveConfig config = make_default_live_config(3, 6, 2, 17);
  config.algorithm = "cdpsm";
  config.warm_start = false;
  config.max_retries = 5;
  config.lddm.rho = 3.5;
  config.cdpsm.tolerance = 1e-6;
  config.power_per_replica.assign(3, config.power);
  config.power_per_replica[1].idle += 10.0;

  const auto back = decode_config(encode_config(9, 0, config), 16 << 20);
  EXPECT_EQ(back.algorithm, "cdpsm");
  EXPECT_EQ(back.epochs, config.epochs);
  EXPECT_DOUBLE_EQ(back.epoch_length, config.epoch_length);
  EXPECT_EQ(back.num_clients, config.num_clients);
  EXPECT_DOUBLE_EQ(back.max_latency, config.max_latency);
  EXPECT_FALSE(back.warm_start);
  EXPECT_EQ(back.max_retries, 5u);
  EXPECT_EQ(back.seed, config.seed);
  ASSERT_EQ(back.replicas.size(), 3u);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_DOUBLE_EQ(back.replicas[n].bandwidth,
                     config.replicas[n].bandwidth);
    EXPECT_DOUBLE_EQ(back.replicas[n].price, config.replicas[n].price);
  }
  EXPECT_EQ(back.latency.rows(), config.latency.rows());
  EXPECT_EQ(digest_matrix(back.latency), digest_matrix(config.latency));
  EXPECT_DOUBLE_EQ(back.power_per_replica[1].idle,
                   config.power_per_replica[1].idle);
  EXPECT_DOUBLE_EQ(back.lddm.rho, 3.5);
  EXPECT_DOUBLE_EQ(back.cdpsm.tolerance, 1e-6);
  EXPECT_EQ(back.lddm.max_rounds, config.lddm.max_rounds);
  ASSERT_EQ(back.requests.size(), config.requests.size());
  ASSERT_FALSE(back.requests.empty());
  const auto& first = config.requests.front();
  EXPECT_EQ(back.requests.front().id, first.id);
  EXPECT_EQ(back.requests.front().client, first.client);
  EXPECT_DOUBLE_EQ(back.requests.front().arrival, first.arrival);
  EXPECT_DOUBLE_EQ(back.requests.front().size_mb, first.size_mb);
}

TEST(LiveProtocol, DecodeRejectsFramesOverTheCap) {
  const LiveConfig config = make_default_live_config(3, 6, 2, 17);
  const auto msg = encode_config(9, 0, config);
  EXPECT_THROW((void)decode_config(msg, 64), std::length_error);
}

TEST(LiveProtocol, DecodeRejectsTruncatedPayload) {
  auto msg = encode_round(0, 1, LiveRound{.epoch = 1, .generation = 1,
                                          .round = 2, .digest = 3});
  auto bytes = std::any_cast<std::vector<std::uint8_t>>(msg.payload);
  bytes.resize(bytes.size() / 2);
  msg.payload = bytes;
  msg.bytes = bytes.size();
  EXPECT_THROW((void)decode_round(msg, 1 << 20), std::out_of_range);
}

// ----------------------------------------------------------------- digests

TEST(LiveDigest, SensitiveToValueAndOrder) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {1.0, 2.0, 3.0000001};
  const double c[] = {3.0, 2.0, 1.0};
  EXPECT_EQ(digest_doubles(a, 3), digest_doubles(a, 3));
  EXPECT_NE(digest_doubles(a, 3), digest_doubles(b, 3));
  EXPECT_NE(digest_doubles(a, 3), digest_doubles(c, 3));
  EXPECT_NE(digest_doubles(a, 2), digest_doubles(a, 3));
}

TEST(LiveDigest, MatrixDigestMatchesFlatDoubles) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 1.5;
  m(1, 1) = -2.25;
  const auto flat = m.flat();
  EXPECT_EQ(digest_matrix(m), digest_doubles(flat.data(), flat.size()));
}

// ------------------------------------------------------- inproc transport

TEST(InprocReopen, RestoresDeliveryAfterClose) {
  net::InprocTransport transport(2);
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = 1;
  ASSERT_TRUE(transport.send(msg));
  ASSERT_TRUE(transport.receive_for(1, 1.0).has_value());

  transport.close(1);
  EXPECT_FALSE(transport.send(msg));

  transport.reopen(1);
  EXPECT_TRUE(transport.send(msg));
  const auto delivered = transport.receive_for(1, 1.0);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->from, 0u);
}

// ------------------------------------------------------------ integration

/// Small, fast cluster config shared by the integration runs.
LiveConfig small_config(const std::string& algorithm, std::size_t replicas,
                        std::size_t clients, std::uint32_t epochs) {
  LiveConfig config = make_default_live_config(replicas, clients, epochs, 7);
  config.algorithm = algorithm;
  // Loose tolerances keep every epoch well under the SLO thresholds the
  // chaos tests use while still exercising dozens of lockstep rounds.
  config.lddm.max_rounds = 120;
  config.lddm.tolerance = 1e-3;
  config.cdpsm.max_rounds = 120;
  config.cdpsm.tolerance = 1e-3;
  return config;
}

LocalClusterOptions fast_options(LiveTransport transport) {
  LocalClusterOptions options;
  options.transport = transport;
  options.replica.barrier_timeout_s = 0.5;
  options.replica.idle_timeout_s = 2.0;
  options.coordinator.hello_timeout_s = 10.0;
  options.coordinator.epoch_timeout_s = 8.0;
  return options;
}

const char* const kBackends[] = {"lddm", "cdpsm", "central", "rr", "donar"};

TEST(LiveCluster, AllBackendsCompleteOverInproc) {
  baselines::register_donar_algorithm();
  for (const char* const backend : kBackends) {
    SCOPED_TRACE(backend);
    LocalCluster cluster{small_config(backend, 3, 6, 2),
                         fast_options(LiveTransport::kInproc)};
    const LiveRunResult result = cluster.run();
    EXPECT_TRUE(result.completed);
    ASSERT_EQ(result.epochs.size(), 2u);
    for (const auto& epoch : result.epochs) {
      EXPECT_TRUE(epoch.digests_agree);
      EXPECT_EQ(epoch.participants.size(), 3u);
    }
    EXPECT_EQ(result.generations, 1u);
    EXPECT_TRUE(result.failed_replicas.empty());
    EXPECT_FALSE(result.convergence.empty());
  }
}

TEST(LiveCluster, TcpAgreesWithInprocOnEveryBackend) {
  baselines::register_donar_algorithm();
  for (const char* const backend : kBackends) {
    SCOPED_TRACE(backend);
    LocalCluster inproc{small_config(backend, 3, 6, 2),
                        fast_options(LiveTransport::kInproc)};
    const LiveRunResult a = inproc.run();
    LocalCluster tcp{small_config(backend, 3, 6, 2),
                     fast_options(LiveTransport::kTcp)};
    const LiveRunResult b = tcp.run();

    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
      SCOPED_TRACE(e);
      // Deterministic replication: the transport must not change a bit
      // of the result.
      EXPECT_EQ(a.epochs[e].digest, b.epochs[e].digest);
      EXPECT_EQ(a.epochs[e].rounds, b.epochs[e].rounds);
      EXPECT_DOUBLE_EQ(a.epochs[e].objective, b.epochs[e].objective);
      EXPECT_TRUE(a.epochs[e].digests_agree);
      EXPECT_TRUE(b.epochs[e].digests_agree);
      const auto& ma = a.epochs[e].allocation;
      const auto& mb = b.epochs[e].allocation;
      ASSERT_EQ(ma.rows(), mb.rows());
      ASSERT_EQ(ma.cols(), mb.cols());
      EXPECT_EQ(digest_matrix(ma), digest_matrix(mb));
    }
  }
}

// ------------------------------------------------------------------ chaos

TEST(LiveChaos, KillMidScheduleSurvivorsReconverge) {
  LiveConfig config = small_config("lddm", 4, 8, 5);
  auto options = fast_options(LiveTransport::kInproc);
  // A stalled epoch costs at least the 0.5s barrier timeout; healthy
  // epochs finish in a few tens of milliseconds.
  options.coordinator.monitor.response_slo_ms = 400.0;
  options.chaos.actions = {{.epoch = 2, .kind = ChaosKind::kKill,
                            .replica = 3}};

  LocalCluster cluster{config, options};
  const LiveRunResult result = cluster.run();

  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.epochs.size(), 5u);
  EXPECT_GE(result.generations, 2u);
  EXPECT_NE(std::find(result.failed_replicas.begin(),
                      result.failed_replicas.end(), net::NodeId{3}),
            result.failed_replicas.end());
  // Epochs before the kill ran with all four replicas; afterwards three.
  EXPECT_EQ(result.epochs[1].participants.size(), 4u);
  EXPECT_EQ(result.epochs.back().participants.size(), 3u);
  EXPECT_TRUE(result.epochs.back().digests_agree);

  const ChaosScore score =
      score_chaos_run(result, options.chaos, config.epochs);
  EXPECT_TRUE(score.reconverged);
  EXPECT_TRUE(score.alerts_fired) << "no SLO alert in the fault window";
  EXPECT_TRUE(score.alerts_cleared)
      << score.alerts_in_tail << " alert(s) in the quiet tail";
  EXPECT_TRUE(score.passed());
}

TEST(LiveChaos, KilledReplicaRejoinsAfterRestart) {
  LiveConfig config = small_config("lddm", 4, 8, 6);
  auto options = fast_options(LiveTransport::kInproc);
  options.chaos.actions = {
      {.epoch = 1, .kind = ChaosKind::kKill, .replica = 1},
      {.epoch = 2, .kind = ChaosKind::kRestart, .replica = 1},
  };

  LocalCluster cluster{config, options};
  const LiveRunResult result = cluster.run();

  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.epochs.size(), 6u);
  // Kill bumps the generation once, the rejoin bumps it again.
  EXPECT_GE(result.generations, 3u);
  // The schedule's tail runs with the full replica set again, and the
  // cold-started rejoiner agrees with the survivors bit-for-bit.
  EXPECT_EQ(result.epochs.back().participants.size(), 4u);
  EXPECT_TRUE(result.epochs.back().digests_agree);
}

TEST(LiveChaos, TcpKillIsDetectedViaDisconnect) {
  LiveConfig config = small_config("lddm", 3, 6, 4);
  auto options = fast_options(LiveTransport::kTcp);
  options.chaos.actions = {{.epoch = 1, .kind = ChaosKind::kKill,
                            .replica = 2}};

  LocalCluster cluster{config, options};
  const LiveRunResult result = cluster.run();

  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.epochs.size(), 4u);
  EXPECT_GE(result.generations, 2u);
  EXPECT_EQ(result.epochs.back().participants.size(), 2u);
  EXPECT_TRUE(result.epochs.back().digests_agree);
}

TEST(LiveChaos, FrameFaultsAreAbsorbedWithoutDivergence) {
  LiveConfig config = small_config("lddm", 3, 6, 3);
  auto options = fast_options(LiveTransport::kTcp);
  options.chaos.actions = {
      // Every round frame replica 0 sends goes out twice...
      {.epoch = 0, .kind = ChaosKind::kDuplicateFrames, .replica = 0,
       .probability = 1.0, .message_type = kRound},
      // ...and a fifth of replica 1's frames arrive a little late.
      {.epoch = 0, .kind = ChaosKind::kDelayFrames, .replica = 1,
       .probability = 0.2, .delay_ms = 2.0},
  };

  LocalCluster cluster{config, options};
  const LiveRunResult result = cluster.run();

  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.epochs.size(), 3u);
  EXPECT_EQ(result.generations, 1u);
  EXPECT_TRUE(result.failed_replicas.empty());
  for (const auto& epoch : result.epochs) {
    EXPECT_TRUE(epoch.digests_agree);
    EXPECT_EQ(epoch.participants.size(), 3u);
  }
}

// ----------------------------------------------------------------- scoring

TEST(ChaosScore, GradesDetectionAndRecovery) {
  ChaosPlan plan;
  plan.actions = {{.epoch = 2, .kind = ChaosKind::kKill, .replica = 0}};

  LiveRunResult result;
  result.completed = true;
  result.generations = 2;
  result.epochs.resize(5);
  result.epochs.back().digests_agree = true;

  telemetry::Alert alert;
  alert.kind = telemetry::AlertKind::kSlo;
  alert.epoch = 2;
  result.alerts = {alert};

  ChaosScore score = score_chaos_run(result, plan, 5);
  EXPECT_TRUE(score.reconverged);
  EXPECT_TRUE(score.alerts_fired);
  EXPECT_TRUE(score.alerts_cleared);
  EXPECT_TRUE(score.passed());

  // An alert in the quiet tail fails recovery.
  alert.epoch = 4;
  result.alerts.push_back(alert);
  score = score_chaos_run(result, plan, 5);
  EXPECT_FALSE(score.alerts_cleared);
  EXPECT_FALSE(score.passed());

  // No alert at all fails detection.
  result.alerts.clear();
  score = score_chaos_run(result, plan, 5);
  EXPECT_FALSE(score.alerts_fired);
  EXPECT_FALSE(score.passed());

  // A run that died early never reconverged.
  result.alerts = {alert};
  result.completed = false;
  score = score_chaos_run(result, plan, 5);
  EXPECT_FALSE(score.reconverged);
}

TEST(ChaosScore, CleanRunPassesWhenAlertFree) {
  const ChaosPlan plan;  // no faults
  LiveRunResult result;
  result.completed = true;
  result.epochs.resize(2);
  result.epochs.back().digests_agree = true;
  const ChaosScore score = score_chaos_run(result, plan, 2);
  EXPECT_TRUE(score.passed());
}

}  // namespace
}  // namespace edr::runtime
