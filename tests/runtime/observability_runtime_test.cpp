// Live-runtime observability (DESIGN.md §14): kTelemetry/kTimeProbe wire
// round-trips, the optional trace-context tail's compatibility story, the
// merged cross-process Chrome trace, the chaos post-mortem timeline, and
// the digest-parity guarantee (observability must not perturb the
// replicated computation).
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/donar_algorithm.hpp"
#include "runtime/chaos.hpp"
#include "runtime/live_protocol.hpp"
#include "runtime/live_report.hpp"
#include "runtime/local_cluster.hpp"

namespace edr::runtime {
namespace {

// ------------------------------------------------------- kTelemetry frames

telemetry::TraceEvent make_event(telemetry::TraceEvent::Phase phase,
                                 double ts, std::string name) {
  telemetry::TraceEvent event;
  event.phase = phase;
  event.ts = ts;
  event.name = std::move(name);
  return event;
}

TEST(LiveTelemetryFrame, RoundTripPreservesEventBatch) {
  LiveTelemetry batch;
  batch.node = 2;
  batch.dropped = 5;
  auto span = make_event(telemetry::TraceEvent::Phase::kSpan, 1.5, "solve");
  span.dur = 0.25;
  span.tid = 2;
  span.id = 77;
  span.parent = 33;
  span.category = "live_round";
  batch.events.push_back(span);
  batch.events.push_back(
      make_event(telemetry::TraceEvent::Phase::kInstant, 1.75, "stall"));
  auto flow = make_event(telemetry::TraceEvent::Phase::kFlowStart, 1.8,
                         "round");
  flow.id = 99;
  batch.events.push_back(flow);
  auto head = make_event(telemetry::TraceEvent::Phase::kFlowEnd, 1.9,
                         "round");
  head.id = 99;
  batch.events.push_back(head);

  const auto back = decode_telemetry(encode_telemetry(2, 9, batch), 1 << 20);
  EXPECT_EQ(back.node, 2u);
  EXPECT_EQ(back.dropped, 5u);
  ASSERT_EQ(back.events.size(), 4u);
  EXPECT_EQ(back.events[0].phase, telemetry::TraceEvent::Phase::kSpan);
  EXPECT_DOUBLE_EQ(back.events[0].ts, 1.5);
  EXPECT_DOUBLE_EQ(back.events[0].dur, 0.25);
  EXPECT_EQ(back.events[0].tid, 2u);
  EXPECT_EQ(back.events[0].id, 77u);
  EXPECT_EQ(back.events[0].parent, 33u);
  EXPECT_EQ(back.events[0].name, "solve");
  EXPECT_EQ(back.events[0].category, "live_round");
  EXPECT_EQ(back.events[1].phase, telemetry::TraceEvent::Phase::kInstant);
  EXPECT_EQ(back.events[2].phase, telemetry::TraceEvent::Phase::kFlowStart);
  EXPECT_EQ(back.events[2].id, 99u);
  EXPECT_EQ(back.events[3].phase, telemetry::TraceEvent::Phase::kFlowEnd);
  EXPECT_EQ(back.events[3].id, 99u);
}

TEST(LiveTelemetryFrame, EmptyFlushStillCarriesDropCount) {
  LiveTelemetry batch;
  batch.node = 1;
  batch.dropped = 12;
  const auto back = decode_telemetry(encode_telemetry(1, 9, batch), 1 << 20);
  EXPECT_EQ(back.node, 1u);
  EXPECT_EQ(back.dropped, 12u);
  EXPECT_TRUE(back.events.empty());
}

TEST(LiveTelemetryFrame, DecodeRejectsTruncatedPayload) {
  LiveTelemetry batch;
  batch.node = 0;
  batch.events.push_back(
      make_event(telemetry::TraceEvent::Phase::kSpan, 2.0, "epoch"));
  auto msg = encode_telemetry(0, 9, batch);
  auto bytes = std::any_cast<std::vector<std::uint8_t>>(msg.payload);
  bytes.resize(bytes.size() / 2);
  msg.payload = bytes;
  msg.bytes = bytes.size();
  EXPECT_THROW((void)decode_telemetry(msg, 1 << 20), std::out_of_range);
}

TEST(LiveTelemetryFrame, DecodeRejectsFramesOverTheCap) {
  LiveTelemetry batch;
  batch.node = 0;
  for (int i = 0; i < 64; ++i)
    batch.events.push_back(make_event(telemetry::TraceEvent::Phase::kSpan,
                                      static_cast<double>(i), "span"));
  const auto msg = encode_telemetry(0, 9, batch);
  EXPECT_THROW((void)decode_telemetry(msg, 64), std::length_error);
}

TEST(LiveTimeFrames, ProbeAndReplyRoundTrip) {
  const LiveTimeProbe probe{.probe = 41, .sent_ns = 123'456'789'012ll};
  const auto p = decode_time_probe(encode_time_probe(9, 0, probe), 1 << 20);
  EXPECT_EQ(p.probe, 41u);
  EXPECT_EQ(p.sent_ns, probe.sent_ns);

  const LiveTimeReply reply{.probe = 41, .probe_ns = probe.sent_ns,
                            .replica_ns = -987'654'321ll};
  const auto r = decode_time_reply(encode_time_reply(0, 9, reply), 1 << 20);
  EXPECT_EQ(r.probe, 41u);
  EXPECT_EQ(r.probe_ns, probe.sent_ns);
  EXPECT_EQ(r.replica_ns, reply.replica_ns);
}

// ----------------------------------------------------- trace-context tails

TEST(TraceTail, RoundCarriesContextWhenValid) {
  LiveRound round{.epoch = 1, .generation = 1, .round = 3, .digest = 42};
  round.trace = {1, 0xabcdefull};
  const auto back = decode_round(encode_round(0, 1, round), 1 << 20);
  EXPECT_EQ(back.trace, round.trace);
  EXPECT_EQ(back.digest, 42u);
}

TEST(TraceTail, AbsentContextAddsNoBytesAndDecodesInvalid) {
  LiveRound with{.epoch = 1, .generation = 1, .round = 3, .digest = 42};
  LiveRound without = with;
  with.trace = {1, 7};
  const auto traced = encode_round(0, 1, with);
  const auto plain = encode_round(0, 1, without);
  const auto traced_bytes =
      std::any_cast<std::vector<std::uint8_t>>(traced.payload);
  const auto plain_bytes =
      std::any_cast<std::vector<std::uint8_t>>(plain.payload);
  // The tail is exactly 16 bytes and only present when the context is
  // valid — tracing off leaves the wire bytes untouched.
  EXPECT_EQ(traced_bytes.size(), plain_bytes.size() + 16);
  EXPECT_TRUE(std::equal(plain_bytes.begin(), plain_bytes.end(),
                         traced_bytes.begin()));
  EXPECT_FALSE(decode_round(plain, 1 << 20).trace.valid());
}

TEST(TraceTail, OldFramesWithoutTailStillDecode) {
  // A frame from a pre-observability sender is byte-identical to a new
  // frame sent with tracing off: strip the tail from a traced frame and
  // the body must decode unchanged with no context.
  LiveRound round{.epoch = 2, .generation = 1, .round = 9, .digest = 7};
  round.trace = {1, 55};
  auto msg = encode_round(0, 1, round);
  auto bytes = std::any_cast<std::vector<std::uint8_t>>(msg.payload);
  bytes.resize(bytes.size() - 16);
  msg.payload = bytes;
  msg.bytes = bytes.size();
  const auto back = decode_round(msg, 1 << 20);
  EXPECT_EQ(back.epoch, 2u);
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.digest, 7u);
  EXPECT_FALSE(back.trace.valid());
}

TEST(TraceTail, HelloAndSampleCarryContexts) {
  LiveHello hello{.node = 1, .port = 4000};
  hello.trace = {1, 11};
  EXPECT_EQ(decode_hello(encode_hello(1, 9, hello), 1 << 20).trace,
            hello.trace);

  telemetry::RoundSample sample;
  sample.epoch = 1;
  sample.round = 2;
  sample.replica = 0;
  telemetry::TraceContext out{1, 22};
  telemetry::TraceContext in;
  const auto back =
      decode_sample(encode_sample(0, 9, sample, out), 1 << 20, &in);
  EXPECT_EQ(in, out);
  EXPECT_EQ(back.round, 2u);
}

// -------------------------------------------------- cluster-level behavior

/// Small fast config matching live_runtime_test's integration idiom.
LiveConfig obs_config(std::uint32_t epochs) {
  LiveConfig config = make_default_live_config(3, 6, epochs, 7);
  config.algorithm = "lddm";
  config.lddm.max_rounds = 120;
  config.lddm.tolerance = 1e-3;
  return config;
}

LocalClusterOptions obs_options() {
  LocalClusterOptions options;
  options.transport = LiveTransport::kInproc;
  options.replica.barrier_timeout_s = 0.5;
  options.replica.idle_timeout_s = 2.0;
  options.coordinator.hello_timeout_s = 10.0;
  options.coordinator.epoch_timeout_s = 8.0;
  return options;
}

TEST(MergedTrace, SpansMultipleProcessTracksWithFlowArrows) {
  auto options = obs_options();
  options.observer.tracing = true;
  LocalCluster cluster{obs_config(2), options};
  const auto result = cluster.run();
  ASSERT_TRUE(result.completed);

  const std::string& json = cluster.merged_trace_json();
  // All three replica tracks plus the coordinator's.
  EXPECT_NE(json.find("\"args\":{\"name\":\"replica 0\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"replica 2\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"coordinator\"}"),
            std::string::npos);
  // The causal skeleton: epoch > round > solve/exchange spans, and at
  // least one cross-process flow arrow (tail + binding head).
  for (const char* name : {"epoch", "round", "solve", "exchange"})
    EXPECT_NE(json.find("\"name\":\"" + std::string{name} + "\""),
              std::string::npos)
        << name;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(MergedTrace, EmptyWithoutTracing) {
  LocalCluster cluster{obs_config(1), obs_options()};
  const auto result = cluster.run();
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(cluster.merged_trace_json().empty());
  EXPECT_EQ(cluster.coordinator_observer(), nullptr);
}

TEST(DigestParity, ObservabilityDoesNotPerturbTheComputation) {
  // The determinism boundary (DESIGN.md §11) must survive observability:
  // digests are computed over solver state, never frame bytes, so a fully
  // traced run and a dark run must agree bit for bit.
  LocalCluster dark{obs_config(3), obs_options()};
  const auto base = dark.run();

  auto options = obs_options();
  options.observer.tracing = true;
  LocalCluster traced{obs_config(3), options};
  const auto observed = traced.run();

  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(observed.completed);
  ASSERT_EQ(base.epochs.size(), observed.epochs.size());
  for (std::size_t e = 0; e < base.epochs.size(); ++e) {
    SCOPED_TRACE(e);
    EXPECT_EQ(base.epochs[e].digest, observed.epochs[e].digest);
    EXPECT_EQ(base.epochs[e].rounds, observed.epochs[e].rounds);
    EXPECT_DOUBLE_EQ(base.epochs[e].objective, observed.epochs[e].objective);
    EXPECT_EQ(digest_matrix(base.epochs[e].allocation),
              digest_matrix(observed.epochs[e].allocation));
  }
}

TEST(Postmortem, TimelineCorrelatesFaultMembershipAndRecovery) {
  LiveConfig config = make_default_live_config(4, 8, 5, 7);
  config.algorithm = "lddm";
  config.lddm.max_rounds = 120;
  config.lddm.tolerance = 1e-3;
  auto options = obs_options();
  options.chaos.actions = {{.epoch = 2, .kind = ChaosKind::kKill,
                            .replica = 3}};
  LocalCluster cluster{config, options};
  const auto result = cluster.run();
  ASSERT_TRUE(result.completed);

  // The timeline is recorded unconditionally — no observer was attached.
  const auto index_of = [&](const std::string& kind) {
    for (std::size_t i = 0; i < result.timeline.size(); ++i)
      if (result.timeline[i].kind == kind)
        return static_cast<std::ptrdiff_t>(i);
    return std::ptrdiff_t{-1};
  };
  const auto fault = index_of("fault");
  const auto mark_dead = index_of("mark_dead");
  const auto generation = index_of("generation");
  const auto run_end = index_of("run_end");
  ASSERT_GE(fault, 0);
  ASSERT_GE(mark_dead, 0);
  ASSERT_GE(generation, 0);
  ASSERT_GE(run_end, 0);
  EXPECT_EQ(index_of("run_start"), 0);
  // Causality in recording order: injection, then the membership layer
  // notices, then the generation bump, then the run completes.
  EXPECT_LT(fault, mark_dead);
  EXPECT_LT(mark_dead, generation);
  EXPECT_LT(generation, run_end);
  EXPECT_EQ(result.timeline[static_cast<std::size_t>(fault)].detail, "kill");
  EXPECT_EQ(result.timeline[static_cast<std::size_t>(fault)].replica, 3);
  for (std::size_t i = 1; i < result.timeline.size(); ++i)
    EXPECT_GE(result.timeline[i].t_s, result.timeline[i - 1].t_s) << i;

  const auto json = live_postmortem_json(result);
  EXPECT_NE(json.find("\"timeline\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"kill\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"generation\""), std::string::npos);
  EXPECT_NE(json.find("\"epochs\":["), std::string::npos);
}

}  // namespace
}  // namespace edr::runtime
