#include "cluster/ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

namespace edr::cluster {
namespace {

/// A little harness: N ring nodes attached to a simulated network, with
/// message dispatch wired up the way an owning agent would do it.
struct RingFixture {
  net::Simulator sim;
  net::SimNetwork network{sim};
  std::vector<std::unique_ptr<RingNode>> nodes;
  std::map<net::NodeId, std::vector<net::NodeId>> removals_seen;

  explicit RingFixture(std::size_t count, RingConfig config = {}) {
    std::vector<net::NodeId> ids;
    for (std::size_t i = 0; i < count; ++i)
      ids.push_back(static_cast<net::NodeId>(i));
    for (std::size_t i = 0; i < count; ++i) {
      nodes.push_back(std::make_unique<RingNode>(
          network, ids[i], MemberList{ids}, config));
      RingNode* node = nodes.back().get();
      node->on_membership_change(
          [this, id = ids[i]](const MemberList&, net::NodeId dead) {
            removals_seen[id].push_back(dead);
          });
      network.attach(ids[i],
                     [node](const net::Message& msg) { node->handle(msg); });
    }
  }

  void start_all() {
    for (auto& node : nodes) node->start();
  }

  void crash(std::size_t index) {
    nodes[index]->stop();
    network.detach(static_cast<net::NodeId>(index));
  }
};

TEST(Ring, HealthyRingStaysIntact) {
  RingFixture f{4};
  f.start_all();
  f.sim.run_until(20.0);
  for (const auto& node : f.nodes) EXPECT_EQ(node->members().size(), 4u);
  EXPECT_TRUE(f.removals_seen.empty());
}

TEST(Ring, CrashDetectedAndRemovedEverywhere) {
  RingFixture f{4};
  f.start_all();
  f.sim.run_until(3.0);
  f.crash(2);
  f.sim.run_until(10.0);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) continue;
    EXPECT_FALSE(f.nodes[i]->members().contains(2))
        << "node " << i << " still lists the dead member";
    ASSERT_EQ(f.removals_seen[static_cast<net::NodeId>(i)].size(), 1u);
    EXPECT_EQ(f.removals_seen[static_cast<net::NodeId>(i)][0], 2u);
  }
}

TEST(Ring, DetectionLatencyRespectsTimeout) {
  RingConfig config;
  config.heartbeat_period = 0.2;
  config.failure_timeout = 1.0;
  RingFixture f{3, config};
  f.start_all();
  f.sim.run_until(5.0);
  f.crash(0);
  // Too early: not yet detected.
  f.sim.run_until(5.4);
  EXPECT_TRUE(f.nodes[1]->members().contains(0));
  // After timeout + slack: detected.
  f.sim.run_until(8.0);
  EXPECT_FALSE(f.nodes[1]->members().contains(0));
}

TEST(Ring, RingRepairsAfterRemoval) {
  RingFixture f{4};
  f.start_all();
  f.sim.run_until(2.0);
  f.crash(1);
  f.sim.run_until(10.0);
  // Survivors form the ring 0 -> 2 -> 3 -> 0.
  EXPECT_EQ(f.nodes[0]->members().successor(0), 2u);
  EXPECT_EQ(f.nodes[2]->members().predecessor(2), 0u);
}

TEST(Ring, SequentialCrashesBothDetected) {
  RingFixture f{5};
  f.start_all();
  f.sim.run_until(2.0);
  f.crash(1);
  f.sim.run_until(12.0);
  f.crash(3);
  f.sim.run_until(25.0);
  for (std::size_t i : {0u, 2u, 4u}) {
    EXPECT_FALSE(f.nodes[i]->members().contains(1));
    EXPECT_FALSE(f.nodes[i]->members().contains(3));
    EXPECT_EQ(f.nodes[i]->members().size(), 3u);
  }
}

TEST(Ring, SurvivingPairKeepsMonitoring) {
  RingFixture f{3};
  f.start_all();
  f.sim.run_until(2.0);
  f.crash(0);
  f.sim.run_until(10.0);
  f.crash(1);
  f.sim.run_until(20.0);
  EXPECT_EQ(f.nodes[2]->members().size(), 1u);
  EXPECT_TRUE(f.nodes[2]->members().contains(2));
}

TEST(Ring, StopPreventsFalsePositives) {
  RingFixture f{3};
  f.start_all();
  f.sim.run_until(2.0);
  for (auto& node : f.nodes) node->stop();
  f.sim.run_until(30.0);
  // Nobody was running, so nobody should have been declared dead.
  EXPECT_TRUE(f.removals_seen.empty());
}

TEST(Ring, TwoNodeRingDetection) {
  RingFixture f{2};
  f.start_all();
  f.sim.run_until(2.0);
  f.crash(0);
  f.sim.run_until(10.0);
  EXPECT_EQ(f.nodes[1]->members().size(), 1u);
}

TEST(Ring, ToleratesModeratePacketLoss) {
  // 10% heartbeat loss: declaring a peer dead requires failure_timeout /
  // heartbeat_period = 4 consecutive losses (p = 1e-4 per check), so a
  // healthy ring must survive a long run without false positives.
  RingFixture f{4};
  f.network.seed_loss(11);
  f.network.set_default_link({.latency = 0.1, .bandwidth_mbps = 100.0,
                              .loss_probability = 0.10});
  f.start_all();
  f.sim.run_until(60.0);
  for (const auto& node : f.nodes) EXPECT_EQ(node->members().size(), 4u);
  EXPECT_TRUE(f.removals_seen.empty());
  EXPECT_GT(f.network.messages_lost(), 0u);
}

TEST(Ring, DetectsRealCrashDespiteLoss) {
  RingFixture f{4};
  f.network.seed_loss(13);
  f.network.set_default_link({.latency = 0.1, .bandwidth_mbps = 100.0,
                              .loss_probability = 0.10});
  f.start_all();
  f.sim.run_until(3.0);
  f.crash(2);
  f.sim.run_until(20.0);
  for (std::size_t i : {0u, 1u, 3u})
    EXPECT_FALSE(f.nodes[i]->members().contains(2)) << "node " << i;
}

TEST(Ring, ExtremeLossCausesFalsePositives) {
  // The flip side of timeout-based detection: at 90% loss the expected gap
  // between delivered heartbeats exceeds the timeout and healthy peers get
  // evicted.  This is the availability/accuracy tradeoff every timeout
  // detector makes — pinned here so the behaviour is explicit.
  RingFixture f{3};
  f.network.seed_loss(17);
  f.network.set_default_link({.latency = 0.1, .bandwidth_mbps = 100.0,
                              .loss_probability = 0.90});
  f.start_all();
  f.sim.run_until(120.0);
  EXPECT_FALSE(f.removals_seen.empty());
}

TEST(Ring, PartitionCausesMutualEvictionThenHealsViaRejoin) {
  // Split-brain: nodes {0,1} and {2,3} lose connectivity across the cut.
  // Each side evicts the other (timeout detection cannot distinguish a
  // partition from a crash — the classic limitation), and after the
  // partition heals an explicit rejoin restores full membership.
  RingFixture f{4};
  f.start_all();
  f.sim.run_until(2.0);

  auto set_cut = [&](double loss) {
    for (net::NodeId a : {0u, 1u})
      for (net::NodeId b : {2u, 3u}) {
        f.network.set_link(a, b, {.latency = 0.5, .bandwidth_mbps = 100.0,
                                  .loss_probability = loss});
        f.network.set_link(b, a, {.latency = 0.5, .bandwidth_mbps = 100.0,
                                  .loss_probability = loss});
      }
  };
  set_cut(1.0);
  f.sim.run_until(15.0);

  // Both sides have shrunk to their own half.
  EXPECT_EQ(f.nodes[0]->members().size(), 2u);
  EXPECT_TRUE(f.nodes[0]->members().contains(1));
  EXPECT_FALSE(f.nodes[0]->members().contains(2));
  EXPECT_EQ(f.nodes[2]->members().size(), 2u);
  EXPECT_TRUE(f.nodes[2]->members().contains(3));
  EXPECT_FALSE(f.nodes[2]->members().contains(0));

  // Heal the cut and merge: one side rejoins the other explicitly.
  set_cut(0.0);
  f.nodes[2]->rejoin(f.nodes[0]->members());
  f.nodes[3]->rejoin(f.nodes[2]->members());
  f.sim.run_until(30.0);
  for (const auto& node : f.nodes)
    EXPECT_EQ(node->members().size(), 4u)
        << "node " << node->self() << " did not re-merge";
}

TEST(Ring, RejoinReadmitsEverywhere) {
  RingFixture f{4};
  std::map<net::NodeId, std::vector<net::NodeId>> joins_seen;
  for (std::size_t i = 0; i < 4; ++i) {
    RingNode* node = f.nodes[i].get();
    node->on_member_joined(
        [&joins_seen, id = static_cast<net::NodeId>(i)](
            const MemberList&, net::NodeId joiner) {
          joins_seen[id].push_back(joiner);
        });
  }
  f.start_all();
  f.sim.run_until(2.0);
  f.crash(1);
  f.sim.run_until(10.0);
  for (std::size_t i : {0u, 2u, 3u})
    ASSERT_FALSE(f.nodes[i]->members().contains(1));

  // Recover: node 1 learns the survivor set and rejoins.
  f.network.attach(1, [node = f.nodes[1].get()](const net::Message& msg) {
    node->handle(msg);
  });
  f.nodes[1]->rejoin(f.nodes[0]->members());
  f.sim.run_until(20.0);

  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.nodes[i]->members().contains(1)) << "node " << i;
    EXPECT_EQ(f.nodes[i]->members().size(), 4u);
  }
  for (std::size_t i : {0u, 2u, 3u}) {
    ASSERT_EQ(joins_seen[static_cast<net::NodeId>(i)].size(), 1u);
    EXPECT_EQ(joins_seen[static_cast<net::NodeId>(i)][0], 1u);
  }
  // The healed ring keeps monitoring without false positives.
  f.sim.run_until(30.0);
  EXPECT_EQ(f.nodes[2]->members().size(), 4u);
}

TEST(Ring, RejoinedNodeIsMonitoredAgain) {
  RingFixture f{3};
  f.start_all();
  f.sim.run_until(2.0);
  f.crash(1);
  f.sim.run_until(10.0);
  f.network.attach(1, [node = f.nodes[1].get()](const net::Message& msg) {
    node->handle(msg);
  });
  f.nodes[1]->rejoin(f.nodes[0]->members());
  f.sim.run_until(15.0);
  ASSERT_TRUE(f.nodes[0]->members().contains(1));

  // Crash it again: the healed ring must detect it a second time.
  f.crash(1);
  f.sim.run_until(25.0);
  EXPECT_FALSE(f.nodes[0]->members().contains(1));
  EXPECT_FALSE(f.nodes[2]->members().contains(1));
}

}  // namespace
}  // namespace edr::cluster
