// Ring re-scheduling under churn: multi-death cascades inside one
// failure timeout, join-during-removal races, and the MemberList version
// counter the owning agents key their "did the ring change under me?"
// checks off.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "cluster/ring.hpp"

namespace edr::cluster {
namespace {

struct ChurnFixture {
  net::Simulator sim;
  net::SimNetwork network{sim};
  std::vector<std::unique_ptr<RingNode>> nodes;
  std::map<net::NodeId, std::vector<net::NodeId>> removals_seen;
  std::map<net::NodeId, std::vector<net::NodeId>> joins_seen;

  explicit ChurnFixture(std::size_t count, RingConfig config = {}) {
    std::vector<net::NodeId> ids;
    for (std::size_t i = 0; i < count; ++i)
      ids.push_back(static_cast<net::NodeId>(i));
    for (std::size_t i = 0; i < count; ++i) {
      nodes.push_back(std::make_unique<RingNode>(network, ids[i],
                                                 MemberList{ids}, config));
      RingNode* node = nodes.back().get();
      node->on_membership_change(
          [this, id = ids[i]](const MemberList&, net::NodeId dead) {
            removals_seen[id].push_back(dead);
          });
      node->on_member_joined(
          [this, id = ids[i]](const MemberList&, net::NodeId joiner) {
            joins_seen[id].push_back(joiner);
          });
      network.attach(ids[i],
                     [node](const net::Message& msg) { node->handle(msg); });
    }
  }

  void start_all() {
    for (auto& node : nodes) node->start();
  }

  void crash(std::size_t index) {
    nodes[index]->stop();
    network.detach(static_cast<net::NodeId>(index));
  }

  void revive(std::size_t index, std::size_t seed) {
    network.attach(static_cast<net::NodeId>(index),
                   [node = nodes[index].get()](const net::Message& msg) {
                     node->handle(msg);
                   });
    nodes[index]->rejoin(nodes[seed]->members());
  }
};

TEST(RingChurn, MultiDeathCascadeWithinOneTimeout) {
  // Two non-adjacent replicas die 0.2 s apart — both inside one failure
  // timeout, so their detections overlap.  Every survivor must prune both
  // and see exactly one membership-change callback per death.
  ChurnFixture f{6};
  f.start_all();
  f.sim.run_until(3.0);
  f.crash(1);
  f.crash(4);
  f.sim.run_until(15.0);
  for (std::size_t i : {0u, 2u, 3u, 5u}) {
    const auto& members = f.nodes[i]->members();
    EXPECT_EQ(members.size(), 4u) << "node " << i;
    EXPECT_FALSE(members.contains(1)) << "node " << i;
    EXPECT_FALSE(members.contains(4)) << "node " << i;
    const auto& seen = f.removals_seen[static_cast<net::NodeId>(i)];
    EXPECT_EQ(seen.size(), 2u)
        << "node " << i << " saw " << seen.size()
        << " membership changes for 2 deaths (duplicate notices leaked)";
  }
  // The repaired ring: 0 -> 2 -> 3 -> 5 -> 0.
  EXPECT_EQ(f.nodes[0]->members().successor(0), 2u);
  EXPECT_EQ(f.nodes[0]->members().successor(5), 0u);
}

TEST(RingChurn, AdjacentCascadeDetectedThroughSilentWatcher) {
  // Replicas 1 and 2 are ring-adjacent (2 watches 1).  When both die, the
  // death of 1 can only be detected *after* 2's removal re-points node 3's
  // predecessor at 1 and its silence times out in turn — a cascade of two
  // sequential timeouts.
  ChurnFixture f{5};
  f.start_all();
  f.sim.run_until(3.0);
  f.crash(1);
  f.crash(2);
  // One timeout in: at most one of the two is gone.
  f.sim.run_until(4.2);
  const auto early = f.nodes[3]->members().size();
  EXPECT_GE(early, 4u);
  f.sim.run_until(20.0);
  for (std::size_t i : {0u, 3u, 4u}) {
    EXPECT_EQ(f.nodes[i]->members().size(), 3u) << "node " << i;
    EXPECT_FALSE(f.nodes[i]->members().contains(1)) << "node " << i;
    EXPECT_FALSE(f.nodes[i]->members().contains(2)) << "node " << i;
  }
}

TEST(RingChurn, JoinDuringRemovalRaceConverges) {
  // A node rejoins at the same instant another dies: the join notice and
  // the removal broadcast race through the network.  All live nodes must
  // converge on the same member set — the joiner admitted, the dead node
  // pruned — and the joiner must learn of the concurrent death too.
  ChurnFixture f{5};
  f.start_all();
  f.sim.run_until(3.0);
  f.crash(1);
  f.sim.run_until(12.0);
  for (std::size_t i : {0u, 2u, 3u, 4u})
    ASSERT_FALSE(f.nodes[i]->members().contains(1));

  f.crash(3);
  f.revive(1, /*seed=*/0);  // same sim instant as the crash of 3
  f.sim.run_until(25.0);
  for (std::size_t i : {0u, 1u, 2u, 4u}) {
    const auto& members = f.nodes[i]->members();
    EXPECT_EQ(members.size(), 4u) << "node " << i;
    EXPECT_TRUE(members.contains(1)) << "node " << i;
    EXPECT_FALSE(members.contains(3)) << "node " << i;
    EXPECT_EQ(members, f.nodes[0]->members())
        << "node " << i << " disagrees with node 0 about the ring";
  }
}

TEST(RingChurn, DuplicateRemovalNoticeIsIdempotent) {
  // Two survivors can independently time out on the same dead predecessor
  // and both broadcast its removal.  A second notice for an
  // already-pruned node must not bump the version or re-fire the
  // membership callback.
  ChurnFixture f{4};
  f.start_all();
  f.sim.run_until(3.0);
  f.crash(2);
  f.sim.run_until(10.0);
  RingNode& survivor = *f.nodes[0];
  ASSERT_FALSE(survivor.members().contains(2));
  const auto version = survivor.members().version();
  const auto callbacks = f.removals_seen[0].size();

  net::Message duplicate;
  duplicate.from = 3;
  duplicate.to = 0;
  duplicate.type = kRemovalNotice;
  duplicate.payload = RemovalNotice{/*dead=*/2, /*reporter=*/3};
  survivor.handle(duplicate);

  EXPECT_EQ(survivor.members().version(), version);
  EXPECT_EQ(f.removals_seen[0].size(), callbacks);
}

TEST(RingChurn, VersionBumpsExactlyOncePerChange) {
  MemberList list{{0, 1, 2}};
  const auto v0 = list.version();

  EXPECT_FALSE(list.add(1));  // already present
  EXPECT_EQ(list.version(), v0);

  EXPECT_TRUE(list.add(7));
  EXPECT_EQ(list.version(), v0 + 1);

  EXPECT_FALSE(list.remove(9));  // never a member
  EXPECT_EQ(list.version(), v0 + 1);

  EXPECT_TRUE(list.remove(1));
  EXPECT_EQ(list.version(), v0 + 2);

  EXPECT_FALSE(list.remove(1));  // second removal is a no-op
  EXPECT_EQ(list.version(), v0 + 2);
}

TEST(RingChurn, VersionAdvancesAcrossChurnRounds) {
  // Through a full crash + rejoin cycle the surviving agents' version
  // counters move exactly once per membership change: one removal, one
  // join.
  ChurnFixture f{4};
  f.start_all();
  f.sim.run_until(2.0);
  const auto v0 = f.nodes[0]->members().version();
  f.crash(2);
  f.sim.run_until(10.0);
  const auto v1 = f.nodes[0]->members().version();
  EXPECT_EQ(v1, v0 + 1);
  f.revive(2, /*seed=*/0);
  f.sim.run_until(20.0);
  EXPECT_EQ(f.nodes[0]->members().version(), v1 + 1);
  EXPECT_EQ(f.nodes[0]->members().size(), 4u);
}

}  // namespace
}  // namespace edr::cluster
