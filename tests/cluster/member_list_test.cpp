#include "cluster/member_list.hpp"

#include <gtest/gtest.h>

namespace edr::cluster {
namespace {

TEST(MemberList, ConstructionSortsAndDeduplicates) {
  MemberList list{{5, 1, 3, 1, 5}};
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.members(), (std::vector<net::NodeId>{1, 3, 5}));
}

TEST(MemberList, AddKeepsOrderAndBumpsVersion) {
  MemberList list{{1, 5}};
  const auto v0 = list.version();
  EXPECT_TRUE(list.add(3));
  EXPECT_EQ(list.members(), (std::vector<net::NodeId>{1, 3, 5}));
  EXPECT_GT(list.version(), v0);
  EXPECT_FALSE(list.add(3));  // duplicate: no-op
  EXPECT_EQ(list.size(), 3u);
}

TEST(MemberList, RemoveAbsentIsNoop) {
  MemberList list{{1, 2}};
  const auto v0 = list.version();
  EXPECT_FALSE(list.remove(9));
  EXPECT_EQ(list.version(), v0);
  EXPECT_TRUE(list.remove(1));
  EXPECT_GT(list.version(), v0);
}

TEST(MemberList, SuccessorWrapsAround) {
  MemberList list{{1, 3, 5}};
  EXPECT_EQ(list.successor(1), 3u);
  EXPECT_EQ(list.successor(3), 5u);
  EXPECT_EQ(list.successor(5), 1u);  // wrap
}

TEST(MemberList, PredecessorWrapsAround) {
  MemberList list{{1, 3, 5}};
  EXPECT_EQ(list.predecessor(3), 1u);
  EXPECT_EQ(list.predecessor(1), 5u);  // wrap
}

TEST(MemberList, RingUndefinedForSingletonOrNonMember) {
  MemberList list{{4}};
  EXPECT_FALSE(list.successor(4).has_value());
  EXPECT_FALSE(list.predecessor(4).has_value());
  MemberList pair{{1, 2}};
  EXPECT_FALSE(pair.successor(9).has_value());
}

TEST(MemberList, RingConsistencyAfterRemoval) {
  MemberList list{{1, 2, 3, 4}};
  list.remove(3);
  EXPECT_EQ(list.successor(2), 4u);
  EXPECT_EQ(list.predecessor(4), 2u);
}

TEST(MemberList, EveryMemberReachableAroundTheRing) {
  MemberList list{{2, 4, 6, 8, 10}};
  net::NodeId node = 2;
  std::size_t hops = 0;
  do {
    node = *list.successor(node);
    ++hops;
  } while (node != 2 && hops < 10);
  EXPECT_EQ(hops, list.size());
}

TEST(MemberList, EqualityIgnoresVersion) {
  MemberList a{{1, 2}};
  MemberList b{{2, 1}};
  b.add(3);
  b.remove(3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace edr::cluster
