// Driving DistributedAlgorithm backends synchronously against a fabricated
// EpochContext — no simulator, no network — to pin the interface contract:
// warm-start state must carry across epochs (and measurably shorten the
// second solve), abort must drop the engine but keep the warm state, and
// one-shot backends must honor their rotation state.
#include <gtest/gtest.h>

#include <vector>

#include "core/builtin_algorithms.hpp"
#include "core/lddm.hpp"
#include "optim/problem.hpp"

namespace edr::core {
namespace {

/// A 4-client x 4-replica epoch with mildly skewed demand.
optim::Problem make_problem(double demand_scale) {
  std::vector<Megabytes> demands = {30.0 * demand_scale,
                                    22.0 * demand_scale,
                                    18.0 * demand_scale,
                                    26.0 * demand_scale};
  std::vector<optim::ReplicaParams> replicas(4);
  replicas[0].price = 1.0;
  replicas[1].price = 8.0;
  replicas[2].price = 2.0;
  replicas[3].price = 5.0;
  Matrix latency(4, 4, 0.2);
  return optim::Problem(std::move(demands), std::move(replicas),
                        std::move(latency), 1.8);
}

struct FabricatedEpoch {
  optim::Problem problem;
  std::vector<std::size_t> active_replicas = {0, 1, 2, 3};
  std::vector<std::uint32_t> active_clients = {0, 1, 2, 3};
  std::vector<PendingRequest> requests;
  std::vector<bool> alive = {true, true, true, true};

  explicit FabricatedEpoch(double demand_scale)
      : problem(make_problem(demand_scale)) {}

  [[nodiscard]] EpochContext context() {
    EpochContext ctx;
    ctx.problem = &problem;
    ctx.active_replicas = &active_replicas;
    ctx.active_clients = &active_clients;
    ctx.requests = &requests;
    ctx.replica_alive = &alive;
    ctx.num_replicas = 4;
    ctx.num_clients = 4;
    ctx.num_solvers = 4;
    return ctx;
  }
};

/// Run one full epoch synchronously; returns the number of rounds stepped.
std::size_t solve_epoch(DistributedAlgorithm& algorithm, EpochContext ctx,
                        Matrix* allocation_out = nullptr) {
  algorithm.begin_epoch(ctx);
  std::size_t rounds = 0;
  while (!algorithm.step_round(ctx)) ++rounds;
  ++rounds;
  Matrix allocation = algorithm.extract_allocation(ctx);
  if (allocation_out != nullptr) *allocation_out = std::move(allocation);
  return rounds;
}

LddmOptions test_lddm_options() {
  LddmOptions options;
  options.mu_step_factor = 3.0;
  options.max_rounds = 300;
  options.tolerance = 1e-4;
  options.patience = 3;
  return options;
}

TEST(LddmAlgorithm, WarmSecondEpochConvergesInFewerRounds) {
  FabricatedEpoch first(1.0);
  FabricatedEpoch second(1.15);  // next epoch: similar shape, more demand

  LddmAlgorithm warm(test_lddm_options(), /*warm_start=*/true);
  const std::size_t warm_first = solve_epoch(warm, first.context());
  const std::size_t warm_second = solve_epoch(warm, second.context());

  LddmAlgorithm cold(test_lddm_options(), /*warm_start=*/false);
  (void)solve_epoch(cold, first.context());
  const std::size_t cold_second = solve_epoch(cold, second.context());

  // The first epoch starts from nothing either way; the carried duals +
  // scaled primal columns must shorten the second solve.
  EXPECT_LT(warm_second, cold_second);
  EXPECT_LT(warm_second, warm_first);
}

TEST(LddmAlgorithm, WarmAndColdAgreeOnTheAllocation) {
  FabricatedEpoch first(1.0);
  FabricatedEpoch second(1.15);

  Matrix warm_allocation, cold_allocation;
  LddmAlgorithm warm(test_lddm_options(), true);
  (void)solve_epoch(warm, first.context());
  (void)solve_epoch(warm, second.context(), &warm_allocation);

  LddmAlgorithm cold(test_lddm_options(), false);
  (void)solve_epoch(cold, first.context());
  (void)solve_epoch(cold, second.context(), &cold_allocation);

  // Warm starting changes the iteration count, not the answer: column
  // loads agree to solver tolerance.
  ASSERT_EQ(warm_allocation.cols(), cold_allocation.cols());
  const double total = second.problem.total_demand();
  for (std::size_t col = 0; col < warm_allocation.cols(); ++col)
    EXPECT_NEAR(warm_allocation.col_sum(col), cold_allocation.col_sum(col),
                total * 0.02)
        << "replica " << col;
}

TEST(LddmAlgorithm, AbortKeepsWarmStateForTheRestart) {
  FabricatedEpoch first(1.0);
  FabricatedEpoch second(1.15);

  LddmAlgorithm algorithm(test_lddm_options(), true);
  (void)solve_epoch(algorithm, first.context());

  // Membership change mid-epoch: engine dropped, warm state retained.
  algorithm.begin_epoch(second.context());
  (void)algorithm.step_round(second.context());
  algorithm.abort_epoch();

  const std::size_t restarted = solve_epoch(algorithm, second.context());
  LddmAlgorithm cold(test_lddm_options(), false);
  (void)solve_epoch(cold, first.context());
  const std::size_t cold_second = solve_epoch(cold, second.context());
  EXPECT_LT(restarted, cold_second)
      << "warm state should survive an aborted epoch";
}

TEST(RoundRobinAlgorithm, RotationCursorCarriesAcrossEpochs) {
  // One request per epoch: without cross-epoch cursor state every epoch
  // would start at replica 0; with it, consecutive epochs hit consecutive
  // replicas.
  RoundRobinAlgorithm algorithm;
  std::vector<std::size_t> first_hit;
  for (int epoch = 0; epoch < 3; ++epoch) {
    FabricatedEpoch fab(1.0);
    fab.active_clients = {0};
    fab.problem = optim::Problem({25.0}, fab.problem.replicas(),
                                 Matrix(1, 4, 0.2), 1.8);
    fab.requests.push_back({/*id=*/static_cast<std::uint64_t>(epoch),
                            /*client=*/0, /*arrival=*/0.0,
                            /*size_mb=*/25.0, /*retries=*/0});
    auto ctx = fab.context();
    ASSERT_FALSE(algorithm.iterative());
    const auto allocation = algorithm.solve_oneshot(ctx);
    ASSERT_TRUE(allocation.has_value());
    for (std::size_t col = 0; col < allocation->cols(); ++col)
      if (allocation->col_sum(col) > 0.0) first_hit.push_back(col);
  }
  ASSERT_EQ(first_hit.size(), 3u);
  EXPECT_EQ(first_hit[0], 0u);
  EXPECT_EQ(first_hit[1], 1u);
  EXPECT_EQ(first_hit[2], 2u);
}

}  // namespace
}  // namespace edr::core
