#include "core/lddm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "optim/flow.hpp"
#include "optim/instance.hpp"
#include "optim/kkt.hpp"
#include "optim/solver.hpp"

namespace edr::core {
namespace {

optim::Problem small_instance(std::uint64_t seed, std::size_t clients = 10,
                              std::size_t replicas = 5) {
  Rng rng{seed};
  optim::InstanceOptions opts;
  opts.num_clients = clients;
  opts.num_replicas = replicas;
  return optim::make_random_instance(rng, opts);
}

TEST(Lddm, RejectsBadOptions) {
  const auto problem = small_instance(61);
  LddmOptions options;
  options.rho = 0.0;
  EXPECT_THROW((LddmEngine{problem, options}), std::invalid_argument);
}

TEST(Lddm, RejectsInfeasibleOnlyAtSolve) {
  // LDDM never routes more than capacity per replica, but an instance whose
  // total capacity cannot carry the demand still yields a feasible-repaired
  // partial solution; the engine itself does not throw.  The system layer
  // handles admission control.  Validate that the repaired solution caps out.
  Matrix latency(1, 1, 0.5);
  std::vector<optim::ReplicaParams> reps(1);
  reps[0].bandwidth = 5.0;
  optim::Problem starved({10.0}, reps, latency, 1.8);
  // Demand repair is impossible here; project_feasible cannot satisfy both
  // sets.  The engine is only contracted for feasible instances, so this is
  // exercised through validate-before-use in callers:
  EXPECT_EQ(starved.validate(), "");  // structurally fine...
  EXPECT_FALSE(optim::initial_feasible_point(starved).has_value());  // ...but infeasible
}

TEST(Lddm, MultiplierUpdateFollowsDualGradient) {
  const auto problem = small_instance(62);
  LddmEngine engine{problem};
  const double mu_before = engine.multipliers()[0];
  // Serving more than demanded must push mu up (discourage serving).
  const double mu_after =
      engine.update_multiplier(0, problem.demand(0) + 10.0);
  EXPECT_GT(mu_after, mu_before);
  // Under-serving pushes it down.
  const double mu_third = engine.update_multiplier(0, 0.0);
  EXPECT_LT(mu_third, mu_after);
}

TEST(Lddm, SetMultipliersValidation) {
  const auto problem = small_instance(63);
  LddmEngine engine{problem};
  std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(engine.set_multipliers(wrong_size), std::invalid_argument);
  std::vector<double> right(problem.num_clients(), -2.0);
  engine.set_multipliers(right);
  EXPECT_DOUBLE_EQ(engine.multipliers()[0], -2.0);
  engine.round();
  EXPECT_THROW(engine.set_multipliers(right), std::logic_error);
}

TEST(Lddm, ColumnsRespectCapacityAndMask) {
  const auto problem = small_instance(64);
  LddmEngine engine{problem};
  for (int k = 0; k < 30; ++k) {
    engine.round();
    for (std::size_t n = 0; n < problem.num_replicas(); ++n) {
      const auto& column = engine.column(n);
      double load = 0.0;
      for (std::size_t c = 0; c < problem.num_clients(); ++c) {
        EXPECT_GE(column[c], 0.0);
        if (!problem.feasible_pair(c, n)) EXPECT_DOUBLE_EQ(column[c], 0.0);
        load += column[c];
      }
      EXPECT_LE(load, problem.replica(n).bandwidth + 1e-6);
    }
  }
}

TEST(Lddm, SolutionAlwaysFeasible) {
  const auto problem = small_instance(65);
  LddmEngine engine{problem};
  for (int k = 0; k < 40; ++k) {
    engine.round();
    EXPECT_TRUE(optim::check_feasibility(problem, engine.solution()).ok(1e-5));
  }
}

TEST(Lddm, CommunicationVolumeMatchesComplexityModel) {
  const auto problem = small_instance(66, 6, 4);
  LddmEngine engine{problem};
  EXPECT_EQ(engine.bytes_per_replica_round(), 6u * 12u);
  EXPECT_EQ(engine.bytes_per_client_round(), 4u * 12u);
  const auto stats = engine.round();
  EXPECT_EQ(stats.bytes_exchanged, 4u * 72u + 6u * 48u);
}

TEST(Lddm, LowerPerRoundTrafficThanCdpsm) {
  // The O(|C|·|N|) vs O(|C|·|N|³) comparison from §III-D, in bytes.
  const auto problem = small_instance(67, 16, 8);
  LddmEngine lddm{problem};
  const std::size_t lddm_round_bytes =
      8 * lddm.bytes_per_replica_round() + 16 * lddm.bytes_per_client_round();
  // CDPSM: 8 replicas x 7 peers x matrix(16x8).
  const std::size_t cdpsm_round_bytes = 8 * 7 * (8 + 8 * 16 * 8);
  EXPECT_LT(lddm_round_bytes * 10, cdpsm_round_bytes);
}

TEST(Lddm, WarmStartReducesRounds) {
  const auto problem = small_instance(68);
  LddmEngine cold{problem};
  cold.run();
  ASSERT_TRUE(cold.converged());

  // Warm-start duals AND primal columns (the system carries both across
  // epochs; dual-only warm starts do not shorten the averaged recovery).
  LddmEngine warm{problem};
  warm.set_multipliers(cold.multipliers());
  for (std::size_t n = 0; n < problem.num_replicas(); ++n)
    warm.set_column_state(n, cold.column(n));
  warm.run();
  EXPECT_TRUE(warm.converged());
  EXPECT_LT(warm.rounds_executed(), cold.rounds_executed());
}

TEST(Lddm, InitialMuOverridesAutoHeuristic) {
  const auto problem = small_instance(69);
  LddmOptions neutral;
  neutral.initial_mu = 0.0;
  LddmEngine cold{problem, neutral};
  for (const double mu : cold.multipliers()) EXPECT_DOUBLE_EQ(mu, 0.0);

  LddmEngine smart{problem};  // auto heuristic: strictly negative start
  for (const double mu : smart.multipliers()) EXPECT_LT(mu, 0.0);
}

TEST(Lddm, MuStepFactorAcceleratesEarlyProgress) {
  const auto problem = small_instance(70);
  const auto central = optim::solve_centralized(problem);
  ASSERT_TRUE(central.has_value());

  auto gap_after = [&](double factor, int rounds) {
    LddmOptions options;
    options.initial_mu = 0.0;
    options.mu_step_factor = factor;
    options.patience = 1000;  // fixed budget
    LddmEngine engine{problem, options};
    for (int k = 0; k < rounds; ++k) engine.round();
    return optim::relative_gap(problem, engine.solution(), central->cost);
  };
  EXPECT_LT(gap_after(3.0, 60), gap_after(1.0, 60));
}

class LddmConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LddmConvergence, ReachesCentralizedOptimum) {
  const auto problem = small_instance(GetParam());
  const auto central = optim::solve_centralized(problem);
  ASSERT_TRUE(central.has_value());

  LddmEngine engine{problem};
  engine.run();
  EXPECT_TRUE(engine.converged())
      << "no convergence in " << engine.rounds_executed() << " rounds";
  const auto solution = engine.solution();
  EXPECT_TRUE(optim::check_feasibility(problem, solution).ok(1e-5));
  EXPECT_LT(optim::relative_gap(problem, solution, central->cost), 5e-3)
      << "lddm=" << problem.total_cost(solution)
      << " central=" << central->cost;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LddmConvergence,
                         ::testing::Range<std::uint64_t>(600, 610));

}  // namespace
}  // namespace edr::core
