#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "optim/instance.hpp"

namespace edr::core {
namespace {

optim::Problem price_spread_instance(std::uint64_t seed) {
  Rng rng{seed};
  optim::InstanceOptions opts;
  opts.num_clients = 12;
  opts.num_replicas = 6;
  opts.min_price = 1;
  opts.max_price = 20;
  return optim::make_random_instance(rng, opts);
}

TEST(Schedulers, AllImplementationsProduceFeasibleAllocations) {
  const auto problem = price_spread_instance(71);
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<CentralizedScheduler>());
  schedulers.push_back(std::make_unique<CdpsmScheduler>());
  schedulers.push_back(std::make_unique<LddmScheduler>());
  for (auto& scheduler : schedulers) {
    const auto result = scheduler->schedule(problem);
    EXPECT_TRUE(optim::check_feasibility(problem, result.allocation).ok(1e-5))
        << scheduler->name();
  }
}

TEST(Schedulers, DistributedMatchCentralizedCost) {
  const auto problem = price_spread_instance(72);
  CentralizedScheduler central;
  CdpsmScheduler cdpsm;
  LddmScheduler lddm;
  const double best = problem.total_cost(central.schedule(problem).allocation);
  const double c = problem.total_cost(cdpsm.schedule(problem).allocation);
  const double l = problem.total_cost(lddm.schedule(problem).allocation);
  EXPECT_LT((c - best) / best, 5e-3);
  EXPECT_LT((l - best) / best, 5e-3);
}

TEST(Schedulers, LddmCheaperCoordinationThanCdpsm) {
  const auto problem = price_spread_instance(73);
  CdpsmScheduler cdpsm;
  LddmScheduler lddm;
  const auto rc = cdpsm.schedule(problem);
  const auto rl = lddm.schedule(problem);
  ASSERT_GT(rc.rounds, 0u);
  ASSERT_GT(rl.rounds, 0u);
  const double cdpsm_bytes_per_round =
      static_cast<double>(rc.bytes) / static_cast<double>(rc.rounds);
  const double lddm_bytes_per_round =
      static_cast<double>(rl.bytes) / static_cast<double>(rl.rounds);
  EXPECT_LT(lddm_bytes_per_round * 5.0, cdpsm_bytes_per_round);
}

TEST(Schedulers, CentralizedThrowsOnInfeasible) {
  Matrix latency(1, 1, 0.5);
  std::vector<optim::ReplicaParams> reps(1);
  reps[0].bandwidth = 1.0;
  optim::Problem starved({10.0}, reps, latency, 1.8);
  CentralizedScheduler central;
  EXPECT_THROW((void)central.schedule(starved), std::runtime_error);
}

TEST(Schedulers, NamesAreStable) {
  EXPECT_EQ(CentralizedScheduler{}.name(), "Centralized");
  EXPECT_EQ(CdpsmScheduler{}.name(), "EDR-CDPSM");
  EXPECT_EQ(LddmScheduler{}.name(), "EDR-LDDM");
}

TEST(RoundRobinAllocation, EqualSplitAcrossFeasibleReplicas) {
  std::vector<Megabytes> demands{12.0};
  std::vector<optim::ReplicaParams> reps(3);
  Matrix latency(1, 3, 0.5);
  latency(0, 2) = 5.0;  // masked
  optim::Problem problem(demands, reps, latency, 1.8);
  const auto allocation = round_robin_allocation(problem);
  EXPECT_DOUBLE_EQ(allocation(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(allocation(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(allocation(0, 2), 0.0);
}

TEST(RoundRobinAllocation, IgnoresPrices) {
  std::vector<Megabytes> demands{10.0};
  std::vector<optim::ReplicaParams> reps(2);
  reps[0].price = 1.0;
  reps[1].price = 20.0;
  Matrix latency(1, 2, 0.5);
  optim::Problem problem(demands, reps, latency, 1.8);
  const auto allocation = round_robin_allocation(problem);
  EXPECT_DOUBLE_EQ(allocation(0, 0), allocation(0, 1));
}

TEST(RoundRobinAllocation, OverflowWaterfallsToSpareCapacity) {
  std::vector<Megabytes> demands{30.0};
  std::vector<optim::ReplicaParams> reps(2);
  reps[0].bandwidth = 5.0;   // equal share would be 15: overflows by 10
  reps[1].bandwidth = 100.0;
  Matrix latency(1, 2, 0.5);
  optim::Problem problem(demands, reps, latency, 1.8);
  const auto allocation = round_robin_allocation(problem);
  EXPECT_DOUBLE_EQ(allocation(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(allocation(0, 1), 25.0);
  EXPECT_TRUE(optim::check_feasibility(problem, allocation).ok(1e-9));
}

TEST(RoundRobinAllocation, FeasibleOnRandomInstances) {
  for (std::uint64_t seed = 80; seed < 90; ++seed) {
    const auto problem = price_spread_instance(seed);
    const auto allocation = round_robin_allocation(problem);
    EXPECT_TRUE(optim::check_feasibility(problem, allocation).ok(1e-7))
        << "seed " << seed;
  }
}

TEST(Schedulers, EdrNeverCostsMoreThanRoundRobin) {
  for (std::uint64_t seed = 90; seed < 100; ++seed) {
    const auto problem = price_spread_instance(seed);
    LddmScheduler lddm;
    const double edr_cost =
        problem.total_cost(lddm.schedule(problem).allocation);
    const double rr_cost =
        problem.total_cost(round_robin_allocation(problem));
    EXPECT_LE(edr_cost, rr_cost * (1.0 + 1e-6)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace edr::core
