#include "core/aggregation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "optim/instance.hpp"
#include "optim/problem.hpp"
#include "optim/solver.hpp"

namespace edr::core {
namespace {

optim::Problem geo_problem(std::size_t clients, std::uint64_t seed = 11) {
  Rng rng{seed};
  optim::GeoInstanceOptions options;
  options.num_clients = clients;
  options.num_replicas = 6;
  options.window = 2;
  return optim::make_geo_instance(rng, options);
}

TEST(ClientAggregation, GroupsIdenticalFeasibleSets) {
  const auto problem = geo_problem(200);
  const auto agg = build_client_aggregation(problem);
  ASSERT_EQ(agg.class_of.size(), problem.num_clients());
  // A 2-wide window on a 6-replica ring has exactly 6 start positions.
  EXPECT_LE(agg.num_classes(), 6u);
  EXPECT_GE(agg.num_classes(), 2u);

  // Every member of a class has exactly the representative's feasible set.
  const auto& pattern = *problem.sparsity();
  for (std::size_t c = 0; c < problem.num_clients(); ++c) {
    const auto rep_cols = pattern.row_cols(agg.representative[agg.class_of[c]]);
    const auto cols = pattern.row_cols(c);
    ASSERT_EQ(cols.size(), rep_cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i)
      EXPECT_EQ(cols[i], rep_cols[i]);
  }

  // Class demands partition the total; shares sum to 1 within each class.
  std::vector<double> share_sum(agg.num_classes(), 0.0);
  double demand_sum = 0.0;
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    share_sum[agg.class_of[c]] += agg.share[c];
  for (const double d : agg.class_demand) demand_sum += d;
  EXPECT_NEAR(demand_sum, problem.total_demand(), 1e-9 * demand_sum);
  for (const double s : share_sum) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(ClientAggregation, ClassIdsAreFirstAppearanceOrdered) {
  const auto problem = geo_problem(64, 3);
  const auto agg = build_client_aggregation(problem);
  std::uint32_t next = 0;
  for (std::size_t c = 0; c < problem.num_clients(); ++c) {
    ASSERT_LE(agg.class_of[c], next);
    if (agg.class_of[c] == next) {
      EXPECT_EQ(agg.representative[next], static_cast<std::uint32_t>(c));
      ++next;
    }
  }
  EXPECT_EQ(next, agg.num_classes());
}

TEST(ClientAggregation, AggregatedProblemPreservesStructure) {
  const auto problem = geo_problem(150);
  const auto agg = build_client_aggregation(problem);
  const auto aggregated = aggregate_problem(problem, agg);
  EXPECT_EQ(aggregated.num_clients(), agg.num_classes());
  EXPECT_EQ(aggregated.num_replicas(), problem.num_replicas());
  EXPECT_NEAR(aggregated.total_demand(), problem.total_demand(),
              1e-9 * problem.total_demand());
  for (std::size_t k = 0; k < agg.num_classes(); ++k) {
    EXPECT_DOUBLE_EQ(aggregated.demand(k), agg.class_demand[k]);
    for (std::size_t n = 0; n < problem.num_replicas(); ++n)
      EXPECT_EQ(aggregated.feasible_pair(k, n),
                problem.feasible_pair(agg.representative[k], n));
  }
}

TEST(ClientAggregation, ExpandPreservesSumsAndFeasibility) {
  const auto problem = geo_problem(150);
  const auto agg = build_client_aggregation(problem);
  const auto aggregated = aggregate_problem(problem, agg);

  // Solve the aggregated instance centrally and fan the result back out.
  const auto solution = optim::solve_centralized(aggregated);
  ASSERT_TRUE(solution.has_value());
  Matrix expanded;
  expand_allocation(agg, solution->allocation, expanded);
  ASSERT_EQ(expanded.rows(), problem.num_clients());
  ASSERT_EQ(expanded.cols(), problem.num_replicas());

  // Column sums (and hence the objective) are exactly those of the
  // aggregated solution; row sums recover each client's demand.
  for (std::size_t n = 0; n < problem.num_replicas(); ++n)
    EXPECT_NEAR(expanded.col_sum(n), solution->allocation.col_sum(n),
                1e-9 * (1.0 + solution->allocation.col_sum(n)));
  for (std::size_t c = 0; c < problem.num_clients(); ++c)
    EXPECT_NEAR(expanded.row_sum(c), problem.demand(c),
                1e-9 * (1.0 + problem.demand(c)));
  EXPECT_TRUE(optim::check_feasibility(problem, expanded).ok(1e-6));
  EXPECT_NEAR(problem.total_cost(expanded),
              aggregated.total_cost(solution->allocation),
              1e-9 * (1.0 + aggregated.total_cost(solution->allocation)));
}

}  // namespace
}  // namespace edr::core
