#include "core/system.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "optim/instance.hpp"
#include "workload/apps.hpp"

namespace edr::core {
namespace {

SystemConfig small_config(const std::string& algorithm) {
  SystemConfig cfg;
  cfg.algorithm = algorithm;
  cfg.replicas = optim::paper_replica_set();
  cfg.num_clients = 6;
  cfg.seed = 5;
  return cfg;
}

workload::Trace small_trace(std::uint64_t seed = 99, SimTime horizon = 10.0) {
  Rng rng{seed};
  workload::TraceOptions options;
  options.num_clients = 6;
  options.horizon = horizon;
  return workload::Trace::generate(rng, workload::distributed_file_service(),
                                   options);
}

TEST(EdrSystem, ServesAllMegabytesInTheTrace) {
  const auto trace = small_trace();
  EdrSystem system(small_config("lddm"), trace);
  const auto report = system.run();
  EXPECT_EQ(report.requests_served, trace.size());
  EXPECT_EQ(report.requests_dropped, 0u);
  EXPECT_NEAR(report.megabytes_served, trace.total_megabytes(),
              trace.total_megabytes() * 1e-6);
}

TEST(EdrSystem, EveryAlgorithmServesTheTrace) {
  const auto trace = small_trace();
  for (const auto algorithm :
       {"lddm", "cdpsm", "central",
        "rr"}) {
    EdrSystem system(small_config(algorithm), trace);
    const auto report = system.run();
    EXPECT_NEAR(report.megabytes_served, trace.total_megabytes(),
                trace.total_megabytes() * 1e-6)
        << algorithm;
    EXPECT_GT(report.total_energy, 0.0);
    EXPECT_GT(report.total_cost, 0.0);
  }
}

TEST(EdrSystem, DeterministicUnderFixedSeeds) {
  const auto trace = small_trace();
  EdrSystem a(small_config("lddm"), trace);
  EdrSystem b(small_config("lddm"), trace);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.total_cost, rb.total_cost);
  EXPECT_DOUBLE_EQ(ra.total_energy, rb.total_energy);
  EXPECT_EQ(ra.total_rounds, rb.total_rounds);
  EXPECT_EQ(ra.control_messages, rb.control_messages);
  ASSERT_EQ(ra.response_times_ms.size(), rb.response_times_ms.size());
  for (std::size_t i = 0; i < ra.response_times_ms.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.response_times_ms[i], rb.response_times_ms[i]);
}

TEST(EdrSystem, PowerTracesStayInSystemGBand) {
  auto cfg = small_config("cdpsm");
  cfg.record_traces = true;
  EdrSystem system(cfg, small_trace());
  const auto report = system.run();
  for (const auto& replica : report.replicas) {
    ASSERT_FALSE(replica.trace.samples.empty());
    EXPECT_GE(replica.trace.min_watts(), 214.9);
    EXPECT_LE(replica.trace.max_watts(), 241.0);
  }
}

TEST(EdrSystem, TraceRecordingCanBeDisabled) {
  auto cfg = small_config("rr");
  cfg.record_traces = false;
  EdrSystem system(cfg, small_trace());
  const auto report = system.run();
  for (const auto& replica : report.replicas)
    EXPECT_TRUE(replica.trace.samples.empty());
}

TEST(EdrSystem, EnergyDecomposition) {
  EdrSystem system(small_config("lddm"), small_trace());
  const auto report = system.run();
  // Active energy is a small, positive fraction of the idle-dominated total.
  EXPECT_GT(report.total_active_energy, 0.0);
  EXPECT_LT(report.total_active_energy, report.total_energy);
  // Per-replica figures add up to the totals.
  double cost = 0.0, energy = 0.0;
  for (const auto& replica : report.replicas) {
    cost += replica.cost;
    energy += replica.energy;
  }
  EXPECT_NEAR(cost, report.total_cost, 1e-9);
  EXPECT_NEAR(energy, report.total_energy, 1e-6);
}

TEST(EdrSystem, EdrBeatsRoundRobinOnActiveCost) {
  const auto trace = small_trace(123, 20.0);
  EdrSystem lddm(small_config("lddm"), trace);
  EdrSystem rr(small_config("rr"), trace);
  const auto report_lddm = lddm.run();
  const auto report_rr = rr.run();
  EXPECT_LT(report_lddm.total_active_cost, report_rr.total_active_cost);
}

TEST(EdrSystem, LoadConcentratesOnCheapReplicas) {
  // Prices (1,8,1,6,1,5,2,3): replicas 0, 2, 4 are the cheap ones and
  // should carry more traffic than the expensive 1, 3.
  EdrSystem system(small_config("lddm"), small_trace(7, 20.0));
  const auto report = system.run();
  const double cheap = report.replicas[0].assigned_mb +
                       report.replicas[2].assigned_mb +
                       report.replicas[4].assigned_mb;
  const double expensive =
      report.replicas[1].assigned_mb + report.replicas[3].assigned_mb;
  EXPECT_GT(cheap, expensive * 1.5);
}

TEST(EdrSystem, ResponseTimesRecordedPerRequest) {
  const auto trace = small_trace();
  EdrSystem system(small_config("lddm"), trace);
  const auto report = system.run();
  EXPECT_EQ(report.response_times_ms.size(), trace.size());
  for (const double ms : report.response_times_ms) {
    EXPECT_GT(ms, 0.0);
    EXPECT_LT(ms, 10'000.0);
  }
  EXPECT_GE(report.p99_response_ms(), report.mean_response_ms());
}

TEST(EdrSystem, ControlTrafficScalesWithAlgorithm) {
  const auto trace = small_trace();
  EdrSystem cdpsm(small_config("cdpsm"), trace);
  EdrSystem rr(small_config("rr"), trace);
  const auto report_cdpsm = cdpsm.run();
  const auto report_rr = rr.run();
  EXPECT_GT(report_cdpsm.control_bytes, 10 * report_rr.control_bytes);
}

TEST(EdrSystem, ControlTrafficMatchesTelemetryCounters) {
  // The report's coordination tally is derived from the network's per-type
  // counters; the telemetry registry mirrors the same counters per type.
  // One epoch through both paths must land on identical numbers.
  auto cfg = small_config("lddm");
  cfg.telemetry = telemetry::make_telemetry();
  EdrSystem system(cfg, small_trace(99, 1.0));  // one epoch's worth
  const auto report = system.run();
  ASSERT_EQ(report.epochs, 1u);

  std::map<std::string, std::uint64_t, std::less<>> sent;
  std::uint64_t telemetry_messages = 0;
  std::uint64_t telemetry_bytes = 0;
  for (const auto& view : cfg.telemetry->metrics().counters()) {
    if (view.name.rfind("net.sent.", 0) != 0) continue;
    sent[std::string(view.name)] = view.value;
    if (view.name.find("ring_") != std::string_view::npos) continue;
    if (view.name.ends_with(".messages")) telemetry_messages += view.value;
    if (view.name.ends_with(".bytes")) telemetry_bytes += view.value;
  }
  EXPECT_EQ(report.control_messages, telemetry_messages);
  EXPECT_EQ(report.control_bytes, telemetry_bytes);

  // The per-type counters must also satisfy the protocol's wire sizes and
  // barrier structure: 12-byte load reports and mu updates in equal number
  // (one of each per pair per round), 16-byte assignments (one per pair),
  // 28-byte request announcements.
  const auto msgs = [&](const char* type) {
    return sent["net.sent." + std::string(type) + ".messages"];
  };
  const auto bytes = [&](const char* type) {
    return sent["net.sent." + std::string(type) + ".bytes"];
  };
  EXPECT_GT(report.total_rounds, 0u);
  EXPECT_EQ(msgs("lddm_load_report"), msgs("lddm_mu_update"));
  EXPECT_EQ(bytes("lddm_load_report"), 12u * msgs("lddm_load_report"));
  EXPECT_EQ(bytes("lddm_mu_update"), 12u * msgs("lddm_mu_update"));
  EXPECT_EQ(bytes("assignment"), 16u * msgs("assignment"));
  EXPECT_EQ(bytes("client_request"), 28u * msgs("client_request"));
  // One (client, replica) pair sends exactly one load report per round and
  // one assignment at the end of the single epoch.
  EXPECT_EQ(msgs("lddm_load_report"),
            report.total_rounds * msgs("assignment"));
}

TEST(EdrSystem, FailureDetectedAndTrafficRedistributed) {
  auto cfg = small_config("lddm");
  const auto trace = small_trace(11, 20.0);
  EdrSystem system(cfg, trace);
  system.inject_failure(0, 8.0);  // kill the cheapest replica mid-run
  const auto report = system.run();
  ASSERT_EQ(report.failed_replicas.size(), 1u);
  EXPECT_EQ(report.failed_replicas[0], 0u);
  EXPECT_FALSE(report.replicas[0].alive);
  // All demand still served (survivors have spare capacity).
  EXPECT_NEAR(report.megabytes_served, trace.total_megabytes(),
              trace.total_megabytes() * 0.02);
  // The dead replica's meter stops at its death: it cannot out-consume a
  // survivor that idled the whole run.
  EXPECT_LT(report.replicas[0].energy, report.replicas[1].energy);
}

TEST(EdrSystem, FailureWithRoundRobinAlsoRecovers) {
  auto cfg = small_config("rr");
  const auto trace = small_trace(13, 20.0);
  EdrSystem system(cfg, trace);
  system.inject_failure(3, 5.0);
  const auto report = system.run();
  EXPECT_NEAR(report.megabytes_served, trace.total_megabytes(),
              trace.total_megabytes() * 0.02);
  // The dead replica's meter stopped at t=5 of a much longer run.
  EXPECT_LT(report.replicas[3].energy, 0.5 * report.replicas[0].energy);
}

TEST(EdrSystem, CentralizedCoordinatorFailureStallsUntilRingRecovers) {
  // The paper's §III-B argument: a centralized coordinator is a single
  // point of failure.  In this runtime the ring detects the dead
  // coordinator and the next-lowest alive replica takes over — but only
  // after the detection timeout, which shows up as a response-time spike
  // relative to the failure-free run.
  const auto trace = small_trace(19, 20.0);
  EdrSystem healthy(small_config("central"), trace);
  EdrSystem wounded(small_config("central"), trace);
  // Crash the coordinator (lowest-id replica) a few milliseconds into the
  // epoch-5 solve, while the computation is in flight: the epoch stalls
  // until the heartbeat ring detects the death and the restart elects the
  // next survivor.  (A crash *between* solves is handled invisibly — the
  // next epoch simply elects the survivor — so mid-solve is the case that
  // exposes the single point of failure.)
  wounded.inject_failure(0, 5.002);
  const auto before = healthy.run();
  const auto after = wounded.run();

  // Work still completes (coordinator failover via the ring)...
  EXPECT_NEAR(after.megabytes_served, trace.total_megabytes(),
              trace.total_megabytes() * 0.02);
  // ...but the stalled epoch pays roughly the detection timeout.
  EXPECT_GT(after.p99_response_ms(), before.p99_response_ms() + 500.0);
}

TEST(EdrSystem, WarmStartReducesTotalRounds) {
  const auto trace = small_trace(17, 20.0);
  auto warm_cfg = small_config("lddm");
  warm_cfg.warm_start = true;
  auto cold_cfg = small_config("lddm");
  cold_cfg.warm_start = false;
  EdrSystem warm(warm_cfg, trace);
  EdrSystem cold(cold_cfg, trace);
  const auto warm_report = warm.run();
  const auto cold_report = cold.run();
  EXPECT_LE(warm_report.total_rounds, cold_report.total_rounds);
}

TEST(EdrSystem, RejectsBrokenConfigs) {
  SystemConfig no_replicas;
  no_replicas.num_clients = 2;
  EXPECT_THROW(EdrSystem(no_replicas, small_trace()),
               std::invalid_argument);

  auto bad_shape = small_config("lddm");
  bad_shape.latency = Matrix(2, 2, 0.5);  // wrong shape for 6 clients x 8
  EXPECT_THROW(EdrSystem(bad_shape, small_trace()), std::invalid_argument);

  auto cfg = small_config("lddm");
  EdrSystem ok(cfg, small_trace());
  EXPECT_THROW(ok.inject_failure(99, 1.0), std::out_of_range);
}

}  // namespace
}  // namespace edr::core
